#!/usr/bin/env bash
# Differential query-correctness run (see DESIGN.md, "Differential
# testing"). Generates N_SEEDS random FLWGOR queries and executes each
# under the full optimizer/runtime config matrix plus seeded fault
# schedules, demanding byte-identical results or typed errors. The
# same seeds also replay over a loopback aldspd through aldsp-client
# (the `wire` cell), demanding byte-identity with the in-process run.
#
# Usage:
#   scripts/difftest.sh [N_SEEDS] [SEED_START]
#
#   N_SEEDS     queries to generate for the matrix oracle (default 50);
#               fault trials run N_SEEDS/2 schedules
#   SEED_START  first seed (default 0) — reproduce a failure with
#               scripts/difftest.sh 1 <failing-seed>
#
# Environment:
#   DIFFTEST_ARTIFACT  path to write the minimized failing query to
#                      (used by the nightly job to upload a repro)
set -euo pipefail
cd "$(dirname "$0")/.."

N_SEEDS="${1:-50}"
SEED_START="${2:-0}"

DIFFTEST_SEEDS="$N_SEEDS" \
DIFFTEST_FAULT_SEEDS="$(( N_SEEDS / 2 > 0 ? N_SEEDS / 2 : 1 ))" \
DIFFTEST_SEED_START="$SEED_START" \
    cargo test -q -p aldsp --test difftest
