#!/usr/bin/env bash
# Server smoke test: spawn a real aldspd process on an ephemeral port,
# run one query through the aldsp-client binary, then close the
# daemon's stdin (its shutdown signal) and assert a clean zero exit.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -q -p aldsp-server -p aldsp-client

coproc ALDSPD { ./target/release/aldspd --port 0 --customers 10; }

# the daemon prints its bound (ephemeral) address as the first line
if ! read -t 30 -r banner <&"${ALDSPD[0]}"; then
    echo "server smoke: no banner from aldspd" >&2
    exit 1
fi
case "$banner" in
    "aldspd listening on "*) addr="${banner##* }" ;;
    *) echo "server smoke: unexpected banner: $banner" >&2; exit 1 ;;
esac

out="$(./target/release/aldsp-client --addr "$addr" \
    --query 'declare namespace c = "urn:custDS"; count(c:CUSTOMER())' \
    2>/dev/null)"
if [ "$out" != "10" ]; then
    echo "server smoke: expected 10 customers, got: $out" >&2
    exit 1
fi

# closing stdin tells the daemon to shut down; it must exit 0
eval "exec ${ALDSPD[1]}>&-"
wait "$ALDSPD_PID"
echo "server smoke: OK ($addr answered, clean shutdown)"
