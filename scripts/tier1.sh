#!/usr/bin/env bash
# Tier-1 verification (see ROADMAP.md): the workspace must build in
# release mode and every test must pass. Formatting and lints are
# checked first so CI fails fast on style drift.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all --check
cargo clippy --all-targets -- -D warnings
cargo build --release
cargo test -q
# 50-seed differential smoke: random FLWGOR queries under the full
# pushdown/prefetch/streaming/budget matrix plus the wire cell, which
# replays the same seeds through aldsp-client against a loopback
# aldspd (nightly runs 2,000 seeds)
./scripts/difftest.sh 50
# benches must at least compile (they are exercised manually /
# via scripts/bench_json.sh, not run in CI)
cargo bench --no-run
# server smoke: a real aldspd process on an ephemeral port must answer
# one query over the wire and shut down cleanly when stdin closes
./scripts/server_smoke.sh
