#!/usr/bin/env bash
# Run one aldsp-bench benchmark and record per-case medians as JSON.
#
#   scripts/bench_json.sh [bench-name] [out.json]
#
# Defaults preserve the original PR-4 invocation: bench tuple_pipeline,
# output BENCH_PR4.json. PR 8 records the matview read/write mix with
#   scripts/bench_json.sh matview BENCH_PR8.json
#
# The vendored criterion shim reports each case as
#   <name>  time: [<min> <median> <max>]  (mean <mean>, <n> samples)
# This script parses the median (the middle bracket value), normalizes
# it to nanoseconds per iteration, and writes the JSON at the repo root:
#   { "bench": "<name>", "cases": { "<case>": <median_ns>, ... } }
set -euo pipefail
cd "$(dirname "$0")/.."

bench="${1:-tuple_pipeline}"
out="${2:-BENCH_PR4.json}"

raw=$(cargo bench -q --bench "$bench" -p aldsp-bench 2>&1 | grep 'time: \[')
if [[ -z "$raw" ]]; then
    echo "bench_json.sh: no benchmark output captured" >&2
    exit 1
fi

RAW="$raw" BENCH="$bench" python3 - "$out" <<'PY'
import json
import os
import re
import sys

UNIT_NS = {"s": 1e9, "ms": 1e6, "µs": 1e3, "us": 1e3, "ns": 1.0}
# bracket layout: [min-val min-unit median-val median-unit max-val max-unit]
BRACKET = re.compile(
    r"^(?P<name>\S+)\s+time: \["
    r"(?P<min>[0-9.]+) (?P<minu>\S+) "
    r"(?P<median>[0-9.]+) (?P<medu>\S+) "
    r"(?P<max>[0-9.]+) (?P<maxu>\S+)\]"
)

cases = {}
for line in os.environ["RAW"].splitlines():
    m = BRACKET.match(line.strip())
    if not m:
        continue
    unit = m.group("medu")
    if unit not in UNIT_NS:
        sys.exit(f"bench_json.sh: unknown time unit {unit!r} in: {line!r}")
    cases[m.group("name")] = round(float(m.group("median")) * UNIT_NS[unit])

if not cases:
    sys.exit("bench_json.sh: no cases parsed")

with open(sys.argv[1], "w") as f:
    json.dump({"bench": os.environ["BENCH"], "unit": "ns/iter", "cases": cases}, f, indent=2)
    f.write("\n")
print(f"wrote {sys.argv[1]}: {len(cases)} cases")
PY
