//! Non-queryable and functional sources side by side (§2.2, §5.3):
//! a relational CUSTOMER table federated with an XML complaint file and
//! a CSV region file, plus element-level security on the result (§7).
//!
//! ```sh
//! cargo run --example federated_files
//! ```

use aldsp::adaptors::files::FileContent;
use aldsp::adaptors::{CsvFileSource, XmlFileSource};
use aldsp::relational::{
    Catalog, Database, Dialect, RelationalServer, SqlType, SqlValue, TableSchema,
};
use aldsp::security::{DenialAction, ElementResource, Principal, SecurityPolicy};
use aldsp::xdm::schema::ShapeBuilder;
use aldsp::xdm::value::{AtomicType, AtomicValue};
use aldsp::xdm::xml::serialize_sequence;
use aldsp::xdm::QName;
use aldsp::{QueryRequest, ServerBuilder};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // relational customers
    let mut catalog = Catalog::new();
    catalog.add(
        TableSchema::builder("CUSTOMER")
            .col("CID", SqlType::Varchar)
            .col("LAST_NAME", SqlType::Varchar)
            .col("REGION", SqlType::Varchar)
            .pk(&["CID"])
            .build()?,
    )?;
    let mut db = Database::new();
    for t in catalog.tables() {
        db.create_table(t.clone())?;
    }
    for (cid, last, region) in [("C1", "Jones", "KR"), ("C2", "Smith", "US")] {
        db.insert(
            "CUSTOMER",
            vec![
                SqlValue::str(cid),
                SqlValue::str(last),
                SqlValue::str(region),
            ],
        )?;
    }
    let server_db = Arc::new(RelationalServer::new("db1", Dialect::Oracle, db));

    // an XML complaint file (non-queryable: read fully, validated
    // against its registered schema — §5.3)
    let complaint_shape = ShapeBuilder::element(QName::local("COMPLAINT"))
        .required_local("ID", AtomicType::Integer)
        .required_local("CID", AtomicType::String)
        .optional_local("SEVERITY", AtomicType::Integer)
        .build();
    let complaints = Arc::new(XmlFileSource::new(
        "complaints.xml",
        FileContent::Inline(
            "<COMPLAINTS>
               <COMPLAINT><ID>1</ID><CID>C1</CID><SEVERITY>3</SEVERITY></COMPLAINT>
               <COMPLAINT><ID>2</ID><CID>C1</CID></COMPLAINT>
               <COMPLAINT><ID>3</ID><CID>C2</CID><SEVERITY>1</SEVERITY></COMPLAINT>
             </COMPLAINTS>"
                .into(),
        ),
        complaint_shape.clone(),
    ));

    // a delimited region file
    let region_shape = ShapeBuilder::element(QName::local("REGION"))
        .required_local("CODE", AtomicType::String)
        .required_local("NAME", AtomicType::String)
        .build();
    let regions = Arc::new(CsvFileSource::new(
        "regions.csv",
        FileContent::Inline("KR,Korea\nUS,United States\n".into()),
        region_shape.clone(),
    ));

    // security: only auditors may see complaint severities (§7)
    let mut policy = SecurityPolicy::new();
    policy.add_resource(ElementResource {
        path: vec![
            QName::local("COMPLAINTS"),
            QName::local("COMPLAINT"),
            QName::local("SEVERITY"),
        ],
        allowed_roles: vec!["auditor".into()],
        denial: DenialAction::Replace(AtomicValue::str("redacted")),
    });

    let aldsp = ServerBuilder::new()
        .relational_source(server_db, &catalog, "urn:custDS")?
        .xml_file(
            QName::new("urn:files", "COMPLAINT"),
            complaints,
            complaint_shape,
        )?
        .csv_file(QName::new("urn:files", "REGION"), regions, region_shape)?
        .security(policy)
        .build();

    let query = r#"
        declare namespace c = "urn:custDS";
        declare namespace f = "urn:files";
        for $c in c:CUSTOMER()
        return
          <CUSTOMER_VIEW>
            <CID>{fn:data($c/CID)}</CID>
            <REGION_NAME>{
              for $r in f:REGION() where $r/CODE eq $c/REGION return fn:data($r/NAME)
            }</REGION_NAME>
            <COMPLAINTS>{
              for $x in f:COMPLAINT() where $x/CID eq $c/CID return $x
            }</COMPLAINTS>
          </CUSTOMER_VIEW>"#;

    let intern = Principal::new("intern", &[]);
    println!("== intern view (severities redacted) ==");
    for item in aldsp
        .execute(QueryRequest::new(query).principal(intern.clone()))?
        .into_items()
    {
        println!("{}", serialize_sequence(&[item]));
    }

    let auditor = Principal::new("auditor", &["auditor"]);
    println!("\n== auditor view ==");
    for item in aldsp
        .execute(QueryRequest::new(query).principal(auditor.clone()))?
        .into_items()
    {
        println!("{}", serialize_sequence(&[item]));
    }
    Ok(())
}
