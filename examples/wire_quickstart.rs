//! Network front-door quickstart: start an in-process `aldspd`
//! listener on an ephemeral port, connect with the blocking client,
//! prepare a plan handle, and run it twice as two different
//! principals.
//!
//! ```text
//! cargo run --example wire_quickstart
//! ```

use aldsp_client::Client;
use aldsp_protocol::WireOptions;
use aldsp_server::demo::{demo_world, PROLOG};
use aldsp_server::{serve, WireConfig};

fn main() {
    let world = demo_world(10);
    let listener = serve("127.0.0.1:0", world.server.clone(), WireConfig::default())
        .expect("bind ephemeral port");
    let addr = listener.local_addr();
    println!("aldspd listening on {addr}");

    let query = format!(
        "{PROLOG} for $c in c:CUSTOMER() where $c/LAST_NAME = \"Jones\" \
         order by $c/CID return <P>{{$c/CID}}{{$c/LAST_NAME}}</P>"
    );

    let mut alice = Client::connect(addr, "alice", &["csr"]).expect("connect");
    let prepared = alice.prepare(&query).expect("prepare");
    println!(
        "alice prepared handle {} (shared: {})",
        prepared.handle, prepared.shared
    );
    let result = alice
        .execute_prepared(prepared.handle, &WireOptions::default())
        .expect("execute");
    println!("alice got {} item(s):\n{}", result.delivered, result.text());

    // a second session preparing the same text gets the SAME handle —
    // plans are user-independent, results are per-principal
    let mut bob = Client::connect(addr, "bob", &[]).expect("connect");
    let again = bob.prepare(&query).expect("prepare");
    println!(
        "bob prepared handle {} (shared: {})",
        again.handle, again.shared
    );
    assert_eq!(prepared.handle, again.handle);

    alice.goodbye().expect("clean close");
    bob.goodbye().expect("clean close");
}
