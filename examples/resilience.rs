//! Slow and unavailable sources (§5.4–5.6): `fn-bea:async`,
//! `fn-bea:timeout`, `fn-bea:fail-over`, and the mid-tier function
//! cache.
//!
//! ```sh
//! cargo run --example resilience
//! ```

use aldsp::adaptors::SimulatedWebService;
use aldsp::metadata::{WebServiceDescription, WebServiceOperation};
use aldsp::security::Principal;
use aldsp::xdm::schema::ShapeBuilder;
use aldsp::xdm::value::{AtomicType, AtomicValue};
use aldsp::xdm::xml::serialize_sequence;
use aldsp::xdm::{Node, QName};
use aldsp::{QueryRequest, ServerBuilder};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn slow_service(name: &str, ns: &str) -> (WebServiceDescription, Arc<SimulatedWebService>) {
    let input = ShapeBuilder::element(QName::new(ns, "req"))
        .required("q", AtomicType::String)
        .build();
    let output = ShapeBuilder::element(QName::new(ns, "resp"))
        .required("answer", AtomicType::String)
        .build();
    let ns_owned = ns.to_string();
    let service = Arc::new(SimulatedWebService::new(name).operation(
        "ask",
        input.clone(),
        output.clone(),
        Arc::new(move |req| {
            let q = req
                .child_elements(&QName::new(&ns_owned, "q"))
                .next()
                .map(|n| n.string_value())
                .unwrap_or_default();
            Ok(Node::element(
                QName::new(&ns_owned, "resp"),
                vec![],
                vec![Node::simple_element(
                    QName::new(&ns_owned, "answer"),
                    AtomicValue::str(&format!("answer to {q}")),
                )],
            ))
        }),
    ));
    let desc = WebServiceDescription {
        name: name.into(),
        namespace: format!("urn:{name}"),
        operations: vec![WebServiceOperation {
            name: "ask".into(),
            input,
            output,
        }],
    };
    (desc, service)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (d1, svc1) = slow_service("alpha", "urn:t");
    let (d2, svc2) = slow_service("beta", "urn:t");
    let aldsp = ServerBuilder::new()
        .web_service(&d1, svc1.clone())?
        .web_service(&d2, svc2.clone())?
        .build();
    let user = Principal::new("demo", &[]);
    const PROLOG: &str = r#"
        declare namespace a = "urn:alpha";
        declare namespace b = "urn:beta";
        declare namespace t = "urn:t";
    "#;

    // ---- fn-bea:async: overlap two slow calls (§5.4) --------------------
    svc1.set_latency(Duration::from_millis(60));
    svc2.set_latency(Duration::from_millis(60));
    let q = format!(
        r#"{PROLOG}
        <BOTH>{{
          fn-bea:async(a:ask(<t:req><t:q>alpha</t:q></t:req>)/t:answer),
          fn-bea:async(b:ask(<t:req><t:q>beta</t:q></t:req>)/t:answer)
        }}</BOTH>"#
    );
    let t0 = Instant::now();
    let out = aldsp
        .execute(QueryRequest::new(&q).principal(user.clone()))?
        .into_items();
    println!(
        "async: two 60ms services answered in {:?} (overlapped)\n  {}",
        t0.elapsed(),
        serialize_sequence(&out)
    );

    // ---- fn-bea:timeout: cap how long we wait (§5.6) --------------------
    svc1.set_latency(Duration::from_millis(500));
    let q = format!(
        r#"{PROLOG}
        <ANSWER>{{
          fn-bea:timeout(
            fn:data(a:ask(<t:req><t:q>slow</t:q></t:req>)/t:answer),
            50,
            "n/a (timed out)")
        }}</ANSWER>"#
    );
    let t0 = Instant::now();
    let out = aldsp
        .execute(QueryRequest::new(&q).principal(user.clone()))?
        .into_items();
    println!(
        "\ntimeout: capped a 500ms call at {:?}\n  {}",
        t0.elapsed(),
        serialize_sequence(&out)
    );

    // ---- fn-bea:fail-over: redundant sources (§5.6) ---------------------
    svc1.set_available(false);
    svc2.set_latency(Duration::ZERO);
    let q = format!(
        r#"{PROLOG}
        <ANSWER>{{
          fn-bea:fail-over(
            fn:data(a:ask(<t:req><t:q>primary</t:q></t:req>)/t:answer),
            fn:data(b:ask(<t:req><t:q>backup</t:q></t:req>)/t:answer))
        }}</ANSWER>"#
    );
    let out = aldsp
        .execute(QueryRequest::new(&q).principal(user.clone()))?
        .into_items();
    println!(
        "\nfail-over: primary down, alternate answered\n  {}",
        serialize_sequence(&out)
    );

    // ---- the function cache (§5.5) ---------------------------------------
    svc1.set_available(true);
    svc1.set_latency(Duration::from_millis(40));
    aldsp.enable_function_cache(QName::new("urn:alpha", "ask"), Duration::from_secs(30));
    let q = format!(r#"{PROLOG} fn:data(a:ask(<t:req><t:q>cached</t:q></t:req>)/t:answer)"#);
    let t0 = Instant::now();
    aldsp.execute(QueryRequest::new(&q).principal(user.clone()))?;
    let cold = t0.elapsed();
    let t0 = Instant::now();
    aldsp.execute(QueryRequest::new(&q).principal(user.clone()))?;
    let warm = t0.elapsed();
    println!(
        "\nfunction cache: cold call {cold:?}, cached call {warm:?} (hits={}, misses={})",
        aldsp.stats().cache_hits,
        aldsp.stats().cache_misses
    );
    Ok(())
}
