//! Updates with Service Data Objects (§6, Figure 5):
//!
//! ```java
//! PROFILEDoc sdo = ProfileDS.getProfileById("0815");
//! sdo.setLAST_NAME("Smith");
//! ProfileDS.submit(sdo);
//! ```
//!
//! This example reads a profile as a change-tracked [`DataObject`],
//! changes the last name, and submits. Lineage analysis determines that
//! only the CUSTOMER source is affected ("the other sources involved in
//! the customer profile view are unaffected and will not participate in
//! this update at all"), the generated UPDATE carries the optimistic-
//! concurrency condition in its WHERE clause, and a concurrent writer
//! triggers a conflict. It also shows an **inverse function** (§4.4)
//! making a transformed value writable: SINCE is stored as epoch seconds
//! but surfaces as `xs:dateTime`.
//!
//! ```sh
//! cargo run --example updates_sdo
//! ```

use aldsp::relational::{
    Catalog, Database, Dialect, RelationalServer, ScalarExpr, SqlType, SqlValue, TableSchema,
    Update,
};
use aldsp::security::Principal;
use aldsp::updates::ConcurrencyPolicy;
use aldsp::xdm::types::{ItemType, Occurrence, SequenceType};
use aldsp::xdm::value::{AtomicType, AtomicValue, DateTime};
use aldsp::xdm::QName;
use aldsp::{CallCriteria, ServerBuilder};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut catalog = Catalog::new();
    catalog.add(
        TableSchema::builder("CUSTOMER")
            .col("CID", SqlType::Varchar)
            .col("LAST_NAME", SqlType::Varchar)
            .col("SINCE", SqlType::Integer)
            .pk(&["CID"])
            .build()?,
    )?;
    let mut db = Database::new();
    for t in catalog.tables() {
        db.create_table(t.clone())?;
    }
    db.insert(
        "CUSTOMER",
        vec![
            SqlValue::str("0815"),
            SqlValue::str("Jones"),
            SqlValue::Int(1_118_836_205),
        ],
    )?;
    let server_db = Arc::new(RelationalServer::new("db1", Dialect::Oracle, db));

    let (int2date, date2int) = aldsp::adaptors::native::int2date_pair();
    let opt_int = SequenceType::Seq(ItemType::Atomic(AtomicType::Integer), Occurrence::Optional);
    let opt_dt = SequenceType::Seq(ItemType::Atomic(AtomicType::DateTime), Occurrence::Optional);
    let aldsp = ServerBuilder::new()
        .relational_source(server_db.clone(), &catalog, "urn:custDS")?
        .native_function(
            QName::new("urn:lib", "int2date"),
            opt_int.clone(),
            opt_dt.clone(),
            int2date,
        )?
        .native_function(QName::new("urn:lib", "date2int"), opt_dt, opt_int, date2int)?
        .inverse(
            QName::new("urn:lib", "int2date"),
            QName::new("urn:lib", "date2int"),
        )
        .build();

    // The data service whose first read function is the lineage provider.
    aldsp.deploy(
        r#"
        declare namespace c = "urn:custDS";
        declare namespace t = "urn:profileDS";
        declare function t:getProfile() as element(PROFILE)* {
          for $c in c:CUSTOMER()
          return <PROFILE>
                   <CID>{fn:data($c/CID)}</CID>
                   <LAST_NAME>{fn:data($c/LAST_NAME)}</LAST_NAME>
                   <SINCE>{lib:int2date($c/SINCE)}</SINCE>
                 </PROFILE>
        };
        declare namespace lib = "urn:lib";
        "#,
    )?;

    let provider = QName::new("urn:profileDS", "getProfile");
    let user = Principal::new("demo", &[]);

    // --- Figure 5, in Rust ------------------------------------------------
    let mut sdo = aldsp
        .read_object(&user, &provider, vec![], &CallCriteria::default())?
        .expect("customer 0815 exists");
    println!("read    : {}", sdo.current());
    sdo.set("LAST_NAME", Some(AtomicValue::str("Smith")))?;
    // the transformed SINCE is writable too, thanks to date2int (§4.4)
    sdo.set(
        "SINCE",
        Some(AtomicValue::DateTime(DateTime(1_200_000_000))),
    )?;
    let report = aldsp.submit(&user, &provider, &sdo, ConcurrencyPolicy::UpdatedValues)?;
    println!(
        "\nsubmit touched {:?}, {} row(s):",
        report.sources_touched, report.rows_affected
    );
    for (conn, sql) in &report.statements {
        println!("[{conn}]\n{sql}");
    }
    println!(
        "\nstored SINCE is now the epoch integer: {:?}",
        server_db.with_db(|d| d.table("CUSTOMER").expect("table").rows()[0][2].clone())
    );

    // --- the optimistic-conflict path --------------------------------------
    let mut stale = aldsp
        .read_object(&user, &provider, vec![], &CallCriteria::default())?
        .expect("row exists");
    // someone else changes the row between our read and our submit
    server_db.execute_dml(
        &aldsp::relational::Dml::Update(Update {
            table: "CUSTOMER".into(),
            alias: "t1".into(),
            set: vec![(
                "LAST_NAME".into(),
                ScalarExpr::lit(SqlValue::str("Intruder")),
            )],
            where_: None,
        }),
        &[],
    )?;
    stale.set("LAST_NAME", Some(AtomicValue::str("Brown")))?;
    match aldsp.submit(&user, &provider, &stale, ConcurrencyPolicy::UpdatedValues) {
        Err(e) => println!("\nconcurrent writer detected, submit rejected: {e}"),
        Ok(_) => println!("\nunexpected: submit succeeded"),
    }
    Ok(())
}
