//! The paper's running example (Figure 3): an integrated customer
//! profile composed from two relational databases and a web service.
//!
//! `getProfile()` joins CUSTOMER and ORDER (database `db1`), fetches
//! CREDIT_CARD rows from a *different* database (`db2`, reached with the
//! PP-k distributed join of §4.2), and calls the credit-rating web
//! service per customer. `getProfileByID` reuses the view — and the
//! compiler pushes the predicate all the way into db1's SQL (§4.2).
//!
//! ```sh
//! cargo run --example customer_profile
//! ```

use aldsp::adaptors::SimulatedWebService;
use aldsp::metadata::{WebServiceDescription, WebServiceOperation};
use aldsp::relational::{
    Catalog, Database, Dialect, RelationalServer, SqlType, SqlValue, TableSchema,
};
use aldsp::security::Principal;
use aldsp::xdm::item::Item;
use aldsp::xdm::schema::ShapeBuilder;
use aldsp::xdm::value::{AtomicType, AtomicValue, Decimal};
use aldsp::xdm::xml::serialize_sequence;
use aldsp::xdm::{Node, QName};
use aldsp::{QueryRequest, ServerBuilder};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- db1: CUSTOMER + ORDER (with the FK that generates the
    //      getORDER navigation function, §2.1) -------------------------
    let mut cat1 = Catalog::new();
    cat1.add(
        TableSchema::builder("CUSTOMER")
            .col("CID", SqlType::Varchar)
            .col("LAST_NAME", SqlType::Varchar)
            .col("SSN", SqlType::Varchar)
            .pk(&["CID"])
            .build()?,
    )?;
    cat1.add(
        TableSchema::builder("ORDER")
            .col("OID", SqlType::Integer)
            .col("CID", SqlType::Varchar)
            .col("AMOUNT", SqlType::Decimal)
            .pk(&["OID"])
            .fk(&["CID"], "CUSTOMER", &["CID"])
            .build()?,
    )?;
    let mut db1 = Database::new();
    for t in cat1.tables() {
        db1.create_table(t.clone())?;
    }
    for (cid, last, ssn) in [
        ("CUST001", "Jones", "111-11-1111"),
        ("CUST002", "Smith", "222-22-2222"),
        ("CUST003", "Chen", "333-33-3333"),
    ] {
        db1.insert(
            "CUSTOMER",
            vec![SqlValue::str(cid), SqlValue::str(last), SqlValue::str(ssn)],
        )?;
    }
    for (oid, cid, amount) in [
        (1, "CUST001", "99.95"),
        (2, "CUST001", "12.50"),
        (3, "CUST003", "45.00"),
    ] {
        db1.insert(
            "ORDER",
            vec![
                SqlValue::Int(oid),
                SqlValue::str(cid),
                SqlValue::Dec(Decimal::parse(amount).expect("literal")),
            ],
        )?;
    }

    // ---- db2: CREDIT_CARD (a different vendor: DB2) ---------------------
    let mut cat2 = Catalog::new();
    cat2.add(
        TableSchema::builder("CREDIT_CARD")
            .col("CCN", SqlType::Varchar)
            .col("CID", SqlType::Varchar)
            .pk(&["CCN"])
            .build()?,
    )?;
    let mut db2 = Database::new();
    for t in cat2.tables() {
        db2.create_table(t.clone())?;
    }
    for (ccn, cid) in [
        ("4000-1111", "CUST001"),
        ("4000-2222", "CUST001"),
        ("4000-3333", "CUST002"),
    ] {
        db2.insert("CREDIT_CARD", vec![SqlValue::str(ccn), SqlValue::str(cid)])?;
    }

    // ---- the credit-rating web service (Figure 3's ns4:getRating) ------
    let ws_ns = "urn:ratingTypes";
    let wsin = ShapeBuilder::element(QName::new(ws_ns, "getRating"))
        .required("lName", AtomicType::String)
        .required("ssn", AtomicType::String)
        .build();
    let wsout = ShapeBuilder::element(QName::new(ws_ns, "getRatingResponse"))
        .required("getRatingResult", AtomicType::Integer)
        .build();
    let rating = Arc::new(SimulatedWebService::new("ratingWS").operation(
        "getRating",
        wsin.clone(),
        wsout.clone(),
        Arc::new(|req| {
            let ssn = req
                .child_elements(&QName::new("urn:ratingTypes", "ssn"))
                .next()
                .map(|n| n.string_value())
                .unwrap_or_default();
            let score = 600 + (ssn.bytes().map(u64::from).sum::<u64>() % 250) as i64;
            Ok(Node::element(
                QName::new("urn:ratingTypes", "getRatingResponse"),
                vec![],
                vec![Node::simple_element(
                    QName::new("urn:ratingTypes", "getRatingResult"),
                    AtomicValue::Integer(score),
                )],
            ))
        }),
    ));

    let db1 = Arc::new(RelationalServer::new("db1", Dialect::Oracle, db1));
    let db2 = Arc::new(RelationalServer::new("db2", Dialect::Db2, db2));
    let aldsp = ServerBuilder::new()
        .relational_source(db1.clone(), &cat1, "urn:custDS")?
        .relational_source(db2.clone(), &cat2, "urn:ccDS")?
        .web_service(
            &WebServiceDescription {
                name: "ratingWS".into(),
                namespace: "urn:ratingWS".into(),
                operations: vec![WebServiceOperation {
                    name: "getRating".into(),
                    input: wsin,
                    output: wsout,
                }],
            },
            rating,
        )?
        .build();

    // ---- the Figure 3 data service --------------------------------------
    aldsp.deploy(
        r#"
        declare namespace tns = "urn:profileDS";
        declare namespace ns2 = "urn:ccDS";
        declare namespace ns3 = "urn:custDS";
        declare namespace ns4 = "urn:ratingWS";
        declare namespace ns5 = "urn:ratingTypes";

        (::pragma function kind="read" ::)
        declare function tns:getProfile() as element(PROFILE)* {
          for $CUSTOMER in ns3:CUSTOMER()
          return
            <PROFILE>
              <CID>{fn:data($CUSTOMER/CID)}</CID>
              <LAST_NAME>{fn:data($CUSTOMER/LAST_NAME)}</LAST_NAME>
              <ORDERS>{
                for $o in ns3:ORDER() where $o/CID eq $CUSTOMER/CID return $o/OID
              }</ORDERS>
              <CREDIT_CARDS>{
                for $k in ns2:CREDIT_CARD() where $k/CID eq $CUSTOMER/CID return $k/CCN
              }</CREDIT_CARDS>
              <RATING>{
                fn:data(ns4:getRating(
                  <ns5:getRating>
                    <ns5:lName>{fn:data($CUSTOMER/LAST_NAME)}</ns5:lName>
                    <ns5:ssn>{fn:data($CUSTOMER/SSN)}</ns5:ssn>
                  </ns5:getRating>)/ns5:getRatingResult)
              }</RATING>
            </PROFILE>
        };

        (::pragma function kind="read" ::)
        declare function tns:getProfileByID($id as xs:string) as element(PROFILE)* {
          tns:getProfile()[CID eq $id]
        };
        "#,
    )?;

    let user = Principal::new("demo", &[]);
    let profiles = aldsp
        .execute(
            QueryRequest::call(QName::new("urn:profileDS", "getProfile")).principal(user.clone()),
        )?
        .into_items();
    println!("== getProfile() ==");
    for p in &profiles {
        println!("{}", serialize_sequence(std::slice::from_ref(p)));
    }

    // The view-reuse case: the $id predicate travels through getProfile
    // and lands in db1's SQL.
    let mark = db1.stats().statements.len();
    let one = aldsp
        .execute(
            QueryRequest::call(QName::new("urn:profileDS", "getProfileByID"))
                .args(vec![vec![Item::str("CUST001")]])
                .principal(user.clone()),
        )?
        .into_items();
    println!("\n== getProfileByID(\"CUST001\") ==");
    println!("{}", serialize_sequence(&one));

    println!("\nSQL sent to db1 for getProfileByID (note the pushed parameter):");
    for sql in &db1.stats().statements[mark..] {
        println!("---\n{sql}");
    }
    println!("\nPP-k statements sent to db2 (one disjunctive fetch per block of 20):");
    for sql in db2.stats().statements {
        println!("---\n{sql}");
    }
    Ok(())
}
