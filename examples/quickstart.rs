//! Quickstart: register a relational source, deploy a data service,
//! run queries.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use aldsp::relational::{
    Catalog, Database, Dialect, RelationalServer, SqlType, SqlValue, TableSchema,
};
use aldsp::security::Principal;
use aldsp::xdm::xml::serialize_sequence;
use aldsp::{QueryRequest, ServerBuilder, TraceLevel};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A relational source: one CUSTOMER table with a few rows.
    let mut catalog = Catalog::new();
    catalog.add(
        TableSchema::builder("CUSTOMER")
            .col("CID", SqlType::Varchar)
            .col("LAST_NAME", SqlType::Varchar)
            .col_null("FIRST_NAME", SqlType::Varchar)
            .pk(&["CID"])
            .build()?,
    )?;
    let mut db = Database::new();
    for t in catalog.tables() {
        db.create_table(t.clone())?;
    }
    for (cid, last, first) in [
        ("C1", "Jones", Some("Ann")),
        ("C2", "Smith", None),
        ("C3", "Jones", Some("Bob")),
    ] {
        db.insert(
            "CUSTOMER",
            vec![
                SqlValue::str(cid),
                SqlValue::str(last),
                first.map(SqlValue::str).unwrap_or(SqlValue::Null),
            ],
        )?;
    }
    let server_db = Arc::new(RelationalServer::new("db1", Dialect::Oracle, db));

    // 2. Build the ALDSP server. Introspection turns the catalog into a
    //    physical data service: c:CUSTOMER() surfaces the table as typed
    //    XML (§2.1 of the paper).
    let aldsp = ServerBuilder::new()
        .relational_source(server_db.clone(), &catalog, "urn:custDS")?
        .build();

    // 3. Deploy a logical data service on top (an XQuery view).
    aldsp.deploy(
        r#"
        declare namespace c = "urn:custDS";
        declare namespace t = "urn:quickstart";
        declare function t:customersByName($name as xs:string) as element(CUSTOMER)* {
          for $c in c:CUSTOMER()
          where $c/LAST_NAME eq $name
          return $c
        };
        "#,
    )?;

    // 4. Run an ad-hoc query with per-operator tracing. The WHERE
    //    clause is pushed into SQL — the EXPLAIN in the response shows
    //    the generated statement, and the trace shows per-operator row
    //    counts for this exact execution.
    let anyone = Principal::new("demo", &[]);
    let resp = aldsp.execute(
        QueryRequest::new(
            r#"declare namespace c = "urn:custDS";
               for $c in c:CUSTOMER()
               where $c/CID eq "C1"
               return $c/FIRST_NAME"#,
        )
        .principal(anyone.clone())
        .trace(TraceLevel::Operators),
    )?;
    println!("ad-hoc query result : {}", serialize_sequence(resp.items()));
    println!("\nplan EXPLAIN:\n{}", resp.plan_explain().unwrap_or(""));
    println!(
        "operator trace:\n{}",
        resp.trace().map(|t| t.render()).unwrap_or_default()
    );

    // 5. Call the deployed data-service method with a parameter.
    let jones = aldsp
        .execute(
            QueryRequest::call(aldsp::xdm::QName::new("urn:quickstart", "customersByName"))
                .args(vec![vec![aldsp::xdm::item::Item::str("Jones")]])
                .principal(anyone.clone()),
        )?
        .into_items();
    println!("customersByName     : {}", serialize_sequence(&jones));

    // 6. Look at what actually reached the backend.
    println!("\nSQL sent to the (simulated) Oracle backend:");
    for sql in server_db.stats().statements {
        println!("---\n{sql}");
    }
    Ok(())
}
