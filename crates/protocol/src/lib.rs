//! # aldsp-protocol — the `aldspd` wire protocol
//!
//! A deliberately small length-prefixed binary protocol between
//! `aldsp-client` and the `aldspd` network server. The paper's ALDSP is
//! a *server*: clients connect, authenticate, and run queries whose
//! cached plans stay user-independent because element-level security is
//! applied post-cache (§7) — so the protocol carries a principal once
//! per connection (the handshake) and query text / plan handles per
//! request, never per-user plans.
//!
//! ## Frame layout
//!
//! ```text
//! +----------------+-----------+------------------+
//! | len: u32 (BE)  | kind: u8  | payload: len-1 B |
//! +----------------+-----------+------------------+
//! ```
//!
//! `len` counts the kind byte plus the payload and is bounded by
//! [`MAX_FRAME_LEN`]; a longer announcement is rejected *before* any
//! allocation ([`WireError::Oversized`]). EOF on a frame boundary is a
//! clean close (`Ok(None)`); EOF inside a frame is
//! [`WireError::Truncated`].
//!
//! Integers are big-endian. Strings are `u32` byte length + UTF-8
//! bytes, validated on decode. Every decoder checks its bounds and a
//! message must consume its payload exactly — trailing bytes are
//! malformed, so a frame can never smuggle a second message.
//!
//! ## Conversation
//!
//! ```text
//! client                              server
//!   Hello{version, principal, …}  ->
//!                                 <-  HelloAck          (or Error + close)
//!   Prepare{source}               ->
//!                                 <-  Prepared{handle, shared}
//!   Execute{source, options}      ->
//!   ExecutePrepared{handle, opts} ->
//!                                 <-  Item* then Done   (streamed)
//!                                 <-  Item* then Error  (typed mid-stream)
//!   CloseHandle{handle}           ->
//!                                 <-  HandleClosed
//!   Goodbye                       ->
//!                                 <-  Bye + close
//! ```
//!
//! Result items stream one [`ServerMsg::Item`] frame each, carrying the
//! item's individual serialization plus an `atomic` flag; the client
//! rejoins them under the XQuery rule (a single space between adjacent
//! atomics) so the reassembled text is byte-identical to a server-side
//! [`serialize_sequence`] of the whole result — the property the
//! differential `wire` cell pins.
//!
//! [`serialize_sequence`]: https://www.w3.org/TR/xslt-xquery-serialization/

use std::io::{Read, Write};

/// Protocol version spoken by this build. A [`ClientMsg::Hello`]
/// carrying any other value is answered with a
/// [`code::VERSION_MISMATCH`] error frame and the connection is closed.
pub const PROTOCOL_VERSION: u16 = 1;

/// Upper bound on `len` (kind byte + payload). Announcing more is
/// rejected before allocating — a 4-byte header must not be able to
/// reserve gigabytes.
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// Upper bound on roles in a handshake (sanity bound, not a feature).
pub const MAX_ROLES: usize = 64;

/// Typed wire error codes carried by [`ServerMsg::Error`] frames.
///
/// The server maps its internal error taxonomy onto these so clients
/// can branch (retry on [`code::OVERLOADED`], surface
/// [`code::DEADLINE`], fail fast on [`code::COMPILE`]) without parsing
/// message strings.
pub mod code {
    /// Handshake version differs from [`super::PROTOCOL_VERSION`].
    pub const VERSION_MISMATCH: u16 = 1;
    /// Unparseable or protocol-violating frame; the connection closes.
    pub const MALFORMED: u16 = 2;
    /// Handshake token rejected.
    pub const AUTH: u16 = 3;
    /// Query compilation failed.
    pub const COMPILE: u16 = 4;
    /// Function-level access denied for the session principal.
    pub const SECURITY: u16 = 5;
    /// Shed by admission control — the governor refused at the socket.
    pub const OVERLOADED: u16 = 6;
    /// Per-query deadline elapsed (possibly mid-stream).
    pub const DEADLINE: u16 = 7;
    /// Per-query memory budget exceeded by a blocking operator.
    pub const BUDGET: u16 = 8;
    /// Runtime execution error (source failure, type error, …).
    pub const EXECUTE: u16 = 9;
    /// `ExecutePrepared`/`CloseHandle` named a handle this server does
    /// not hold; the connection stays usable.
    pub const UNKNOWN_HANDLE: u16 = 10;
    /// A structurally valid message arrived in the wrong state (e.g.
    /// anything before `Hello`).
    pub const UNSUPPORTED: u16 = 11;
    /// Anything else server-side.
    pub const INTERNAL: u16 = 12;

    /// Stable mnemonic for a code (for logs and error displays).
    pub fn name(c: u16) -> &'static str {
        match c {
            VERSION_MISMATCH => "version-mismatch",
            MALFORMED => "malformed",
            AUTH => "auth",
            COMPILE => "compile",
            SECURITY => "security",
            OVERLOADED => "overloaded",
            DEADLINE => "deadline",
            BUDGET => "budget",
            EXECUTE => "execute",
            UNKNOWN_HANDLE => "unknown-handle",
            UNSUPPORTED => "unsupported",
            INTERNAL => "internal",
            _ => "unknown",
        }
    }
}

/// Wire values for [`WireExec::pushdown`].
pub mod pushdown {
    /// No SQL pushdown — everything interpreted in the middleware.
    pub const OFF: u8 = 0;
    /// Joins only.
    pub const JOINS: u8 = 1;
    /// Full pushdown (server default).
    pub const FULL: u8 = 2;
}

/// Wire values for [`WireExec::join_strategy`].
pub mod join {
    /// Cost-based selection (server default).
    pub const AUTO: u8 = 0;
    /// Force per-tuple nested loop.
    pub const NESTED_LOOP: u8 = 1;
    /// Force index nested loop.
    pub const INDEX_NL: u8 = 2;
    /// Force symmetric hash join.
    pub const HASH: u8 = 3;
    /// Force local sort-merge.
    pub const MERGE: u8 = 4;
}

/// Framing / decoding failures.
#[derive(Debug)]
pub enum WireError {
    /// Underlying transport error.
    Io(std::io::Error),
    /// The peer closed the connection inside a frame.
    Truncated,
    /// A frame announced more than [`MAX_FRAME_LEN`] bytes.
    Oversized {
        /// The announced length.
        len: u32,
    },
    /// A frame or payload violated the protocol grammar.
    Malformed(&'static str),
    /// A frame kind this side does not understand.
    UnknownFrame(u8),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "transport error: {e}"),
            WireError::Truncated => write!(f, "connection closed mid-frame"),
            WireError::Oversized { len } => {
                write!(
                    f,
                    "frame of {len} bytes exceeds the {MAX_FRAME_LEN}-byte cap"
                )
            }
            WireError::Malformed(what) => write!(f, "malformed frame: {what}"),
            WireError::UnknownFrame(k) => write!(f, "unknown frame kind 0x{k:02x}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// Per-request workload terms, all expressible on the wire so the
/// governor sheds *at the socket*: deadline, priority class, memory
/// budget, and an optional full [`WireExec`] override.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WireOptions {
    /// Per-query deadline in milliseconds; `0` = none.
    pub deadline_ms: u64,
    /// `true` queues as batch (interactive queues ahead of batch).
    pub batch: bool,
    /// Memory budget in bytes for blocking operators; `0` = none.
    pub memory_budget: u64,
    /// Optional execution-options override (the whole set at once,
    /// mirroring `QueryRequest::execution`).
    pub exec: Option<WireExec>,
}

/// The wire form of the server's `ExecutionOptions`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireExec {
    /// Worker threads (`0` = one per CPU, `1` = sequential).
    pub workers: u32,
    /// Scan rows per morsel.
    pub morsel_size: u32,
    /// PP-k prefetch depth.
    pub ppk_prefetch_depth: u32,
    /// One of the [`pushdown`] constants.
    pub pushdown: u8,
    /// One of the [`join`] constants.
    pub join_strategy: u8,
}

impl Default for WireExec {
    fn default() -> WireExec {
        WireExec {
            workers: 1,
            morsel_size: 1024,
            ppk_prefetch_depth: 1,
            pushdown: pushdown::FULL,
            join_strategy: join::AUTO,
        }
    }
}

/// Client → server messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientMsg {
    /// The handshake: protocol version plus the session's security
    /// principal (name + roles) and an optional authentication token.
    /// Must be the first frame on a connection.
    Hello {
        /// Protocol version the client speaks.
        version: u16,
        /// Principal name for the whole session.
        principal: String,
        /// Roles granted to the principal.
        roles: Vec<String>,
        /// Shared-secret token; empty when the server requires none.
        token: String,
    },
    /// Compile `source` and return a server-side plan handle, shared
    /// across sessions preparing the same text.
    Prepare {
        /// Ad-hoc XQuery source text.
        source: String,
    },
    /// One-shot: compile (or hit the plan cache) and execute.
    Execute {
        /// Ad-hoc XQuery source text.
        source: String,
        /// Workload terms for this request.
        options: WireOptions,
    },
    /// Execute a previously prepared plan handle.
    ExecutePrepared {
        /// Handle from a [`ServerMsg::Prepared`] reply.
        handle: u64,
        /// Workload terms for this request.
        options: WireOptions,
    },
    /// Release this session's reference on a plan handle.
    CloseHandle {
        /// Handle to release.
        handle: u64,
    },
    /// Orderly end of session.
    Goodbye,
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerMsg {
    /// Handshake accepted.
    HelloAck {
        /// Protocol version the server speaks.
        version: u16,
    },
    /// A [`ClientMsg::Prepare`] succeeded.
    Prepared {
        /// The plan handle.
        handle: u64,
        /// `true` when the handle already existed (created by this or
        /// another session) — the cross-session sharing signal.
        shared: bool,
    },
    /// One result item.
    Item {
        /// Is the item atomic? Adjacent atomics rejoin with a space.
        atomic: bool,
        /// The item's individual serialization.
        text: String,
    },
    /// Successful end of a result stream.
    Done {
        /// Items delivered (after element-level security filtering).
        delivered: u64,
    },
    /// Typed failure — possibly mid-stream, after some [`Self::Item`]s.
    Error {
        /// One of the [`code`] constants.
        code: u16,
        /// Human-readable rendering of the underlying error.
        message: String,
    },
    /// A [`ClientMsg::CloseHandle`] was processed.
    HandleClosed {
        /// `false` when the session did not hold the handle.
        released: bool,
    },
    /// Orderly close acknowledgement; the server closes after sending.
    Bye,
}

// ---- frame kinds ------------------------------------------------------------

const K_HELLO: u8 = 0x01;
const K_PREPARE: u8 = 0x02;
const K_EXECUTE: u8 = 0x03;
const K_EXECUTE_PREPARED: u8 = 0x04;
const K_CLOSE_HANDLE: u8 = 0x05;
const K_GOODBYE: u8 = 0x06;

const K_HELLO_ACK: u8 = 0x81;
const K_PREPARED: u8 = 0x82;
const K_ITEM: u8 = 0x83;
const K_DONE: u8 = 0x84;
const K_ERROR: u8 = 0x85;
const K_HANDLE_CLOSED: u8 = 0x86;
const K_BYE: u8 = 0x87;

// ---- primitive encoding -----------------------------------------------------

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    // the `as u32` cast cannot corrupt framing: any string long enough
    // to truncate (> 4 GiB) also pushes the frame past MAX_FRAME_LEN,
    // so write_frame refuses to emit it
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn put_options(buf: &mut Vec<u8>, o: &WireOptions) {
    put_u64(buf, o.deadline_ms);
    buf.push(o.batch as u8);
    put_u64(buf, o.memory_budget);
    match &o.exec {
        None => buf.push(0),
        Some(e) => {
            buf.push(1);
            put_u32(buf, e.workers);
            put_u32(buf, e.morsel_size);
            put_u32(buf, e.ppk_prefetch_depth);
            buf.push(e.pushdown);
            buf.push(e.join_strategy);
        }
    }
}

/// Bounds-checked payload reader: every decode step validates against
/// the remaining buffer, so corrupt length fields surface as
/// [`WireError::Malformed`] instead of panics or giant allocations.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(WireError::Malformed("payload shorter than declared field"))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Malformed("boolean byte not 0 or 1")),
        }
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| WireError::Malformed("string field is not UTF-8"))
    }

    fn options(&mut self) -> Result<WireOptions, WireError> {
        let deadline_ms = self.u64()?;
        let batch = self.bool()?;
        let memory_budget = self.u64()?;
        let exec = match self.u8()? {
            0 => None,
            1 => Some(WireExec {
                workers: self.u32()?,
                morsel_size: self.u32()?,
                ppk_prefetch_depth: self.u32()?,
                pushdown: self.u8()?,
                join_strategy: self.u8()?,
            }),
            _ => return Err(WireError::Malformed("exec-present byte not 0 or 1")),
        };
        Ok(WireOptions {
            deadline_ms,
            batch,
            memory_budget,
            exec,
        })
    }

    /// A message must consume its payload exactly.
    fn finish(self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::Malformed("trailing bytes after message"))
        }
    }
}

// ---- framing ----------------------------------------------------------------

/// Write one frame: `u32` length, kind byte, payload. The encoded
/// length is validated against [`MAX_FRAME_LEN`] *at the sender*: a
/// frame the peer is guaranteed to reject as oversized (or, past
/// `u32::MAX`, one whose length field would silently truncate and
/// corrupt the framing) fails here with
/// [`std::io::ErrorKind::InvalidData`] instead of on the wire.
pub fn write_frame(w: &mut impl Write, kind: u8, payload: &[u8]) -> std::io::Result<()> {
    let len = payload.len() as u64 + 1;
    if len > MAX_FRAME_LEN as u64 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME_LEN}-byte cap"),
        ));
    }
    w.write_all(&(len as u32).to_be_bytes())?;
    w.write_all(&[kind])?;
    w.write_all(payload)
}

/// Read one raw frame from a *blocking* stream. `Ok(None)` is a clean
/// close (EOF before any header byte); EOF anywhere later is
/// [`WireError::Truncated`]. The announced length is validated against
/// [`MAX_FRAME_LEN`] *before* any allocation.
///
/// Every call starts from a frame boundary, so an [`WireError::Io`]
/// failure mid-frame loses the consumed prefix — correct only when
/// `Io` is fatal to the connection. A socket with a read timeout must
/// use a [`FrameReader`] instead.
pub fn read_frame(r: &mut impl Read) -> Result<Option<(u8, Vec<u8>)>, WireError> {
    FrameReader::new().read_frame(r)
}

/// Resumable frame reader for polling sockets.
///
/// A socket with a read *timeout* (the server polls its shutdown flag
/// this way) can time out after part of a frame has already been
/// consumed; restarting [`read_frame`] from scratch would discard
/// those bytes and desync the stream — later bytes would be misparsed
/// as a different message or rejected as malformed. `FrameReader`
/// keeps the partial header/body buffered across [`WireError::Io`]
/// failures, so the next call resumes exactly where the timeout hit.
#[derive(Default)]
pub struct FrameReader {
    header: [u8; 4],
    header_filled: usize,
    /// Allocated once the header is complete and length-validated.
    body: Option<Vec<u8>>,
    body_filled: usize,
}

impl FrameReader {
    /// A reader positioned at a frame boundary.
    pub fn new() -> FrameReader {
        FrameReader::default()
    }

    /// Read one raw frame, resuming any partial read left behind by a
    /// prior `Io` error. Semantics otherwise match [`read_frame`]:
    /// `Ok(None)` is a clean close on a frame boundary, EOF inside a
    /// frame is [`WireError::Truncated`], and the announced length is
    /// validated against [`MAX_FRAME_LEN`] *before* any allocation.
    pub fn read_frame(&mut self, r: &mut impl Read) -> Result<Option<(u8, Vec<u8>)>, WireError> {
        while self.body.is_none() {
            match r.read(&mut self.header[self.header_filled..])? {
                0 if self.header_filled == 0 => return Ok(None),
                0 => return Err(WireError::Truncated),
                n => self.header_filled += n,
            }
            if self.header_filled == 4 {
                let len = u32::from_be_bytes(self.header);
                if len == 0 {
                    return Err(WireError::Malformed("zero-length frame"));
                }
                if len > MAX_FRAME_LEN {
                    return Err(WireError::Oversized { len });
                }
                self.body = Some(vec![0u8; len as usize]);
                self.body_filled = 0;
            }
        }
        let body = self.body.as_mut().expect("body allocated above");
        while self.body_filled < body.len() {
            match r.read(&mut body[self.body_filled..])? {
                0 => return Err(WireError::Truncated),
                n => self.body_filled += n,
            }
        }
        let mut body = self.body.take().expect("body allocated above");
        self.header_filled = 0;
        self.body_filled = 0;
        let kind = body[0];
        body.remove(0);
        Ok(Some((kind, body)))
    }

    /// Read one client message through the resumable reader;
    /// `Ok(None)` is a clean close.
    pub fn read_client(&mut self, r: &mut impl Read) -> Result<Option<ClientMsg>, WireError> {
        match self.read_frame(r)? {
            None => Ok(None),
            Some((kind, payload)) => Ok(Some(ClientMsg::decode(kind, &payload)?)),
        }
    }
}

// ---- message encode/decode --------------------------------------------------

impl ClientMsg {
    /// Serialize to `(kind, payload)`.
    pub fn encode(&self) -> (u8, Vec<u8>) {
        let mut buf = Vec::new();
        match self {
            ClientMsg::Hello {
                version,
                principal,
                roles,
                token,
            } => {
                put_u16(&mut buf, *version);
                put_str(&mut buf, principal);
                put_u16(&mut buf, roles.len() as u16);
                for r in roles {
                    put_str(&mut buf, r);
                }
                put_str(&mut buf, token);
                (K_HELLO, buf)
            }
            ClientMsg::Prepare { source } => {
                put_str(&mut buf, source);
                (K_PREPARE, buf)
            }
            ClientMsg::Execute { source, options } => {
                put_str(&mut buf, source);
                put_options(&mut buf, options);
                (K_EXECUTE, buf)
            }
            ClientMsg::ExecutePrepared { handle, options } => {
                put_u64(&mut buf, *handle);
                put_options(&mut buf, options);
                (K_EXECUTE_PREPARED, buf)
            }
            ClientMsg::CloseHandle { handle } => {
                put_u64(&mut buf, *handle);
                (K_CLOSE_HANDLE, buf)
            }
            ClientMsg::Goodbye => (K_GOODBYE, buf),
        }
    }

    /// Decode from a raw frame.
    pub fn decode(kind: u8, payload: &[u8]) -> Result<ClientMsg, WireError> {
        let mut r = Reader::new(payload);
        let msg = match kind {
            K_HELLO => {
                let version = r.u16()?;
                let principal = r.str()?;
                let n = r.u16()? as usize;
                if n > MAX_ROLES {
                    return Err(WireError::Malformed("too many roles in handshake"));
                }
                let mut roles = Vec::with_capacity(n);
                for _ in 0..n {
                    roles.push(r.str()?);
                }
                let token = r.str()?;
                ClientMsg::Hello {
                    version,
                    principal,
                    roles,
                    token,
                }
            }
            K_PREPARE => ClientMsg::Prepare { source: r.str()? },
            K_EXECUTE => ClientMsg::Execute {
                source: r.str()?,
                options: r.options()?,
            },
            K_EXECUTE_PREPARED => ClientMsg::ExecutePrepared {
                handle: r.u64()?,
                options: r.options()?,
            },
            K_CLOSE_HANDLE => ClientMsg::CloseHandle { handle: r.u64()? },
            K_GOODBYE => ClientMsg::Goodbye,
            other => return Err(WireError::UnknownFrame(other)),
        };
        r.finish()?;
        Ok(msg)
    }

    /// Write as one frame. A [`ClientMsg::Hello`] carrying more than
    /// [`MAX_ROLES`] roles fails here with
    /// [`std::io::ErrorKind::InvalidInput`] — the server would reject
    /// it as malformed anyway (and past `u16::MAX` roles the count
    /// field would silently truncate and desync the payload), so
    /// misuse fails locally with a clear error instead.
    pub fn write(&self, w: &mut impl Write) -> std::io::Result<()> {
        if let ClientMsg::Hello { roles, .. } = self {
            if roles.len() > MAX_ROLES {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    format!(
                        "{} roles exceeds the {MAX_ROLES}-role handshake cap",
                        roles.len()
                    ),
                ));
            }
        }
        let (kind, payload) = self.encode();
        write_frame(w, kind, &payload)
    }

    /// Read one client message; `Ok(None)` is a clean close.
    pub fn read(r: &mut impl Read) -> Result<Option<ClientMsg>, WireError> {
        match read_frame(r)? {
            None => Ok(None),
            Some((kind, payload)) => Ok(Some(ClientMsg::decode(kind, &payload)?)),
        }
    }
}

impl ServerMsg {
    /// Serialize to `(kind, payload)`.
    pub fn encode(&self) -> (u8, Vec<u8>) {
        let mut buf = Vec::new();
        match self {
            ServerMsg::HelloAck { version } => {
                put_u16(&mut buf, *version);
                (K_HELLO_ACK, buf)
            }
            ServerMsg::Prepared { handle, shared } => {
                put_u64(&mut buf, *handle);
                buf.push(*shared as u8);
                (K_PREPARED, buf)
            }
            ServerMsg::Item { atomic, text } => {
                buf.push(*atomic as u8);
                put_str(&mut buf, text);
                (K_ITEM, buf)
            }
            ServerMsg::Done { delivered } => {
                put_u64(&mut buf, *delivered);
                (K_DONE, buf)
            }
            ServerMsg::Error { code, message } => {
                put_u16(&mut buf, *code);
                put_str(&mut buf, message);
                (K_ERROR, buf)
            }
            ServerMsg::HandleClosed { released } => {
                buf.push(*released as u8);
                (K_HANDLE_CLOSED, buf)
            }
            ServerMsg::Bye => (K_BYE, buf),
        }
    }

    /// Decode from a raw frame.
    pub fn decode(kind: u8, payload: &[u8]) -> Result<ServerMsg, WireError> {
        let mut r = Reader::new(payload);
        let msg = match kind {
            K_HELLO_ACK => ServerMsg::HelloAck { version: r.u16()? },
            K_PREPARED => ServerMsg::Prepared {
                handle: r.u64()?,
                shared: r.bool()?,
            },
            K_ITEM => ServerMsg::Item {
                atomic: r.bool()?,
                text: r.str()?,
            },
            K_DONE => ServerMsg::Done {
                delivered: r.u64()?,
            },
            K_ERROR => ServerMsg::Error {
                code: r.u16()?,
                message: r.str()?,
            },
            K_HANDLE_CLOSED => ServerMsg::HandleClosed {
                released: r.bool()?,
            },
            K_BYE => ServerMsg::Bye,
            other => return Err(WireError::UnknownFrame(other)),
        };
        r.finish()?;
        Ok(msg)
    }

    /// Write as one frame.
    pub fn write(&self, w: &mut impl Write) -> std::io::Result<()> {
        let (kind, payload) = self.encode();
        write_frame(w, kind, &payload)
    }

    /// Read one server message; `Ok(None)` is a clean close.
    pub fn read(r: &mut impl Read) -> Result<Option<ServerMsg>, WireError> {
        match read_frame(r)? {
            None => Ok(None),
            Some((kind, payload)) => Ok(Some(ServerMsg::decode(kind, &payload)?)),
        }
    }
}

/// Rejoin per-item frames into the full serialization: a single space
/// between adjacent atomics, nothing otherwise — the exact rule the
/// server's `serialize_sequence` applies, so the reassembly is
/// byte-identical to a server-side serialization of the whole result.
pub fn join_items<'a>(items: impl IntoIterator<Item = (bool, &'a str)>) -> String {
    let mut out = String::new();
    let mut prev_atomic = false;
    for (atomic, text) in items {
        if atomic && prev_atomic {
            out.push(' ');
        }
        out.push_str(text);
        prev_atomic = atomic;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_client(msg: ClientMsg) {
        let mut buf = Vec::new();
        msg.write(&mut buf).unwrap();
        let got = ClientMsg::read(&mut buf.as_slice()).unwrap().unwrap();
        assert_eq!(got, msg);
    }

    fn roundtrip_server(msg: ServerMsg) {
        let mut buf = Vec::new();
        msg.write(&mut buf).unwrap();
        let got = ServerMsg::read(&mut buf.as_slice()).unwrap().unwrap();
        assert_eq!(got, msg);
    }

    #[test]
    fn every_message_roundtrips() {
        roundtrip_client(ClientMsg::Hello {
            version: PROTOCOL_VERSION,
            principal: "alice".into(),
            roles: vec!["admin".into(), "csr".into()],
            token: "s3cret".into(),
        });
        roundtrip_client(ClientMsg::Prepare {
            source: "for $i in (1,2) return $i".into(),
        });
        roundtrip_client(ClientMsg::Execute {
            source: "1 + 1".into(),
            options: WireOptions {
                deadline_ms: 250,
                batch: true,
                memory_budget: 1 << 20,
                exec: Some(WireExec {
                    workers: 4,
                    morsel_size: 2,
                    ppk_prefetch_depth: 0,
                    pushdown: pushdown::JOINS,
                    join_strategy: join::HASH,
                }),
            },
        });
        roundtrip_client(ClientMsg::ExecutePrepared {
            handle: 7,
            options: WireOptions::default(),
        });
        roundtrip_client(ClientMsg::CloseHandle { handle: 7 });
        roundtrip_client(ClientMsg::Goodbye);
        roundtrip_server(ServerMsg::HelloAck {
            version: PROTOCOL_VERSION,
        });
        roundtrip_server(ServerMsg::Prepared {
            handle: 42,
            shared: true,
        });
        roundtrip_server(ServerMsg::Item {
            atomic: false,
            text: "<P><CID>C0001</CID></P>".into(),
        });
        roundtrip_server(ServerMsg::Done { delivered: 12 });
        roundtrip_server(ServerMsg::Error {
            code: code::DEADLINE,
            message: "deadline of 250ms exceeded".into(),
        });
        roundtrip_server(ServerMsg::HandleClosed { released: false });
        roundtrip_server(ServerMsg::Bye);
    }

    #[test]
    fn clean_eof_is_none_but_mid_frame_eof_is_truncated() {
        let empty: &[u8] = &[];
        assert!(ClientMsg::read(&mut &*empty).unwrap().is_none());
        let mut buf = Vec::new();
        ClientMsg::Goodbye.write(&mut buf).unwrap();
        for cut in 1..buf.len() {
            let err = ClientMsg::read(&mut &buf[..cut]).unwrap_err();
            assert!(matches!(err, WireError::Truncated), "cut at {cut}: {err:?}");
        }
    }

    /// Yields one byte per read and a `WouldBlock` error between every
    /// byte — the worst-case model of a polling socket whose 50ms read
    /// timeout keeps firing mid-frame.
    struct Trickle<'a> {
        data: &'a [u8],
        pos: usize,
        ready: bool,
    }

    impl Read for Trickle<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if !self.ready {
                self.ready = true;
                return Err(std::io::ErrorKind::WouldBlock.into());
            }
            self.ready = false;
            if self.pos == self.data.len() {
                return Ok(0);
            }
            buf[0] = self.data[self.pos];
            self.pos += 1;
            Ok(1)
        }
    }

    #[test]
    fn frame_reader_resumes_across_timeouts_without_desyncing() {
        // two back-to-back messages so a lost prefix in the first
        // would misparse or corrupt the second
        let first = ClientMsg::Prepare {
            source: "for $i in (1,2,3) return $i * $i".into(),
        };
        let second = ClientMsg::CloseHandle { handle: 7 };
        let mut wire = Vec::new();
        first.write(&mut wire).unwrap();
        second.write(&mut wire).unwrap();
        let mut trickle = Trickle {
            data: &wire,
            pos: 0,
            ready: false,
        };
        let mut frames = FrameReader::new();
        let mut got = Vec::new();
        loop {
            match frames.read_client(&mut trickle) {
                Ok(None) => break,
                Ok(Some(m)) => got.push(m),
                Err(WireError::Io(e)) if e.kind() == std::io::ErrorKind::WouldBlock => continue,
                Err(e) => panic!("stream desynced: {e:?}"),
            }
        }
        assert_eq!(got, vec![first, second]);
    }

    #[test]
    fn write_frame_refuses_frames_the_peer_would_reject() {
        let payload = vec![0u8; MAX_FRAME_LEN as usize]; // +1 kind byte puts it over
        let mut out = Vec::new();
        let err = write_frame(&mut out, K_ITEM, &payload).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(out.is_empty(), "no partial frame may reach the wire");
        // exactly at the cap is fine
        let payload = vec![0u8; MAX_FRAME_LEN as usize - 1];
        write_frame(&mut out, K_ITEM, &payload).unwrap();
    }

    #[test]
    fn hello_with_too_many_roles_fails_at_encode_time() {
        let msg = ClientMsg::Hello {
            version: PROTOCOL_VERSION,
            principal: "alice".into(),
            roles: (0..=MAX_ROLES).map(|i| format!("r{i}")).collect(),
            token: String::new(),
        };
        let mut out = Vec::new();
        let err = msg.write(&mut out).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
        assert!(out.is_empty());
    }

    #[test]
    fn oversized_frame_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME_LEN + 1).to_be_bytes());
        buf.push(K_GOODBYE);
        let err = ClientMsg::read(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, WireError::Oversized { .. }), "{err:?}");
    }

    #[test]
    fn corrupt_payloads_are_malformed_not_panics() {
        // string length pointing past the payload
        let mut payload = Vec::new();
        put_u32(&mut payload, 10_000);
        payload.extend_from_slice(b"short");
        let err = ClientMsg::decode(K_PREPARE, &payload).unwrap_err();
        assert!(matches!(err, WireError::Malformed(_)), "{err:?}");
        // trailing garbage after a complete message
        let (kind, mut payload) = ClientMsg::Goodbye.encode();
        payload.push(0xFF);
        let err = ClientMsg::decode(kind, &payload).unwrap_err();
        assert!(matches!(err, WireError::Malformed(_)), "{err:?}");
        // invalid UTF-8 in a string field
        let mut payload = Vec::new();
        put_u32(&mut payload, 2);
        payload.extend_from_slice(&[0xC3, 0x28]);
        let err = ClientMsg::decode(K_PREPARE, &payload).unwrap_err();
        assert!(matches!(err, WireError::Malformed(_)), "{err:?}");
        // unknown frame kind
        let err = ClientMsg::decode(0x7F, &[]).unwrap_err();
        assert!(matches!(err, WireError::UnknownFrame(0x7F)), "{err:?}");
    }

    #[test]
    fn join_items_matches_xquery_atomic_separation() {
        assert_eq!(
            join_items([(true, "1"), (true, "2"), (false, "<a/>"), (true, "3")]),
            "1 2<a/>3"
        );
        assert_eq!(join_items([]), "");
        assert_eq!(join_items([(false, "<a/>"), (false, "<b/>")]), "<a/><b/>");
    }
}
