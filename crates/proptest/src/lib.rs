//! Offline shim for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! reimplements the slice of proptest the workspace's property tests
//! use: the [`Strategy`] trait with `prop_map`/`prop_recursive`, range
//! and character-class string strategies, `prop::collection::vec`,
//! tuple strategies, the [`proptest!`] macro, and
//! `prop_assert!`/`prop_assert_eq!`. No shrinking: a failing case
//! panics with the assertion message (inputs are reproducible — the
//! per-test RNG stream is seeded from the test's module path).

use rand::{RngCore, SampleUniform, SeedableRng, StdRng};
use std::ops::Range;
use std::sync::Arc;

/// The RNG handed to strategies.
pub struct TestRng(StdRng);

impl TestRng {
    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// A uniform sample from `low..high`.
    pub fn range<T: SampleUniform>(&mut self, r: Range<T>) -> T {
        T::sample_range(&mut self.0, r)
    }
}

/// Construct the deterministic RNG for one test case (macro plumbing).
pub fn test_rng(test_seed: u64, case: u64) -> TestRng {
    TestRng(StdRng::seed_from_u64(
        test_seed ^ case.wrapping_mul(0x9E3779B97F4A7C15),
    ))
}

/// FNV-1a over a string — a stable per-test seed (macro plumbing).
pub const fn fnv1a(s: &str) -> u64 {
    let bytes = s.as_bytes();
    let mut hash = 0xcbf29ce484222325u64;
    let mut i = 0;
    while i < bytes.len() {
        hash ^= bytes[i] as u64;
        hash = hash.wrapping_mul(0x100000001b3);
        i += 1;
    }
    hash
}

/// Test-runner configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

// ---- the Strategy trait -------------------------------------------------------

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Build a recursive strategy: `f` receives the strategy for the
    /// previous depth level and returns the strategy for the next. The
    /// `_desired_size`/`_branch` hints are accepted for API
    /// compatibility; recursion is bounded by `depth` alone (inner
    /// collection strategies that may generate zero elements terminate
    /// the tree).
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _branch: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let mut level = self.boxed();
        for _ in 0..depth {
            level = f(level).boxed();
        }
        level
    }

    /// Type-erase this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(move |rng| self.generate(rng)))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<V>(Arc<dyn Fn(&mut TestRng) -> V>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);

// ---- string strategies (character-class regex subset) --------------------------

/// `&str` patterns act as generators for a small regex subset:
/// literal characters and `[...]` classes (with `a-z` ranges), each
/// optionally quantified with `{n}`, `{m,n}`, `?`, `*`, or `+`
/// (unbounded quantifiers cap at 8 repetitions).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let items =
            parse_pattern(self).unwrap_or_else(|e| panic!("unsupported pattern {self:?}: {e}"));
        let mut out = String::new();
        for (alphabet, lo, hi) in &items {
            let n = if lo == hi {
                *lo
            } else {
                rng.range(*lo..hi + 1)
            };
            for _ in 0..n {
                out.push(alphabet[rng.range(0..alphabet.len())]);
            }
        }
        out
    }
}

type PatternItem = (Vec<char>, usize, usize);

fn parse_pattern(pat: &str) -> Result<Vec<PatternItem>, String> {
    let chars: Vec<char> = pat.chars().collect();
    let mut items: Vec<PatternItem> = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let alphabet = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .ok_or("unterminated character class")?
                    + i;
                let class = parse_class(&chars[i + 1..close])?;
                i = close + 1;
                class
            }
            '\\' => {
                i += 1;
                let c = *chars.get(i).ok_or("dangling escape")?;
                i += 1;
                vec![c]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        // optional quantifier
        let (lo, hi) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .ok_or("unterminated quantifier")?
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().map_err(|_| "bad quantifier")?,
                        n.trim().parse().map_err(|_| "bad quantifier")?,
                    ),
                    None => {
                        let n = body.trim().parse().map_err(|_| "bad quantifier")?;
                        (n, n)
                    }
                }
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            _ => (1, 1),
        };
        if alphabet.is_empty() {
            return Err("empty character class".into());
        }
        items.push((alphabet, lo, hi));
    }
    Ok(items)
}

fn parse_class(body: &[char]) -> Result<Vec<char>, String> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < body.len() {
        let c = if body[i] == '\\' {
            i += 1;
            *body.get(i).ok_or("dangling escape in class")?
        } else {
            body[i]
        };
        if body.get(i + 1) == Some(&'-') && i + 2 < body.len() {
            let hi = body[i + 2];
            if c as u32 > hi as u32 {
                return Err("inverted class range".into());
            }
            for x in c as u32..=hi as u32 {
                out.push(char::from_u32(x).ok_or("bad class range")?);
            }
            i += 3;
        } else {
            out.push(c);
            i += 1;
        }
    }
    Ok(out)
}

// ---- collections ---------------------------------------------------------------

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Vectors of `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.range(self.size.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---- macros & prelude ----------------------------------------------------------

/// Run each contained `fn name(args in strategies) { body }` as a test
/// over many random cases.
#[macro_export]
macro_rules! proptest {
    (
        @impl ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                const SEED: u64 =
                    $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let mut rng = $crate::test_rng(SEED, case as u64);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )+
    };
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)+
    ) => {
        $crate::proptest!(@impl ($cfg) $($rest)+);
    };
    ($($rest:tt)+) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)+);
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// The common imports (`use proptest::prelude::*`).
pub mod prelude {
    /// The `prop::` module alias used for `prop::collection::vec`.
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, BoxedStrategy, Just, ProptestConfig,
        Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(a in -10i64..10, b in 0usize..5) {
            prop_assert!((-10..10).contains(&a));
            prop_assert!(b < 5);
        }

        #[test]
        fn strings_match_class(s in "[a-c]{2,4}") {
            prop_assert!(s.len() >= 2 && s.len() <= 4, "{s}");
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s}");
        }

        #[test]
        fn vec_and_map_compose(v in prop::collection::vec((0usize..3, 0i64..7), 0..6)) {
            prop_assert!(v.len() < 6);
            for (a, b) in v {
                prop_assert!(a < 3 && (0..7).contains(&b));
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_applies(x in 0i64..100) {
            prop_assert!((0..100).contains(&x));
        }
    }

    #[test]
    fn recursion_terminates() {
        let leaf = (0usize..4).prop_map(|n| vec![n]);
        let strat = leaf.prop_recursive(3, 24, 4, |inner| {
            prop::collection::vec(inner, 0..3).prop_map(|vs| vs.concat())
        });
        let mut rng = crate::test_rng(1, 1);
        for case in 0..50 {
            let mut rng2 = crate::test_rng(7, case);
            let v = strat.generate(&mut rng2);
            assert!(v.iter().all(|&n| n < 4));
        }
        let _ = strat.generate(&mut rng);
    }
}
