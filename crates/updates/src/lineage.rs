//! Automatic lineage computation (§6).
//!
//! "Change propagation requires ALDSP to identify where changed data
//! originated — its lineage must be determined. ALDSP performs automatic
//! computation of the lineage for a data service from the query body of
//! the … lineage provider. … Primary key information, query predicates,
//! and query result shapes are used together to determine which data in
//! which sources are affected." The analysis here is rule-driven over
//! the same optimized expression tree the optimizer produces (the paper
//! notes the lineage rule set runs on the optimizer's rule engine):
//! `SqlFor` clauses say which (connection, table, column) each field
//! variable reads; the constructed result shape says where each field
//! surfaces; registered **inverse functions** (§4.4) make transformed
//! values writable.

use crate::sdo::Path;
use aldsp_compiler::ir::{CExpr, CKind, Clause};
use aldsp_compiler::CompiledQuery;
use aldsp_metadata::Registry;
use aldsp_relational::{ScalarExpr, TableRef};
use aldsp_xdm::QName;
use std::collections::{BTreeSet, HashMap};

/// `(connection, table, column)` triples collected by the dependency pass.
type ColumnSet = BTreeSet<(String, String, String)>;

/// One writable output location.
#[derive(Debug, Clone, PartialEq)]
pub struct LineageEntry {
    /// Path in the result shape (e.g. `/LAST_NAME`).
    pub path: Path,
    /// Source connection.
    pub connection: String,
    /// Source table.
    pub table: String,
    /// Source column.
    pub column: String,
    /// When the output value is `f(column)` for an invertible `f`: the
    /// inverse function to apply to new values before writing (§4.4).
    pub inverse: Option<QName>,
}

/// Lineage of one data-service shape.
#[derive(Debug, Clone, Default)]
pub struct Lineage {
    /// Writable column mappings.
    pub entries: Vec<LineageEntry>,
    /// For each `(connection, table)`: its primary-key columns and the
    /// result paths where they surface (used to key UPDATE statements).
    pub keys: HashMap<(String, String), Vec<(String, Path)>>,
    /// Every source column the plan reads, per `(connection, table)`:
    /// SQL projections plus predicate/grouping/ordering columns. A write
    /// to a column outside this set cannot change the service's answer.
    pub referenced: HashMap<(String, String), Vec<String>>,
    /// Columns whose value determines *which* rows appear (or how the
    /// result is arranged) rather than just a displayed value: SQL
    /// WHERE/HAVING/GROUP BY/ORDER BY/join-ON columns, PP-k correlation
    /// keys, and columns consumed by middleware clauses or opaque
    /// result-shape expressions. A write to one of these may change
    /// membership, so a cached answer cannot be patched in place.
    pub restricting: HashMap<(String, String), Vec<String>>,
    /// Relational tables read through unpushed physical calls (e.g. with
    /// pushdown off). Column-level analysis is unavailable for these, so
    /// any write to the table must be treated as affecting the plan.
    pub opaque_tables: Vec<(String, String)>,
    /// `true` when the plan is a single scan-and-construct FLWOR (one
    /// `SqlFor`, only `Let`/`Where` beside it, no nested iteration in
    /// the return shape) — the shape whose cached answers are row-wise
    /// patchable: each output instance carries the columns of exactly
    /// one scanned row.
    pub simple_shape: bool,
}

impl Lineage {
    /// The entry for a result path, if that path is writable.
    pub fn entry(&self, path: &Path) -> Option<&LineageEntry> {
        self.entries.iter().find(|e| &e.path == path)
    }

    /// Tables with a fully-exposed primary key (updatable targets).
    pub fn updatable_tables(&self) -> Vec<(String, String)> {
        self.keys.keys().cloned().collect()
    }
}

/// Per-field-variable source info collected from `SqlFor` clauses.
#[derive(Debug, Clone)]
struct FieldSource {
    connection: String,
    table: String,
    column: String,
}

/// Compute the lineage of a compiled lineage-provider plan.
pub fn analyze(registry: &Registry, plan: &CompiledQuery) -> Result<Lineage, String> {
    // pass 1: field variable → (connection, table, column), plus the
    // column equivalences implied by join predicates ("query predicates
    // … are used together to determine which data … are affected", §6)
    let mut fields: HashMap<String, FieldSource> = HashMap::new();
    let mut equiv: Vec<(FieldSource, FieldSource)> = Vec::new();
    collect_fields(&plan.plan, &mut fields);
    collect_equivalences(&plan.plan, &fields, &mut equiv);
    // pass 2: walk the constructed result shape. Paths are relative to
    // the object root (the instance element the data service returns),
    // so the root constructor contributes no path step.
    let mut lineage = Lineage::default();
    let ret = result_expr(&plan.plan);
    let root_content = match &ret.kind {
        CKind::ElementCtor { content, .. } => content.as_ref(),
        CKind::Seq(parts) if parts.len() == 1 => match &parts[0].kind {
            CKind::ElementCtor { content, .. } => content.as_ref(),
            _ => ret,
        },
        _ => ret,
    };
    walk_shape(
        root_content,
        &mut Vec::new(),
        &fields,
        registry,
        &mut lineage,
    );
    // pass 3: key exposure — for each referenced table, find the result
    // paths carrying its primary key
    let mut keys: HashMap<(String, String), Vec<(String, Path)>> = HashMap::new();
    let tables: Vec<(String, String)> = {
        let mut t: Vec<(String, String)> = lineage
            .entries
            .iter()
            .map(|e| (e.connection.clone(), e.table.clone()))
            .collect();
        t.sort();
        t.dedup();
        t
    };
    for (conn, table) in tables {
        let pk = registry
            .functions()
            .find_map(|f| match &f.source {
                aldsp_metadata::SourceBinding::RelationalTable {
                    connection,
                    table: t,
                    primary_key,
                    ..
                } if *connection == conn && *t == table => Some(primary_key.clone()),
                _ => None,
            })
            .unwrap_or_default();
        if pk.is_empty() {
            continue; // tables without a PK are not updatable
        }
        let mut exposed = Vec::with_capacity(pk.len());
        let mut all_found = true;
        for col in &pk {
            // directly exposed, or exposed through a join-equivalent
            // column of another table
            let direct = lineage.entries.iter().find(|e| {
                e.connection == conn && e.table == table && &e.column == col && e.inverse.is_none()
            });
            let found = direct.or_else(|| {
                equiv.iter().find_map(|(a, b)| {
                    let other = if a.connection == conn && a.table == table && a.column == *col {
                        Some(b)
                    } else if b.connection == conn && b.table == table && b.column == *col {
                        Some(a)
                    } else {
                        None
                    }?;
                    lineage.entries.iter().find(|e| {
                        e.connection == other.connection
                            && e.table == other.table
                            && e.column == other.column
                            && e.inverse.is_none()
                    })
                })
            });
            match found {
                Some(e) => exposed.push((col.clone(), e.path.clone())),
                None => {
                    all_found = false;
                    break;
                }
            }
        }
        if all_found {
            keys.insert((conn, table), exposed);
        }
    }
    lineage.keys = keys;
    // pass 4: dependency metadata for write-through cache maintenance
    // (crates/matview): which columns the plan reads, which of them
    // restrict membership, and which tables it reads opaquely.
    let mut referenced = ColumnSet::new();
    let mut restricting = ColumnSet::new();
    collect_sql_columns(&plan.plan, &mut referenced, &mut restricting);
    collect_clause_uses(&plan.plan, &fields, &mut restricting);
    collect_shape_uses(root_content, &fields, registry, &mut restricting);
    referenced.extend(restricting.iter().cloned());
    let mut opaque: BTreeSet<(String, String)> = BTreeSet::new();
    plan.plan.walk(&mut |e| {
        if let CKind::PhysicalCall { name, .. } = &e.kind {
            if let Some(f) = registry.function(name) {
                match &f.source {
                    aldsp_metadata::SourceBinding::RelationalTable {
                        connection, table, ..
                    } => {
                        opaque.insert((connection.clone(), table.clone()));
                    }
                    aldsp_metadata::SourceBinding::RelationalNavigation {
                        connection,
                        to_table,
                        ..
                    } => {
                        opaque.insert((connection.clone(), to_table.clone()));
                    }
                    _ => {}
                }
            }
        }
    });
    for (c, t, col) in referenced {
        lineage.referenced.entry((c, t)).or_default().push(col);
    }
    for (c, t, col) in restricting {
        lineage.restricting.entry((c, t)).or_default().push(col);
    }
    lineage.opaque_tables = opaque.into_iter().collect();
    lineage.simple_shape = compute_simple_shape(&plan.plan);
    Ok(lineage)
}

/// Collect referenced / restricting columns from every pushed SQL
/// statement: projections are referenced; predicate, grouping, ordering,
/// join-ON, and PP-k correlation columns additionally restrict.
fn collect_sql_columns(e: &CExpr, referenced: &mut ColumnSet, restricting: &mut ColumnSet) {
    if let CKind::Flwor { clauses, .. } = &e.kind {
        for c in clauses {
            let Clause::SqlFor {
                connection,
                select,
                ppk,
                ..
            } = c
            else {
                continue;
            };
            let mut alias_tables: HashMap<String, String> = HashMap::new();
            fn tables(t: &TableRef, out: &mut HashMap<String, String>) {
                match t {
                    TableRef::Table { name, alias } => {
                        out.insert(alias.clone(), name.clone());
                    }
                    TableRef::Join { left, right, .. } => {
                        tables(left, out);
                        tables(right, out);
                    }
                    TableRef::Derived { .. } => {}
                }
            }
            tables(&select.from, &mut alias_tables);
            let mark = |expr: &ScalarExpr, out: &mut ColumnSet| {
                expr.walk(&mut |s| {
                    if let ScalarExpr::Column { table, column } = s {
                        if let Some(t) = alias_tables.get(table) {
                            out.insert((connection.clone(), t.clone(), column.clone()));
                        }
                    }
                });
            };
            for col in &select.columns {
                mark(&col.expr, referenced);
            }
            for pred in select.where_.iter().chain(select.having.iter()) {
                mark(pred, restricting);
            }
            for key in &select.group_by {
                mark(key, restricting);
            }
            for ob in &select.order_by {
                mark(&ob.expr, restricting);
            }
            fn on_columns(
                t: &TableRef,
                mark: &dyn Fn(&ScalarExpr, &mut ColumnSet),
                out: &mut ColumnSet,
            ) {
                if let TableRef::Join {
                    left, right, on, ..
                } = t
                {
                    on_columns(left, mark, out);
                    on_columns(right, mark, out);
                    mark(on, out);
                }
            }
            on_columns(&select.from, &mark, restricting);
            if let Some(spec) = ppk {
                for col in &spec.key_columns {
                    mark(col, restricting);
                }
            }
        }
    }
    e.for_each_child(&mut |c| collect_sql_columns(c, referenced, restricting));
}

/// Record the source column of every field variable consumed by a
/// middleware clause (a where predicate, a non-transparent let, a group
/// key, an order key, a correlation parameter, a non-SQL for source):
/// such uses restrict membership or arrangement, so writes to those
/// columns must invalidate rather than patch.
fn collect_clause_uses(e: &CExpr, fields: &HashMap<String, FieldSource>, out: &mut ColumnSet) {
    if let CKind::Flwor { clauses, .. } = &e.kind {
        for c in clauses {
            match c {
                Clause::For { source, .. } => mark_field_vars(source, fields, out),
                Clause::Let { value, .. } => {
                    if transparent_source(value, fields).is_none() {
                        mark_field_vars(value, fields, out);
                    }
                }
                Clause::Where(cond) => mark_field_vars(cond, fields, out),
                Clause::GroupBy { keys, .. } => {
                    for (k, _) in keys {
                        mark_field_vars(k, fields, out);
                    }
                }
                Clause::OrderBy(specs) => {
                    for s in specs {
                        mark_field_vars(&s.expr, fields, out);
                    }
                }
                Clause::SqlFor { params, ppk, .. } => {
                    for p in params {
                        mark_field_vars(p, fields, out);
                    }
                    if let Some(spec) = ppk {
                        for k in &spec.outer_keys {
                            mark_field_vars(k, fields, out);
                        }
                    }
                }
            }
        }
    }
    e.for_each_child(&mut |c| collect_clause_uses(c, fields, out));
}

/// Mirror of [`walk_shape`] that records *non-display* uses of field
/// variables in the constructed result: attribute values, `if`
/// conditions, opaque content expressions, and any display chain that
/// consumes more than one field. Those columns cannot be patched blind.
fn collect_shape_uses(
    e: &CExpr,
    fields: &HashMap<String, FieldSource>,
    registry: &Registry,
    out: &mut ColumnSet,
) {
    match &e.kind {
        CKind::ElementCtor {
            attributes,
            content,
            ..
        } => {
            for (_, _, value) in attributes {
                mark_field_vars(value, fields, out);
            }
            if backing_field(content, fields, registry).is_some() {
                // a clean display chain reads exactly one field; a chain
                // that also consults *other* fields (guards comparing
                // neighbours) makes every one of them restricting
                let mut names: BTreeSet<String> = BTreeSet::new();
                content.walk(&mut |x| {
                    if let CKind::Var { name, .. } = &x.kind {
                        if fields.contains_key(name) {
                            names.insert(name.clone());
                        }
                    }
                });
                if names.len() > 1 {
                    mark_field_vars(content, fields, out);
                }
            } else {
                collect_shape_uses(content, fields, registry, out);
            }
        }
        CKind::Seq(parts) => {
            for p in parts {
                collect_shape_uses(p, fields, registry, out);
            }
        }
        // nested-iteration clauses are covered by `collect_clause_uses`
        CKind::Flwor { ret, .. } => collect_shape_uses(ret, fields, registry, out),
        CKind::If { cond, then, els } => {
            mark_field_vars(cond, fields, out);
            collect_shape_uses(then, fields, registry, out);
            collect_shape_uses(els, fields, registry, out);
        }
        _ => mark_field_vars(e, fields, out),
    }
}

/// Record the source column of every field variable in the subtree.
fn mark_field_vars(e: &CExpr, fields: &HashMap<String, FieldSource>, out: &mut ColumnSet) {
    e.walk(&mut |x| {
        if let CKind::Var { name, .. } = &x.kind {
            if let Some(src) = fields.get(name) {
                out.insert((
                    src.connection.clone(),
                    src.table.clone(),
                    src.column.clone(),
                ));
            }
        }
    });
}

/// Is the plan one scan-and-construct FLWOR whose answers are row-wise
/// patchable? (Exactly one `SqlFor`, only `Let`/`Where` beside it, and
/// no nested iteration in the constructed shape — so each output
/// instance corresponds to one scanned row.)
fn compute_simple_shape(plan: &CExpr) -> bool {
    let e = match &plan.kind {
        CKind::Seq(parts) if parts.len() == 1 => &parts[0],
        _ => plan,
    };
    let CKind::Flwor { clauses, ret } = &e.kind else {
        return false;
    };
    let mut sql_fors = 0usize;
    for c in clauses {
        match c {
            Clause::SqlFor { .. } => sql_fors += 1,
            Clause::Let { .. } | Clause::Where(_) => {}
            _ => return false,
        }
    }
    if sql_fors != 1 {
        return false;
    }
    let mut nested = false;
    ret.walk(&mut |x| {
        if matches!(&x.kind, CKind::Flwor { .. }) {
            nested = true;
        }
    });
    !nested
}

/// Collect field-variable sources from every `SqlFor` in the plan.
fn collect_fields(e: &CExpr, out: &mut HashMap<String, FieldSource>) {
    if let CKind::Flwor { clauses, .. } = &e.kind {
        for c in clauses {
            if let Clause::SqlFor {
                connection,
                select,
                binds,
                ..
            } = c
            {
                // alias → table map from the FROM tree
                let mut alias_tables: HashMap<String, String> = HashMap::new();
                fn tables(t: &TableRef, out: &mut HashMap<String, String>) {
                    match t {
                        TableRef::Table { name, alias } => {
                            out.insert(alias.clone(), name.clone());
                        }
                        TableRef::Join { left, right, .. } => {
                            tables(left, out);
                            tables(right, out);
                        }
                        TableRef::Derived { .. } => {}
                    }
                }
                tables(&select.from, &mut alias_tables);
                for (i, (var, _)) in binds.iter().enumerate() {
                    let Some(col) = select.columns.get(i) else {
                        continue;
                    };
                    if let ScalarExpr::Column { table, column } = &col.expr {
                        if let Some(tname) = alias_tables.get(table) {
                            out.insert(
                                var.clone(),
                                FieldSource {
                                    connection: connection.clone(),
                                    table: tname.clone(),
                                    column: column.clone(),
                                },
                            );
                        }
                    }
                }
            }
            // carried/regrouped variables keep their origin
            if let Clause::GroupBy {
                bindings, carry, ..
            } = c
            {
                for (from, to) in bindings.iter().chain(carry.iter()) {
                    if let Some(src) = out.get(from).cloned() {
                        out.insert(to.clone(), src);
                    }
                }
            }
            // lets that merely wrap a single field (guards, constructors
            // from dependent-join re-nesting) stay transparent
            if let Clause::Let { var, value } = c {
                if let Some(src) = transparent_source(value, out) {
                    out.insert(var.clone(), src);
                }
            }
        }
    }
    e.for_each_child(&mut |c| collect_fields(c, out));
}

/// Collect column equivalences from PP-k correlations and same-source
/// join ON conditions.
fn collect_equivalences(
    e: &CExpr,
    fields: &HashMap<String, FieldSource>,
    out: &mut Vec<(FieldSource, FieldSource)>,
) {
    if let CKind::Flwor { clauses, .. } = &e.kind {
        for c in clauses {
            let Clause::SqlFor {
                connection,
                select,
                ppk,
                ..
            } = c
            else {
                continue;
            };
            let mut alias_tables: HashMap<String, String> = HashMap::new();
            fn tables(t: &TableRef, out: &mut HashMap<String, String>) {
                match t {
                    TableRef::Table { name, alias } => {
                        out.insert(alias.clone(), name.clone());
                    }
                    TableRef::Join { left, right, .. } => {
                        tables(left, out);
                        tables(right, out);
                    }
                    TableRef::Derived { .. } => {}
                }
            }
            tables(&select.from, &mut alias_tables);
            let col_source = |c: &ScalarExpr| -> Option<FieldSource> {
                let ScalarExpr::Column { table, column } = c else {
                    return None;
                };
                Some(FieldSource {
                    connection: connection.clone(),
                    table: alias_tables.get(table)?.clone(),
                    column: column.clone(),
                })
            };
            // PP-k correlation equalities: inner column ≡ outer field
            if let Some(spec) = ppk {
                for (outer, col) in spec.outer_keys.iter().zip(&spec.key_columns) {
                    if let (Some(a), Some(b)) = (transparent_source(outer, fields), col_source(col))
                    {
                        out.push((a, b));
                    }
                }
            }
            // join ON equalities within one statement
            fn on_equalities(
                t: &TableRef,
                col_source: &dyn Fn(&ScalarExpr) -> Option<FieldSource>,
                out: &mut Vec<(FieldSource, FieldSource)>,
            ) {
                if let TableRef::Join {
                    left, right, on, ..
                } = t
                {
                    on_equalities(left, col_source, out);
                    on_equalities(right, col_source, out);
                    on.walk(&mut |e| {
                        if let ScalarExpr::Compare {
                            op: aldsp_xdm::item::CompOp::Eq,
                            lhs,
                            rhs,
                        } = e
                        {
                            if let (Some(a), Some(b)) = (col_source(lhs), col_source(rhs)) {
                                out.push((a, b));
                            }
                        }
                    });
                }
            }
            on_equalities(&select.from, &col_source, out);
        }
    }
    e.for_each_child(&mut |c| collect_equivalences(c, fields, out));
}

/// Trace a wrapper expression (guard `if`s, data/typematch, single-part
/// sequences, reconstructed column elements) back to one field variable.
fn transparent_source(e: &CExpr, fields: &HashMap<String, FieldSource>) -> Option<FieldSource> {
    match &e.kind {
        CKind::Var { name: v, .. } => fields.get(v).cloned(),
        CKind::Data(i) | CKind::TypeMatch { input: i, .. } => transparent_source(i, fields),
        CKind::Seq(parts) if parts.len() == 1 => transparent_source(&parts[0], fields),
        CKind::ElementCtor {
            attributes,
            content,
            ..
        } if attributes.is_empty() => transparent_source(content, fields),
        // the hoist guard: if (exists(f) or …) then value else ()
        CKind::If { then, els, .. } => {
            if matches!(&els.kind, CKind::Seq(v) if v.is_empty()) {
                transparent_source(then, fields)
            } else {
                None
            }
        }
        _ => None,
    }
}

/// The per-instance result expression: the return of the outermost FLWOR
/// (or the plan itself for degenerate shapes).
fn result_expr(plan: &CExpr) -> &CExpr {
    match &plan.kind {
        CKind::Flwor { ret, .. } => ret,
        _ => plan,
    }
}

/// Walk the constructed shape, recording column-backed simple contents.
fn walk_shape(
    e: &CExpr,
    path: &mut Path,
    fields: &HashMap<String, FieldSource>,
    registry: &Registry,
    lineage: &mut Lineage,
) {
    match &e.kind {
        CKind::ElementCtor { name, content, .. } => {
            // entering <name>…</name>
            path.push((name.clone(), 0));
            match backing_field(content, fields, registry) {
                Some((src, inverse)) => {
                    lineage.entries.push(LineageEntry {
                        path: path.clone(),
                        connection: src.connection.clone(),
                        table: src.table.clone(),
                        column: src.column.clone(),
                        inverse,
                    });
                }
                None => {
                    walk_shape(content, path, fields, registry, lineage);
                }
            }
            path.pop();
        }
        CKind::Seq(parts) => {
            for p in parts {
                walk_shape(p, path, fields, registry, lineage);
            }
        }
        // nested iteration (re-nested joins): descend into the return
        CKind::Flwor { ret, .. } => walk_shape(ret, path, fields, registry, lineage),
        CKind::If { then, els, .. } => {
            walk_shape(then, path, fields, registry, lineage);
            walk_shape(els, path, fields, registry, lineage);
        }
        _ => {}
    }
}

/// Does this content expression read exactly one source column (possibly
/// through an invertible transformation)?
#[allow(clippy::only_used_in_recursion)]
fn backing_field<'a>(
    e: &CExpr,
    fields: &'a HashMap<String, FieldSource>,
    registry: &Registry,
) -> Option<(&'a FieldSource, Option<QName>)> {
    match &e.kind {
        CKind::Var { name: v, .. } => fields.get(v).map(|s| (s, None)),
        CKind::Data(inner) | CKind::TypeMatch { input: inner, .. } => {
            backing_field(inner, fields, registry)
        }
        CKind::Seq(parts) if parts.len() == 1 => backing_field(&parts[0], fields, registry),
        // a reconstructed source element (<COL>{$field}</COL>) reads the
        // same column
        CKind::ElementCtor {
            attributes,
            content,
            ..
        } if attributes.is_empty() => backing_field(content, fields, registry),
        // f($col) where f has a registered inverse → writable through f⁻¹.
        // The inverse registration lives in the compiler; for lineage we
        // accept any single-argument library call whose argument is a
        // column and look the inverse up in the caller-provided map via
        // `inverse_of` below.
        CKind::PhysicalCall { name, args } if args.len() == 1 => {
            let (src, inner_inv) = backing_field(&args[0], fields, registry)?;
            if inner_inv.is_some() {
                return None; // nested transforms unsupported
            }
            Some((src, Some(name.clone())))
        }
        _ => None,
    }
}

/// Resolve the writable inverse of a transform recorded by
/// [`analyze`]: the lineage stores the *forward* function name; submit
/// processing swaps it for the declared inverse (or refuses the write).
pub fn resolve_inverse(
    inverses: &aldsp_compiler::InverseRegistry,
    entry: &LineageEntry,
) -> Result<Option<QName>, String> {
    match &entry.inverse {
        None => Ok(None),
        Some(forward) => match inverses.inverse_of(forward) {
            Some(inv) => Ok(Some(inv.clone())),
            None => Err(format!(
                "path {} is computed by {forward} which has no registered inverse — not writable",
                crate::sdo::path_string(&entry.path)
            )),
        },
    }
}
