//! Update decomposition and submit processing (§6).
//!
//! "Each data service has a submit method … the unit of update execution
//! is a submit call." Submit examines the change log, uses the lineage
//! to decompose the changes into per-source SQL updates — "unaffected
//! data sources are not involved in the update" — conditions the
//! statements with the chosen optimistic-concurrency policy, applies
//! registered inverse functions to transformed values, and executes
//! everything as an atomic two-phase commit when every affected source
//! supports XA.

use crate::lineage::{resolve_inverse, Lineage};
use crate::sdo::{path_string, DataObject};
use aldsp_adaptors::AdaptorRegistry;
use aldsp_compiler::InverseRegistry;
use aldsp_metadata::{Registry, SourceBinding};
use aldsp_relational::{render_dml, Dml, ScalarExpr, SqlType, SqlValue, Update};
use aldsp_xdm::item::Item;
use aldsp_xdm::value::AtomicValue;
use std::collections::HashMap;

/// The optimistic-concurrency options the data-service designer can
/// choose from (§6).
#[derive(Debug, Clone, PartialEq)]
pub enum ConcurrencyPolicy {
    /// "requiring all values read to still be the same": every
    /// lineage-mapped column of the affected table must match its read
    /// value.
    AllValuesRead,
    /// "requiring all values updated to still be the same": only the
    /// changed columns must match their read values (the default).
    UpdatedValues,
    /// "requiring a designated subset of the data … to still be the
    /// same": the named top-level children must match.
    Designated(Vec<String>),
    /// No verification (last writer wins).
    None,
}

/// Submit errors.
#[derive(Debug, Clone)]
pub enum SubmitError {
    /// A changed path has no writable lineage.
    NotWritable(String),
    /// The optimistic check failed at a source (0 rows matched).
    OptimisticConflict {
        /// The connection where the conflict surfaced.
        connection: String,
        /// The table.
        table: String,
    },
    /// A source refused prepare (the whole submit rolled back).
    PrepareFailed(String),
    /// Anything else.
    Other(String),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::NotWritable(p) => write!(f, "path {p} is not writable"),
            SubmitError::OptimisticConflict { connection, table } => write!(
                f,
                "optimistic concurrency conflict updating {table} on {connection}"
            ),
            SubmitError::PrepareFailed(s) => write!(f, "prepare failed: {s}"),
            SubmitError::Other(s) => write!(f, "{s}"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// One committed row change at one source: the columns written
/// (post-inverse, round-tripped through their SQL type so they compare
/// equal to what a fresh scan would return) and the primary-key values
/// identifying the row. Emitted by [`SubmitProcessor::submit`] for
/// write-through cache maintenance (`crates/matview`).
#[derive(Debug, Clone)]
pub struct SourceDelta {
    /// Source connection.
    pub connection: String,
    /// Updated table.
    pub table: String,
    /// `(column, new value)` — `None` is SQL NULL.
    pub columns: Vec<(String, Option<AtomicValue>)>,
    /// `(primary-key column, value)` identifying the updated row.
    pub key: Vec<(String, AtomicValue)>,
}

/// What a submit did.
#[derive(Debug, Clone, Default)]
pub struct SubmitReport {
    /// `(connection, rendered SQL)` in execution order.
    pub statements: Vec<(String, String)>,
    /// Total rows affected.
    pub rows_affected: usize,
    /// The connections that participated (unaffected sources stay out).
    pub sources_touched: Vec<String>,
    /// Per-row change records for cache maintenance, in statement order.
    pub deltas: Vec<SourceDelta>,
}

/// The submit processor: lineage + inverse registrations + policy.
pub struct SubmitProcessor<'a> {
    adaptors: &'a AdaptorRegistry,
    metadata: &'a Registry,
    lineage: &'a Lineage,
    inverses: &'a InverseRegistry,
    policy: ConcurrencyPolicy,
}

impl<'a> SubmitProcessor<'a> {
    /// Build a processor.
    pub fn new(
        adaptors: &'a AdaptorRegistry,
        metadata: &'a Registry,
        lineage: &'a Lineage,
        inverses: &'a InverseRegistry,
        policy: ConcurrencyPolicy,
    ) -> SubmitProcessor<'a> {
        SubmitProcessor {
            adaptors,
            metadata,
            lineage,
            inverses,
            policy,
        }
    }

    /// Decompose the object's change log into per-source updates and
    /// apply them atomically (2PC across all affected sources, §6).
    pub fn submit(&self, sdo: &DataObject) -> Result<SubmitReport, SubmitError> {
        if !sdo.is_dirty() {
            return Ok(SubmitReport::default());
        }
        // group changes by (connection, table)
        #[derive(Default)]
        struct TableUpdate {
            sets: Vec<(String, SqlValue)>,
            verify: Vec<(String, Option<SqlValue>)>,
        }
        let mut per_table: HashMap<(String, String), TableUpdate> = HashMap::new();
        for change in &sdo.change_log().changes {
            let entry = self
                .lineage
                .entry(&change.path)
                .ok_or_else(|| SubmitError::NotWritable(path_string(&change.path)))?;
            // primary-key columns are not writable through this path
            if self
                .lineage
                .keys
                .get(&(entry.connection.clone(), entry.table.clone()))
                .is_some_and(|pk| pk.iter().any(|(c, _)| *c == entry.column))
            {
                return Err(SubmitError::NotWritable(format!(
                    "{} (primary key)",
                    path_string(&change.path)
                )));
            }
            // apply the inverse transform to the new value (§4.4/§6)
            let inverse =
                resolve_inverse(self.inverses, entry).map_err(SubmitError::NotWritable)?;
            let new_value = match (&change.new, &inverse) {
                (None, _) => None,
                (Some(v), None) => Some(v.clone()),
                (Some(v), Some(inv)) => {
                    Some(self.apply_inverse(inv, v).map_err(SubmitError::Other)?)
                }
            };
            let old_value = match (&change.old, &inverse) {
                (None, _) => None,
                (Some(v), None) => Some(v.clone()),
                (Some(v), Some(inv)) => {
                    Some(self.apply_inverse(inv, v).map_err(SubmitError::Other)?)
                }
            };
            let upd = per_table
                .entry((entry.connection.clone(), entry.table.clone()))
                .or_default();
            upd.sets.push((
                entry.column.clone(),
                to_sql(new_value.as_ref()).map_err(SubmitError::Other)?,
            ));
            if self.policy == ConcurrencyPolicy::UpdatedValues {
                upd.verify.push((
                    entry.column.clone(),
                    match old_value {
                        Some(v) => Some(to_sql(Some(&v)).map_err(SubmitError::Other)?),
                        None => None,
                    },
                ));
            }
        }
        // extend verification per policy
        for ((conn, table), upd) in per_table.iter_mut() {
            match &self.policy {
                ConcurrencyPolicy::AllValuesRead => {
                    for e in &self.lineage.entries {
                        if e.connection != *conn || e.table != *table || e.inverse.is_some() {
                            continue;
                        }
                        let read = crate::sdo::locate(sdo.original(), &e.path)
                            .and_then(|n| n.typed_value());
                        upd.verify.push((
                            e.column.clone(),
                            match read {
                                Some(v) => Some(to_sql(Some(&v)).map_err(SubmitError::Other)?),
                                None => None,
                            },
                        ));
                    }
                }
                ConcurrencyPolicy::Designated(children) => {
                    for child in children {
                        let path = vec![(aldsp_xdm::QName::local(child), 0)];
                        let Some(e) = self.lineage.entry(&path) else {
                            continue;
                        };
                        if e.connection != *conn || e.table != *table {
                            continue;
                        }
                        let read =
                            crate::sdo::locate(sdo.original(), &path).and_then(|n| n.typed_value());
                        upd.verify.push((
                            e.column.clone(),
                            match read {
                                Some(v) => Some(to_sql(Some(&v)).map_err(SubmitError::Other)?),
                                None => None,
                            },
                        ));
                    }
                }
                _ => {}
            }
        }
        // build the conditioned UPDATE statements
        let mut per_source: HashMap<String, Vec<(Dml, Vec<SqlValue>)>> = HashMap::new();
        let mut report = SubmitReport::default();
        for ((conn, table), upd) in per_table {
            let pk = self
                .lineage
                .keys
                .get(&(conn.clone(), table.clone()))
                .ok_or_else(|| {
                    SubmitError::NotWritable(format!(
                        "{table}: primary key is not exposed by the lineage provider"
                    ))
                })?;
            let mut params: Vec<SqlValue> = Vec::new();
            let mut sets = Vec::with_capacity(upd.sets.len());
            let mut delta_cols = Vec::with_capacity(upd.sets.len());
            for (col, val) in upd.sets {
                delta_cols.push((col.clone(), val.to_xml()));
                params.push(val);
                sets.push((col, ScalarExpr::Param(params.len() - 1)));
            }
            // key condition from the object's exposed key values
            let mut pred: Option<ScalarExpr> = None;
            let mut delta_key = Vec::with_capacity(pk.len());
            for (col, path) in pk {
                let v = crate::sdo::locate(sdo.original(), path)
                    .and_then(|n| n.typed_value())
                    .ok_or_else(|| {
                        SubmitError::Other(format!(
                            "object is missing its key at {}",
                            path_string(path)
                        ))
                    })?;
                let sql = to_sql(Some(&v)).map_err(SubmitError::Other)?;
                if let Some(x) = sql.to_xml() {
                    delta_key.push((col.clone(), x));
                }
                params.push(sql);
                let term = ScalarExpr::col("t1", col).eq(ScalarExpr::Param(params.len() - 1));
                pred = Some(match pred {
                    Some(p) => p.and(term),
                    None => term,
                });
            }
            report.deltas.push(SourceDelta {
                connection: conn.clone(),
                table: table.clone(),
                columns: delta_cols,
                key: delta_key,
            });
            // "the sameness required is expressed as part of the where
            // clause for the update statements" (§6)
            for (col, old) in upd.verify {
                let term = match old {
                    Some(v) => {
                        params.push(v);
                        ScalarExpr::col("t1", &col).eq(ScalarExpr::Param(params.len() - 1))
                    }
                    None => ScalarExpr::IsNull(Box::new(ScalarExpr::col("t1", &col))),
                };
                pred = Some(match pred {
                    Some(p) => p.and(term),
                    None => term,
                });
            }
            let stmt = Dml::Update(Update {
                table: table.clone(),
                alias: "t1".into(),
                set: sets,
                where_: pred,
            });
            per_source.entry(conn).or_default().push((stmt, params));
        }
        // two-phase commit across the affected sources (§6)
        let mut prepared: Vec<(String, u64)> = Vec::new();
        let order: Vec<String> = {
            let mut v: Vec<String> = per_source.keys().cloned().collect();
            v.sort();
            v
        };
        for conn in &order {
            let server = self
                .adaptors
                .connection(conn)
                .map_err(|e| SubmitError::Other(e.to_string()))?;
            if !server.supports_xa() && order.len() > 1 {
                return Err(SubmitError::Other(format!(
                    "source '{conn}' cannot participate in a multi-source transaction"
                )));
            }
            match server.prepare(per_source[conn].clone()) {
                Ok(tx) => prepared.push((conn.clone(), tx)),
                Err(e) => {
                    for (c, tx) in prepared {
                        if let Ok(s) = self.adaptors.connection(&c) {
                            s.rollback(tx);
                        }
                    }
                    return Err(SubmitError::PrepareFailed(e.to_string()));
                }
            }
        }
        for (conn, tx) in prepared {
            let server = self
                .adaptors
                .connection(&conn)
                .map_err(|e| SubmitError::Other(e.to_string()))?;
            let n = server
                .commit(tx)
                .map_err(|e| SubmitError::Other(e.to_string()))?;
            if n == 0 {
                // an optimistic conflict surfaced as zero matched rows
                let table = per_source[&conn]
                    .first()
                    .map(|(d, _)| d.table().to_string())
                    .unwrap_or_default();
                return Err(SubmitError::OptimisticConflict {
                    connection: conn,
                    table,
                });
            }
            report.rows_affected += n;
            for (stmt, _) in &per_source[&conn] {
                report
                    .statements
                    .push((conn.clone(), render_dml(stmt, server.dialect())));
            }
            report.sources_touched.push(conn);
        }
        Ok(report)
    }

    fn apply_inverse(
        &self,
        inv: &aldsp_xdm::QName,
        v: &AtomicValue,
    ) -> Result<AtomicValue, String> {
        // inverse functions are registered library natives (§4.4)
        let f = self
            .metadata
            .function(inv)
            .ok_or_else(|| format!("unknown inverse function {inv}"))?;
        let SourceBinding::Native { id } = &f.source else {
            return Err(format!("inverse {inv} is not a native library function"));
        };
        let native = self.adaptors.native(id).map_err(|e| e.to_string())?;
        let result = native
            .call(&[vec![Item::Atomic(v.clone())]])
            .map_err(|e| e.to_string())?;
        match result.as_slice() {
            [Item::Atomic(out)] => Ok(out.clone()),
            other => Err(format!(
                "inverse {inv} returned {} items instead of one",
                other.len()
            )),
        }
    }
}

fn to_sql(v: Option<&AtomicValue>) -> Result<SqlValue, String> {
    let ty = v
        .and_then(|x| SqlType::from_xml_type(x.type_of()))
        .unwrap_or(SqlType::Varchar);
    SqlValue::from_xml(v, ty)
}
