//! Service Data Objects (§6, Figure 5).
//!
//! "When updates affect an SDO object … the affected SDO object tracks
//! the changes. When a changed SDO is sent back to ALDSP, what is sent
//! back is the new XML data plus a serialized change log identifying the
//! portions of the XML data that were changed and what their previous
//! values were." [`DataObject`] is that change-tracked wrapper; its
//! [`ChangeLog`] is what submit processing consumes.

use aldsp_xdm::node::{Node, NodeKind, NodeRef};
use aldsp_xdm::value::AtomicValue;
use aldsp_xdm::QName;

/// A location inside a data object: a path of `(child name, occurrence
/// index)` steps from the root element.
pub type Path = Vec<(QName, usize)>;

/// Render a path for diagnostics and change-log serialization.
pub fn path_string(path: &[(QName, usize)]) -> String {
    let mut s = String::new();
    for (q, i) in path {
        s.push('/');
        s.push_str(q.local_name());
        if *i > 0 {
            s.push_str(&format!("[{}]", i + 1));
        }
    }
    s
}

/// One recorded change: the path, the value read, and the new value.
/// `None` models element absence (the NULL convention).
#[derive(Debug, Clone, PartialEq)]
pub struct Change {
    /// Where in the object.
    pub path: Path,
    /// The value at read time.
    pub old: Option<AtomicValue>,
    /// The value now.
    pub new: Option<AtomicValue>,
}

/// The serialized change log sent back with the data (§6).
#[derive(Debug, Clone, Default)]
pub struct ChangeLog {
    /// Changes in the order they were made (collapsed per path).
    pub changes: Vec<Change>,
}

impl ChangeLog {
    /// Is the log empty (nothing to submit)?
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }
}

/// A change-tracked data object: the XML read from a data service plus
/// the change log accumulated by setters.
#[derive(Debug, Clone)]
pub struct DataObject {
    original: NodeRef,
    current: NodeRef,
    log: ChangeLog,
}

impl DataObject {
    /// Wrap a freshly read instance.
    pub fn new(node: NodeRef) -> DataObject {
        DataObject {
            original: node.clone(),
            current: node,
            log: ChangeLog::default(),
        }
    }

    /// The data as read.
    pub fn original(&self) -> &NodeRef {
        &self.original
    }

    /// The data with changes applied.
    pub fn current(&self) -> &NodeRef {
        &self.current
    }

    /// The accumulated change log.
    pub fn change_log(&self) -> &ChangeLog {
        &self.log
    }

    /// Read the typed value at a top-level child (the common accessor:
    /// `sdo.get("LAST_NAME")`).
    pub fn get(&self, child: &str) -> Option<AtomicValue> {
        self.get_path(&[(QName::local(child), 0)])
    }

    /// Read the typed value at a path.
    pub fn get_path(&self, path: &[(QName, usize)]) -> Option<AtomicValue> {
        locate(&self.current, path).and_then(|n| n.typed_value())
    }

    /// Set the value of a top-level simple child (Figure 5's
    /// `sdo.setLAST_NAME("Smith")`).
    pub fn set(&mut self, child: &str, value: Option<AtomicValue>) -> Result<(), String> {
        self.set_path(vec![(QName::local(child), 0)], value)
    }

    /// Set the value at a path, recording the change. Setting `None`
    /// removes the element (writes NULL); setting a value on an absent
    /// (declared) child materializes it.
    pub fn set_path(&mut self, path: Path, value: Option<AtomicValue>) -> Result<(), String> {
        let old = locate(&self.current, &path).and_then(|n| n.typed_value());
        if old == value {
            return Ok(()); // no-op writes don't dirty the log
        }
        self.current = rewrite(&self.current, &path, &value)?;
        // collapse repeated writes to the same path, preserving the
        // ORIGINAL old value (what was read — that is what optimistic
        // verification needs)
        if let Some(prev) = self.log.changes.iter_mut().find(|c| c.path == path) {
            prev.new = value;
            if prev.old == prev.new {
                let p = path.clone();
                self.log.changes.retain(|c| c.path != p);
            }
        } else {
            self.log.changes.push(Change {
                path,
                old,
                new: value,
            });
        }
        Ok(())
    }

    /// Has anything changed?
    pub fn is_dirty(&self) -> bool {
        !self.log.is_empty()
    }
}

/// Find the node at `path` under `root`.
pub fn locate(root: &NodeRef, path: &[(QName, usize)]) -> Option<NodeRef> {
    let mut cur = root.clone();
    for (name, idx) in path {
        let next = cur.child_elements(name).nth(*idx)?.clone();
        cur = next;
    }
    Some(cur)
}

/// Produce a copy of `root` with the simple content at `path` replaced
/// (or the element removed for `None`). Exposed for write-through cache
/// maintenance (`crates/matview`), which patches cached result instances
/// in place with post-submit column values.
pub fn rewrite_value(
    root: &NodeRef,
    path: &[(QName, usize)],
    value: &Option<AtomicValue>,
) -> Result<NodeRef, String> {
    rewrite(root, path, value)
}

/// Produce a copy of `root` with the simple content at `path` replaced
/// (or the element removed/created for `None`/newly-set values).
fn rewrite(
    root: &NodeRef,
    path: &[(QName, usize)],
    value: &Option<AtomicValue>,
) -> Result<NodeRef, String> {
    let NodeKind::Element {
        name,
        attributes,
        children,
    } = root.kind()
    else {
        return Err("can only rewrite elements".into());
    };
    let Some(((target, idx), rest)) = path.split_first() else {
        return Err("empty path".into());
    };
    let mut new_children = Vec::with_capacity(children.len());
    let mut seen = 0usize;
    let mut handled = false;
    for c in children {
        let is_match = c.name() == Some(target) && {
            let m = seen == *idx;
            if c.name() == Some(target) {
                seen += 1;
            }
            m
        };
        if is_match {
            handled = true;
            if rest.is_empty() {
                // remove: NULL is a missing element
                if let Some(v) = value {
                    new_children.push(Node::simple_element(target.clone(), v.clone()));
                }
            } else {
                new_children.push(rewrite(c, rest, value)?);
            }
        } else {
            new_children.push(c.clone());
        }
    }
    if !handled {
        if !rest.is_empty() {
            return Err(format!(
                "no element at {} to descend into",
                path_string(&[(target.clone(), *idx)])
            ));
        }
        // removing an absent element is a no-op
        if let Some(v) = value {
            new_children.push(Node::simple_element(target.clone(), v.clone()));
        }
    }
    Ok(Node::element(
        name.clone(),
        attributes.clone(),
        new_children,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aldsp_xdm::value::AtomicValue as V;

    fn profile() -> NodeRef {
        Node::element(
            QName::local("PROFILE"),
            vec![],
            vec![
                Node::simple_element(QName::local("CID"), V::str("0815")),
                Node::simple_element(QName::local("LAST_NAME"), V::str("Jones")),
                Node::element(
                    QName::local("ORDERS"),
                    vec![],
                    vec![
                        Node::element(
                            QName::local("ORDER"),
                            vec![],
                            vec![Node::simple_element(QName::local("OID"), V::Integer(1))],
                        ),
                        Node::element(
                            QName::local("ORDER"),
                            vec![],
                            vec![Node::simple_element(QName::local("OID"), V::Integer(2))],
                        ),
                    ],
                ),
            ],
        )
    }

    #[test]
    fn figure5_set_last_name() {
        let mut sdo = DataObject::new(profile());
        assert_eq!(sdo.get("LAST_NAME"), Some(V::str("Jones")));
        sdo.set("LAST_NAME", Some(V::str("Smith"))).unwrap();
        assert_eq!(sdo.get("LAST_NAME"), Some(V::str("Smith")));
        assert!(sdo.is_dirty());
        let log = sdo.change_log();
        assert_eq!(log.changes.len(), 1);
        assert_eq!(log.changes[0].old, Some(V::str("Jones")));
        assert_eq!(log.changes[0].new, Some(V::str("Smith")));
        // the original is untouched
        assert_eq!(
            sdo.original()
                .child_elements(&QName::local("LAST_NAME"))
                .next()
                .unwrap()
                .string_value(),
            "Jones"
        );
    }

    #[test]
    fn repeated_writes_collapse_keeping_read_value() {
        let mut sdo = DataObject::new(profile());
        sdo.set("LAST_NAME", Some(V::str("Smith"))).unwrap();
        sdo.set("LAST_NAME", Some(V::str("Brown"))).unwrap();
        assert_eq!(sdo.change_log().changes.len(), 1);
        assert_eq!(sdo.change_log().changes[0].old, Some(V::str("Jones")));
        assert_eq!(sdo.change_log().changes[0].new, Some(V::str("Brown")));
        // writing back the original value clears the change
        sdo.set("LAST_NAME", Some(V::str("Jones"))).unwrap();
        assert!(!sdo.is_dirty());
    }

    #[test]
    fn null_handling_and_materialization() {
        let mut sdo = DataObject::new(profile());
        // remove → NULL
        sdo.set("LAST_NAME", None).unwrap();
        assert_eq!(sdo.get("LAST_NAME"), None);
        assert_eq!(sdo.change_log().changes[0].new, None);
        // set a previously absent child
        sdo.set("FIRST_NAME", Some(V::str("Ann"))).unwrap();
        assert_eq!(sdo.get("FIRST_NAME"), Some(V::str("Ann")));
        // no-op write records nothing
        let n = sdo.change_log().changes.len();
        sdo.set("CID", Some(V::str("0815"))).unwrap();
        assert_eq!(sdo.change_log().changes.len(), n);
    }

    #[test]
    fn nested_paths_with_indices() {
        let mut sdo = DataObject::new(profile());
        let path = vec![
            (QName::local("ORDERS"), 0),
            (QName::local("ORDER"), 1),
            (QName::local("OID"), 0),
        ];
        assert_eq!(sdo.get_path(&path), Some(V::Integer(2)));
        sdo.set_path(path.clone(), Some(V::Integer(99))).unwrap();
        assert_eq!(sdo.get_path(&path), Some(V::Integer(99)));
        assert_eq!(path_string(&path), "/ORDERS/ORDER[2]/OID");
        // descending into a missing element errors
        let bad = vec![(QName::local("NOPE"), 0), (QName::local("X"), 0)];
        assert!(sdo.set_path(bad, Some(V::Integer(1))).is_err());
    }
}
