//! # aldsp-updates — update automation (§6)
//!
//! ALDSP reads data out through data services and puts changes back with
//! Service Data Objects: [`sdo`] provides the change-tracked
//! [`sdo::DataObject`] with its serialized change log;
//! [`lineage`] computes where each piece of a data-service result
//! originated (rule-driven over the optimized plan, using primary keys,
//! predicates and the result shape — and seeing through registered
//! inverse functions, §4.4); [`submit`] decomposes a change log into
//! per-source conditioned `UPDATE`s (optimistic concurrency in the WHERE
//! clause) and applies them atomically via two-phase commit across the
//! affected sources only.

pub mod lineage;
pub mod sdo;
pub mod submit;

pub use lineage::{analyze, Lineage, LineageEntry};
pub use sdo::{rewrite_value, Change, ChangeLog, DataObject, Path};
pub use submit::{ConcurrencyPolicy, SourceDelta, SubmitError, SubmitProcessor, SubmitReport};

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use aldsp_adaptors::AdaptorRegistry;
    use aldsp_compiler::{Compiler, Options};
    use aldsp_metadata::introspect_relational;
    use aldsp_relational::{
        Catalog, Database, Dialect, RelationalServer, SqlType, SqlValue, TableSchema,
    };
    use aldsp_runtime::Runtime;
    use aldsp_xdm::item::Item;
    use aldsp_xdm::value::{AtomicValue as V, DateTime};
    use aldsp_xdm::QName;
    use std::sync::Arc;

    pub(crate) struct World {
        pub(crate) compiler: Compiler,
        pub(crate) runtime: Runtime,
        pub(crate) meta: Arc<aldsp_metadata::Registry>,
        pub(crate) adaptors: Arc<AdaptorRegistry>,
        pub(crate) db1: Arc<RelationalServer>,
        pub(crate) db2: Arc<RelationalServer>,
        pub(crate) inverses: aldsp_compiler::InverseRegistry,
    }

    pub(crate) fn world() -> World {
        let mut cat1 = Catalog::new();
        cat1.add(
            TableSchema::builder("CUSTOMER")
                .col("CID", SqlType::Varchar)
                .col("LAST_NAME", SqlType::Varchar)
                .col_null("SINCE", SqlType::Integer)
                .pk(&["CID"])
                .build()
                .unwrap(),
        )
        .unwrap();
        let mut db1 = Database::new();
        for t in cat1.tables() {
            db1.create_table(t.clone()).unwrap();
        }
        db1.insert(
            "CUSTOMER",
            vec![
                SqlValue::str("0815"),
                SqlValue::str("Jones"),
                SqlValue::Int(1000),
            ],
        )
        .unwrap();
        let mut cat2 = Catalog::new();
        cat2.add(
            TableSchema::builder("ADDRESS")
                .col("CID", SqlType::Varchar)
                .col("CITY", SqlType::Varchar)
                .pk(&["CID"])
                .build()
                .unwrap(),
        )
        .unwrap();
        let mut db2 = Database::new();
        for t in cat2.tables() {
            db2.create_table(t.clone()).unwrap();
        }
        db2.insert(
            "ADDRESS",
            vec![SqlValue::str("0815"), SqlValue::str("Seoul")],
        )
        .unwrap();
        let mut meta = aldsp_metadata::Registry::new();
        meta.register_service(&introspect_relational(&cat1, "db1", "urn:custDS").unwrap())
            .unwrap();
        meta.register_service(&introspect_relational(&cat2, "db2", "urn:addrDS").unwrap())
            .unwrap();
        let (i2d, d2i) = aldsp_adaptors::native::int2date_pair();
        for (name, from, to) in [
            (
                "int2date",
                aldsp_xdm::value::AtomicType::Integer,
                aldsp_xdm::value::AtomicType::DateTime,
            ),
            (
                "date2int",
                aldsp_xdm::value::AtomicType::DateTime,
                aldsp_xdm::value::AtomicType::Integer,
            ),
        ] {
            meta.register_function(aldsp_metadata::PhysicalFunction {
                name: QName::new("urn:lib", name),
                kind: aldsp_metadata::FunctionKind::Library,
                params: vec![aldsp_metadata::ParamDecl {
                    name: "x".into(),
                    ty: aldsp_xdm::types::SequenceType::Seq(
                        aldsp_xdm::types::ItemType::Atomic(from),
                        aldsp_xdm::types::Occurrence::Optional,
                    ),
                }],
                return_type: aldsp_xdm::types::SequenceType::Seq(
                    aldsp_xdm::types::ItemType::Atomic(to),
                    aldsp_xdm::types::Occurrence::Optional,
                ),
                source: aldsp_metadata::SourceBinding::Native {
                    id: name.to_string(),
                },
            })
            .unwrap();
        }
        let meta = Arc::new(meta);
        let db1 = Arc::new(RelationalServer::new("db1", Dialect::Oracle, db1));
        let db2 = Arc::new(RelationalServer::new("db2", Dialect::Db2, db2));
        let mut adaptors = AdaptorRegistry::new();
        adaptors.register_connection(db1.clone());
        adaptors.register_connection(db2.clone());
        adaptors.register_native(i2d);
        adaptors.register_native(d2i);
        let adaptors = Arc::new(adaptors);
        let opts = Options {
            dialects: adaptors.connection_dialects(),
            ..Default::default()
        };
        let mut compiler = Compiler::new(meta.clone(), opts);
        let mut inverses = aldsp_compiler::InverseRegistry::default();
        inverses.declare(
            QName::new("urn:lib", "int2date"),
            QName::new("urn:lib", "date2int"),
        );
        compiler.declare_inverse(
            QName::new("urn:lib", "int2date"),
            QName::new("urn:lib", "date2int"),
        );
        let runtime = Runtime::new(meta.clone(), adaptors.clone());
        World {
            compiler,
            runtime,
            meta,
            adaptors,
            db1,
            db2,
            inverses,
        }
    }

    const PROFILE_QUERY: &str = r#"
        declare namespace c = "urn:custDS";
        declare namespace a = "urn:addrDS";
        declare namespace lib = "urn:lib";
        for $c in c:CUSTOMER()
        return
          <PROFILE>
            <CID>{fn:data($c/CID)}</CID>
            <LAST_NAME>{fn:data($c/LAST_NAME)}</LAST_NAME>
            <SINCE>{lib:int2date($c/SINCE)}</SINCE>
            <CITY>{
              for $a in a:ADDRESS() where $a/CID eq $c/CID return fn:data($a/CITY)
            }</CITY>
          </PROFILE>"#;

    pub(crate) fn read_profile(w: &World) -> (DataObject, Lineage) {
        let q = w.compiler.compile_query(PROFILE_QUERY).unwrap();
        let lineage = analyze(&w.meta, &q).unwrap();
        let out = w.runtime.execute(&q, &[]).unwrap();
        let Item::Node(node) = &out[0] else {
            panic!("expected a node")
        };
        (DataObject::new(node.clone()), lineage)
    }

    #[test]
    fn lineage_maps_result_paths_to_sources() {
        let w = world();
        let q = w.compiler.compile_query(PROFILE_QUERY).unwrap();
        let lineage = analyze(&w.meta, &q).unwrap();
        let last = lineage
            .entry(&vec![(QName::local("LAST_NAME"), 0)])
            .expect("LAST_NAME mapped");
        assert_eq!(last.connection, "db1");
        assert_eq!(last.table, "CUSTOMER");
        assert_eq!(last.column, "LAST_NAME");
        assert!(last.inverse.is_none());
        // the transformed SINCE is mapped with its forward function
        let since = lineage
            .entry(&vec![(QName::local("SINCE"), 0)])
            .expect("SINCE mapped");
        assert_eq!(since.inverse.as_ref().unwrap().local_name(), "int2date");
        // the cross-source CITY is mapped to db2
        let city = lineage
            .entry(&vec![(QName::local("CITY"), 0)])
            .expect("CITY mapped");
        assert_eq!(city.connection, "db2");
        assert_eq!(city.table, "ADDRESS");
        // keys: CUSTOMER's CID surfaces at /CID
        let keys = &lineage.keys[&("db1".to_string(), "CUSTOMER".to_string())];
        assert_eq!(keys[0].0, "CID");
        assert_eq!(keys[0].1, vec![(QName::local("CID"), 0)]);
    }

    #[test]
    fn figure5_update_propagates_only_to_affected_source() {
        let w = world();
        let (mut sdo, lineage) = read_profile(&w);
        sdo.set("LAST_NAME", Some(V::str("Smith"))).unwrap();
        let proc = SubmitProcessor::new(
            &w.adaptors,
            &w.meta,
            &lineage,
            &w.inverses,
            ConcurrencyPolicy::UpdatedValues,
        );
        let db2_before = w.db2.stats().roundtrips;
        let report = proc.submit(&sdo).unwrap();
        assert_eq!(report.rows_affected, 1);
        assert_eq!(report.sources_touched, vec!["db1"]);
        // "the other sources involved … are unaffected and will not
        // participate in this update at all" (§6)
        assert_eq!(w.db2.stats().roundtrips, db2_before);
        // the generated UPDATE carries the optimistic condition
        let (conn, sql) = &report.statements[0];
        assert_eq!(conn, "db1");
        assert!(sql.contains("SET \"LAST_NAME\" = ?"), "{sql}");
        assert!(
            sql.contains("\"CID\" = ?") && sql.contains("\"LAST_NAME\" = ?"),
            "{sql}"
        );
        // the database changed
        assert_eq!(
            w.db1
                .with_db(|d| d.table("CUSTOMER").unwrap().rows()[0][1].clone()),
            SqlValue::str("Smith")
        );
    }

    #[test]
    fn optimistic_conflict_detected() {
        let w = world();
        let (mut sdo, lineage) = read_profile(&w);
        // someone else changes the row between read and submit
        w.db1
            .with_db_mut(|d| {
                d.execute_dml(
                    &aldsp_relational::Dml::Update(aldsp_relational::Update {
                        table: "CUSTOMER".into(),
                        alias: "t1".into(),
                        set: vec![(
                            "LAST_NAME".into(),
                            aldsp_relational::ScalarExpr::lit(SqlValue::str("Intruder")),
                        )],
                        where_: None,
                    }),
                    &[],
                )
            })
            .unwrap();
        sdo.set("LAST_NAME", Some(V::str("Smith"))).unwrap();
        let proc = SubmitProcessor::new(
            &w.adaptors,
            &w.meta,
            &lineage,
            &w.inverses,
            ConcurrencyPolicy::UpdatedValues,
        );
        let err = proc.submit(&sdo).unwrap_err();
        assert!(
            matches!(err, SubmitError::OptimisticConflict { .. }),
            "{err}"
        );
        // the intruder's value survives
        assert_eq!(
            w.db1
                .with_db(|d| d.table("CUSTOMER").unwrap().rows()[0][1].clone()),
            SqlValue::str("Intruder")
        );
        // with no verification, last writer wins
        let proc = SubmitProcessor::new(
            &w.adaptors,
            &w.meta,
            &lineage,
            &w.inverses,
            ConcurrencyPolicy::None,
        );
        proc.submit(&sdo).unwrap();
        assert_eq!(
            w.db1
                .with_db(|d| d.table("CUSTOMER").unwrap().rows()[0][1].clone()),
            SqlValue::str("Smith")
        );
    }

    #[test]
    fn inverse_function_applied_on_write() {
        // §4.4/§6: SINCE surfaces as xs:dateTime; writing it stores the
        // epoch-seconds integer via date2int
        let w = world();
        let (mut sdo, lineage) = read_profile(&w);
        assert_eq!(sdo.get("SINCE"), Some(V::DateTime(DateTime(1000))));
        sdo.set("SINCE", Some(V::DateTime(DateTime(5000)))).unwrap();
        let proc = SubmitProcessor::new(
            &w.adaptors,
            &w.meta,
            &lineage,
            &w.inverses,
            ConcurrencyPolicy::UpdatedValues,
        );
        proc.submit(&sdo).unwrap();
        assert_eq!(
            w.db1
                .with_db(|d| d.table("CUSTOMER").unwrap().rows()[0][2].clone()),
            SqlValue::Int(5000)
        );
    }

    #[test]
    fn multi_source_update_uses_two_phase_commit() {
        let w = world();
        let (mut sdo, lineage) = read_profile(&w);
        sdo.set("LAST_NAME", Some(V::str("Smith"))).unwrap();
        sdo.set("CITY", Some(V::str("Busan"))).unwrap();
        let proc = SubmitProcessor::new(
            &w.adaptors,
            &w.meta,
            &lineage,
            &w.inverses,
            ConcurrencyPolicy::UpdatedValues,
        );
        let report = proc.submit(&sdo).unwrap();
        assert_eq!(report.rows_affected, 2);
        assert_eq!(report.sources_touched.len(), 2);
        assert_eq!(
            w.db2
                .with_db(|d| d.table("ADDRESS").unwrap().rows()[0][1].clone()),
            SqlValue::str("Busan")
        );
    }

    #[test]
    fn prepare_failure_aborts_all_sources() {
        let w = world();
        let (mut sdo, lineage) = read_profile(&w);
        sdo.set("LAST_NAME", Some(V::str("Smith"))).unwrap();
        sdo.set("CITY", Some(V::str("Busan"))).unwrap();
        w.db2.fail_next_prepare();
        let proc = SubmitProcessor::new(
            &w.adaptors,
            &w.meta,
            &lineage,
            &w.inverses,
            ConcurrencyPolicy::UpdatedValues,
        );
        let err = proc.submit(&sdo).unwrap_err();
        assert!(matches!(err, SubmitError::PrepareFailed(_)), "{err}");
        // neither source changed
        assert_eq!(
            w.db1
                .with_db(|d| d.table("CUSTOMER").unwrap().rows()[0][1].clone()),
            SqlValue::str("Jones")
        );
        assert_eq!(
            w.db2
                .with_db(|d| d.table("ADDRESS").unwrap().rows()[0][1].clone()),
            SqlValue::str("Seoul")
        );
    }

    #[test]
    fn primary_keys_are_not_writable() {
        let w = world();
        let (mut sdo, lineage) = read_profile(&w);
        sdo.set("CID", Some(V::str("9999"))).unwrap();
        let proc = SubmitProcessor::new(
            &w.adaptors,
            &w.meta,
            &lineage,
            &w.inverses,
            ConcurrencyPolicy::UpdatedValues,
        );
        let err = proc.submit(&sdo).unwrap_err();
        assert!(matches!(err, SubmitError::NotWritable(_)), "{err}");
    }

    #[test]
    fn clean_object_is_a_noop_submit() {
        let w = world();
        let (sdo, lineage) = read_profile(&w);
        let proc = SubmitProcessor::new(
            &w.adaptors,
            &w.meta,
            &lineage,
            &w.inverses,
            ConcurrencyPolicy::UpdatedValues,
        );
        let report = proc.submit(&sdo).unwrap();
        assert_eq!(report.rows_affected, 0);
        assert!(report.sources_touched.is_empty());
    }
}

#[cfg(test)]
mod policy_tests {
    use super::tests::*;
    use super::*;
    use aldsp_relational::SqlValue;
    use aldsp_xdm::value::AtomicValue as V;

    #[test]
    fn all_values_read_policy_detects_unrelated_changes() {
        let w = world();
        let (mut sdo, lineage) = read_profile(&w);
        // an unrelated column changes behind our back
        w.db1
            .with_db_mut(|d| {
                d.execute_dml(
                    &aldsp_relational::Dml::Update(aldsp_relational::Update {
                        table: "CUSTOMER".into(),
                        alias: "t1".into(),
                        set: vec![(
                            "SINCE".into(),
                            aldsp_relational::ScalarExpr::lit(SqlValue::Int(999_999)),
                        )],
                        where_: None,
                    }),
                    &[],
                )
            })
            .expect("background write");
        sdo.set("LAST_NAME", Some(V::str("Smith")))
            .expect("writable");
        // UpdatedValues doesn't look at SINCE → succeeds
        let proc = SubmitProcessor::new(
            &w.adaptors,
            &w.meta,
            &lineage,
            &w.inverses,
            ConcurrencyPolicy::UpdatedValues,
        );
        proc.submit(&sdo)
            .expect("only the changed column is verified");
        // restore and repeat under AllValuesRead → conflict, because the
        // read snapshot no longer matches SINCE (it is lineage-mapped
        // through int2date… which is skipped; use CITY on db2 instead)
        let (mut sdo2, _) = read_profile(&w);
        w.db1
            .with_db_mut(|d| {
                d.execute_dml(
                    &aldsp_relational::Dml::Update(aldsp_relational::Update {
                        table: "CUSTOMER".into(),
                        alias: "t1".into(),
                        set: vec![(
                            "LAST_NAME".into(),
                            aldsp_relational::ScalarExpr::lit(SqlValue::str("Changed")),
                        )],
                        where_: None,
                    }),
                    &[],
                )
            })
            .expect("background write");
        // touch LAST_NAME (so CUSTOMER participates); AllValuesRead then
        // verifies every lineage-mapped CUSTOMER column against the read
        // snapshot and catches the intruder's write. Note: per §6,
        // unaffected sources are "not involved in the update at all", so
        // verification can only cover participating tables.
        sdo2.set("CITY", Some(V::str("Busan"))).expect("writable");
        sdo2.set("LAST_NAME", Some(V::str("Brown")))
            .expect("writable");
        let proc = SubmitProcessor::new(
            &w.adaptors,
            &w.meta,
            &lineage,
            &w.inverses,
            ConcurrencyPolicy::AllValuesRead,
        );
        let err = proc.submit(&sdo2).expect_err("snapshot no longer matches");
        assert!(
            matches!(
                err,
                SubmitError::OptimisticConflict { .. } | SubmitError::PrepareFailed(_)
            ),
            "{err}"
        );
    }

    #[test]
    fn designated_column_policy() {
        // §6: "requiring a designated subset of the data (e.g., a
        // timestamp element or attribute) to still be the same"
        let w = world();
        let (mut sdo, lineage) = read_profile(&w);
        sdo.set("LAST_NAME", Some(V::str("Smith")))
            .expect("writable");
        // designate CID (unchanged, still matches) → succeeds even if
        // LAST_NAME itself was changed concurrently
        w.db1
            .with_db_mut(|d| {
                d.execute_dml(
                    &aldsp_relational::Dml::Update(aldsp_relational::Update {
                        table: "CUSTOMER".into(),
                        alias: "t1".into(),
                        set: vec![(
                            "LAST_NAME".into(),
                            aldsp_relational::ScalarExpr::lit(SqlValue::str("Intruder")),
                        )],
                        where_: None,
                    }),
                    &[],
                )
            })
            .expect("background write");
        let proc = SubmitProcessor::new(
            &w.adaptors,
            &w.meta,
            &lineage,
            &w.inverses,
            ConcurrencyPolicy::Designated(vec!["CID".into()]),
        );
        let report = proc.submit(&sdo).expect("designated column still matches");
        assert_eq!(report.rows_affected, 1);
        assert_eq!(
            w.db1
                .with_db(|d| d.table("CUSTOMER").expect("t").rows()[0][1].clone()),
            SqlValue::str("Smith"),
            "last writer wins under the designated policy"
        );
    }
}
