//! Offline shim for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! provides a minimal wall-clock harness with criterion's API shape:
//! [`Criterion`], benchmark groups with `sample_size`/
//! `measurement_time`, `bench_function`/`bench_with_input`,
//! [`BenchmarkId`], [`black_box`], and the `criterion_group!` /
//! `criterion_main!` macros. Statistics are deliberately simple — each
//! sample times a batch of iterations and the harness reports
//! min/mean/max per iteration — because the workspace's benches compare
//! configurations against each other rather than chasing
//! microsecond-grade rigor.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// A benchmark identifier: `function_id` plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    pub fn new(function_id: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    budget: Duration,
    /// Per-iteration durations collected by `iter`.
    times: Vec<Duration>,
}

impl Bencher {
    /// Run `f` repeatedly, recording per-iteration wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // warmup (also primes caches the measured loop relies on)
        black_box(f());
        let deadline = Instant::now() + self.budget;
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            self.times.push(t0.elapsed());
            if Instant::now() >= deadline {
                break;
            }
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Set the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Set the per-benchmark time budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmark `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            budget: self.measurement_time,
            times: Vec::new(),
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id.id), &b.times);
        self.criterion.ran += 1;
        self
    }

    /// Benchmark `f` with an input value under `id`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (prints nothing extra; kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    ran: usize,
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size: 20,
            measurement_time: Duration::from_secs(3),
        }
    }

    /// Benchmark a standalone function.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: 20,
            budget: Duration::from_secs(3),
            times: Vec::new(),
        };
        f(&mut b);
        report(&id.id, &b.times);
        self.ran += 1;
        self
    }
}

fn report(name: &str, times: &[Duration]) {
    if times.is_empty() {
        println!("{name:<48} (no samples)");
        return;
    }
    let total: Duration = times.iter().sum();
    let mean = total / times.len() as u32;
    let min = times.iter().min().expect("non-empty");
    let max = times.iter().max().expect("non-empty");
    let median = median(times);
    println!(
        "{name:<48} time: [{} {} {}]  (mean {}, {} samples)",
        fmt_dur(*min),
        fmt_dur(median),
        fmt_dur(*max),
        fmt_dur(mean),
        times.len()
    );
}

/// The sample median — the point estimate the `[min median max]` report
/// centers on, robust to a stray slow sample in small sample sets.
fn median(times: &[Duration]) -> Duration {
    let mut sorted = times.to_vec();
    sorted.sort_unstable();
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2
    }
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.4} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.4} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.4} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Declare a benchmark group function (criterion-compatible).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the benchmark binary's `main` (criterion-compatible).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.measurement_time(Duration::from_millis(50));
        let mut runs = 0;
        group.bench_function("noop", |b| b.iter(|| runs += 1));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, p| {
            b.iter(|| black_box(*p * 2))
        });
        group.finish();
        assert!(runs >= 1);
    }

    #[test]
    fn median_of_odd_and_even_sample_sets() {
        let ms = Duration::from_millis;
        assert_eq!(median(&[ms(5), ms(1), ms(9)]), ms(5));
        assert_eq!(median(&[ms(1), ms(9), ms(3), ms(5)]), ms(4));
    }
}
