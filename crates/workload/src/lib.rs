//! Workload governor: admission control, deadlines, per-source concurrency
//! caps, and per-query memory budgets.
//!
//! ALDSP sits in the middle tier between many concurrent clients and a few
//! slow, failure-prone sources (paper §2, §5). This crate rations the
//! mid-tier's resources with four cooperating mechanisms:
//!
//! * [`Governor`] — a server-wide concurrency limit with a bounded,
//!   priority-aware FIFO wait queue. When the queue is full, requests are
//!   shed immediately with [`WorkloadError::Overloaded`] instead of piling
//!   up behind a saturated server (fast rejection, graceful degradation).
//! * [`QueryBudget`] — a per-query handle carrying an optional deadline and
//!   an optional memory cap. Operators check it cooperatively at row
//!   boundaries and before each source roundtrip, so a timed-out query
//!   stops doing work mid-stream.
//! * [`SourceGates`] / [`Gate`] — a counting semaphore per physical source
//!   bounding in-flight requests; PP-k prefetch threads acquire the same
//!   permits as foreground scans. Wait time is recorded on the budget.
//! * Memory accounting — blocking operators charge bytes against the
//!   budget and abort with [`WorkloadError::BudgetExceeded`] when the cap
//!   is hit.
//!
//! The crate is a leaf: it depends only on `std`, so `relational`,
//! `adaptors`, `runtime`, and `core` can all use it without cycles.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Scheduling class for a request. `Interactive` requests are admitted
/// ahead of any queued `Batch` request regardless of arrival order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    #[default]
    Interactive,
    Batch,
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Priority::Interactive => write!(f, "interactive"),
            Priority::Batch => write!(f, "batch"),
        }
    }
}

/// Typed errors raised by the governor and budget machinery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadError {
    /// Admission queue was full; the request was shed without waiting.
    Overloaded { running: usize, queued: usize },
    /// The query's deadline elapsed (possibly mid-stream).
    DeadlineExceeded {
        deadline: Duration,
        elapsed: Duration,
    },
    /// A blocking operator pushed the query past its memory cap.
    BudgetExceeded {
        requested_bytes: u64,
        used_bytes: u64,
        cap_bytes: u64,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::Overloaded { running, queued } => write!(
                f,
                "server overloaded: {running} queries running, {queued} queued, admission queue full"
            ),
            WorkloadError::DeadlineExceeded { deadline, elapsed } => write!(
                f,
                "deadline of {deadline:?} exceeded after {elapsed:?}"
            ),
            WorkloadError::BudgetExceeded {
                requested_bytes,
                used_bytes,
                cap_bytes,
            } => write!(
                f,
                "memory budget exceeded: {used_bytes} bytes held + {requested_bytes} requested > cap {cap_bytes}"
            ),
        }
    }
}

impl std::error::Error for WorkloadError {}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

// ---------------------------------------------------------------------------
// QueryBudget
// ---------------------------------------------------------------------------

/// Per-query resource envelope: optional wall-clock deadline, optional
/// memory cap, and counters accumulated across every thread working on the
/// query (foreground pipeline, PP-k prefetchers, parallel scans).
///
/// Shared as `Arc<QueryBudget>`; all methods take `&self`.
pub struct QueryBudget {
    started: Instant,
    deadline: Option<Duration>,
    mem_cap: Option<u64>,
    mem_used: AtomicU64,
    mem_peak: AtomicU64,
    permit_wait_ns: AtomicU64,
    /// Cancellation flag guarded by a mutex so sleepers can wait on `cv`.
    cancelled: Mutex<bool>,
    cv: Condvar,
}

impl QueryBudget {
    pub fn new(deadline: Option<Duration>, mem_cap: Option<u64>) -> Self {
        QueryBudget {
            started: Instant::now(),
            deadline,
            mem_cap,
            mem_used: AtomicU64::new(0),
            mem_peak: AtomicU64::new(0),
            permit_wait_ns: AtomicU64::new(0),
            cancelled: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    /// A budget with no deadline and no memory cap (counters still work).
    pub fn unlimited() -> Self {
        QueryBudget::new(None, None)
    }

    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    pub fn mem_cap(&self) -> Option<u64> {
        self.mem_cap
    }

    /// Time left before the deadline; `None` when no deadline is set.
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_sub(self.started.elapsed()))
    }

    /// Mark the query cancelled and wake any thread sleeping on this budget
    /// (simulated roundtrip latency, gate waits, admission waits).
    pub fn cancel(&self) {
        *lock(&self.cancelled) = true;
        self.cv.notify_all();
    }

    pub fn is_cancelled(&self) -> bool {
        *lock(&self.cancelled)
    }

    /// Cooperative check, called at operator row boundaries and before each
    /// source roundtrip. Converts an elapsed deadline into cancellation so
    /// sibling threads notice promptly.
    pub fn check(&self) -> Result<(), WorkloadError> {
        if let Some(d) = self.deadline {
            let elapsed = self.started.elapsed();
            if elapsed >= d || self.is_cancelled() {
                self.cancel();
                return Err(WorkloadError::DeadlineExceeded {
                    deadline: d,
                    elapsed,
                });
            }
        } else if self.is_cancelled() {
            // Explicit cancel without a deadline still stops the query.
            return Err(WorkloadError::DeadlineExceeded {
                deadline: Duration::ZERO,
                elapsed: self.started.elapsed(),
            });
        }
        Ok(())
    }

    /// Sleep for `dur`, waking early if the query is cancelled or its
    /// deadline falls inside the sleep. Returns `true` if the full duration
    /// elapsed, `false` if the sleep was interrupted (the budget is then
    /// marked cancelled when the deadline was the cause).
    pub fn bounded_sleep(&self, dur: Duration) -> bool {
        let cap = match self.remaining() {
            Some(r) if r < dur => r,
            _ => dur,
        };
        let wake = Instant::now() + cap;
        let mut cancelled = lock(&self.cancelled);
        loop {
            if *cancelled {
                return false;
            }
            let now = Instant::now();
            if now >= wake {
                break;
            }
            let (g, _) = self
                .cv
                .wait_timeout(cancelled, wake - now)
                .unwrap_or_else(PoisonError::into_inner);
            cancelled = g;
        }
        drop(cancelled);
        if cap < dur {
            // Deadline fell inside the requested sleep: the query is done for.
            self.cancel();
            return false;
        }
        true
    }

    /// Charge `bytes` of buffered state against the memory cap.
    pub fn charge(&self, bytes: u64) -> Result<(), WorkloadError> {
        let prev = self.mem_used.fetch_add(bytes, Ordering::Relaxed);
        let now = prev + bytes;
        if let Some(cap) = self.mem_cap {
            if now > cap {
                self.mem_used.fetch_sub(bytes, Ordering::Relaxed);
                return Err(WorkloadError::BudgetExceeded {
                    requested_bytes: bytes,
                    used_bytes: prev,
                    cap_bytes: cap,
                });
            }
        }
        self.mem_peak.fetch_max(now, Ordering::Relaxed);
        Ok(())
    }

    /// Return `bytes` previously charged (an operator drained its buffer).
    pub fn release(&self, bytes: u64) {
        self.mem_used.fetch_sub(bytes, Ordering::Relaxed);
    }

    pub fn used_memory_bytes(&self) -> u64 {
        self.mem_used.load(Ordering::Relaxed)
    }

    pub fn peak_memory_bytes(&self) -> u64 {
        self.mem_peak.load(Ordering::Relaxed)
    }

    /// Record time spent waiting on a source gate (any thread of the query).
    pub fn note_permit_wait(&self, ns: u64) {
        self.permit_wait_ns.fetch_add(ns, Ordering::Relaxed);
    }

    pub fn permit_wait_ns(&self) -> u64 {
        self.permit_wait_ns.load(Ordering::Relaxed)
    }
}

/// RAII handle for a worker's share of one query's memory budget.
///
/// Morsel-driven execution runs several workers against the *same*
/// [`QueryBudget`]: admission control promised the query one memory
/// cap, and parallelism must not multiply it. Each worker charges its
/// buffered state through its own `ChargeScope`; all scopes hit the
/// shared atomic `mem_used`, so the cap bounds the query's **total**
/// across workers, and the first worker to overflow gets the typed
/// [`WorkloadError::BudgetExceeded`]. Dropping a scope releases exactly
/// what it still holds — a worker that aborts (error, panic, budget
/// trip on a sibling) cannot leak its charges — while [`take`]
/// transfers held bytes to whoever owns the merged result so the
/// charges live as long as the buffered data does.
///
/// With no budget attached (`None`), every operation is a no-op, so
/// operators charge unconditionally without branching on budget
/// presence.
///
/// [`take`]: ChargeScope::take
#[derive(Debug)]
pub struct ChargeScope<'a> {
    budget: Option<&'a QueryBudget>,
    held: u64,
}

impl<'a> ChargeScope<'a> {
    /// A scope charging against `budget` (or a no-op scope for `None`).
    pub fn new(budget: Option<&'a QueryBudget>) -> ChargeScope<'a> {
        ChargeScope { budget, held: 0 }
    }

    /// Charge `bytes` against the shared budget, recording them so this
    /// scope's drop (or [`take`](ChargeScope::take)) accounts for them.
    pub fn charge(&mut self, bytes: u64) -> Result<(), WorkloadError> {
        if let Some(b) = self.budget {
            b.charge(bytes)?;
            self.held += bytes;
        }
        Ok(())
    }

    /// Bytes this scope currently holds.
    pub fn held(&self) -> u64 {
        self.held
    }

    /// Transfer ownership of the held bytes to the caller: the scope
    /// forgets them (its drop releases nothing) and the caller becomes
    /// responsible for releasing them against the same budget.
    pub fn take(&mut self) -> u64 {
        std::mem::take(&mut self.held)
    }
}

impl Drop for ChargeScope<'_> {
    fn drop(&mut self) {
        if let Some(b) = self.budget {
            if self.held > 0 {
                b.release(self.held);
            }
        }
    }
}

impl fmt::Debug for QueryBudget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("QueryBudget")
            .field("deadline", &self.deadline)
            .field("mem_cap", &self.mem_cap)
            .field("mem_used", &self.used_memory_bytes())
            .finish()
    }
}

impl Default for QueryBudget {
    fn default() -> Self {
        QueryBudget::unlimited()
    }
}

// ---------------------------------------------------------------------------
// Source gates: per-source counting semaphores
// ---------------------------------------------------------------------------

/// A counting semaphore bounding in-flight requests to one physical source.
pub struct Gate {
    name: String,
    cap: usize,
    in_use: Mutex<usize>,
    cv: Condvar,
}

impl Gate {
    fn new(name: &str, cap: usize) -> Arc<Gate> {
        Arc::new(Gate {
            name: name.to_string(),
            cap,
            in_use: Mutex::new(0),
            cv: Condvar::new(),
        })
    }

    /// Acquire a permit, waiting as long as the budget's deadline allows.
    /// Wait time is recorded on the budget when one is supplied.
    pub fn acquire(
        self: &Arc<Gate>,
        budget: Option<&QueryBudget>,
    ) -> Result<GatePermit, WorkloadError> {
        let t0 = Instant::now();
        let mut in_use = lock(&self.in_use);
        while *in_use >= self.cap {
            if let Some(b) = budget {
                b.check().inspect_err(|_| {
                    b.note_permit_wait(t0.elapsed().as_nanos() as u64);
                })?;
                // Wake at least by the deadline; spurious wakeups re-check.
                let chunk = b
                    .remaining()
                    .unwrap_or(Duration::from_millis(50))
                    .min(Duration::from_millis(50));
                let (g, _) = self
                    .cv
                    .wait_timeout(in_use, chunk.max(Duration::from_micros(100)))
                    .unwrap_or_else(PoisonError::into_inner);
                in_use = g;
            } else {
                in_use = self.cv.wait(in_use).unwrap_or_else(PoisonError::into_inner);
            }
        }
        *in_use += 1;
        drop(in_use);
        let waited = t0.elapsed();
        if let Some(b) = budget {
            if !waited.is_zero() {
                b.note_permit_wait(waited.as_nanos() as u64);
            }
        }
        Ok(GatePermit {
            gate: Arc::clone(self),
        })
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn cap(&self) -> usize {
        self.cap
    }

    pub fn in_use(&self) -> usize {
        *lock(&self.in_use)
    }
}

/// RAII permit; dropping it releases the gate slot.
pub struct GatePermit {
    gate: Arc<Gate>,
}

impl Drop for GatePermit {
    fn drop(&mut self) {
        let mut in_use = lock(&self.gate.in_use);
        *in_use = in_use.saturating_sub(1);
        drop(in_use);
        self.gate.cv.notify_one();
    }
}

/// Lazily-built map of per-source gates, keyed by source (connection or
/// service) name. A cap of 0 disables gating entirely.
#[derive(Default)]
pub struct SourceGates {
    cap: AtomicUsize,
    gates: Mutex<std::collections::HashMap<String, Arc<Gate>>>,
}

impl SourceGates {
    pub fn new() -> SourceGates {
        SourceGates::default()
    }

    /// Set the per-source in-flight cap. 0 disables gating.
    pub fn set_cap(&self, cap: usize) {
        self.cap.store(cap, Ordering::Relaxed);
    }

    pub fn cap(&self) -> usize {
        self.cap.load(Ordering::Relaxed)
    }

    /// The gate for `source`, or `None` when gating is disabled.
    pub fn gate(&self, source: &str) -> Option<Arc<Gate>> {
        let cap = self.cap();
        if cap == 0 {
            return None;
        }
        let mut gates = lock(&self.gates);
        Some(Arc::clone(
            gates
                .entry(source.to_string())
                .or_insert_with(|| Gate::new(source, cap)),
        ))
    }
}

// ---------------------------------------------------------------------------
// Governor: server-wide admission control
// ---------------------------------------------------------------------------

/// Admission-control configuration. `max_concurrent == 0` disables the
/// governor (every request is admitted immediately).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GovernorConfig {
    pub max_concurrent: usize,
    pub queue_capacity: usize,
}

struct AdmissionState {
    running: usize,
    interactive: VecDeque<u64>,
    batch: VecDeque<u64>,
    next_ticket: u64,
}

impl AdmissionState {
    fn queued(&self) -> usize {
        self.interactive.len() + self.batch.len()
    }

    fn head(&self) -> Option<u64> {
        self.interactive.front().or(self.batch.front()).copied()
    }

    fn remove(&mut self, ticket: u64) {
        self.interactive.retain(|&t| t != ticket);
        self.batch.retain(|&t| t != ticket);
    }
}

/// Monotonic counters exported by the governor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GovernorSnapshot {
    pub admitted: u64,
    pub shed: u64,
    pub running: usize,
    pub queued: usize,
    pub queue_peak: usize,
    pub admission_wait_ns: u64,
}

/// Server-wide admission controller: at most `max_concurrent` queries run;
/// up to `queue_capacity` more wait FIFO-within-priority; the rest are shed.
pub struct Governor {
    cfg: GovernorConfig,
    state: Mutex<AdmissionState>,
    cv: Condvar,
    admitted: AtomicU64,
    shed: AtomicU64,
    queue_peak: AtomicUsize,
    admission_wait_ns: AtomicU64,
}

impl Governor {
    pub fn new(cfg: GovernorConfig) -> Arc<Governor> {
        Arc::new(Governor {
            cfg,
            state: Mutex::new(AdmissionState {
                running: 0,
                interactive: VecDeque::new(),
                batch: VecDeque::new(),
                next_ticket: 0,
            }),
            cv: Condvar::new(),
            admitted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            queue_peak: AtomicUsize::new(0),
            admission_wait_ns: AtomicU64::new(0),
        })
    }

    pub fn config(&self) -> GovernorConfig {
        self.cfg
    }

    pub fn enabled(&self) -> bool {
        self.cfg.max_concurrent > 0
    }

    /// Admit a request, waiting in the priority queue if the server is at
    /// its concurrency limit. Sheds immediately when the queue is full and
    /// gives up (with `DeadlineExceeded`) if the budget's deadline elapses
    /// while queued.
    pub fn admit(
        self: &Arc<Governor>,
        priority: Priority,
        budget: &QueryBudget,
    ) -> Result<AdmissionPermit, WorkloadError> {
        if !self.enabled() {
            return Ok(AdmissionPermit { gov: None });
        }
        let t0 = Instant::now();
        let mut st = lock(&self.state);
        if st.running < self.cfg.max_concurrent && st.queued() == 0 {
            st.running += 1;
            self.admitted.fetch_add(1, Ordering::Relaxed);
            return Ok(AdmissionPermit {
                gov: Some(Arc::clone(self)),
            });
        }
        if st.queued() >= self.cfg.queue_capacity {
            let err = WorkloadError::Overloaded {
                running: st.running,
                queued: st.queued(),
            };
            drop(st);
            self.shed.fetch_add(1, Ordering::Relaxed);
            return Err(err);
        }
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        match priority {
            Priority::Interactive => st.interactive.push_back(ticket),
            Priority::Batch => st.batch.push_back(ticket),
        }
        self.queue_peak.fetch_max(st.queued(), Ordering::Relaxed);
        loop {
            if st.running < self.cfg.max_concurrent && st.head() == Some(ticket) {
                st.remove(ticket);
                st.running += 1;
                drop(st);
                let waited = t0.elapsed().as_nanos() as u64;
                self.admitted.fetch_add(1, Ordering::Relaxed);
                self.admission_wait_ns.fetch_add(waited, Ordering::Relaxed);
                return Ok(AdmissionPermit {
                    gov: Some(Arc::clone(self)),
                });
            }
            if let Err(e) = budget.check() {
                st.remove(ticket);
                drop(st);
                self.cv.notify_all();
                return Err(e);
            }
            let chunk = budget
                .remaining()
                .unwrap_or(Duration::from_millis(50))
                .min(Duration::from_millis(50))
                .max(Duration::from_micros(100));
            let (g, _) = self
                .cv
                .wait_timeout(st, chunk)
                .unwrap_or_else(PoisonError::into_inner);
            st = g;
        }
    }

    fn release(&self) {
        let mut st = lock(&self.state);
        st.running = st.running.saturating_sub(1);
        drop(st);
        self.cv.notify_all();
    }

    pub fn snapshot(&self) -> GovernorSnapshot {
        let st = lock(&self.state);
        GovernorSnapshot {
            admitted: self.admitted.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            running: st.running,
            queued: st.queued(),
            queue_peak: self.queue_peak.load(Ordering::Relaxed),
            admission_wait_ns: self.admission_wait_ns.load(Ordering::Relaxed),
        }
    }
}

/// RAII admission slot; dropping it frees the slot and wakes queued waiters.
pub struct AdmissionPermit {
    gov: Option<Arc<Governor>>,
}

impl Drop for AdmissionPermit {
    fn drop(&mut self) {
        if let Some(g) = self.gov.take() {
            g.release();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn budget_deadline_trips_check() {
        let b = QueryBudget::new(Some(Duration::from_millis(5)), None);
        assert!(b.check().is_ok());
        thread::sleep(Duration::from_millis(8));
        match b.check() {
            Err(WorkloadError::DeadlineExceeded { deadline, .. }) => {
                assert_eq!(deadline, Duration::from_millis(5));
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        assert!(b.is_cancelled());
    }

    #[test]
    fn bounded_sleep_wakes_at_deadline() {
        let b = QueryBudget::new(Some(Duration::from_millis(10)), None);
        let t0 = Instant::now();
        let completed = b.bounded_sleep(Duration::from_millis(200));
        assert!(!completed);
        assert!(t0.elapsed() < Duration::from_millis(100));
        assert!(b.is_cancelled());
    }

    #[test]
    fn bounded_sleep_wakes_on_cancel() {
        let b = Arc::new(QueryBudget::unlimited());
        let b2 = Arc::clone(&b);
        let h = thread::spawn(move || {
            let t0 = Instant::now();
            let completed = b2.bounded_sleep(Duration::from_secs(5));
            (completed, t0.elapsed())
        });
        thread::sleep(Duration::from_millis(10));
        b.cancel();
        let (completed, took) = h.join().unwrap();
        assert!(!completed);
        assert!(took < Duration::from_secs(1));
    }

    #[test]
    fn memory_charges_and_cap() {
        let b = QueryBudget::new(None, Some(1024));
        b.charge(1000).unwrap();
        match b.charge(100) {
            Err(WorkloadError::BudgetExceeded {
                requested_bytes,
                used_bytes,
                cap_bytes,
            }) => {
                assert_eq!(requested_bytes, 100);
                assert_eq!(used_bytes, 1000);
                assert_eq!(cap_bytes, 1024);
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
        b.release(1000);
        b.charge(24).unwrap();
        assert_eq!(b.peak_memory_bytes(), 1000);
    }

    #[test]
    fn gate_bounds_inflight() {
        let gates = SourceGates::new();
        gates.set_cap(2);
        let gate = gates.gate("db1").unwrap();
        let peak = Arc::new(AtomicUsize::new(0));
        thread::scope(|s| {
            for _ in 0..6 {
                let gate = Arc::clone(&gate);
                let peak = Arc::clone(&peak);
                s.spawn(move || {
                    let _p = gate.acquire(None).unwrap();
                    let now = gate.in_use();
                    peak.fetch_max(now, Ordering::Relaxed);
                    thread::sleep(Duration::from_millis(5));
                });
            }
        });
        assert!(peak.load(Ordering::Relaxed) <= 2);
        assert_eq!(gate.in_use(), 0);
    }

    #[test]
    fn gate_wait_respects_deadline() {
        let gates = SourceGates::new();
        gates.set_cap(1);
        let gate = gates.gate("db1").unwrap();
        let _held = gate.acquire(None).unwrap();
        let b = QueryBudget::new(Some(Duration::from_millis(10)), None);
        let t0 = Instant::now();
        let r = gate.acquire(Some(&b));
        assert!(matches!(r, Err(WorkloadError::DeadlineExceeded { .. })));
        assert!(t0.elapsed() < Duration::from_millis(100));
        assert!(b.permit_wait_ns() > 0);
    }

    #[test]
    fn governor_disabled_admits_everything() {
        let gov = Governor::new(GovernorConfig::default());
        let b = QueryBudget::unlimited();
        for _ in 0..64 {
            let _p = gov.admit(Priority::Batch, &b).unwrap();
        }
        assert_eq!(gov.snapshot().shed, 0);
    }

    #[test]
    fn governor_sheds_when_queue_full() {
        let gov = Governor::new(GovernorConfig {
            max_concurrent: 1,
            queue_capacity: 0,
        });
        let b = QueryBudget::unlimited();
        let _running = gov.admit(Priority::Interactive, &b).unwrap();
        match gov.admit(Priority::Interactive, &b) {
            Err(WorkloadError::Overloaded { running, queued }) => {
                assert_eq!(running, 1);
                assert_eq!(queued, 0);
            }
            other => panic!("expected Overloaded, got {:?}", other.map(|_| ())),
        }
        let snap = gov.snapshot();
        assert_eq!(snap.admitted, 1);
        assert_eq!(snap.shed, 1);
    }

    #[test]
    fn interactive_jumps_batch_queue() {
        let gov = Governor::new(GovernorConfig {
            max_concurrent: 1,
            queue_capacity: 4,
        });
        let b = QueryBudget::unlimited();
        let slot = gov.admit(Priority::Interactive, &b).unwrap();
        let order = Arc::new(Mutex::new(Vec::new()));
        thread::scope(|s| {
            // Queue a batch request first…
            let g1 = Arc::clone(&gov);
            let o1 = Arc::clone(&order);
            s.spawn(move || {
                let bb = QueryBudget::unlimited();
                let _p = g1.admit(Priority::Batch, &bb).unwrap();
                lock(&o1).push("batch");
            });
            thread::sleep(Duration::from_millis(20));
            // …then an interactive one; it must be admitted first.
            let g2 = Arc::clone(&gov);
            let o2 = Arc::clone(&order);
            s.spawn(move || {
                let ib = QueryBudget::unlimited();
                let _p = g2.admit(Priority::Interactive, &ib).unwrap();
                lock(&o2).push("interactive");
                // Hold the slot long enough that "batch" can't sneak in
                // between our release and its wakeup being recorded.
                thread::sleep(Duration::from_millis(5));
            });
            thread::sleep(Duration::from_millis(20));
            drop(slot);
        });
        assert_eq!(*lock(&order), vec!["interactive", "batch"]);
    }

    #[test]
    fn queued_request_respects_deadline() {
        let gov = Governor::new(GovernorConfig {
            max_concurrent: 1,
            queue_capacity: 4,
        });
        let b = QueryBudget::unlimited();
        let _running = gov.admit(Priority::Interactive, &b).unwrap();
        let deadline = QueryBudget::new(Some(Duration::from_millis(10)), None);
        let t0 = Instant::now();
        let r = gov.admit(Priority::Interactive, &deadline);
        assert!(matches!(r, Err(WorkloadError::DeadlineExceeded { .. })));
        assert!(t0.elapsed() < Duration::from_millis(100));
        // The abandoned ticket must not wedge the queue.
        assert_eq!(gov.snapshot().queued, 0);
    }

    #[test]
    fn concurrency_limit_is_never_exceeded() {
        let gov = Governor::new(GovernorConfig {
            max_concurrent: 3,
            queue_capacity: 64,
        });
        let running = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        thread::scope(|s| {
            for _ in 0..16 {
                let gov = Arc::clone(&gov);
                let running = Arc::clone(&running);
                let peak = Arc::clone(&peak);
                s.spawn(move || {
                    let b = QueryBudget::unlimited();
                    let _p = gov.admit(Priority::Interactive, &b).unwrap();
                    let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    thread::sleep(Duration::from_millis(3));
                    running.fetch_sub(1, Ordering::SeqCst);
                });
            }
        });
        assert!(peak.load(Ordering::SeqCst) <= 3);
        assert_eq!(gov.snapshot().admitted, 16);
    }

    #[test]
    fn charge_scope_releases_on_drop() {
        let b = QueryBudget::new(None, Some(1024));
        {
            let mut scope = ChargeScope::new(Some(&b));
            scope.charge(256).unwrap();
            scope.charge(256).unwrap();
            assert_eq!(scope.held(), 512);
            assert_eq!(b.used_memory_bytes(), 512);
        }
        assert_eq!(b.used_memory_bytes(), 0);
        assert_eq!(b.peak_memory_bytes(), 512);
    }

    #[test]
    fn charge_scope_take_transfers_ownership() {
        let b = QueryBudget::new(None, Some(1024));
        let taken = {
            let mut scope = ChargeScope::new(Some(&b));
            scope.charge(512).unwrap();
            scope.take()
        };
        // the scope dropped but the bytes were transferred, not released
        assert_eq!(taken, 512);
        assert_eq!(b.used_memory_bytes(), 512);
        b.release(taken);
        assert_eq!(b.used_memory_bytes(), 0);
    }

    #[test]
    fn workers_share_one_cap_through_scopes() {
        // four "workers" charging one budget: the cap bounds their sum,
        // and the failed charge rolls back so the others can continue
        let b = QueryBudget::new(None, Some(950));
        let trips = Arc::new(AtomicUsize::new(0));
        thread::scope(|s| {
            for _ in 0..4 {
                let b = &b;
                let trips = Arc::clone(&trips);
                s.spawn(move || {
                    let mut scope = ChargeScope::new(Some(b));
                    for _ in 0..100 {
                        if scope.charge(10).is_err() {
                            trips.fetch_add(1, Ordering::SeqCst);
                            return;
                        }
                    }
                });
            }
        });
        // each worker alone demands 100 × 10 = 1000 bytes against a
        // 950-byte cap: however the threads interleave someone must
        // trip, the total never exceeded the cap, and every scope's
        // drop returned what it held
        assert!(trips.load(Ordering::SeqCst) >= 1);
        assert!(b.peak_memory_bytes() <= 950);
        assert_eq!(b.used_memory_bytes(), 0);
    }

    #[test]
    fn charge_scope_without_budget_is_noop() {
        let mut scope = ChargeScope::new(None);
        scope.charge(u64::MAX).unwrap();
        assert_eq!(scope.held(), 0);
        assert_eq!(scope.take(), 0);
    }
}
