//! # aldsp-matview — incremental materialized data services
//!
//! The paper's function cache (§5.2) is TTL-only: between expirations it
//! serves stale answers, and on expiry it recomputes wholesale. This
//! crate closes the loop the rest of the system already opened: submit
//! processing (§6) decomposes every write into per-source row deltas
//! with full lineage, so a cached data-service result can be maintained
//! *by the write path* instead of by a clock.
//!
//! A data service declared **materialized** keeps its results in a
//! [`MatViewRegistry`]. Its first evaluation registers a dependency
//! record ([`Dependencies`], derived from `aldsp_updates::lineage`)
//! alongside the cached answer: which `(connection, table)` pairs feed
//! it, which columns are merely *displayed*, which columns *restrict*
//! membership, and where each table's primary key surfaces in the
//! result shape. After every committed submit the emitted
//! [`SourceDelta`]s are routed through that record:
//!
//! - a delta touching no referenced column **skips** the view — cached
//!   entries stay live;
//! - a delta writing only displayed, non-restricting columns of a
//!   row-wise patchable shape is **patched in place**: the matching
//!   cached instances are rewritten at the lineage paths (applying the
//!   registered forward transform where the column surfaces through an
//!   invertible function, §4.4);
//! - anything else **surgically invalidates** the affected entries —
//!   they recompute on next read, never on TTL expiry.
//!
//! ## Atomicity with in-flight reads
//!
//! Each view guards its entries with one mutex; readers clone the
//! cached sequence under the lock, writers patch or drop under the
//! lock, so a reader sees the pre-write or post-write answer, never a
//! torn one. Fills (cache misses) compute *outside* the lock and are
//! admitted by an epoch check: every affecting write bumps the view's
//! epoch, and a fill started before the write is discarded instead of
//! stored, so a racing recompute can never install a stale answer over
//! an invalidation.

use aldsp_updates::lineage::Lineage;
use aldsp_updates::sdo::{locate, rewrite_value, Path};
use aldsp_updates::SourceDelta;
use aldsp_xdm::item::{Item, Sequence};
use aldsp_xdm::value::AtomicValue;
use aldsp_xdm::xml::serialize_sequence;
use aldsp_xdm::QName;
use parking_lot::{Mutex, RwLock};
use std::cmp::Ordering;
use std::collections::HashMap;
use std::sync::Arc;

/// How a materialized service reacts to writes that touch it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatViewPolicy {
    /// Patch single-row point writes in place where provably sound,
    /// invalidate otherwise (the default).
    PatchOrInvalidate,
    /// Never patch: any affecting write invalidates the touched entries.
    InvalidateOnly,
}

impl std::fmt::Display for MatViewPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MatViewPolicy::PatchOrInvalidate => write!(f, "patch-or-invalidate"),
            MatViewPolicy::InvalidateOnly => write!(f, "invalidate-only"),
        }
    }
}

/// One displayed source column: where it surfaces in the result shape
/// and the forward transform (if any) between stored and shown value.
#[derive(Debug, Clone)]
pub struct DisplayedColumn {
    /// Source column name.
    pub column: String,
    /// Result path where the value surfaces.
    pub path: Path,
    /// Forward transform applied between column and display (§4.4); the
    /// stored delta value must be run through it before patching.
    pub forward: Option<QName>,
}

/// Everything the maintenance pass needs to know about one source table
/// feeding a materialized service.
#[derive(Debug, Clone)]
pub struct TableDep {
    /// Source connection.
    pub connection: String,
    /// Source table.
    pub table: String,
    /// Read through an unpushed physical call: column analysis is
    /// unavailable, every write to the table affects the view.
    pub opaque: bool,
    /// Every column the plan reads. Writes outside this set skip the
    /// view entirely.
    pub referenced: Vec<String>,
    /// Columns that determine membership or arrangement (predicates,
    /// grouping, ordering, correlations, middleware consumption, and
    /// referenced-but-not-displayed columns). Writes here invalidate.
    pub restricting: Vec<String>,
    /// Columns that surface verbatim (or through one invertible
    /// transform) in the result shape — the patchable set.
    pub displayed: Vec<DisplayedColumn>,
    /// The table's primary-key columns and their result paths, when the
    /// shape exposes them (required for row matching; empty disables
    /// patching for this table).
    pub key: Vec<(String, Path)>,
}

/// The dependency record registered with a view on first evaluation.
#[derive(Debug, Clone, Default)]
pub struct Dependencies {
    /// Per-table dependency facts.
    pub tables: Vec<TableDep>,
    /// `true` when the plan shape is row-wise patchable (one scanned
    /// row per output instance, no nested iteration).
    pub patchable_shape: bool,
}

impl Dependencies {
    /// Derive the dependency record from a lineage analysis.
    pub fn from_lineage(lineage: &Lineage) -> Dependencies {
        let mut names: Vec<(String, String)> = lineage
            .referenced
            .keys()
            .chain(lineage.restricting.keys())
            .cloned()
            .chain(lineage.opaque_tables.iter().cloned())
            .chain(
                lineage
                    .entries
                    .iter()
                    .map(|e| (e.connection.clone(), e.table.clone())),
            )
            .collect();
        names.sort();
        names.dedup();
        let tables = names
            .into_iter()
            .map(|(conn, table)| {
                let kref = (conn.clone(), table.clone());
                let displayed: Vec<DisplayedColumn> = lineage
                    .entries
                    .iter()
                    .filter(|e| e.connection == conn && e.table == table)
                    .map(|e| DisplayedColumn {
                        column: e.column.clone(),
                        path: e.path.clone(),
                        forward: e.inverse.clone(),
                    })
                    .collect();
                let referenced = lineage.referenced.get(&kref).cloned().unwrap_or_default();
                let mut restricting = lineage.restricting.get(&kref).cloned().unwrap_or_default();
                // a referenced column that never surfaces in the shape
                // feeds *something* the record cannot patch — restrict it
                for col in &referenced {
                    if !displayed.iter().any(|d| &d.column == col) && !restricting.contains(col) {
                        restricting.push(col.clone());
                    }
                }
                TableDep {
                    opaque: lineage.opaque_tables.contains(&kref),
                    referenced,
                    restricting,
                    displayed,
                    key: lineage.keys.get(&kref).cloned().unwrap_or_default(),
                    connection: conn,
                    table,
                }
            })
            .collect();
        Dependencies {
            tables,
            patchable_shape: lineage.simple_shape,
        }
    }
}

/// What one maintenance pass did, for the caller's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintenanceOutcome {
    /// Cached result instances rewritten in place.
    pub patched: u64,
    /// Cached entries dropped (they recompute on next read).
    pub invalidated: u64,
}

/// A snapshot of one view for diagnostics / EXPLAIN.
#[derive(Debug, Clone)]
pub struct MatViewStatus {
    /// The declared maintenance policy.
    pub policy: MatViewPolicy,
    /// Source tables in the dependency record (0 until first fill).
    pub tables: usize,
    /// Live cached entries.
    pub entries: usize,
}

/// Applies a registered forward transform to a stored column value.
/// Supplied by the server layer, which owns metadata and adaptors.
pub type ForwardFn<'a> = dyn Fn(&QName, &AtomicValue) -> Result<AtomicValue, String> + 'a;

#[derive(Default)]
struct ViewInner {
    /// Bumped by every affecting write; fills from an older epoch are
    /// discarded instead of stored.
    epoch: u64,
    deps: Option<Arc<Dependencies>>,
    entries: HashMap<String, Sequence>,
}

struct ViewState {
    policy: MatViewPolicy,
    inner: Mutex<ViewInner>,
}

/// An admission ticket for filling one cache slot: records the view
/// epoch at miss time so a fill that raced a write is discarded.
pub struct FillTicket {
    view: Arc<ViewState>,
    epoch: u64,
    key: String,
}

/// The registry of materialized data services.
#[derive(Default)]
pub struct MatViewRegistry {
    views: RwLock<HashMap<QName, Arc<ViewState>>>,
}

impl MatViewRegistry {
    /// An empty registry.
    pub fn new() -> MatViewRegistry {
        MatViewRegistry::default()
    }

    /// Declare `function` materialized under `policy`.
    pub fn materialize(&self, function: QName, policy: MatViewPolicy) {
        self.views.write().insert(
            function,
            Arc::new(ViewState {
                policy,
                inner: Mutex::new(ViewInner::default()),
            }),
        );
    }

    /// Is this function materialized?
    pub fn is_materialized(&self, function: &QName) -> bool {
        self.views.read().contains_key(function)
    }

    /// Policy / dependency / occupancy snapshot for one view.
    pub fn status(&self, function: &QName) -> Option<MatViewStatus> {
        let vs = self.views.read().get(function)?.clone();
        let inner = vs.inner.lock();
        Some(MatViewStatus {
            policy: vs.policy,
            tables: inner.deps.as_ref().map_or(0, |d| d.tables.len()),
            entries: inner.entries.len(),
        })
    }

    /// The cache key for one argument vector.
    pub fn arg_key(args: &[Sequence]) -> String {
        let mut key = String::new();
        for a in args {
            key.push('\u{1}');
            key.push_str(&serialize_sequence(a));
        }
        key
    }

    /// A live cached answer, if present.
    pub fn get(&self, function: &QName, key: &str) -> Option<Sequence> {
        let vs = self.views.read().get(function)?.clone();
        let inner = vs.inner.lock();
        inner.entries.get(key).cloned()
    }

    /// Start filling a missing slot: remembers the current epoch so the
    /// computed answer is only admitted if no affecting write lands in
    /// the meantime. `None` when the function is not materialized.
    pub fn fill_ticket(&self, function: &QName, key: &str) -> Option<FillTicket> {
        let vs = self.views.read().get(function)?.clone();
        let epoch = vs.inner.lock().epoch;
        Some(FillTicket {
            view: vs,
            epoch,
            key: key.to_string(),
        })
    }

    /// Install a computed answer and (on first fill) the dependency
    /// record. Returns `false` — and caches nothing — when a write
    /// raced the fill.
    pub fn complete_fill(
        &self,
        ticket: FillTicket,
        items: Sequence,
        deps: Arc<Dependencies>,
    ) -> bool {
        let mut inner = ticket.view.inner.lock();
        if inner.deps.is_none() {
            // dependencies derive from the plan, not the data: valid
            // even when the data raced away from under this fill
            inner.deps = Some(deps);
        }
        if inner.epoch != ticket.epoch {
            return false;
        }
        inner.entries.insert(ticket.key, items);
        true
    }

    /// Route committed submit deltas through every view's dependency
    /// record: skip, patch in place, or surgically invalidate.
    pub fn apply_deltas(&self, deltas: &[SourceDelta], forward: &ForwardFn) -> MaintenanceOutcome {
        let mut out = MaintenanceOutcome::default();
        if deltas.is_empty() {
            return out;
        }
        let views: Vec<Arc<ViewState>> = self.views.read().values().cloned().collect();
        for vs in views {
            let mut inner = vs.inner.lock();
            let Some(deps) = inner.deps.clone() else {
                // never filled: no entries to maintain, but a fill may be
                // in flight against pre-write data — refuse it
                inner.epoch += 1;
                continue;
            };
            let mut affecting: Vec<&SourceDelta> = Vec::new();
            let mut must_invalidate = vs.policy == MatViewPolicy::InvalidateOnly;
            for d in deltas {
                let Some(td) = deps
                    .tables
                    .iter()
                    .find(|t| t.connection == d.connection && t.table == d.table)
                else {
                    continue;
                };
                if td.opaque {
                    affecting.push(d);
                    must_invalidate = true;
                    continue;
                }
                let relevant: Vec<&(String, Option<AtomicValue>)> = d
                    .columns
                    .iter()
                    .filter(|(c, _)| td.referenced.contains(c))
                    .collect();
                if relevant.is_empty() {
                    continue; // provably outside the view's read set
                }
                affecting.push(d);
                let patchable = deps.patchable_shape
                    && !td.key.is_empty()
                    && !d.key.is_empty()
                    && relevant.iter().all(|(c, v)| {
                        v.is_some()
                            && !td.restricting.contains(c)
                            && td.displayed.iter().any(|dc| &dc.column == c)
                    });
                if !patchable {
                    must_invalidate = true;
                }
            }
            if affecting.is_empty() {
                continue; // entries stay live, concurrent fills stay valid
            }
            inner.epoch += 1;
            if must_invalidate {
                out.invalidated += inner.entries.len() as u64;
                inner.entries.clear();
                continue;
            }
            let keys: Vec<String> = inner.entries.keys().cloned().collect();
            'entry: for key in keys {
                let mut items = inner.entries.get(&key).cloned().unwrap_or_default();
                let mut patched_here = 0u64;
                for d in &affecting {
                    let td = deps
                        .tables
                        .iter()
                        .find(|t| t.connection == d.connection && t.table == d.table)
                        .expect("affecting delta has a table dep");
                    match patch_items(&mut items, td, d, forward) {
                        Ok(n) => patched_here += n,
                        Err(_) => {
                            // a row resisted point-rewriting (absent
                            // element, transform failure): drop the entry
                            inner.entries.remove(&key);
                            out.invalidated += 1;
                            continue 'entry;
                        }
                    }
                }
                if patched_here > 0 {
                    inner.entries.insert(key, items);
                    out.patched += patched_here;
                }
                // zero matches: the written row is not in this answer and
                // (restricting columns untouched) cannot have entered it
            }
        }
        out
    }

    /// Coarsely invalidate every view that reads any of `tables` — the
    /// fallback when a write bypassed delta emission (update overrides,
    /// partially-failed submits). Views with unknown dependencies are
    /// invalidated too.
    pub fn invalidate_tables(&self, tables: &[(String, String)]) -> u64 {
        let mut dropped = 0u64;
        let views: Vec<Arc<ViewState>> = self.views.read().values().cloned().collect();
        for vs in views {
            let mut inner = vs.inner.lock();
            let affected = match &inner.deps {
                None => true,
                Some(deps) => deps.tables.iter().any(|t| {
                    tables
                        .iter()
                        .any(|(c, n)| t.connection == *c && t.table == *n)
                }),
            };
            if affected {
                inner.epoch += 1;
                dropped += inner.entries.len() as u64;
                inner.entries.clear();
            }
        }
        dropped
    }
}

/// Rewrite every cached instance whose exposed key matches the delta's
/// row. Returns how many instances were patched; `Err` when a matching
/// instance cannot be soundly rewritten.
fn patch_items(
    items: &mut Sequence,
    td: &TableDep,
    d: &SourceDelta,
    forward: &ForwardFn,
) -> Result<u64, String> {
    let mut patched = 0u64;
    for item in items.iter_mut() {
        let Item::Node(node) = item else { continue };
        let mut matches = true;
        for (col, path) in &td.key {
            let Some((_, want)) = d.key.iter().find(|(c, _)| c == col) else {
                matches = false;
                break;
            };
            let got = locate(node, path).and_then(|n| n.typed_value());
            match got {
                Some(g) if g.compare(want) == Some(Ordering::Equal) => {}
                _ => {
                    matches = false;
                    break;
                }
            }
        }
        if !matches {
            continue;
        }
        let mut rewritten = node.clone();
        for (col, val) in &d.columns {
            if !td.referenced.contains(col) {
                continue;
            }
            let v = val
                .as_ref()
                .ok_or_else(|| format!("NULL write to displayed column {col}"))?;
            for dc in td.displayed.iter().filter(|dc| &dc.column == col) {
                let shown = match &dc.forward {
                    Some(f) => forward(f, v)?,
                    None => v.clone(),
                };
                if locate(&rewritten, &dc.path).is_none() {
                    // the element is absent in the cached instance (was
                    // NULL): a blind append cannot guarantee document
                    // order, so refuse and let the entry recompute
                    return Err(format!("no element at display path for {col}"));
                }
                rewritten = rewrite_value(&rewritten, &dc.path, &Some(shown))?;
            }
        }
        *item = Item::Node(rewritten);
        patched += 1;
    }
    Ok(patched)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aldsp_xdm::node::Node;
    use aldsp_xdm::value::AtomicValue as V;

    fn profile(cid: &str, last: &str) -> Item {
        Item::Node(Node::element(
            QName::local("PROFILE"),
            vec![],
            vec![
                Node::simple_element(QName::local("CID"), V::str(cid)),
                Node::simple_element(QName::local("LAST_NAME"), V::str(last)),
            ],
        ))
    }

    fn deps() -> Arc<Dependencies> {
        Arc::new(Dependencies {
            tables: vec![TableDep {
                connection: "db1".into(),
                table: "CUSTOMER".into(),
                opaque: false,
                referenced: vec!["CID".into(), "LAST_NAME".into()],
                restricting: vec![],
                displayed: vec![
                    DisplayedColumn {
                        column: "CID".into(),
                        path: vec![(QName::local("CID"), 0)],
                        forward: None,
                    },
                    DisplayedColumn {
                        column: "LAST_NAME".into(),
                        path: vec![(QName::local("LAST_NAME"), 0)],
                        forward: None,
                    },
                ],
                key: vec![("CID".into(), vec![(QName::local("CID"), 0)])],
            }],
            patchable_shape: true,
        })
    }

    fn no_forward(f: &QName, _: &AtomicValue) -> Result<AtomicValue, String> {
        Err(format!("unexpected transform {f}"))
    }

    fn delta(cid: &str, col: &str, v: &str) -> SourceDelta {
        SourceDelta {
            connection: "db1".into(),
            table: "CUSTOMER".into(),
            columns: vec![(col.into(), Some(V::str(v)))],
            key: vec![("CID".into(), V::str(cid))],
        }
    }

    fn filled_registry() -> (MatViewRegistry, QName) {
        let reg = MatViewRegistry::new();
        let f = QName::local("getProfile");
        reg.materialize(f.clone(), MatViewPolicy::PatchOrInvalidate);
        let t = reg.fill_ticket(&f, "k").unwrap();
        assert!(reg.complete_fill(
            t,
            vec![profile("1", "Jones"), profile("2", "Smith")],
            deps()
        ));
        (reg, f)
    }

    #[test]
    fn displayed_write_patches_in_place() {
        let (reg, f) = filled_registry();
        let out = reg.apply_deltas(&[delta("2", "LAST_NAME", "Chan")], &no_forward);
        assert_eq!(
            out,
            MaintenanceOutcome {
                patched: 1,
                invalidated: 0
            }
        );
        let items = reg.get(&f, "k").expect("entry stays live");
        assert!(serialize_sequence(&items).contains("<LAST_NAME>Chan</LAST_NAME>"));
        assert!(serialize_sequence(&items).contains("<LAST_NAME>Jones</LAST_NAME>"));
    }

    #[test]
    fn unreferenced_column_write_skips() {
        let (reg, f) = filled_registry();
        let out = reg.apply_deltas(&[delta("1", "SSN", "000")], &no_forward);
        assert_eq!(out, MaintenanceOutcome::default());
        assert!(reg.get(&f, "k").is_some());
    }

    #[test]
    fn restricting_column_write_invalidates() {
        let (reg, f) = filled_registry();
        let mut d = deps().as_ref().clone();
        d.tables[0].restricting = vec!["LAST_NAME".into()];
        // re-register with restricting lineage
        reg.materialize(f.clone(), MatViewPolicy::PatchOrInvalidate);
        let t = reg.fill_ticket(&f, "k").unwrap();
        assert!(reg.complete_fill(t, vec![profile("1", "Jones")], Arc::new(d)));
        let out = reg.apply_deltas(&[delta("1", "LAST_NAME", "Chan")], &no_forward);
        assert_eq!(
            out,
            MaintenanceOutcome {
                patched: 0,
                invalidated: 1
            }
        );
        assert!(reg.get(&f, "k").is_none());
    }

    #[test]
    fn invalidate_only_policy_never_patches() {
        let reg = MatViewRegistry::new();
        let f = QName::local("getProfile");
        reg.materialize(f.clone(), MatViewPolicy::InvalidateOnly);
        let t = reg.fill_ticket(&f, "k").unwrap();
        assert!(reg.complete_fill(t, vec![profile("1", "Jones")], deps()));
        let out = reg.apply_deltas(&[delta("1", "LAST_NAME", "Chan")], &no_forward);
        assert_eq!(
            out,
            MaintenanceOutcome {
                patched: 0,
                invalidated: 1
            }
        );
    }

    #[test]
    fn racing_fill_is_discarded_after_affecting_write() {
        let (reg, f) = filled_registry();
        // a second slot starts filling …
        let ticket = reg.fill_ticket(&f, "other").unwrap();
        // … a write lands while it computes …
        reg.apply_deltas(&[delta("1", "LAST_NAME", "Chan")], &no_forward);
        // … so its (stale) answer must be refused
        assert!(!reg.complete_fill(ticket, vec![profile("1", "Jones")], deps()));
        assert!(reg.get(&f, "other").is_none());
    }

    #[test]
    fn unaffecting_write_keeps_fill_ticket_valid() {
        let (reg, f) = filled_registry();
        let ticket = reg.fill_ticket(&f, "other").unwrap();
        reg.apply_deltas(&[delta("1", "SSN", "000")], &no_forward);
        assert!(reg.complete_fill(ticket, vec![profile("1", "Jones")], deps()));
        assert!(reg.get(&f, "other").is_some());
    }

    #[test]
    fn coarse_invalidation_by_table() {
        let (reg, f) = filled_registry();
        assert_eq!(reg.invalidate_tables(&[("db9".into(), "OTHER".into())]), 0);
        assert!(reg.get(&f, "k").is_some());
        assert_eq!(
            reg.invalidate_tables(&[("db1".into(), "CUSTOMER".into())]),
            1
        );
        assert!(reg.get(&f, "k").is_none());
    }
}
