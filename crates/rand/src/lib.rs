//! Offline shim for the `rand` crate.
//!
//! Provides `StdRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::gen_range` over half-open integer ranges — the surface the
//! workspace's deterministic fixture generators use. The generator is
//! xoshiro256** seeded through splitmix64; it is *not* the upstream
//! `StdRng` stream, which is fine because every consumer in this
//! workspace only relies on determinism for a fixed seed, not on a
//! specific stream.
//!
//! # The stream is frozen
//!
//! Differential-test seeds (`DIFFTEST_SEED_START=<seed>`) are only
//! reproducible across machines, platforms, and time if a seed maps to
//! the same draw sequence everywhere, forever. Everything a seed flows
//! through here is pure integer arithmetic — splitmix64 state
//! expansion, the xoshiro256** output function, widening-multiply
//! range reduction, and an integer threshold compare for `gen_bool` —
//! so the stream cannot vary with FPU mode, target, or optimization
//! level. Each `gen_range` call over an integer type and each
//! `gen_bool` call consumes exactly one `next_u64`. The
//! `known_answer_*` tests below pin the first outputs for fixed seeds;
//! any change to the mapping is a breaking change to recorded seeds
//! and must be treated like a file-format break.

use std::ops::Range;

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Derive a full generator state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that `Rng::gen_range` can sample uniformly from a `Range`.
pub trait SampleUniform: Copy {
    /// Sample uniformly from `[low, high)` using `rng`.
    fn sample_range(rng: &mut dyn RngCore, range: Range<Self>) -> Self;
}

/// The raw-output side of a generator.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing convenience methods (subset of `rand::Rng`).
pub trait Rng: RngCore + Sized {
    /// A uniform sample from the half-open range `low..high`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    /// `true` with probability `p`, consuming one `next_u64`.
    ///
    /// `p` is converted once to a fixed 64-bit integer threshold and
    /// the draw is a pure integer compare, so the decision for a given
    /// generator state is identical on every platform.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool called with p={p}");
        // scaling by a power of two is exact (only the exponent
        // changes), so the threshold is the same on every platform
        let threshold = (p * (1u128 << 64) as f64) as u128;
        (self.next_u64() as u128) < threshold
    }
}

impl<R: RngCore + Sized> Rng for R {}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut dyn RngCore, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range called with empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                // widening modulo reduction; bias is negligible for the
                // fixture-scale spans used here (< 2^31)
                let wide = (rng.next_u64() as u128) * span >> 64;
                (range.start as i128 + wide as i128) as $t
            }
        }
    )*};
}

impl_sample_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f64 {
    fn sample_range(rng: &mut dyn RngCore, range: Range<Self>) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        range.start + unit * (range.end - range.start)
    }
}

/// xoshiro256** — small, fast, and plenty for test-data generation.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        // expand via splitmix64, as the xoshiro authors recommend
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Generator types (subset of `rand::rngs`).
pub mod rngs {
    pub use super::StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Known-answer pins for the raw xoshiro256** stream. If this
    /// fails, recorded differential-test seeds no longer reproduce:
    /// fix the regression rather than updating the constants.
    #[test]
    fn known_answer_raw_stream() {
        let expect: &[(u64, [u64; 4])] = &[
            (
                0x0,
                [
                    11091344671253066420,
                    13793997310169335082,
                    1900383378846508768,
                    7684712102626143532,
                ],
            ),
            (
                0x1,
                [
                    12966619160104079557,
                    9600361134598540522,
                    10590380919521690900,
                    7218738570589545383,
                ],
            ),
            (
                0x2A,
                [
                    1546998764402558742,
                    6990951692964543102,
                    12544586762248559009,
                    17057574109182124193,
                ],
            ),
            (
                0xDEAD_BEEF,
                [
                    14219364052333592195,
                    7332719151195188792,
                    6122488799882574371,
                    4799409443904522999,
                ],
            ),
        ];
        for (seed, outs) in expect {
            let mut rng = StdRng::seed_from_u64(*seed);
            for (i, want) in outs.iter().enumerate() {
                assert_eq!(rng.next_u64(), *want, "seed {seed:#x} draw {i}");
            }
        }
    }

    /// Known-answer pins for the derived draws (`gen_range`,
    /// `gen_bool`) — these also freeze the one-draw-per-call
    /// stream-consumption contract.
    #[test]
    fn known_answer_derived_draws() {
        let mut rng = StdRng::seed_from_u64(0);
        let ranged: Vec<u64> = (0..4).map(|_| rng.gen_range(0..100u64)).collect();
        assert_eq!(ranged, [60, 74, 10, 41]);
        let mut rng = StdRng::seed_from_u64(0);
        let bools: Vec<bool> = (0..4).map(|_| rng.gen_bool(0.3)).collect();
        assert_eq!(bools, [false, false, true, false]);
        let mut rng = StdRng::seed_from_u64(0xDEAD_BEEF);
        let ranged: Vec<u64> = (0..4).map(|_| rng.gen_range(0..100u64)).collect();
        assert_eq!(ranged, [77, 39, 33, 26]);
        let mut rng = StdRng::seed_from_u64(0xDEAD_BEEF);
        let bools: Vec<bool> = (0..4).map(|_| rng.gen_bool(0.3)).collect();
        assert_eq!(bools, [false, false, false, true]);
    }

    #[test]
    fn gen_bool_edge_probabilities() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
        }
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: i64 = rng.gen_range(-5i64..17);
            assert!((-5..17).contains(&v));
            let u: usize = rng.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn covers_full_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}
