//! Compilation context: namespaces, function environment, diagnostics.

use crate::ir::CExpr;
use aldsp_metadata::Registry;
use aldsp_parser::ast::Span;
use aldsp_parser::Diagnostic;
use aldsp_relational::Dialect;
use aldsp_xdm::types::SequenceType;
use aldsp_xdm::QName;
use std::collections::HashMap;

/// Compilation mode, mirroring the parser's (§4.1): fail-fast at runtime,
/// recover-and-collect at design time.
pub use aldsp_parser::Mode;

/// A user-defined XQuery function after translation: resolved signature
/// plus normalized body (parameters appear as free variables named by
/// `params`).
#[derive(Debug, Clone)]
pub struct UserFunction {
    /// The function's qualified name.
    pub name: QName,
    /// `(unique parameter variable, declared type)` pairs.
    pub params: Vec<(String, SequenceType)>,
    /// Declared (or inferred) return type.
    pub return_type: SequenceType,
    /// The normalized body; `None` when the body failed analysis — the
    /// signature stays usable for checking callers (§4.1).
    pub body: Option<CExpr>,
    /// Pragma attributes from the declaration (§3.2).
    pub pragmas: Vec<(String, String)>,
}

/// Inverse-function registrations (§4.4): `date2int` declared as the
/// inverse of `int2date`, plus transformation rules
/// `(op, f) → rewrite using f⁻¹`.
#[derive(Debug, Clone, Default)]
pub struct InverseRegistry {
    inverses: HashMap<QName, QName>,
}

impl InverseRegistry {
    /// Declare `inverse` as the inverse of `f`. The registration asserts
    /// (as the paper's rule registration does) that `f` is injective and
    /// order-preserving, so `f(x) op y ≡ x op f⁻¹(y)` for the comparison
    /// operators.
    pub fn declare(&mut self, f: QName, inverse: QName) {
        self.inverses.insert(f, inverse);
    }

    /// The declared inverse of `f`, if any.
    pub fn inverse_of(&self, f: &QName) -> Option<&QName> {
        self.inverses.get(f)
    }

    /// Number of registrations.
    pub fn len(&self) -> usize {
        self.inverses.len()
    }

    /// Is the registry empty?
    pub fn is_empty(&self) -> bool {
        self.inverses.is_empty()
    }
}

/// The shared compilation context.
pub struct Context<'r> {
    /// Source metadata (physical functions, schemas).
    pub registry: &'r Registry,
    /// Compilation mode.
    pub mode: Mode,
    /// Collected diagnostics.
    pub diags: Vec<Diagnostic>,
    /// Translated user functions by name.
    pub functions: HashMap<QName, UserFunction>,
    /// Inverse-function registrations.
    pub inverses: InverseRegistry,
    /// Per-connection SQL dialects (§4.3: "SQL syntax generation during
    /// pushdown is done in a vendor/version-dependent manner").
    /// Connections not listed default to the conservative base SQL92
    /// platform.
    pub dialects: HashMap<String, Dialect>,
    /// PP-k block size used when generating dependent joins (§4.2).
    pub ppk_block_size: usize,
    /// PP-k local join method (§5.2).
    pub ppk_local_method: crate::ir::LocalJoinMethod,
    /// PP-k block prefetch depth (0 = synchronous fetches).
    pub ppk_prefetch_depth: usize,
    /// How much of the plan SQL pushdown may claim (differential-testing
    /// knob, [`crate::compile::PushdownLevel::Full`] in production).
    pub pushdown: crate::compile::PushdownLevel,
    /// Deliberately planted rewrite bug (mutation smoke test only).
    pub mutation: Option<crate::compile::Mutation>,
    /// Lower scalar subtrees to expression-VM bytecode after frame
    /// layout (differential-testing knob, on in production).
    pub vm: bool,
    /// Middleware join-method selection for the join-planning pass
    /// (cost-based by default; forced levels for the differential
    /// harness).
    pub join_strategy: crate::joins::JoinStrategy,
    var_counter: u32,
}

impl<'r> Context<'r> {
    /// A fresh context over the given metadata registry.
    pub fn new(registry: &'r Registry, mode: Mode) -> Context<'r> {
        Context {
            registry,
            mode,
            diags: Vec::new(),
            functions: HashMap::new(),
            inverses: InverseRegistry::default(),
            dialects: HashMap::new(),
            ppk_block_size: 20,
            ppk_local_method: crate::ir::LocalJoinMethod::IndexNestedLoop,
            ppk_prefetch_depth: 1,
            pushdown: crate::compile::PushdownLevel::default(),
            mutation: None,
            vm: true,
            join_strategy: crate::joins::JoinStrategy::default(),
            var_counter: 0,
        }
    }

    /// The SQL dialect of a connection (base SQL92 when unregistered).
    pub fn dialect_of(&self, connection: &str) -> Dialect {
        self.dialects
            .get(connection)
            .copied()
            .unwrap_or(Dialect::Sql92)
    }

    /// Generate a fresh unique variable name derived from `base`.
    pub fn fresh(&mut self, base: &str) -> String {
        self.var_counter += 1;
        format!("{base}__{}", self.var_counter)
    }

    /// Record a diagnostic.
    pub fn diag(&mut self, span: Span, message: impl Into<String>) {
        self.diags.push(Diagnostic {
            span,
            message: message.into(),
        });
    }

    /// Did compilation produce any errors?
    pub fn has_errors(&self) -> bool {
        !self.diags.is_empty()
    }
}
