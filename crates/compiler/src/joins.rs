//! Cost-based middleware join planning (the staged join-planning pass).
//!
//! The paper's mediator picks join methods *syntactically*: a correlated
//! `SqlFor` executes once per outer tuple (nested loop / index nested
//! loop on the source side), and PP-k batches only the dependent joins
//! that arise from nested FLWORs. This pass adds a *cost-based* choice
//! for the remaining flat shape — a correlated scan with a single
//! equality parameter, the plan form a cross-source
//! `for $a in src1(), $b in src2() where $a/K eq $b/K` lowers to —
//! using catalog statistics ([`aldsp_metadata::Registry::table_stats`])
//! and the per-source latency model:
//!
//! * **symmetric hash join** — fetch the inner side once with a
//!   *decorrelated* bulk statement (the correlating conjunct stripped,
//!   the key column appended to the select list), build a hash table on
//!   the smaller side, probe with the larger;
//! * **local sort-merge** — fetch once, sort the fetched rows on the
//!   key, binary-search the equal-key run per probe (forced via
//!   [`JoinStrategy::Merge`]; never chosen by cost).
//!
//! Either way the runtime emits exactly the rows the per-tuple nested
//! loop would, in the same order, so every strategy stays byte-identical
//! — the reorder decision is which side is *buffered* (`build_outer`),
//! never the output order. The analysis runs once, post-`assign_node_ids`,
//! and records its decisions in a [`JoinPlan`] side table keyed by
//! `(flwor node_id, clause index)`; EXPLAIN renders it as a `-- join:`
//! header and the runtime consults it instead of re-deriving shapes.

use crate::context::Context;
use crate::ir::{CExpr, CKind, Clause};
use aldsp_relational::{OutputColumn, ScalarExpr, Select, TableRef};
use aldsp_xdm::item::CompOp;
use std::fmt;

/// Middleware join-method selection (per-request knob; the default lets
/// the cost model decide). Forced levels exist for the differential
/// harness: every level must return byte-identical results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinStrategy {
    /// Cost-based: hash-join a correlated scan when statistics say the
    /// bulk fetch beats per-tuple execution, otherwise leave the
    /// syntactic plan (NL / index-NL / PP-k) alone.
    #[default]
    Auto,
    /// Force per-tuple nested-loop execution (no bulk fetch at all).
    NestedLoop,
    /// Force the source-indexed per-tuple plan — the parameterized
    /// statement *is* an index nested loop on the source side, so this
    /// executes identically to [`JoinStrategy::NestedLoop`] for flat
    /// joins; the distinct name mirrors the paper's method taxonomy.
    IndexNl,
    /// Force the symmetric hash join on every eligible correlated scan,
    /// regardless of statistics.
    Hash,
    /// Force the local sort-merge variant on every eligible correlated
    /// scan, regardless of statistics.
    Merge,
}

impl fmt::Display for JoinStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            JoinStrategy::Auto => "auto",
            JoinStrategy::NestedLoop => "nested-loop",
            JoinStrategy::IndexNl => "index-nl",
            JoinStrategy::Hash => "hash",
            JoinStrategy::Merge => "merge",
        })
    }
}

/// One planned middleware join: how to fetch the inner side in bulk and
/// which side to buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinMark {
    /// [`JoinStrategy::Hash`] or [`JoinStrategy::Merge`].
    pub strategy: JoinStrategy,
    /// The decorrelated bulk statement: the original select with the
    /// `key = ?` conjunct removed and the key column appended to the
    /// select list (so the runtime can hash/sort fetched rows without
    /// re-deriving the key).
    pub bulk: Box<Select>,
    /// Row index of the appended key column (= the original output
    /// column count; the extra column is invisible to `binds`, which
    /// zip only the original columns).
    pub key_row_index: usize,
    /// Estimated rows on the build (buffered) side; 0 = unknown.
    pub build_rows: u64,
    /// Estimated rows on the probe side; 0 = unknown.
    pub probe_rows: u64,
    /// `true` when the *outer* side is the build side (the
    /// cardinality-driven reorder: buffer outer tuples, stream the bulk
    /// fetch past them). Output order is outer-major either way.
    pub build_outer: bool,
}

/// Join decisions for a plan, keyed by `(flwor node_id, clause index)`
/// of the correlated `SqlFor` each replaces. Built once per compile by
/// [`analyze`] (after `assign_node_ids`); empty when the plan has no
/// eligible joins or the strategy forces per-tuple execution.
#[derive(Debug, Default)]
pub struct JoinPlan {
    /// `((flwor node_id, clause idx), mark)`, sorted by key.
    marks: Vec<((u32, usize), JoinMark)>,
}

impl JoinPlan {
    /// The mark for a correlated scan clause, if one was planned.
    pub fn mark(&self, flwor_id: u32, clause_idx: usize) -> Option<&JoinMark> {
        self.marks
            .binary_search_by_key(&(flwor_id, clause_idx), |&((id, i), _)| (id, i))
            .ok()
            .map(|i| &self.marks[i].1)
    }

    /// No join in the plan was re-planned.
    pub fn is_empty(&self) -> bool {
        self.marks.is_empty()
    }

    /// All marks in key order (for EXPLAIN).
    pub fn iter(&self) -> impl Iterator<Item = (u32, usize, &JoinMark)> {
        self.marks.iter().map(|((id, i), m)| (*id, *i, m))
    }
}

impl fmt::Display for JoinPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.marks.is_empty() {
            return f.write_str("none");
        }
        for (n, ((id, idx), m)) in self.marks.iter().enumerate() {
            if n > 0 {
                f.write_str("; ")?;
            }
            write!(
                f,
                "#{id}.{idx} strategy={} est-build={} est-probe={} reordered={}",
                m.strategy, m.build_rows, m.probe_rows, m.build_outer
            )?;
        }
        Ok(())
    }
}

/// Middleware cost-model constants, in the same nanosecond-ish units as
/// the registered per-source latency. Absolute values matter less than
/// the ratio: a roundtrip costs ~three orders of magnitude more than
/// touching a row, which is what makes per-tuple statements lose to one
/// bulk fetch at scale.
const COST_ROUNDTRIP: u128 = 1_000;
/// Source-side cost to scan/filter one inner row per statement.
const COST_SCAN_ROW: u128 = 1;
/// Cost to ship one fetched row to the middleware.
const COST_SHIP_ROW: u128 = 1;
/// Middleware cost to insert one row into the build hash table.
const COST_BUILD_ROW: u128 = 2;
/// Middleware cost to probe the hash table once.
const COST_PROBE: u128 = 1;
/// Below this many rows on the smaller side, per-tuple execution is
/// left alone even when the formula narrowly favors hash: tiny inputs
/// gain nothing and the syntactic plan keeps its streaming behavior.
const AUTO_MIN_ROWS: u64 = 256;

/// Analyze a plan (node ids assigned) and decide a strategy for every
/// eligible correlated scan.
pub fn analyze(ctx: &Context<'_>, plan: &CExpr) -> JoinPlan {
    let strategy = ctx.join_strategy;
    if matches!(strategy, JoinStrategy::NestedLoop | JoinStrategy::IndexNl) {
        // both force the existing per-tuple parameterized plan
        return JoinPlan::default();
    }
    let mut marks = Vec::new();
    plan.walk(&mut |e| {
        if let CKind::Flwor { clauses, .. } = &e.kind {
            analyze_flwor(ctx, strategy, e.node_id, clauses, &mut marks);
        }
    });
    marks.sort_by_key(|&((id, i), _)| (id, i));
    JoinPlan { marks }
}

/// A correlated scan that can be decorrelated into a bulk fetch.
struct Candidate {
    bulk: Select,
    key_row_index: usize,
    key_column: String,
}

fn analyze_flwor(
    ctx: &Context<'_>,
    strategy: JoinStrategy,
    flwor_id: u32,
    clauses: &[Clause],
    marks: &mut Vec<((u32, usize), JoinMark)>,
) {
    // running cardinality estimate of the tuple stream reaching each
    // clause (None = unknown); joins in a chain plan greedily left-deep,
    // each step's output feeding the next step's probe estimate
    let mut outer_est: Option<u64> = None;
    for (idx, c) in clauses.iter().enumerate() {
        match c {
            Clause::SqlFor {
                connection,
                select,
                params,
                ppk,
                ..
            } => {
                if params.is_empty() && ppk.is_none() {
                    // uncorrelated scan: (re)seed the estimate
                    outer_est = scan_estimate(ctx, connection, select);
                    continue;
                }
                let cand = if idx > 0 {
                    eligible(select, params, ppk)
                } else {
                    None
                };
                let Some(cand) = cand else {
                    // PP-k or an unrecognized correlated shape: keep it
                    outer_est = None;
                    continue;
                };
                let inner_est = scan_estimate(ctx, connection, select);
                let both = outer_est.zip(inner_est);
                let build_outer = both.is_some_and(|(o, i)| o < i);
                let picked = match strategy {
                    JoinStrategy::Hash => Some(JoinStrategy::Hash),
                    JoinStrategy::Merge => Some(JoinStrategy::Merge),
                    JoinStrategy::Auto => both
                        .filter(|&(o, i)| {
                            o.min(i) >= AUTO_MIN_ROWS
                                && hash_cost(ctx, connection, o, i) < nl_cost(ctx, connection, o, i)
                        })
                        .map(|_| JoinStrategy::Hash),
                    JoinStrategy::NestedLoop | JoinStrategy::IndexNl => None,
                };
                let joined = join_estimate(ctx, connection, select, &cand, outer_est, inner_est);
                if let Some(strategy) = picked {
                    // merge buffers the fetched (inner) side by design
                    let build_outer = build_outer && strategy == JoinStrategy::Hash;
                    let (build_rows, probe_rows) = if build_outer {
                        (outer_est.unwrap_or(0), inner_est.unwrap_or(0))
                    } else {
                        (inner_est.unwrap_or(0), outer_est.unwrap_or(0))
                    };
                    marks.push((
                        (flwor_id, idx),
                        JoinMark {
                            strategy,
                            bulk: Box::new(cand.bulk),
                            key_row_index: cand.key_row_index,
                            build_rows,
                            probe_rows,
                            build_outer,
                        },
                    ));
                }
                outer_est = joined;
            }
            // per-tuple maps and filters keep the estimate (an upper
            // bound: filters only shrink the stream)
            Clause::Where(_) | Clause::Let { .. } => {}
            // anything else (middleware For over an arbitrary source,
            // grouping, ordering) leaves the downstream cardinality
            // unknown
            _ => outer_est = None,
        }
    }
}

/// Is this correlated scan decorrelatable? Requires a single-parameter
/// plain select whose only parameter use is one top-level `col = ?`
/// conjunct. Returns the bulk statement (conjunct stripped, key column
/// appended) when so.
fn eligible(
    select: &Select,
    params: &[CExpr],
    ppk: &Option<crate::ir::PpkSpec>,
) -> Option<Candidate> {
    if params.len() != 1 || ppk.is_some() {
        return None;
    }
    if select.distinct
        || select.is_aggregate()
        || !select.group_by.is_empty()
        || select.having.is_some()
        || !select.order_by.is_empty()
        || select.offset.is_some()
        || select.fetch.is_some()
    {
        return None;
    }
    // the parameter may appear nowhere but the correlating conjunct
    if select.columns.iter().any(|c| c.expr.param_count() > 0) {
        return None;
    }
    let where_ = select.where_.as_ref()?;
    let mut conjs = Vec::new();
    split_conjuncts(where_, &mut conjs);
    let mut key: Option<ScalarExpr> = None;
    let mut rest = Vec::new();
    for c in conjs {
        match key_equality(&c) {
            Some(col) if key.is_none() => key = Some(col.clone()),
            // a second parameter use (even another `col = ?`) blocks
            Some(_) => return None,
            None if c.param_count() > 0 => return None,
            None => rest.push(c),
        }
    }
    let key = key?;
    let ScalarExpr::Column { column, .. } = &key else {
        return None;
    };
    let mut bulk = select.clone();
    bulk.where_ = rest.into_iter().reduce(ScalarExpr::and);
    let key_row_index = bulk.columns.len();
    let key_column = column.clone();
    bulk.columns.push(OutputColumn {
        expr: key,
        alias: "jk".to_string(),
    });
    Some(Candidate {
        bulk,
        key_row_index,
        key_column,
    })
}

fn split_conjuncts(e: &ScalarExpr, out: &mut Vec<ScalarExpr>) {
    if let ScalarExpr::And(a, b) = e {
        split_conjuncts(a, out);
        split_conjuncts(b, out);
    } else {
        out.push(e.clone());
    }
}

/// Match `col = ?0` (either side) and return the column.
fn key_equality(e: &ScalarExpr) -> Option<&ScalarExpr> {
    let ScalarExpr::Compare {
        op: CompOp::Eq,
        lhs,
        rhs,
    } = e
    else {
        return None;
    };
    match (&**lhs, &**rhs) {
        (c @ ScalarExpr::Column { .. }, ScalarExpr::Param(0))
        | (ScalarExpr::Param(0), c @ ScalarExpr::Column { .. }) => Some(c),
        _ => None,
    }
}

/// Estimated rows a scan of this select's base table returns (catalog
/// row count; predicates make it an upper bound). Unknown for derived /
/// joined FROM clauses or unregistered tables.
fn scan_estimate(ctx: &Context<'_>, connection: &str, select: &Select) -> Option<u64> {
    let TableRef::Table { name, .. } = &select.from else {
        return None;
    };
    ctx.registry
        .table_stats(connection, name)
        .map(|s| s.row_count)
}

/// Estimated output cardinality of the equi-join: `outer × inner ÷
/// distinct(inner key)` — the classic uniform-key estimate — falling
/// back to the larger input when the column has no distinct estimate.
fn join_estimate(
    ctx: &Context<'_>,
    connection: &str,
    select: &Select,
    cand: &Candidate,
    outer: Option<u64>,
    inner: Option<u64>,
) -> Option<u64> {
    let (o, i) = (outer?, inner?);
    let TableRef::Table { name, .. } = &select.from else {
        return Some(o.max(i));
    };
    let distinct = ctx
        .registry
        .table_stats(connection, name)
        .and_then(|s| s.column_distinct.get(&cand.key_column).copied())
        .unwrap_or(0);
    if distinct == 0 {
        return Some(o.max(i));
    }
    Some(((o as u128 * i as u128) / distinct as u128).min(u64::MAX as u128) as u64)
}

fn source_latency(ctx: &Context<'_>, connection: &str) -> u128 {
    ctx.registry.source_latency(connection).unwrap_or(0) as u128
}

/// Cost of the per-tuple plan: one parameterized roundtrip per outer
/// tuple, the source filtering the inner table each time.
fn nl_cost(ctx: &Context<'_>, connection: &str, outer: u64, inner: u64) -> u128 {
    let per_stmt = COST_ROUNDTRIP + source_latency(ctx, connection) + inner as u128 * COST_SCAN_ROW;
    outer as u128 * per_stmt
}

/// Cost of the hash plan: one bulk roundtrip shipping every inner row,
/// build each into the hash table, probe once per outer tuple.
fn hash_cost(ctx: &Context<'_>, connection: &str, outer: u64, inner: u64) -> u128 {
    COST_ROUNDTRIP
        + source_latency(ctx, connection)
        + inner as u128 * (COST_SHIP_ROW + COST_BUILD_ROW)
        + outer as u128 * COST_PROBE
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{Compiler, Options};
    use crate::tests::{compile, fixture, PROLOG};
    use aldsp_metadata::TableStats;
    use aldsp_relational::Dialect;
    use std::sync::Arc;

    const FLAT_CROSS: &str = r#"for $c in c:CUSTOMER(), $k in cc:CREDIT_CARD()
               where $c/CID eq $k/CID
               return <R>{ $c/CID, $k/CCN }</R>"#;

    /// `(connection, table, row_count, [(column, distinct)])`.
    type StatRow<'a> = (&'a str, &'a str, u64, &'a [(&'a str, u64)]);

    fn compile_with(
        strategy: JoinStrategy,
        stats: &[StatRow<'_>],
        query: &str,
    ) -> crate::CompiledQuery {
        let mut reg = (*fixture()).clone();
        for (conn, table, rows, cols) in stats {
            let mut ts = TableStats {
                row_count: *rows,
                column_distinct: Default::default(),
            };
            for (col, d) in *cols {
                ts.column_distinct.insert(col.to_string(), *d);
            }
            reg.set_table_stats(conn, table, ts);
        }
        let mut opts = Options::default();
        opts.dialects.insert("db1".into(), Dialect::Oracle);
        opts.dialects.insert("db2".into(), Dialect::Db2);
        opts.join_strategy = strategy;
        Compiler::new(Arc::new(reg), opts)
            .compile_query(&format!("{PROLOG}\n{query}"))
            .unwrap_or_else(|d| panic!("compile failed: {d:?}"))
    }

    #[test]
    fn forced_hash_marks_flat_cross_source_join() {
        let q = compile_with(JoinStrategy::Hash, &[], FLAT_CROSS);
        let marks: Vec<_> = q.joins.iter().collect();
        assert_eq!(marks.len(), 1, "plan: {:#?}", q.plan);
        let (_, idx, m) = marks[0];
        assert!(idx >= 1, "correlated scan cannot lead the clause list");
        assert_eq!(m.strategy, JoinStrategy::Hash);
        assert!(!m.build_outer, "no statistics, no reorder");
        // bulk select: correlation stripped, key column appended
        assert!(m.bulk.where_.is_none(), "{:?}", m.bulk.where_);
        assert_eq!(m.key_row_index, m.bulk.columns.len() - 1);
        assert_eq!(m.bulk.columns.last().unwrap().alias, "jk");
    }

    #[test]
    fn same_source_flat_join_is_one_region_and_unmarked() {
        // both tables on db1 merge into a single pushed join — there is
        // no correlated scan for the middleware to re-plan
        let q = compile_with(
            JoinStrategy::Hash,
            &[],
            r#"for $c in c:CUSTOMER(), $o in c:ORDER()
               where $c/CID eq $o/CID
               return <CO>{ $c/CID, $o/OID }</CO>"#,
        );
        assert!(q.joins.is_empty(), "{}", q.joins);
    }

    #[test]
    fn ppk_join_is_untouched() {
        // nested FLWOR → PP-k dependent join; join planning leaves it be
        let q = compile_with(
            JoinStrategy::Hash,
            &[],
            r#"for $c in c:CUSTOMER()
               return <P>{ $c/CID, <CARDS>{
                 for $k in cc:CREDIT_CARD() where $k/CID eq $c/CID return $k/CCN
               }</CARDS> }</P>"#,
        );
        assert!(q.joins.is_empty(), "{}", q.joins);
    }

    #[test]
    fn auto_engages_hash_only_with_large_statistics() {
        let big: &[StatRow<'_>] = &[
            ("db1", "CUSTOMER", 10_000, &[("CID", 10_000)]),
            ("db2", "CREDIT_CARD", 20_000, &[("CID", 10_000)]),
        ];
        let q = compile_with(JoinStrategy::Auto, big, FLAT_CROSS);
        let marks: Vec<_> = q.joins.iter().collect();
        assert_eq!(marks.len(), 1, "{}", q.joins);
        let (_, _, m) = marks[0];
        assert_eq!(m.strategy, JoinStrategy::Hash);
        // outer (10k customers) is smaller than inner (20k cards):
        // the reorder buffers the outer side
        assert!(m.build_outer);
        assert_eq!(m.build_rows, 10_000);
        assert_eq!(m.probe_rows, 20_000);
    }

    #[test]
    fn auto_leaves_small_and_unknown_inputs_alone() {
        // no statistics at all
        let q = compile_with(JoinStrategy::Auto, &[], FLAT_CROSS);
        assert!(q.joins.is_empty(), "{}", q.joins);
        // known but tiny
        let tiny: &[StatRow<'_>] = &[
            ("db1", "CUSTOMER", 60, &[("CID", 60)]),
            ("db2", "CREDIT_CARD", 30, &[("CID", 25)]),
        ];
        let q = compile_with(JoinStrategy::Auto, tiny, FLAT_CROSS);
        assert!(q.joins.is_empty(), "{}", q.joins);
    }

    #[test]
    fn forced_nl_levels_never_mark() {
        for s in [JoinStrategy::NestedLoop, JoinStrategy::IndexNl] {
            let big: &[StatRow<'_>] = &[("db2", "CREDIT_CARD", 50_000, &[])];
            let q = compile_with(s, big, FLAT_CROSS);
            assert!(q.joins.is_empty(), "{s}: {}", q.joins);
        }
    }

    #[test]
    fn default_compile_has_empty_join_plan_and_display() {
        let q = compile(FLAT_CROSS);
        assert!(q.joins.is_empty());
        assert_eq!(q.joins.to_string(), "none");
        let q = compile_with(JoinStrategy::Merge, &[], FLAT_CROSS);
        let s = q.joins.to_string();
        assert!(s.contains("strategy=merge"), "{s}");
        assert!(s.contains("reordered=false"), "{s}");
    }
}
