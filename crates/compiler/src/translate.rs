//! Expression-tree construction and normalization (§3.3 stages 2–3).
//!
//! Translates the parser AST into the compiler IR: names are resolved
//! against the module's namespace environment and the metadata registry,
//! variable scoping is checked (with error-expression substitution in
//! recover mode, §4.1), implicit operations — atomization at value
//! comparisons, arithmetic and typed call sites — are made explicit,
//! multi-binding quantifiers are unnested, and every binding is
//! alpha-renamed to a unique name so later rewrites need no capture
//! analysis.

use crate::context::{Context, UserFunction};
use crate::ir::{Builtin, CExpr, CKind, Clause, OrderSpec, Span};
use aldsp_parser::ast::{
    self, Axis, Clause as AClause, Expr, ExprKind, ItemTypeAst, Module, NameTest, SeqTypeAst,
};
use aldsp_parser::Name;
use aldsp_xdm::qname::{ns, Namespaces};
use aldsp_xdm::types::{ElementType, ItemType, Occurrence, SequenceType};
use aldsp_xdm::value::{ArithOp, AtomicType, AtomicValue};
use aldsp_xdm::QName;
use std::collections::HashMap;

/// Per-module translation environment.
pub struct ModuleEnv {
    /// Namespace bindings of the module prolog.
    pub namespaces: Namespaces,
    /// Default element namespace.
    pub default_element_ns: Option<String>,
}

impl ModuleEnv {
    /// Build the environment from a parsed module.
    pub fn of(module: &Module) -> ModuleEnv {
        let mut nsenv = Namespaces::with_defaults();
        for (p, u) in &module.namespaces {
            nsenv.bind(p, u);
        }
        for imp in &module.schema_imports {
            if let Some(p) = &imp.prefix {
                nsenv.bind(p, &imp.uri);
            }
        }
        ModuleEnv {
            namespaces: nsenv,
            default_element_ns: module.default_element_ns.clone(),
        }
    }

    /// Resolve an element-name lexical.
    pub fn element_name(&self, n: &Name) -> Option<QName> {
        n.resolve(
            &|p| self.namespaces.resolve(p).map(str::to_string),
            self.default_element_ns.as_deref(),
        )
    }

    /// Resolve a function-name lexical (unprefixed names resolve to no
    /// namespace; builtins are matched separately).
    pub fn function_name(&self, n: &Name) -> Option<QName> {
        n.resolve(&|p| self.namespaces.resolve(p).map(str::to_string), None)
    }
}

/// Variable scope: source name → unique IR name.
type Scope = HashMap<String, String>;

/// Translate a whole module: every function body plus the main query
/// body (if any). Returns the translated main body.
pub fn translate_module(ctx: &mut Context<'_>, module: &Module) -> Option<CExpr> {
    let env = ModuleEnv::of(module);
    // two passes: signatures first so bodies can call forward
    #[allow(clippy::type_complexity)]
    let mut sigs: Vec<(
        QName,
        Vec<(String, SequenceType)>,
        SequenceType,
        Vec<(String, String)>,
    )> = Vec::new();
    for f in &module.functions {
        let Some(name) = env.function_name(&f.name) else {
            ctx.diag(
                f.span,
                format!("unbound namespace prefix in function name {}", f.name),
            );
            continue;
        };
        let params: Vec<(String, SequenceType)> = f
            .params
            .iter()
            .map(|p| {
                let ty =
                    p.ty.as_ref()
                        .map(|t| resolve_seq_type(ctx, &env, t, f.span))
                        .unwrap_or_else(SequenceType::any);
                (p.name.clone(), ty)
            })
            .collect();
        let ret = f
            .return_type
            .as_ref()
            .map(|t| resolve_seq_type(ctx, &env, t, f.span))
            .unwrap_or_else(SequenceType::any);
        let pragmas: Vec<(String, String)> =
            f.pragmas.iter().flat_map(|p| p.attrs.clone()).collect();
        sigs.push((name.clone(), params, ret, pragmas));
        // register the signature immediately (bodies translated next pass)
        ctx.functions.insert(
            name.clone(),
            UserFunction {
                name,
                params: sigs.last().expect("just pushed").1.clone(),
                return_type: sigs.last().expect("just pushed").2.clone(),
                body: None,
                pragmas: sigs.last().expect("just pushed").3.clone(),
            },
        );
    }
    for f in &module.functions {
        let Some(name) = env.function_name(&f.name) else {
            continue;
        };
        if f.external {
            // external: must be backed by a physical function
            if ctx.registry.function(&name).is_none() {
                ctx.diag(
                    f.span,
                    format!("external function {name} has no registered physical binding"),
                );
            }
            continue;
        }
        let Some(body_ast) = &f.body else {
            // body was in error at parse time; signature already usable
            continue;
        };
        // parameters become unique variables free in the body
        let mut scope = Scope::new();
        let mut unique_params = Vec::new();
        {
            let fun = ctx.functions.get(&name).expect("registered above").clone();
            for (pname, pty) in &fun.params {
                let u = ctx.fresh(pname);
                scope.insert(pname.clone(), u.clone());
                unique_params.push((u, pty.clone()));
            }
        }
        let body = translate_expr(ctx, &env, &mut scope, body_ast);
        let f_entry = ctx.functions.get_mut(&name).expect("registered above");
        f_entry.params = unique_params;
        f_entry.body = Some(body);
    }
    module.body.as_ref().map(|b| {
        let mut scope = Scope::new();
        translate_expr(ctx, &env, &mut scope, b)
    })
}

/// Translate a standalone expression (an ad-hoc query).
pub fn translate_query(ctx: &mut Context<'_>, env: &ModuleEnv, e: &Expr) -> CExpr {
    let mut scope = Scope::new();
    translate_expr(ctx, env, &mut scope, e)
}

/// Translate an expression with external variables pre-bound.
pub fn translate_query_with_vars(
    ctx: &mut Context<'_>,
    env: &ModuleEnv,
    e: &Expr,
    external_vars: &[String],
) -> CExpr {
    let mut scope = Scope::new();
    for v in external_vars {
        scope.insert(v.clone(), v.clone());
    }
    translate_expr(ctx, env, &mut scope, e)
}

fn error_expr(inputs: Vec<CExpr>, span: Span) -> CExpr {
    CExpr {
        kind: CKind::Error(inputs),
        ty: SequenceType::Seq(ItemType::Error, Occurrence::Star),
        span,
        node_id: 0,
    }
}

fn translate_expr(ctx: &mut Context<'_>, env: &ModuleEnv, scope: &mut Scope, e: &Expr) -> CExpr {
    let span = e.span;
    match &e.kind {
        ExprKind::Literal(v) => CExpr::constant(v.clone(), span),
        ExprKind::VarRef(v) => match scope.get(v) {
            Some(u) => CExpr::var(u, span),
            None => {
                ctx.diag(span, format!("reference to undeclared variable ${v}"));
                error_expr(vec![], span)
            }
        },
        ExprKind::ContextItem => match scope.get(".") {
            Some(u) => CExpr::var(u, span),
            None => {
                ctx.diag(span, "the context item is undefined here");
                error_expr(vec![], span)
            }
        },
        ExprKind::Sequence(items) => CExpr::new(
            CKind::Seq(
                items
                    .iter()
                    .map(|i| translate_expr(ctx, env, scope, i))
                    .collect(),
            ),
            span,
        ),
        ExprKind::Range(a, b) => CExpr::new(
            CKind::Range(
                Box::new(atomized(translate_expr(ctx, env, scope, a))),
                Box::new(atomized(translate_expr(ctx, env, scope, b))),
            ),
            span,
        ),
        ExprKind::Flwor { clauses, ret } => {
            let saved: Scope = scope.clone();
            let mut out = Vec::with_capacity(clauses.len());
            for c in clauses {
                match c {
                    AClause::For {
                        var,
                        pos_var,
                        ty,
                        source,
                    } => {
                        let src = translate_expr(ctx, env, scope, source);
                        let src = match ty {
                            Some(t) => wrap_typematch_iterated(ctx, env, src, t, span),
                            None => src,
                        };
                        let u = ctx.fresh(var);
                        scope.insert(var.clone(), u.clone());
                        let up = pos_var.as_ref().map(|p| {
                            let upos = ctx.fresh(p);
                            scope.insert(p.clone(), upos.clone());
                            upos
                        });
                        out.push(Clause::For {
                            var: u,
                            pos: up,
                            source: src,
                        });
                    }
                    AClause::Let { var, ty, value } => {
                        let val = translate_expr(ctx, env, scope, value);
                        let val = match ty {
                            Some(t) => wrap_typematch(ctx, env, val, t, span),
                            None => val,
                        };
                        let u = ctx.fresh(var);
                        scope.insert(var.clone(), u.clone());
                        out.push(Clause::Let { var: u, value: val });
                    }
                    AClause::Where(w) => {
                        out.push(Clause::Where(translate_expr(ctx, env, scope, w)));
                    }
                    AClause::GroupBy { bindings, keys } => {
                        // keys evaluated in the pre-grouping scope
                        let mut ckeys = Vec::with_capacity(keys.len());
                        let mut key_aliases = Vec::with_capacity(keys.len());
                        for k in keys {
                            let ke = atomized(translate_expr(ctx, env, scope, &k.expr));
                            let alias_src =
                                k.alias.clone().unwrap_or_else(|| "groupkey".to_string());
                            let ua = ctx.fresh(&alias_src);
                            key_aliases.push((k.alias.clone(), ua.clone()));
                            ckeys.push((ke, ua));
                        }
                        let mut cbinds = Vec::with_capacity(bindings.len());
                        let mut bind_names = Vec::with_capacity(bindings.len());
                        for b in bindings {
                            match scope.get(&b.from) {
                                Some(u) => {
                                    let ut = ctx.fresh(&b.to);
                                    cbinds.push((u.clone(), ut.clone()));
                                    bind_names.push((b.to.clone(), ut));
                                }
                                None => {
                                    ctx.diag(
                                        span,
                                        format!("group binding references undeclared ${}", b.from),
                                    );
                                }
                            }
                        }
                        // after grouping, FLWOR-local bindings are out of
                        // scope; only regrouped vars and key aliases remain
                        *scope = saved.clone();
                        for (src, u) in &bind_names {
                            scope.insert(src.clone(), u.clone());
                        }
                        for (alias, u) in &key_aliases {
                            if let Some(a) = alias {
                                scope.insert(a.clone(), u.clone());
                            }
                        }
                        out.push(Clause::GroupBy {
                            bindings: cbinds,
                            keys: ckeys,
                            carry: Vec::new(),
                            pre_clustered: false,
                        });
                    }
                    AClause::OrderBy(specs) => {
                        let cspecs = specs
                            .iter()
                            .map(|s| OrderSpec {
                                expr: atomized(translate_expr(ctx, env, scope, &s.expr)),
                                descending: s.descending,
                                empty_least: s.empty_least,
                            })
                            .collect();
                        out.push(Clause::OrderBy(cspecs));
                    }
                }
            }
            let ret = translate_expr(ctx, env, scope, ret);
            *scope = saved;
            CExpr::new(
                CKind::Flwor {
                    clauses: out,
                    ret: Box::new(ret),
                },
                span,
            )
        }
        ExprKind::If { cond, then, els } => CExpr::new(
            CKind::If {
                cond: Box::new(translate_expr(ctx, env, scope, cond)),
                then: Box::new(translate_expr(ctx, env, scope, then)),
                els: Box::new(translate_expr(ctx, env, scope, els)),
            },
            span,
        ),
        ExprKind::Quantified {
            every,
            bindings,
            satisfies,
        } => {
            // unnest multi-binding quantifiers: some $a in A, $b in B
            // satisfies P  ≡  some $a in A satisfies (some $b in B satisfies P)
            let saved = scope.clone();
            let mut uniques = Vec::with_capacity(bindings.len());
            for (v, src) in bindings {
                let s = translate_expr(ctx, env, scope, src);
                let u = ctx.fresh(v);
                scope.insert(v.clone(), u.clone());
                uniques.push((u, s));
            }
            let mut body = translate_expr(ctx, env, scope, satisfies);
            *scope = saved;
            for (u, s) in uniques.into_iter().rev() {
                body = CExpr::new(
                    CKind::Quantified {
                        every: *every,
                        var: u,
                        source: Box::new(s),
                        satisfies: Box::new(body),
                    },
                    span,
                );
            }
            body
        }
        ExprKind::Typeswitch {
            operand,
            cases,
            default_var,
            default,
        } => {
            let op = translate_expr(ctx, env, scope, operand);
            let mut ccases = Vec::with_capacity(cases.len());
            for c in cases {
                let ty = resolve_seq_type(ctx, env, &c.ty, span);
                let saved = scope.clone();
                let u = ctx.fresh(c.var.as_deref().unwrap_or("tsw"));
                if let Some(v) = &c.var {
                    scope.insert(v.clone(), u.clone());
                }
                let body = translate_expr(ctx, env, scope, &c.body);
                *scope = saved;
                ccases.push((ty, u, body));
            }
            let saved = scope.clone();
            let du = ctx.fresh(default_var.as_deref().unwrap_or("tsw"));
            if let Some(v) = default_var {
                scope.insert(v.clone(), du.clone());
            }
            let dbody = translate_expr(ctx, env, scope, default);
            *scope = saved;
            CExpr::new(
                CKind::Typeswitch {
                    operand: Box::new(op),
                    cases: ccases,
                    default: Box::new((du, dbody)),
                },
                span,
            )
        }
        ExprKind::Or(a, b) => CExpr::new(
            CKind::Or(
                Box::new(translate_expr(ctx, env, scope, a)),
                Box::new(translate_expr(ctx, env, scope, b)),
            ),
            span,
        ),
        ExprKind::And(a, b) => CExpr::new(
            CKind::And(
                Box::new(translate_expr(ctx, env, scope, a)),
                Box::new(translate_expr(ctx, env, scope, b)),
            ),
            span,
        ),
        ExprKind::Comparison {
            op,
            general,
            lhs,
            rhs,
        } => {
            let mut l = translate_expr(ctx, env, scope, lhs);
            let mut r = translate_expr(ctx, env, scope, rhs);
            if !general {
                // value comparisons atomize (§3.3 stage 3: implicit
                // operations made explicit)
                l = atomized(l);
                r = atomized(r);
            }
            CExpr::new(
                CKind::Compare {
                    op: *op,
                    general: *general,
                    lhs: Box::new(l),
                    rhs: Box::new(r),
                },
                span,
            )
        }
        ExprKind::Arith { op, lhs, rhs } => CExpr::new(
            CKind::Arith {
                op: *op,
                lhs: Box::new(atomized(translate_expr(ctx, env, scope, lhs))),
                rhs: Box::new(atomized(translate_expr(ctx, env, scope, rhs))),
            },
            span,
        ),
        ExprKind::Neg(inner) => CExpr::new(
            CKind::Arith {
                op: ArithOp::Sub,
                lhs: Box::new(CExpr::constant(AtomicValue::Integer(0), span)),
                rhs: Box::new(atomized(translate_expr(ctx, env, scope, inner))),
            },
            span,
        ),
        ExprKind::Path { start, steps } => {
            let mut cur = translate_expr(ctx, env, scope, start);
            for step in steps {
                cur = translate_step(ctx, env, scope, cur, step, span);
            }
            cur
        }
        ExprKind::Filter { base, predicates } => {
            let mut cur = translate_expr(ctx, env, scope, base);
            for p in predicates {
                cur = wrap_filter(ctx, env, scope, cur, p, span);
            }
            cur
        }
        ExprKind::Call { name, args } => translate_call(ctx, env, scope, name, args, span),
        ExprKind::DirectElement {
            name,
            conditional,
            attributes,
            content,
            namespaces,
            default_ns,
        } => {
            // constructor-local namespace declarations
            let mut local_env = ModuleEnv {
                namespaces: env.namespaces.clone(),
                default_element_ns: default_ns.clone().or(env.default_element_ns.clone()),
            };
            for (p, u) in namespaces {
                local_env.namespaces.bind(p, u);
            }
            let Some(qname) = local_env.element_name(name) else {
                ctx.diag(span, format!("unbound namespace prefix in <{name}>"));
                return error_expr(vec![], span);
            };
            let mut cattrs = Vec::with_capacity(attributes.len());
            for a in attributes {
                // attribute names never take the default namespace
                let Some(aname) = a.name.resolve(
                    &|p| local_env.namespaces.resolve(p).map(str::to_string),
                    None,
                ) else {
                    ctx.diag(
                        span,
                        format!("unbound namespace prefix in attribute {}", a.name),
                    );
                    continue;
                };
                let value = CExpr::new(
                    CKind::Seq(
                        a.value
                            .iter()
                            .map(|p| translate_expr(ctx, &local_env, scope, p))
                            .collect(),
                    ),
                    span,
                );
                cattrs.push((aname, a.conditional, value));
            }
            let ccontent = CExpr::new(
                CKind::Seq(
                    content
                        .iter()
                        .map(|c| translate_expr(ctx, &local_env, scope, c))
                        .collect(),
                ),
                span,
            );
            CExpr::new(
                CKind::ElementCtor {
                    name: qname,
                    conditional: *conditional,
                    attributes: cattrs,
                    content: Box::new(ccontent),
                },
                span,
            )
        }
        ExprKind::InstanceOf(inner, ty) => {
            let t = resolve_seq_type(ctx, env, ty, span);
            CExpr::new(
                CKind::InstanceOf {
                    input: Box::new(translate_expr(ctx, env, scope, inner)),
                    ty: t,
                },
                span,
            )
        }
        ExprKind::CastAs(inner, ty) => {
            let (target, optional) = resolve_atomic_target(ctx, env, ty, span);
            CExpr::new(
                CKind::Cast {
                    input: Box::new(atomized(translate_expr(ctx, env, scope, inner))),
                    target,
                    optional,
                },
                span,
            )
        }
        ExprKind::CastableAs(inner, ty) => {
            let (target, _) = resolve_atomic_target(ctx, env, ty, span);
            CExpr::new(
                CKind::Castable {
                    input: Box::new(atomized(translate_expr(ctx, env, scope, inner))),
                    target,
                },
                span,
            )
        }
        ExprKind::TreatAs(inner, ty) => {
            let t = resolve_seq_type(ctx, env, ty, span);
            CExpr::new(
                CKind::TypeMatch {
                    input: Box::new(translate_expr(ctx, env, scope, inner)),
                    ty: t,
                },
                span,
            )
        }
        ExprKind::Error(inputs) => error_expr(
            inputs
                .iter()
                .map(|i| translate_expr(ctx, env, scope, i))
                .collect(),
            span,
        ),
    }
}

fn translate_step(
    ctx: &mut Context<'_>,
    env: &ModuleEnv,
    scope: &mut Scope,
    input: CExpr,
    step: &ast::Step,
    span: Span,
) -> CExpr {
    let name = match &step.test {
        NameTest::Wildcard => None,
        NameTest::Name(n) => match env.element_name(n) {
            Some(q) => Some(q),
            None => {
                ctx.diag(span, format!("unbound namespace prefix in step {n}"));
                return error_expr(vec![input], span);
            }
        },
    };
    let mut cur = match step.axis {
        Axis::Child => CExpr::new(
            CKind::ChildStep {
                input: Box::new(input),
                name,
            },
            span,
        ),
        Axis::Attribute => {
            // attribute names never take the default element namespace
            let aname = match &step.test {
                NameTest::Wildcard => None,
                NameTest::Name(n) => {
                    n.resolve(&|p| env.namespaces.resolve(p).map(str::to_string), None)
                }
            };
            CExpr::new(
                CKind::AttrStep {
                    input: Box::new(input),
                    name: aname,
                },
                span,
            )
        }
        Axis::DescendantOrSelf => CExpr::new(
            CKind::DescendantStep {
                input: Box::new(input),
            },
            span,
        ),
    };
    for p in &step.predicates {
        cur = wrap_filter(ctx, env, scope, cur, p, span);
    }
    cur
}

fn wrap_filter(
    ctx: &mut Context<'_>,
    env: &ModuleEnv,
    scope: &mut Scope,
    input: CExpr,
    pred: &Expr,
    span: Span,
) -> CExpr {
    let ctx_var = ctx.fresh("ctx");
    let saved = scope.clone();
    scope.insert(".".to_string(), ctx_var.clone());
    // inside a predicate, relative paths start at the context item: the
    // parser already encodes them as paths from ContextItem
    let p = translate_expr(ctx, env, scope, pred);
    *scope = saved;
    CExpr::new(
        CKind::Filter {
            input: Box::new(input),
            predicate: Box::new(p),
            ctx_var,
            positional: false, // decided during type checking
        },
        span,
    )
}

fn translate_call(
    ctx: &mut Context<'_>,
    env: &ModuleEnv,
    scope: &mut Scope,
    name: &Name,
    args: &[Expr],
    span: Span,
) -> CExpr {
    let cargs: Vec<CExpr> = args
        .iter()
        .map(|a| translate_expr(ctx, env, scope, a))
        .collect();
    let uri = name
        .prefix
        .as_ref()
        .and_then(|p| env.namespaces.resolve(p))
        .map(str::to_string);
    if name.prefix.is_some() && uri.is_none() {
        ctx.diag(span, format!("unbound namespace prefix in call {name}()"));
        return error_expr(cargs, span);
    }
    // fn:data is the atomization node
    if name.local == "data" && cargs.len() == 1 && (uri.is_none() || uri.as_deref() == Some(ns::FN))
    {
        return CExpr::new(
            CKind::Data(Box::new(cargs.into_iter().next().expect("one arg"))),
            span,
        );
    }
    // xs:TYPE(...) constructor functions are casts
    if uri.as_deref() == Some(ns::XS) && cargs.len() == 1 {
        if let Some(t) = AtomicType::from_xs_name(&name.local) {
            return CExpr::new(
                CKind::Cast {
                    input: Box::new(atomized(cargs.into_iter().next().expect("one arg"))),
                    target: t,
                    optional: true,
                },
                span,
            );
        }
    }
    // built-ins
    if let Some(b) = Builtin::resolve(uri.as_deref(), &name.local, cargs.len()) {
        let cargs = match b {
            // aggregates and string functions atomize their arguments
            // (function conversion rules — §3.3 stage 3)
            Builtin::Sum
            | Builtin::Avg
            | Builtin::Min
            | Builtin::Max
            | Builtin::DistinctValues
            | Builtin::UpperCase
            | Builtin::LowerCase
            | Builtin::StringLength
            | Builtin::Substring
            | Builtin::Contains
            | Builtin::StartsWith
            | Builtin::Concat
            | Builtin::Abs => cargs.into_iter().map(atomized).collect(),
            _ => cargs,
        };
        return CExpr::new(CKind::Builtin { op: b, args: cargs }, span);
    }
    // user or physical function
    let qname = match &uri {
        Some(u) => QName::with_prefix(name.prefix.as_deref().unwrap_or(""), u, &name.local),
        None => QName::local(&name.local),
    };
    if let Some(f) = ctx.functions.get(&qname) {
        if f.params.len() != cargs.len() {
            ctx.diag(
                span,
                format!(
                    "function {qname} expects {} arguments, got {}",
                    f.params.len(),
                    cargs.len()
                ),
            );
            return error_expr(cargs, span);
        }
        return CExpr::new(
            CKind::UserCall {
                name: qname,
                args: cargs,
            },
            span,
        );
    }
    if let Some(p) = ctx.registry.function(&qname) {
        if p.params.len() != cargs.len() {
            ctx.diag(
                span,
                format!(
                    "physical function {qname} expects {} arguments, got {}",
                    p.params.len(),
                    cargs.len()
                ),
            );
            return error_expr(cargs, span);
        }
        return CExpr::new(
            CKind::PhysicalCall {
                name: qname,
                args: cargs,
            },
            span,
        );
    }
    ctx.diag(span, format!("call to undeclared function {name}()"));
    error_expr(cargs, span)
}

/// Wrap with atomization unless the expression is already atomic-typed
/// syntax (constants, casts, existing Data nodes).
fn atomized(e: CExpr) -> CExpr {
    match &e.kind {
        CKind::Const(_) | CKind::Data(_) | CKind::Cast { .. } | CKind::Arith { .. } => e,
        _ => {
            let span = e.span;
            CExpr::new(CKind::Data(Box::new(e)), span)
        }
    }
}

fn wrap_typematch(
    ctx: &mut Context<'_>,
    env: &ModuleEnv,
    e: CExpr,
    ty: &SeqTypeAst,
    span: Span,
) -> CExpr {
    let t = resolve_seq_type(ctx, env, ty, span);
    CExpr::new(
        CKind::TypeMatch {
            input: Box::new(e),
            ty: t,
        },
        span,
    )
}

fn wrap_typematch_iterated(
    ctx: &mut Context<'_>,
    env: &ModuleEnv,
    e: CExpr,
    ty: &SeqTypeAst,
    span: Span,
) -> CExpr {
    // the `for $x as T in …` annotation checks each item: widen to *
    let t = resolve_seq_type(ctx, env, ty, span).with_occurrence(Occurrence::Star);
    CExpr::new(
        CKind::TypeMatch {
            input: Box::new(e),
            ty: t,
        },
        span,
    )
}

fn resolve_atomic_target(
    ctx: &mut Context<'_>,
    env: &ModuleEnv,
    ty: &SeqTypeAst,
    span: Span,
) -> (AtomicType, bool) {
    match &ty.item {
        ItemTypeAst::Atomic(n) => {
            let resolved = match &n.prefix {
                None => AtomicType::from_xs_name(&n.local),
                Some(p) if env.namespaces.resolve(p) == Some(ns::XS) => {
                    AtomicType::from_xs_name(&n.local)
                }
                _ => None,
            };
            match resolved {
                Some(t) => (t, ty.occ == Occurrence::Optional),
                None => {
                    ctx.diag(span, format!("unknown atomic type {n}"));
                    (AtomicType::AnyAtomic, true)
                }
            }
        }
        other => {
            ctx.diag(
                span,
                format!("cast target must be an atomic type, found {other:?}"),
            );
            (AtomicType::AnyAtomic, true)
        }
    }
}

/// Resolve a syntactic sequence type against the module environment and
/// the imported schemas in the registry.
pub fn resolve_seq_type(
    ctx: &mut Context<'_>,
    env: &ModuleEnv,
    t: &SeqTypeAst,
    span: Span,
) -> SequenceType {
    let item = match &t.item {
        ItemTypeAst::EmptySequence => return SequenceType::Empty,
        ItemTypeAst::AnyItem => ItemType::AnyItem,
        ItemTypeAst::AnyNode => ItemType::AnyNode,
        ItemTypeAst::Text => ItemType::Text,
        ItemTypeAst::Document => ItemType::Document,
        ItemTypeAst::Atomic(n) => {
            let resolved = match &n.prefix {
                None => AtomicType::from_xs_name(&n.local),
                Some(p) if env.namespaces.resolve(p) == Some(ns::XS) => {
                    AtomicType::from_xs_name(&n.local)
                }
                _ => None,
            };
            match resolved {
                Some(a) => ItemType::Atomic(a),
                None => {
                    ctx.diag(span, format!("unknown atomic type {n}"));
                    ItemType::Error
                }
            }
        }
        ItemTypeAst::Element(name) => match name {
            None => ItemType::Element(ElementType::any()),
            Some(n) => match env.element_name(n) {
                Some(q) => {
                    // element(N): use the schema's structural shape when
                    // one is declared, else ANYTYPE content (§3.1)
                    match ctx.registry.schema_element(&q) {
                        Some(shape) => ItemType::Element(shape.clone()),
                        None => ItemType::element_any(q),
                    }
                }
                None => {
                    ctx.diag(span, format!("unbound prefix in element({n})"));
                    ItemType::Error
                }
            },
        },
        ItemTypeAst::SchemaElement(n) => match env.element_name(n) {
            Some(q) => match ctx.registry.schema_element(&q) {
                Some(shape) => ItemType::Element(shape.clone()),
                None => {
                    // schema-element(E) requires the declaration to exist
                    // (§3.1): error if not found
                    ctx.diag(
                        span,
                        format!("schema-element({n}) is not declared in any imported schema"),
                    );
                    ItemType::Error
                }
            },
            None => {
                ctx.diag(span, format!("unbound prefix in schema-element({n})"));
                ItemType::Error
            }
        },
        ItemTypeAst::Attribute(name) => {
            let aname = name
                .as_ref()
                .and_then(|n| n.resolve(&|p| env.namespaces.resolve(p).map(str::to_string), None));
            ItemType::Attribute {
                name: aname,
                typ: AtomicType::AnyAtomic,
            }
        }
    };
    SequenceType::Seq(item, t.occ)
}
