//! Frame layout (§5.1, Fig. 4): assign every binding in a compiled plan
//! a dense integer slot so the runtime can represent the FLWOR tuple as
//! a fixed-width array ("the fields of a tuple can be directly
//! accessed") instead of a name-keyed linked list.
//!
//! The pass runs at the very end of compilation — after view unfolding,
//! rule rewrites, and SQL pushdown — so the optimizer stays entirely
//! slot-agnostic: rules manipulate names (which translation has already
//! made globally unique via alpha-renaming), and slots are derived from
//! whatever plan survives. Each binder (`for`/`let`/positional `at`/
//! group-by aliases and regroupings/SQL field binds/quantified vars/
//! typeswitch case vars/filter context vars) takes the next free slot;
//! variable references resolve lexically against the enclosing scope
//! stack. External variables are seeded first, at slots `0..n`, so the
//! server can fill the initial frame positionally.
//!
//! Slots are never reused across sibling scopes; the frame width is the
//! total binder count. That wastes a few `Option` cells on plans with
//! many disjoint scopes, but keeps every slot valid for the whole
//! evaluation — a buffered tuple (order-by, group-by, PP-k) can be
//! revisited long after its scope "closed".

use crate::ir::{CExpr, CKind, Clause, NO_SLOT};
use std::collections::HashMap;

/// The slot assignment for one compiled plan: the frame width and the
/// binder-name → slot map (names are unique per plan, so the map is a
/// bijection onto `0..width`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FrameLayout {
    width: u32,
    slots: HashMap<String, u32>,
}

impl FrameLayout {
    /// Number of slots a frame for this plan needs.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// The slot assigned to binder `name`, if the layout saw it.
    pub fn slot(&self, name: &str) -> Option<u32> {
        self.slots.get(name).copied()
    }
}

struct Layout {
    /// Lexical scope stack: `(binder name, slot)`, innermost last.
    scope: Vec<(String, u32)>,
    /// Every binder ever assigned (binder names are globally unique
    /// after translation's alpha-renaming).
    slots: HashMap<String, u32>,
    next: u32,
}

impl Layout {
    fn bind(&mut self, name: &str) {
        let slot = self.next;
        self.next += 1;
        debug_assert!(
            !self.slots.contains_key(name),
            "binder {name:?} assigned twice — alpha-renaming broke"
        );
        self.slots.insert(name.to_string(), slot);
        self.scope.push((name.to_string(), slot));
    }

    fn resolve(&self, name: &str) -> u32 {
        self.scope
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|&(_, s)| s)
            .unwrap_or(NO_SLOT)
    }

    fn walk(&mut self, e: &mut CExpr) {
        match &mut e.kind {
            CKind::Var { name, slot } => *slot = self.resolve(name),
            CKind::Flwor { clauses, ret } => {
                let mark = self.scope.len();
                for c in clauses.iter_mut() {
                    match c {
                        Clause::For { var, pos, source } => {
                            self.walk(source);
                            self.bind(var);
                            if let Some(p) = pos {
                                self.bind(p);
                            }
                        }
                        Clause::Let { var, value } => {
                            self.walk(value);
                            self.bind(var);
                        }
                        Clause::Where(cond) => self.walk(cond),
                        Clause::GroupBy {
                            bindings,
                            keys,
                            carry,
                            ..
                        } => {
                            // key expressions see the pre-group scope;
                            // the `from` sides of bindings/carry are
                            // resolved by the runtime through the
                            // binder map
                            for (k, _) in keys.iter_mut() {
                                self.walk(k);
                            }
                            for (_, to) in bindings.iter() {
                                self.bind(to);
                            }
                            for (_, alias) in keys.iter() {
                                self.bind(alias);
                            }
                            for (_, to) in carry.iter() {
                                self.bind(to);
                            }
                        }
                        Clause::OrderBy(specs) => {
                            for s in specs.iter_mut() {
                                self.walk(&mut s.expr);
                            }
                        }
                        Clause::SqlFor {
                            params, binds, ppk, ..
                        } => {
                            for p in params.iter_mut() {
                                self.walk(p);
                            }
                            if let Some(p) = ppk {
                                for k in p.outer_keys.iter_mut() {
                                    self.walk(k);
                                }
                            }
                            for (var, _) in binds.iter() {
                                self.bind(var);
                            }
                        }
                    }
                }
                self.walk(ret);
                self.scope.truncate(mark);
            }
            CKind::Quantified {
                var,
                source,
                satisfies,
                ..
            } => {
                self.walk(source);
                let mark = self.scope.len();
                self.bind(var);
                self.walk(satisfies);
                self.scope.truncate(mark);
            }
            CKind::Typeswitch {
                operand,
                cases,
                default,
            } => {
                self.walk(operand);
                for (_, var, branch) in cases.iter_mut() {
                    let mark = self.scope.len();
                    self.bind(var);
                    self.walk(branch);
                    self.scope.truncate(mark);
                }
                let mark = self.scope.len();
                self.bind(&default.0);
                self.walk(&mut default.1);
                self.scope.truncate(mark);
            }
            CKind::Filter {
                input,
                predicate,
                ctx_var,
                ..
            } => {
                self.walk(input);
                let mark = self.scope.len();
                self.bind(ctx_var);
                self.walk(predicate);
                self.scope.truncate(mark);
            }
            // no other kind introduces bindings
            _ => e.for_each_child_mut(&mut |c| self.walk(c)),
        }
    }
}

/// Assign slots throughout `plan` and return its frame layout.
/// `externals` are seeded first, at slots `0..externals.len()`, and
/// stay in scope for the whole plan.
pub fn layout(plan: &mut CExpr, externals: &[String]) -> FrameLayout {
    let mut st = Layout {
        scope: Vec::new(),
        slots: HashMap::new(),
        next: 0,
    };
    for v in externals {
        st.bind(v);
    }
    st.walk(plan);
    FrameLayout {
        width: st.next,
        slots: st.slots,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Span;

    fn sp() -> Span {
        Span::default()
    }

    #[test]
    fn externals_take_leading_slots_and_binders_follow() {
        // for $x in $ext return $x
        let mut plan = CExpr::new(
            CKind::Flwor {
                clauses: vec![Clause::For {
                    var: "x__1".into(),
                    pos: None,
                    source: CExpr::var("ext", sp()),
                }],
                ret: Box::new(CExpr::var("x__1", sp())),
            },
            sp(),
        );
        let frame = layout(&mut plan, &["ext".to_string()]);
        assert_eq!(frame.width(), 2);
        assert_eq!(frame.slot("ext"), Some(0));
        assert_eq!(frame.slot("x__1"), Some(1));
        let CKind::Flwor { clauses, ret } = &plan.kind else {
            panic!()
        };
        assert_eq!(
            ret.kind,
            CKind::Var {
                name: "x__1".into(),
                slot: 1
            }
        );
        let Clause::For { source, .. } = &clauses[0] else {
            panic!()
        };
        assert_eq!(
            source.kind,
            CKind::Var {
                name: "ext".into(),
                slot: 0
            }
        );
    }

    #[test]
    fn unresolved_references_keep_the_sentinel() {
        let mut plan = CExpr::var("nowhere", sp());
        let frame = layout(&mut plan, &[]);
        assert_eq!(frame.width(), 0);
        assert_eq!(
            plan.kind,
            CKind::Var {
                name: "nowhere".into(),
                slot: NO_SLOT
            }
        );
    }
}
