//! # aldsp-compiler — the ALDSP XQuery compiler
//!
//! Implements §3.3–§4 of *Query Processing in the AquaLogic Data
//! Services Platform* (VLDB 2006): expression-tree construction and
//! normalization ([`translate`]), structural/optimistic static typing
//! with `typematch` insertion ([`typecheck`]), the rule-driven optimizer
//! — view unfolding, source-access elimination, predicate motion,
//! inverse functions ([`rules`]) — and SQL pushdown analysis + vendor
//! SQL generation ([`sqlgen`]). [`compile::Compiler`] drives the
//! pipeline and owns the partially-optimized view cache (§4.2).
//!
//! The optimized tree ([`ir::CExpr`]) *is* the executable plan; the
//! `aldsp-runtime` crate interprets it.

pub mod compile;
pub mod context;
pub mod explain;
pub mod frames;
pub mod ir;
pub mod joins;
pub mod parallel;
pub mod program;
pub mod rules;
pub mod sqlgen;
pub mod translate;
pub mod typecheck;

pub use compile::{CompiledQuery, Compiler, CompilerStats, Mutation, Options, PushdownLevel};
pub use context::{Context, InverseRegistry, Mode, UserFunction};
pub use explain::{explain_plan, ExplainContext};
pub use frames::FrameLayout;
pub use ir::{Builtin, CExpr, CKind, Clause, LocalJoinMethod, OrderSpec, PpkSpec, NO_SLOT};
pub use joins::{JoinMark, JoinPlan, JoinStrategy};
pub use parallel::{ParTail, ParallelMark, ParallelPlan};
pub use program::{Op, Program, ProgramSet};

use aldsp_relational::Select;

/// A pushed SQL region found in a plan (inspection/testing helper).
#[derive(Debug, Clone)]
pub struct SqlRegion {
    /// Connection name.
    pub connection: String,
    /// The generated SQL statement.
    pub select: Select,
    /// The PP-k spec, when the region is a dependent join.
    pub ppk: Option<PpkSpec>,
}

/// Collect every `SqlFor` region in a plan, in pre-order.
pub fn collect_sql_regions(plan: &CExpr) -> Vec<SqlRegion> {
    let mut out = Vec::new();
    fn walk(e: &CExpr, out: &mut Vec<SqlRegion>) {
        if let CKind::Flwor { clauses, .. } = &e.kind {
            for c in clauses {
                if let Clause::SqlFor {
                    connection,
                    select,
                    ppk,
                    ..
                } = c
                {
                    out.push(SqlRegion {
                        connection: connection.clone(),
                        select: (**select).clone(),
                        ppk: ppk.clone(),
                    });
                }
            }
        }
        e.for_each_child(&mut |c| walk(c, out));
    }
    walk(plan, &mut out);
    out
}

/// Count the physical source calls remaining in a plan (un-pushed
/// accesses).
pub fn count_physical_calls(plan: &CExpr) -> usize {
    let mut n = 0;
    plan.walk(&mut |e| {
        if matches!(&e.kind, CKind::PhysicalCall { .. }) {
            n += 1;
        }
    });
    n
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use aldsp_metadata::{
        introspect_relational, introspect_web_service, FunctionKind, ParamDecl, PhysicalFunction,
        Registry, SourceBinding, WebServiceDescription, WebServiceOperation,
    };
    use aldsp_relational::{render_select, Catalog, Dialect, SqlType, TableSchema};
    use aldsp_xdm::schema::ShapeBuilder;
    use aldsp_xdm::types::{ItemType, Occurrence, SequenceType};
    use aldsp_xdm::value::AtomicType;
    use aldsp_xdm::QName;
    use std::sync::Arc;

    /// The running-example metadata: CUSTOMER/ORDER on db1 (Oracle),
    /// CREDIT_CARD on db2 (DB2), the rating web service, and the
    /// int2date/date2int natives of §4.4.
    pub(crate) fn fixture() -> Arc<Registry> {
        let mut cat1 = Catalog::new();
        cat1.add(
            TableSchema::builder("CUSTOMER")
                .col("CID", SqlType::Varchar)
                .col("LAST_NAME", SqlType::Varchar)
                .col_null("FIRST_NAME", SqlType::Varchar)
                .col_null("SINCE", SqlType::Integer)
                .col_null("SSN", SqlType::Varchar)
                .pk(&["CID"])
                .build()
                .unwrap(),
        )
        .unwrap();
        cat1.add(
            TableSchema::builder("ORDER")
                .col("OID", SqlType::Integer)
                .col("CID", SqlType::Varchar)
                .col_null("AMOUNT", SqlType::Decimal)
                .pk(&["OID"])
                .fk(&["CID"], "CUSTOMER", &["CID"])
                .build()
                .unwrap(),
        )
        .unwrap();
        let mut cat2 = Catalog::new();
        cat2.add(
            TableSchema::builder("CREDIT_CARD")
                .col("CCN", SqlType::Varchar)
                .col("CID", SqlType::Varchar)
                .col_null("LIMIT_AMT", SqlType::Decimal)
                .pk(&["CCN"])
                .build()
                .unwrap(),
        )
        .unwrap();
        let mut reg = Registry::new();
        reg.register_service(&introspect_relational(&cat1, "db1", "urn:custDS").unwrap())
            .unwrap();
        reg.register_service(&introspect_relational(&cat2, "db2", "urn:ccDS").unwrap())
            .unwrap();
        let input = ShapeBuilder::element(QName::new("urn:ratingTypes", "getRating"))
            .required("lName", AtomicType::String)
            .required("ssn", AtomicType::String)
            .build();
        let output = ShapeBuilder::element(QName::new("urn:ratingTypes", "getRatingResponse"))
            .required("getRatingResult", AtomicType::Integer)
            .build();
        reg.register_service(&introspect_web_service(&WebServiceDescription {
            name: "ratingWS".into(),
            namespace: "urn:ratingWS".into(),
            operations: vec![WebServiceOperation {
                name: "getRating".into(),
                input,
                output,
            }],
        }))
        .unwrap();
        // §4.4 natives
        for (name, from, to) in [
            ("int2date", AtomicType::Integer, AtomicType::DateTime),
            ("date2int", AtomicType::DateTime, AtomicType::Integer),
        ] {
            reg.register_function(PhysicalFunction {
                name: QName::new("urn:lib", name),
                kind: FunctionKind::Library,
                params: vec![ParamDecl {
                    name: "x".into(),
                    ty: SequenceType::Seq(ItemType::Atomic(from), Occurrence::Optional),
                }],
                return_type: SequenceType::Seq(ItemType::Atomic(to), Occurrence::Optional),
                source: SourceBinding::Native {
                    id: name.to_string(),
                },
            })
            .unwrap();
        }
        Arc::new(reg)
    }

    pub(crate) fn compiler() -> Compiler {
        let mut opts = Options::default();
        opts.dialects.insert("db1".into(), Dialect::Oracle);
        opts.dialects.insert("db2".into(), Dialect::Db2);
        Compiler::new(fixture(), opts)
    }

    pub(crate) const PROLOG: &str = r#"
        declare namespace c = "urn:custDS";
        declare namespace cc = "urn:ccDS";
        declare namespace ws = "urn:ratingWS";
        declare namespace lib = "urn:lib";
        declare namespace r = "urn:ratingTypes";
    "#;

    pub(crate) fn compile(query: &str) -> CompiledQuery {
        let src = format!("{PROLOG}\n{query}");
        compiler()
            .compile_query(&src)
            .unwrap_or_else(|d| panic!("compile failed: {d:?}\n{query}"))
    }

    pub(crate) fn oracle_sql(q: &CompiledQuery) -> String {
        let regions = collect_sql_regions(&q.plan);
        assert!(!regions.is_empty(), "no SQL pushed: {:#?}", q.plan);
        render_select(&regions[0].select, Dialect::Oracle)
    }

    #[test]
    fn table1a_simple_select_project() {
        let q = compile(r#"for $c in c:CUSTOMER() where $c/CID eq "CUST001" return $c/FIRST_NAME"#);
        let sql = oracle_sql(&q);
        assert_eq!(
            sql,
            "SELECT t1.\"FIRST_NAME\" AS c1\nFROM \"CUSTOMER\" t1\nWHERE t1.\"CID\" = 'CUST001'"
        );
        assert_eq!(count_physical_calls(&q.plan), 0);
    }

    #[test]
    fn table1b_inner_join() {
        let q = compile(
            r#"for $c in c:CUSTOMER(), $o in c:ORDER()
               where $c/CID eq $o/CID
               return <CUSTOMER_ORDER>{ $c/CID, $o/OID }</CUSTOMER_ORDER>"#,
        );
        let sql = oracle_sql(&q);
        assert!(sql.contains("JOIN \"ORDER\" t2"), "{sql}");
        assert!(sql.contains("ON t1.\"CID\" = t2.\"CID\""), "{sql}");
        assert!(!sql.contains("LEFT OUTER"), "{sql}");
        assert_eq!(collect_sql_regions(&q.plan).len(), 1);
    }

    #[test]
    fn table1c_outer_join_from_nested_for() {
        let q = compile(
            r#"for $c in c:CUSTOMER()
               return
                 <CUSTOMER>{
                   $c/CID,
                   for $o in c:ORDER()
                   where $c/CID eq $o/CID
                   return $o/OID
                 }</CUSTOMER>"#,
        );
        let sql = oracle_sql(&q);
        assert!(sql.contains("LEFT OUTER JOIN \"ORDER\""), "{sql}");
        assert!(sql.contains("ON t1.\"CID\" = t_inner.\"CID\""), "{sql}");
        // clustered middleware grouping on the customer key
        let has_clustered_group = {
            let mut found = false;
            q.plan.walk(&mut |e| {
                if let CKind::Flwor { clauses, .. } = &e.kind {
                    for c in clauses {
                        if let Clause::GroupBy {
                            pre_clustered: true,
                            ..
                        } = c
                        {
                            found = true;
                        }
                    }
                }
            });
            found
        };
        assert!(has_clustered_group, "{:#?}", q.plan);
    }

    #[test]
    fn table1d_if_then_else_case() {
        let q = compile(
            r#"for $c in c:CUSTOMER()
               where (if ($c/CID eq "CUST001") then $c/FIRST_NAME else $c/LAST_NAME) eq "Jones"
               return $c/CID"#,
        );
        let sql = oracle_sql(&q);
        assert!(sql.contains("CASE"), "{sql}");
        assert!(sql.contains("WHEN t1.\"CID\" = 'CUST001'"), "{sql}");
        assert!(sql.contains("THEN t1.\"FIRST_NAME\""), "{sql}");
        assert!(sql.contains("ELSE t1.\"LAST_NAME\""), "{sql}");
    }

    #[test]
    fn table1e_group_by_with_aggregation() {
        let q = compile(
            r#"for $c in c:CUSTOMER()
               group $c as $p by $c/LAST_NAME as $l
               return <CUSTOMER>{ $l, count($p) }</CUSTOMER>"#,
        );
        let sql = oracle_sql(&q);
        assert!(sql.contains("COUNT(*)"), "{sql}");
        assert!(sql.contains("GROUP BY t1.\"LAST_NAME\""), "{sql}");
    }

    #[test]
    fn table1f_group_by_distinct() {
        let q = compile(
            r#"for $c in c:CUSTOMER()
               group by $c/LAST_NAME as $l
               return $l"#,
        );
        let sql = oracle_sql(&q);
        assert!(sql.starts_with("SELECT DISTINCT t1.\"LAST_NAME\""), "{sql}");
        assert!(!sql.contains("GROUP BY"), "{sql}");
    }

    #[test]
    fn table2g_outer_join_with_aggregation() {
        let q = compile(
            r#"for $c in c:CUSTOMER()
               return
                 <CUSTOMER>{
                   $c/CID,
                   <ORDERS>{
                     count(for $o in c:ORDER()
                           where $o/CID eq $c/CID
                           return $o)
                   }</ORDERS>
                 }</CUSTOMER>"#,
        );
        let sql = oracle_sql(&q);
        assert!(sql.contains("LEFT OUTER JOIN \"ORDER\""), "{sql}");
        assert!(sql.contains("COUNT("), "{sql}");
        assert!(sql.contains("GROUP BY"), "{sql}");
    }

    #[test]
    fn table2h_semi_join_exists() {
        let q = compile(
            r#"for $c in c:CUSTOMER()
               where some $o in c:ORDER() satisfies $c/CID eq $o/CID
               return $c/CID"#,
        );
        let sql = oracle_sql(&q);
        assert!(sql.contains("WHERE EXISTS("), "{sql}");
        assert!(sql.contains("SELECT 1 AS c1"), "{sql}");
        assert!(sql.contains("t1.\"CID\" = t2.\"CID\""), "{sql}");
    }

    #[test]
    fn table2i_subsequence_pagination() {
        let q = compile(
            r#"let $cs :=
                 for $c in c:CUSTOMER()
                 order by $c/LAST_NAME descending
                 return $c/CID
               return subsequence($cs, 10, 20)"#,
        );
        let sql = oracle_sql(&q);
        assert!(sql.contains("ROWNUM"), "{sql}");
        assert!(
            sql.contains("(t_out.rn >= 10) AND (t_out.rn < 30)"),
            "{sql}"
        );
        assert!(sql.contains("ORDER BY t1.\"LAST_NAME\" DESC"), "{sql}");
    }

    #[test]
    fn subsequence_not_pushed_to_sql92() {
        let mut opts = Options::default();
        opts.dialects.insert("db1".into(), Dialect::Sql92);
        let c = Compiler::new(fixture(), opts);
        let q = c
            .compile_query(&format!(
                "{PROLOG}
                 let $cs := for $c in c:CUSTOMER() order by $c/LAST_NAME return $c/CID
                 return subsequence($cs, 10, 20)"
            ))
            .unwrap();
        let regions = collect_sql_regions(&q.plan);
        assert!(
            regions[0].select.offset.is_none(),
            "subsequence must stay in middleware"
        );
        let mut has_subseq = false;
        q.plan.walk(&mut |e| {
            if matches!(
                &e.kind,
                CKind::Builtin {
                    op: Builtin::Subsequence,
                    ..
                }
            ) {
                has_subseq = true;
            }
        });
        assert!(has_subseq);
    }

    #[test]
    fn cross_source_join_uses_ppk() {
        let q = compile(
            r#"for $c in c:CUSTOMER()
               return
                 <PROFILE>{
                   $c/CID,
                   <CARDS>{
                     for $k in cc:CREDIT_CARD()
                     where $k/CID eq $c/CID
                     return $k/CCN
                   }</CARDS>
                 }</PROFILE>"#,
        );
        let regions = collect_sql_regions(&q.plan);
        assert_eq!(regions.len(), 2, "{:#?}", q.plan);
        let inner = regions.iter().find(|r| r.connection == "db2").unwrap();
        let ppk = inner.ppk.as_ref().expect("dependent join must use PP-k");
        assert_eq!(ppk.k, 20, "the paper's default block size");
        assert!(ppk.outer_join);
        assert_eq!(ppk.local_method, LocalJoinMethod::IndexNestedLoop);
        assert_eq!(ppk.outer_keys.len(), 1);
    }

    #[test]
    fn navigation_function_becomes_join() {
        let q = compile(
            r#"for $c in c:CUSTOMER(), $o in c:getORDER($c)
               return <CO>{ $c/CID, $o/OID }</CO>"#,
        );
        let sql = oracle_sql(&q);
        assert!(sql.contains("JOIN \"ORDER\" t2"), "{sql}");
        assert!(sql.contains("ON t1.\"CID\" = t2.\"CID\""), "{sql}");
    }

    #[test]
    fn inverse_function_rewrite_enables_pushdown() {
        let src = format!(
            "{PROLOG}
             declare variable $start as xs:dateTime external;
             for $c in c:CUSTOMER()
             where lib:int2date($c/SINCE) gt $start
             return $c/CID"
        );
        // without the inverse declared: no pushdown of the predicate
        let plain = compiler().compile_query(&src).unwrap();
        let r0 = collect_sql_regions(&plain.plan);
        assert!(
            r0.is_empty() || r0[0].select.where_.is_none(),
            "predicate must not push without the inverse: {:?}",
            r0[0].select.where_
        );
        // with the inverse: SINCE > ? with a middleware date2int param
        let mut c = compiler();
        c.declare_inverse(
            QName::new("urn:lib", "int2date"),
            QName::new("urn:lib", "date2int"),
        );
        let q = c.compile_query(&src).unwrap();
        let regions = collect_sql_regions(&q.plan);
        let sql = render_select(&regions[0].select, Dialect::Oracle);
        assert!(sql.contains("t1.\"SINCE\" > ?"), "{sql}");
        let mut has_param_call = false;
        q.plan.walk(&mut |e| {
            if let CKind::Flwor { clauses, .. } = &e.kind {
                for cl in clauses {
                    if let Clause::SqlFor { params, .. } = cl {
                        for p in params {
                            p.walk(&mut |pe| {
                                if let CKind::PhysicalCall { name, .. } = &pe.kind {
                                    if name.local_name() == "date2int" {
                                        has_param_call = true;
                                    }
                                }
                            });
                        }
                    }
                }
            }
        });
        assert!(
            has_param_call,
            "date2int($start) must be a middleware param"
        );
    }

    #[test]
    fn view_unfolding_pushes_predicate_through_data_service() {
        // the getProfileByID pattern of Figure 3 / §4.2
        let c = compiler();
        c.deploy_module(&format!(
            "{PROLOG}
             declare namespace tns = \"urn:profileDS\";
             declare function tns:getProfile() as element(PROFILE)* {{
               for $c in c:CUSTOMER()
               return <PROFILE><CID>{{fn:data($c/CID)}}</CID><NAME>{{fn:data($c/LAST_NAME)}}</NAME></PROFILE>
             }};
             declare function tns:getProfileByID($id as xs:string) as element(PROFILE)* {{
               tns:getProfile()[CID eq $id]
             }};"
        ))
        .unwrap();
        let q = c
            .compile_query(&format!(
                "{PROLOG}
                 declare namespace tns = \"urn:profileDS\";
                 declare variable $id as xs:string external;
                 tns:getProfileByID($id)"
            ))
            .unwrap();
        let regions = collect_sql_regions(&q.plan);
        assert_eq!(regions.len(), 1, "{:#?}", q.plan);
        let sql = render_select(&regions[0].select, Dialect::Oracle);
        assert!(sql.contains("WHERE t1.\"CID\" = ?"), "{sql}");
        assert_eq!(count_physical_calls(&q.plan), 0);
    }

    #[test]
    fn unused_constructor_content_is_not_fetched() {
        // §4.2's access-elimination example: only LAST_NAME survives
        let q = compile(
            r#"for $c in c:CUSTOMER()
               let $x := <CUSTOMER>
                           <LAST_NAME>{fn:data($c/LAST_NAME)}</LAST_NAME>
                           <FIRST>{fn:data($c/FIRST_NAME)}</FIRST>
                         </CUSTOMER>
               return fn:data($x/LAST_NAME)"#,
        );
        let sql = oracle_sql(&q);
        assert!(sql.contains("LAST_NAME"), "{sql}");
        assert!(
            !sql.contains("FIRST_NAME"),
            "FIRST_NAME must not be fetched: {sql}"
        );
    }

    #[test]
    fn optimistic_typing_inserts_typematch() {
        let c = compiler();
        c.deploy_module(&format!(
            "{PROLOG}
             declare namespace t = \"urn:t\";
             declare function t:pick($x as element(CUSTOMER)) as element(CUSTOMER) {{ $x }};"
        ))
        .unwrap();
        let q = c
            .compile_query(&format!(
                "{PROLOG}
                 declare namespace t = \"urn:t\";
                 declare variable $v external;
                 t:pick($v)"
            ))
            .unwrap();
        let mut has_typematch = false;
        q.plan.walk(&mut |e| {
            if matches!(&e.kind, CKind::TypeMatch { .. }) {
                has_typematch = true;
            }
        });
        assert!(has_typematch, "{:#?}", q.plan);
    }

    #[test]
    fn disjoint_types_rejected_statically() {
        let c = compiler();
        c.deploy_module(
            "declare namespace t = \"urn:t\";
             declare function t:f($x as xs:date) as xs:date { $x };",
        )
        .unwrap();
        let err = c
            .compile_query(
                "declare namespace t = \"urn:t\";
                 t:f(42)",
            )
            .unwrap_err();
        assert!(
            err.iter().any(|d| d.message.contains("never match")),
            "{err:?}"
        );
    }

    #[test]
    fn view_cache_reuses_partial_optimizations() {
        let c = compiler();
        c.deploy_module(&format!(
            "{PROLOG}
             declare namespace t = \"urn:t\";
             declare function t:all() as element(CUSTOMER)* {{
               for $c in c:CUSTOMER() return $c
             }};"
        ))
        .unwrap();
        let before = c.stats();
        assert_eq!(before.partial_optimizations, 1);
        for _ in 0..2 {
            c.compile_query(&format!(
                "{PROLOG}
                 declare namespace t = \"urn:t\";
                 for $x in t:all() return $x/CID"
            ))
            .unwrap();
        }
        let after = c.stats();
        assert_eq!(after.partial_optimizations, 1);
        assert_eq!(after.queries_compiled, 2);
    }

    #[test]
    fn compile_call_generates_parameter_plan() {
        let c = compiler();
        c.deploy_module(&format!(
            "{PROLOG}
             declare namespace t = \"urn:t\";
             declare function t:byId($id as xs:string) as element(CUSTOMER)* {{
               for $c in c:CUSTOMER() where $c/CID eq $id return $c
             }};"
        ))
        .unwrap();
        let q = c.compile_call(&QName::new("urn:t", "byId")).unwrap();
        assert_eq!(q.external_vars, vec!["arg0"]);
        let regions = collect_sql_regions(&q.plan);
        assert_eq!(regions.len(), 1);
        let sql = render_select(&regions[0].select, Dialect::Oracle);
        assert!(sql.contains("= ?"), "{sql}");
    }

    #[test]
    fn recover_mode_collects_errors_and_keeps_good_functions() {
        let opts = Options {
            mode: Mode::Recover,
            ..Default::default()
        };
        let c = Compiler::new(fixture(), opts);
        let deployed = c
            .deploy_module(
                "declare namespace t = \"urn:t\";
                 declare function t:bad() { $undefined };
                 declare function t:good() { 42 };",
            )
            .unwrap();
        assert_eq!(deployed.len(), 2);
        let q = c
            .compile_query(
                "declare namespace t = \"urn:t\";
                 t:good()",
            )
            .unwrap();
        assert!(matches!(
            &q.plan.kind,
            CKind::Const(aldsp_xdm::value::AtomicValue::Integer(42))
        ));
    }

    #[test]
    fn web_service_calls_stay_in_middleware() {
        let q = compile(
            r#"for $c in c:CUSTOMER()
               return
                 <P>{
                   $c/CID,
                   <RATING>{
                     fn:data(ws:getRating(
                       <r:getRating xmlns:r="urn:ratingTypes">
                         <r:lName>{fn:data($c/LAST_NAME)}</r:lName>
                         <r:ssn>{fn:data($c/SSN)}</r:ssn>
                       </r:getRating>)/r:getRatingResult)
                   }</RATING>
                 }</P>"#,
        );
        assert!(!collect_sql_regions(&q.plan).is_empty());
        assert_eq!(count_physical_calls(&q.plan), 1, "{:#?}", q.plan);
    }
}

#[cfg(test)]
mod scalar_projection_tests {
    use super::tests::compile;
    use super::*;
    use aldsp_relational::{render_select, Dialect};

    #[test]
    fn table1d_exact_form_case_in_select_list() {
        // the paper's published 1(d): the conditional is constructor
        // content, so CASE lands in the SELECT list
        // note: the paper's snippet writes the branches without explicit
        // atomization; its SQL fetches the *values*, so the faithful
        // pushable form atomizes (see EXPERIMENTS.md)
        let q = compile(
            r#"for $c in c:CUSTOMER()
               return
                 <CUSTOMER>{
                   if ($c/CID eq "CUST001")
                   then fn:data($c/FIRST_NAME)
                   else fn:data($c/LAST_NAME)
                 }</CUSTOMER>"#,
        );
        let regions = collect_sql_regions(&q.plan);
        let sql = render_select(&regions[0].select, Dialect::Oracle);
        assert!(
            sql.contains("SELECT CASE\nWHEN t1.\"CID\" = 'CUST001'\nTHEN t1.\"FIRST_NAME\"\nELSE t1.\"LAST_NAME\"\nEND AS c1"),
            "{sql}"
        );
        assert_eq!(count_physical_calls(&q.plan), 0);
    }

    #[test]
    fn arithmetic_projection_pushes() {
        let q = compile(
            r#"for $o in c:ORDER()
               return <TOTAL>{ $o/AMOUNT * 2 }</TOTAL>"#,
        );
        let regions = collect_sql_regions(&q.plan);
        let sql = render_select(&regions[0].select, Dialect::Oracle);
        assert!(sql.contains("(t1.\"AMOUNT\" * 2)"), "{sql}");
    }

    #[test]
    fn string_function_projection_pushes() {
        let q = compile(
            r#"for $c in c:CUSTOMER()
               return <U>{ fn:upper-case($c/LAST_NAME) }</U>"#,
        );
        let regions = collect_sql_regions(&q.plan);
        let sql = render_select(&regions[0].select, Dialect::Oracle);
        assert!(sql.contains("UPPER(t1.\"LAST_NAME\")"), "{sql}");
    }
}
