//! The compilation pipeline (§3.3) and the view sub-optimizer (§4.2).
//!
//! Query processing in ALDSP runs parsing → expression-tree construction
//! → normalization → type checking → optimization → code generation.
//! Because data services are layered views, ALDSP factors view
//! optimization in two stages: a *query-independent* partial optimization
//! of each data-service function, cached and reused, followed by
//! query-specific optimization (inlining, predicate motion, SQL
//! pushdown) per query. [`Compiler`] owns that cache; `deploy_module`
//! runs the partial stage, `compile_query`/`compile_call` run the
//! per-query stage.

use crate::context::{Context, InverseRegistry, Mode, UserFunction};
use crate::frames::FrameLayout;
use crate::ir::{CExpr, CKind};
use crate::translate::{translate_module, translate_query_with_vars, ModuleEnv};
use crate::{frames, rules, sqlgen, typecheck};
use aldsp_metadata::Registry;
use aldsp_parser::{parse_module, parse_module_strict, Diagnostic};
use aldsp_relational::Dialect;
use aldsp_xdm::QName;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// How much of a plan the SQL-pushdown pass (§4.3–4.4) may hand to the
/// relational sources. The levels exist for the differential
/// correctness harness: every level must return byte-identical results,
/// because pushdown is an *optimization*, never a semantic change —
/// "semantic transparency" is the paper's core claim.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PushdownLevel {
    /// No SQL generation at all: every table function stays a naive
    /// full-table scan and all joins, predicates, grouping, ordering
    /// and pagination evaluate in the middleware. This is the oracle's
    /// reference path.
    Off,
    /// Join trees, predicates and projections push (Table 1(b)–(d)),
    /// but trailing group-by, order-by and pagination stay in the
    /// middleware.
    Joins,
    /// Everything pushes (the production default).
    #[default]
    Full,
}

impl std::fmt::Display for PushdownLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PushdownLevel::Off => "off",
            PushdownLevel::Joins => "joins",
            PushdownLevel::Full => "full",
        })
    }
}

/// A deliberately wrong rewrite, compiled in only so the differential
/// harness can prove it would catch a real optimizer bug (the mutation
/// smoke test). Never set in a production configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// While forming a SQL region, consume a pushable `where` conjunct
    /// without attaching it to the generated SQL — the pushed plan
    /// silently returns extra rows.
    DropPushedPredicate,
}

/// Compiler configuration.
#[derive(Debug, Clone)]
pub struct Options {
    /// Error-handling mode (§4.1).
    pub mode: Mode,
    /// How aggressively to push work into SQL (differential-testing
    /// knob; the default pushes everything).
    pub pushdown: PushdownLevel,
    /// A deliberately planted rewrite bug, for validating correctness
    /// harnesses. `None` in every real configuration.
    pub mutation: Option<Mutation>,
    /// Per-connection SQL dialects (§4.3).
    pub dialects: HashMap<String, Dialect>,
    /// Use the partially-optimized-view cache (§4.2)? Disable to measure
    /// its benefit.
    pub view_cache: bool,
    /// PP-k block size (§4.2: "by default, ALDSP uses a medium-sized k
    /// value (20) that has been empirically shown to work well").
    pub ppk_block_size: usize,
    /// The local join method PP-k uses within a block (§5.2).
    pub ppk_local_method: crate::ir::LocalJoinMethod,
    /// How many PP-k blocks may be fetched ahead of the consumer
    /// (0 = fully synchronous, fetch each block on demand). With depth
    /// d, the runtime keeps up to d parameterized block fetches in
    /// flight on background threads while the local join consumes the
    /// current block, overlapping source latency with local work.
    pub ppk_prefetch_depth: usize,
    /// Lower scalar expression subtrees to bytecode programs for the
    /// runtime's expression VM (differential-testing knob; on in every
    /// real configuration).
    pub vm: bool,
    /// Middleware join-method selection for the join-planning pass:
    /// cost-based by default, with forced levels for the differential
    /// harness (every level returns byte-identical results).
    pub join_strategy: crate::joins::JoinStrategy,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            mode: Mode::FailFast,
            pushdown: PushdownLevel::default(),
            mutation: None,
            dialects: HashMap::new(),
            view_cache: true,
            ppk_block_size: 20,
            ppk_local_method: crate::ir::LocalJoinMethod::IndexNestedLoop,
            ppk_prefetch_depth: 1,
            vm: true,
            join_strategy: crate::joins::JoinStrategy::default(),
        }
    }
}

/// A compiled, executable query plan.
#[derive(Debug, Clone)]
pub struct CompiledQuery {
    /// The optimized expression tree — the plan the runtime interprets.
    pub plan: CExpr,
    /// External variable names the plan expects bound at execution.
    pub external_vars: Vec<String>,
    /// Slot assignment for the plan's bindings (externals occupy slots
    /// `0..external_vars.len()` in declaration order). Shared so each
    /// execution context references it without copying the map.
    pub frame: Arc<FrameLayout>,
    /// The pushdown level the plan was compiled under — recorded so
    /// EXPLAIN (and the differential oracle) can confirm which path a
    /// result actually came from.
    pub pushdown: PushdownLevel,
    /// Diagnostics gathered during compilation (empty in fail-fast mode).
    pub diagnostics: Vec<Diagnostic>,
    /// Bytecode programs for the plan's scalar subtrees, keyed by root
    /// `node_id` (empty when compiled with `vm: false`). Shared so each
    /// execution references the compiled code without copying it.
    pub programs: Arc<crate::program::ProgramSet>,
    /// Parallel-eligibility marks for the plan's FLWORs (morsel-driven
    /// execution regions), keyed by FLWOR `node_id`. Shared so each
    /// execution references the analysis without re-deriving it.
    pub parallel: Arc<crate::parallel::ParallelPlan>,
    /// Middleware join decisions (hash / sort-merge bulk fetches with
    /// build-side choice), keyed by `(flwor node_id, clause index)`.
    /// Shared so each execution references the plan without copying the
    /// decorrelated bulk statements.
    pub joins: Arc<crate::joins::JoinPlan>,
}

/// Cache/statistics counters for the view sub-optimizer.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompilerStats {
    /// Functions partially optimized (view-cache misses).
    pub partial_optimizations: u64,
    /// View-cache hits during inlining.
    pub view_cache_hits: u64,
    /// Queries compiled.
    pub queries_compiled: u64,
}

/// The ALDSP query compiler.
pub struct Compiler {
    registry: Arc<Registry>,
    options: Options,
    inverses: InverseRegistry,
    views: Mutex<HashMap<QName, UserFunction>>,
    stats: Mutex<CompilerStats>,
}

impl Compiler {
    /// Create a compiler over the given metadata.
    pub fn new(registry: Arc<Registry>, options: Options) -> Compiler {
        Compiler {
            registry,
            options,
            inverses: InverseRegistry::default(),
            views: Mutex::new(HashMap::new()),
            stats: Mutex::new(CompilerStats::default()),
        }
    }

    /// Register `inverse` as the inverse of `f` and enable the §4.4
    /// rewrite rules for it.
    pub fn declare_inverse(&mut self, f: QName, inverse: QName) {
        self.inverses.declare(f, inverse);
    }

    /// Snapshot the compiler statistics.
    pub fn stats(&self) -> CompilerStats {
        *self.stats.lock()
    }

    fn new_context(&self) -> Context<'_> {
        let mut ctx = Context::new(&self.registry, self.options.mode);
        ctx.dialects = self.options.dialects.clone();
        ctx.inverses = self.inverses.clone();
        ctx.ppk_block_size = self.options.ppk_block_size;
        ctx.ppk_local_method = self.options.ppk_local_method;
        ctx.ppk_prefetch_depth = self.options.ppk_prefetch_depth;
        ctx.pushdown = self.options.pushdown;
        ctx.mutation = self.options.mutation;
        ctx.vm = self.options.vm;
        ctx.join_strategy = self.options.join_strategy;
        // seed with deployed (partially optimized) functions
        for (name, f) in self.views.lock().iter() {
            ctx.functions.insert(name.clone(), f.clone());
        }
        ctx
    }

    /// Deploy a data-service module: parse, translate, type-check and
    /// *partially optimize* each function (the query-independent stage of
    /// §4.2), caching the results for reuse by later queries. Returns the
    /// deployed function names.
    pub fn deploy_module(&self, src: &str) -> Result<Vec<QName>, Vec<Diagnostic>> {
        let (module, mut diags) = match self.options.mode {
            Mode::FailFast => match parse_module_strict(src) {
                Ok(m) => (m, Vec::new()),
                Err(d) => return Err(vec![d]),
            },
            Mode::Recover => parse_module(src),
        };
        let mut ctx = self.new_context();
        let _body = translate_module(&mut ctx, &module);
        diags.append(&mut ctx.diags);
        // partial optimization of each newly declared function body
        let env = ModuleEnv::of(&module);
        let _ = env;
        let mut deployed = Vec::new();
        let names: Vec<QName> = module
            .functions
            .iter()
            .filter_map(|f| {
                aldsp_parser::ast::Name::parse(&f.name.to_string()).resolve(
                    &|p| {
                        module
                            .namespaces
                            .iter()
                            .find(|(pp, _)| pp == p)
                            .map(|(_, u)| u.clone())
                            .or_else(|| {
                                module
                                    .schema_imports
                                    .iter()
                                    .find(|si| si.prefix.as_deref() == Some(p))
                                    .map(|si| si.uri.clone())
                            })
                    },
                    None,
                )
            })
            .collect();
        for name in names {
            let Some(mut f) = ctx.functions.get(&name).cloned() else {
                continue;
            };
            if let Some(body) = &mut f.body {
                let mut tenv: typecheck::TypeEnv = f.params.iter().cloned().collect();
                typecheck::typecheck(&mut ctx, body, &mut tenv);
                if self.options.view_cache {
                    rules::optimize(&mut ctx, body);
                    self.stats.lock().partial_optimizations += 1;
                }
            }
            deployed.push(name.clone());
            self.views.lock().insert(name, f);
        }
        diags.extend(ctx.diags);
        if self.options.mode == Mode::FailFast && !diags.is_empty() {
            return Err(diags);
        }
        Ok(deployed)
    }

    /// Compile an ad-hoc query. The source is a module whose main body is
    /// the query; its prolog may declare namespaces, import schemas, and
    /// declare external variables (which become the plan's
    /// `external_vars`).
    pub fn compile_query(&self, src: &str) -> Result<CompiledQuery, Vec<Diagnostic>> {
        let (module, mut diags) = match self.options.mode {
            Mode::FailFast => match parse_module_strict(src) {
                Ok(m) => (m, Vec::new()),
                Err(d) => return Err(vec![d]),
            },
            Mode::Recover => parse_module(src),
        };
        let mut ctx = self.new_context();
        // local function declarations in the query module
        let body_from_module = {
            // translate functions first (translate_module handles both)
            let externals: Vec<String> = module.variables.iter().map(|v| v.name.clone()).collect();
            let mut m2 = module.clone();
            m2.body = None;
            translate_module(&mut ctx, &m2);
            module.body.as_ref().map(|b| {
                let env = ModuleEnv::of(&module);
                translate_query_with_vars(&mut ctx, &env, b, &externals)
            })
        };
        let Some(mut plan) = body_from_module else {
            diags.push(Diagnostic {
                span: Default::default(),
                message: "query module has no main expression".into(),
            });
            return Err(diags);
        };
        let external_vars: Vec<String> = module.variables.iter().map(|v| v.name.clone()).collect();
        let (frame, programs, parallel, joins) =
            self.finish(&mut ctx, &mut plan, &external_vars)?;
        diags.extend(ctx.diags);
        if self.options.mode == Mode::FailFast && !diags.is_empty() {
            return Err(diags);
        }
        self.stats.lock().queries_compiled += 1;
        Ok(CompiledQuery {
            plan,
            external_vars,
            frame,
            pushdown: self.options.pushdown,
            diagnostics: diags,
            programs,
            parallel,
            joins,
        })
    }

    /// Compile an invocation of a deployed data-service function: the
    /// plan calls `name` with external variables `arg0 … argN-1` (the
    /// method-call API of §2.2).
    pub fn compile_call(&self, name: &QName) -> Result<CompiledQuery, Vec<Diagnostic>> {
        let (arity, known) = {
            let views = self.views.lock();
            match views.get(name) {
                Some(f) => (f.params.len(), true),
                None => (
                    self.registry
                        .function(name)
                        .map(|p| p.params.len())
                        .unwrap_or(0),
                    self.registry.function(name).is_some(),
                ),
            }
        };
        if !known {
            return Err(vec![Diagnostic {
                span: Default::default(),
                message: format!("unknown data-service function {name}"),
            }]);
        }
        let mut ctx = self.new_context();
        let span = crate::ir::Span::default();
        let external_vars: Vec<String> = (0..arity).map(|i| format!("arg{i}")).collect();
        let args: Vec<CExpr> = external_vars.iter().map(|v| CExpr::var(v, span)).collect();
        let kind = if ctx.functions.contains_key(name) {
            self.stats.lock().view_cache_hits += 1;
            CKind::UserCall {
                name: name.clone(),
                args,
            }
        } else {
            CKind::PhysicalCall {
                name: name.clone(),
                args,
            }
        };
        let mut plan = CExpr::new(kind, span);
        let (frame, programs, parallel, joins) =
            self.finish(&mut ctx, &mut plan, &external_vars)?;
        let diags = std::mem::take(&mut ctx.diags);
        if self.options.mode == Mode::FailFast && !diags.is_empty() {
            return Err(diags);
        }
        self.stats.lock().queries_compiled += 1;
        Ok(CompiledQuery {
            plan,
            external_vars,
            frame,
            pushdown: self.options.pushdown,
            diagnostics: diags,
            programs,
            parallel,
            joins,
        })
    }

    /// The per-query stages, each an explicit pass run exactly once:
    /// type check → **normalize** (view unfolding + the local rewrite
    /// rules to fixpoint) → re-infer types → **predicate placement**
    /// (global duplicate elimination and contradiction pruning) →
    /// **SQL pushdown** → frame layout → node ids → bytecode lowering →
    /// **join planning** and parallel analysis over the final shape.
    /// Debug builds assert each rewriting pass is idempotent (re-running
    /// it is a no-op), which is what lets them run once instead of
    /// inside one shared fixpoint.
    #[allow(clippy::type_complexity)]
    fn finish(
        &self,
        ctx: &mut Context<'_>,
        plan: &mut CExpr,
        external_vars: &[String],
    ) -> Result<
        (
            Arc<FrameLayout>,
            Arc<crate::program::ProgramSet>,
            Arc<crate::parallel::ParallelPlan>,
            Arc<crate::joins::JoinPlan>,
        ),
        Vec<Diagnostic>,
    > {
        let mut tenv: typecheck::TypeEnv = external_vars
            .iter()
            .map(|v| (v.clone(), aldsp_xdm::types::SequenceType::any()))
            .collect();
        typecheck::typecheck(ctx, plan, &mut tenv);
        if self.options.mode == Mode::FailFast && ctx.has_errors() {
            return Err(std::mem::take(&mut ctx.diags));
        }
        run_pass(ctx, plan, "normalize", rules::optimize);
        // re-infer types after rewriting (rewrites preserve or refine)
        let mut tenv2: typecheck::TypeEnv = external_vars
            .iter()
            .map(|v| (v.clone(), aldsp_xdm::types::SequenceType::any()))
            .collect();
        typecheck::typecheck(ctx, plan, &mut tenv2);
        run_pass(ctx, plan, "place-predicates", rules::place_predicates);
        run_pass(ctx, plan, "pushdown", sqlgen::push_down);
        // slots are derived from the final plan: every rewrite above is
        // name-based and slot-agnostic
        let frame = frames::layout(plan, external_vars);
        let node_count = plan.assign_node_ids();
        let programs = if ctx.vm {
            crate::program::lower_plan(plan, node_count)
        } else {
            crate::program::ProgramSet::default()
        };
        // join planning and parallel eligibility are properties of the
        // final plan shape and need the node ids assigned just above
        let joins = crate::joins::analyze(ctx, plan);
        let parallel = crate::parallel::analyze(plan);
        Ok((
            Arc::new(frame),
            Arc::new(programs),
            Arc::new(parallel),
            Arc::new(joins),
        ))
    }

    /// A compiler over the same metadata, inverses, and deployed views
    /// as this one, but with different [`Options`] — the per-request
    /// override path for compile-affecting knobs (pushdown level, PP-k
    /// prefetch depth, join strategy).
    pub fn with_options(&self, options: Options) -> Compiler {
        Compiler {
            registry: Arc::clone(&self.registry),
            options,
            inverses: self.inverses.clone(),
            views: Mutex::new(self.views.lock().clone()),
            stats: Mutex::new(CompilerStats::default()),
        }
    }

    /// The options this compiler was built with.
    pub fn options(&self) -> &Options {
        &self.options
    }
}

/// Run one optimizer pass. Debug builds re-run the pass on a copy of
/// its own output and assert nothing changes: every staged pass must be
/// idempotent, which is the property that lets the pipeline run each
/// one exactly once instead of looping a shared fixpoint (the structure
/// whose ordering sensitivity caused the `hoist_wheres` hang). Plan
/// equality ignores `node_id`s, so the check is purely structural.
fn run_pass(
    ctx: &mut Context<'_>,
    plan: &mut CExpr,
    name: &str,
    pass: impl Fn(&mut Context<'_>, &mut CExpr),
) {
    pass(ctx, plan);
    if cfg!(debug_assertions) {
        let before = plan.clone();
        pass(ctx, plan);
        assert!(*plan == before, "optimizer pass '{name}' is not idempotent");
    }
}
