//! Static typing (§3.1, §4.1): structural and optimistic.
//!
//! Two deliberate departures from the XQuery specification, both from
//! the paper:
//!
//! 1. **Structural typing of constructors**: the static type of
//!    `<E>{expr}</E>` is an element named `E` whose content type is the
//!    *structural* type of `expr` — annotations survive construction, so
//!    view unfolding is type-preserving.
//! 2. **Optimistic call typing**: `f($x)` is accepted iff the static
//!    type of `$x` has a non-empty intersection with `f`'s parameter
//!    type. A runtime `typematch` operator is inserted to enforce the
//!    XQuery semantics — unless `$x` is provably a subtype, in which
//!    case no check is needed.
//!
//! Expressions that fail checking get the *error type* and a diagnostic;
//! in recover mode analysis continues (§4.1).

use crate::context::Context;
use crate::ir::{Builtin, CExpr, CKind, Clause};
use aldsp_xdm::types::{
    ChildDecl, ComplexContent, ContentType, ElementType, ItemType, Occurrence, SequenceType,
};
use aldsp_xdm::value::AtomicType;
use std::collections::HashMap;

/// Variable typing environment.
pub type TypeEnv = HashMap<String, SequenceType>;

fn err_ty() -> SequenceType {
    SequenceType::Seq(ItemType::Error, Occurrence::Star)
}

fn boolean1() -> SequenceType {
    SequenceType::atomic(AtomicType::Boolean)
}

/// Infer (and record) the type of `e`, inserting `typematch` operators
/// at optimistic call sites and classifying positional filters.
pub fn typecheck(ctx: &mut Context<'_>, e: &mut CExpr, env: &mut TypeEnv) {
    let span = e.span;
    let ty: SequenceType = match &mut e.kind {
        CKind::Const(v) => SequenceType::atomic(v.type_of()),
        CKind::Var { name: v, .. } => env
            .get(v.as_str())
            .cloned()
            .unwrap_or_else(SequenceType::any),
        CKind::Seq(items) => {
            let mut ty = SequenceType::Empty;
            for i in items.iter_mut() {
                typecheck(ctx, i, env);
                ty = ty.sequence_with(&i.ty);
            }
            ty
        }
        CKind::Range(a, b) => {
            typecheck(ctx, a, env);
            typecheck(ctx, b, env);
            SequenceType::Seq(ItemType::Atomic(AtomicType::Integer), Occurrence::Star)
        }
        CKind::Flwor { clauses, ret } => {
            let saved = env.clone();
            let mut iterates = false;
            for c in clauses.iter_mut() {
                match c {
                    Clause::For { var, pos, source } => {
                        typecheck(ctx, source, env);
                        iterates = true;
                        let item_ty = match source.ty.item_type() {
                            Some(i) => SequenceType::one(i.clone()),
                            None => SequenceType::Empty,
                        };
                        env.insert(var.clone(), item_ty);
                        if let Some(p) = pos {
                            env.insert(p.clone(), SequenceType::atomic(AtomicType::Integer));
                        }
                    }
                    Clause::Let { var, value } => {
                        typecheck(ctx, value, env);
                        env.insert(var.clone(), value.ty.clone());
                    }
                    Clause::Where(w) => typecheck(ctx, w, env),
                    Clause::GroupBy {
                        bindings,
                        keys,
                        carry,
                        ..
                    } => {
                        for (k, alias) in keys.iter_mut() {
                            typecheck(ctx, k, env);
                            env.insert(alias.clone(), k.ty.clone());
                        }
                        for (from, to) in bindings.iter() {
                            let from_ty = env
                                .get(from.as_str())
                                .cloned()
                                .unwrap_or_else(SequenceType::any);
                            env.insert(to.clone(), from_ty.with_occurrence(Occurrence::Star));
                        }
                        for (from, to) in carry.iter() {
                            let from_ty = env
                                .get(from.as_str())
                                .cloned()
                                .unwrap_or_else(SequenceType::any);
                            env.insert(to.clone(), from_ty);
                        }
                    }
                    Clause::OrderBy(specs) => {
                        for s in specs.iter_mut() {
                            typecheck(ctx, &mut s.expr, env);
                        }
                    }
                    Clause::SqlFor {
                        params, binds, ppk, ..
                    } => {
                        for p in params.iter_mut() {
                            typecheck(ctx, p, env);
                        }
                        if let Some(p) = ppk {
                            for k in p.outer_keys.iter_mut() {
                                typecheck(ctx, k, env);
                            }
                        }
                        iterates = true;
                        for (b, t) in binds.iter() {
                            env.insert(
                                b.clone(),
                                SequenceType::Seq(ItemType::Atomic(*t), Occurrence::Optional),
                            );
                        }
                    }
                }
            }
            typecheck(ctx, ret, env);
            *env = saved;
            if iterates {
                ret.ty
                    .with_occurrence(ret.ty.occurrence().iterated_by(Occurrence::Star))
            } else {
                ret.ty.clone()
            }
        }
        CKind::If { cond, then, els } => {
            typecheck(ctx, cond, env);
            typecheck(ctx, then, env);
            typecheck(ctx, els, env);
            then.ty.union(&els.ty)
        }
        CKind::Quantified {
            var,
            source,
            satisfies,
            ..
        } => {
            typecheck(ctx, source, env);
            let saved = env.clone();
            let item_ty = match source.ty.item_type() {
                Some(i) => SequenceType::one(i.clone()),
                None => SequenceType::Empty,
            };
            env.insert(var.clone(), item_ty);
            typecheck(ctx, satisfies, env);
            *env = saved;
            boolean1()
        }
        CKind::Typeswitch {
            operand,
            cases,
            default,
        } => {
            typecheck(ctx, operand, env);
            let mut ty: Option<SequenceType> = None;
            for (case_ty, var, body) in cases.iter_mut() {
                let saved = env.clone();
                env.insert(var.clone(), case_ty.clone());
                typecheck(ctx, body, env);
                *env = saved;
                ty = Some(match ty {
                    None => body.ty.clone(),
                    Some(t) => t.union(&body.ty),
                });
            }
            let saved = env.clone();
            env.insert(default.0.clone(), operand.ty.clone());
            typecheck(ctx, &mut default.1, env);
            *env = saved;
            match ty {
                Some(t) => t.union(&default.1.ty),
                None => default.1.ty.clone(),
            }
        }
        CKind::And(a, b) | CKind::Or(a, b) => {
            typecheck(ctx, a, env);
            typecheck(ctx, b, env);
            boolean1()
        }
        CKind::Compare {
            general, lhs, rhs, ..
        } => {
            typecheck(ctx, lhs, env);
            typecheck(ctx, rhs, env);
            if !*general {
                // value comparison: statically disjoint atomic operand
                // types are a type error (the optimistic rule still
                // rejects *provable* mismatches)
                let l = lhs.ty.atomized();
                let r = rhs.ty.atomized();
                if let (Some(li), Some(ri)) = (l.item_type(), r.item_type()) {
                    if !li.intersects(ri) {
                        ctx.diag(span, format!("cannot compare {} with {}", lhs.ty, rhs.ty));
                        e.ty = err_ty();
                    }
                }
                SequenceType::Seq(ItemType::Atomic(AtomicType::Boolean), Occurrence::Optional)
            } else {
                boolean1()
            }
        }
        CKind::Arith { lhs, rhs, .. } => {
            typecheck(ctx, lhs, env);
            typecheck(ctx, rhs, env);
            let result = numeric_result(&lhs.ty, &rhs.ty);
            let occ = if lhs.ty.occurrence().allows_empty() || rhs.ty.occurrence().allows_empty() {
                Occurrence::Optional
            } else {
                Occurrence::One
            };
            SequenceType::Seq(ItemType::Atomic(result), occ)
        }
        CKind::Data(inner) => {
            typecheck(ctx, inner, env);
            inner.ty.atomized()
        }
        CKind::ChildStep { input, name } => {
            typecheck(ctx, input, env);
            child_step_type(ctx, e_span_ty(&input.ty), name.as_ref(), span)
        }
        CKind::AttrStep { input, name } => {
            typecheck(ctx, input, env);
            let _ = name;
            SequenceType::Seq(
                ItemType::Atomic(AtomicType::AnyAtomic),
                Occurrence::Optional,
            )
        }
        CKind::DescendantStep { input } => {
            typecheck(ctx, input, env);
            SequenceType::Seq(ItemType::AnyNode, Occurrence::Star)
        }
        CKind::Filter {
            input,
            predicate,
            ctx_var,
            positional,
        } => {
            typecheck(ctx, input, env);
            let saved = env.clone();
            let item_ty = match input.ty.item_type() {
                Some(i) => SequenceType::one(i.clone()),
                None => SequenceType::Empty,
            };
            env.insert(ctx_var.clone(), item_ty);
            typecheck(ctx, predicate, env);
            *env = saved;
            // numeric predicate → positional selection ([3])
            *positional = matches!(
                predicate.ty.item_type(),
                Some(ItemType::Atomic(t)) if t.is_numeric()
            );
            let occ = if *positional {
                Occurrence::Optional
            } else {
                input.ty.occurrence().union(Occurrence::Optional)
            };
            input.ty.with_occurrence(occ)
        }
        CKind::ElementCtor {
            name,
            conditional,
            attributes,
            content,
        } => {
            for (_, _, v) in attributes.iter_mut() {
                typecheck(ctx, v, env);
            }
            typecheck(ctx, content, env);
            // STRUCTURAL TYPING (§3.1): the content type is the structural
            // type of the content expression, not ANYTYPE
            let content_ty = structural_content_type(content);
            let occ = if *conditional {
                Occurrence::Optional
            } else {
                Occurrence::One
            };
            SequenceType::Seq(
                ItemType::Element(ElementType {
                    name: Some(name.clone()),
                    content: content_ty,
                }),
                occ,
            )
        }
        CKind::Builtin { op, args } => {
            for a in args.iter_mut() {
                typecheck(ctx, a, env);
            }
            builtin_type(*op, args)
        }
        CKind::PhysicalCall { name, args } => {
            let sig: Option<(Vec<SequenceType>, SequenceType)> =
                ctx.registry.function(name).map(|p| {
                    (
                        p.params.iter().map(|q| q.ty.clone()).collect(),
                        p.return_type.clone(),
                    )
                });
            match sig {
                Some((params, ret)) => {
                    check_call_args(ctx, name.to_string(), args, &params, env, span);
                    ret
                }
                None => {
                    ctx.diag(span, format!("unknown physical function {name}"));
                    err_ty()
                }
            }
        }
        CKind::UserCall { name, args } => {
            let sig: Option<(Vec<SequenceType>, SequenceType)> = ctx.functions.get(name).map(|f| {
                (
                    f.params.iter().map(|(_, t)| t.clone()).collect(),
                    f.return_type.clone(),
                )
            });
            match sig {
                Some((params, ret)) => {
                    check_call_args(ctx, name.to_string(), args, &params, env, span);
                    ret
                }
                None => {
                    ctx.diag(span, format!("unknown function {name}"));
                    err_ty()
                }
            }
        }
        CKind::TypeMatch { input, ty } => {
            typecheck(ctx, input, env);
            ty.clone()
        }
        CKind::Cast {
            target,
            optional,
            input,
        } => {
            typecheck(ctx, input, env);
            SequenceType::Seq(
                ItemType::Atomic(*target),
                if *optional {
                    Occurrence::Optional
                } else {
                    Occurrence::One
                },
            )
        }
        CKind::Castable { input, .. } => {
            typecheck(ctx, input, env);
            boolean1()
        }
        CKind::InstanceOf { input, .. } => {
            typecheck(ctx, input, env);
            boolean1()
        }
        CKind::Error(inputs) => {
            for i in inputs.iter_mut() {
                typecheck(ctx, i, env);
            }
            err_ty()
        }
    };
    // don't overwrite an error type set mid-branch
    if e.ty.item_type() != Some(&ItemType::Error) {
        e.ty = ty;
    }
}

fn e_span_ty(t: &SequenceType) -> &SequenceType {
    t
}

/// The optimistic call rule (§4.1): subtype → accept; non-empty
/// intersection → accept and wrap the argument in `typematch`;
/// provably disjoint → type error.
fn check_call_args(
    ctx: &mut Context<'_>,
    fname: String,
    args: &mut [CExpr],
    params: &[SequenceType],
    env: &mut TypeEnv,
    span: crate::ir::Span,
) {
    for (arg, pty) in args.iter_mut().zip(params) {
        typecheck(ctx, arg, env);
        // function conversion rules: an atomic-typed parameter atomizes
        // its argument before the subtype test
        if matches!(pty.item_type(), Some(ItemType::Atomic(_)))
            && !matches!(arg.ty.item_type(), Some(ItemType::Atomic(_)) | None)
            && !matches!(arg.kind, CKind::Data(_))
        {
            let inner = arg.clone();
            let span = arg.span;
            *arg = CExpr::new(CKind::Data(Box::new(inner)), span);
            typecheck(ctx, arg, env);
        }
        if arg.ty.is_subtype_of(pty) {
            continue; // statically safe: no typematch needed
        }
        if arg.ty.intersects(pty) {
            // optimistic acceptance with a runtime typematch
            let inner = arg.clone();
            *arg = CExpr {
                kind: CKind::TypeMatch {
                    input: Box::new(inner),
                    ty: pty.clone(),
                },
                ty: pty.clone(),
                span: arg.span,
                node_id: 0,
            };
        } else {
            ctx.diag(
                span,
                format!(
                    "argument of type {} can never match parameter type {} of {fname}",
                    arg.ty, pty
                ),
            );
            arg.ty = err_ty();
        }
    }
}

fn numeric_result(a: &SequenceType, b: &SequenceType) -> AtomicType {
    let at = atomic_of(a);
    let bt = atomic_of(b);
    match (at, bt) {
        (AtomicType::Double, _) | (_, AtomicType::Double) => AtomicType::Double,
        (AtomicType::Decimal, _) | (_, AtomicType::Decimal) => AtomicType::Decimal,
        (AtomicType::Integer, AtomicType::Integer) => AtomicType::Integer,
        (AtomicType::Untyped, _) | (_, AtomicType::Untyped) => AtomicType::Double,
        _ => AtomicType::AnyAtomic,
    }
}

fn atomic_of(t: &SequenceType) -> AtomicType {
    match t.item_type() {
        Some(ItemType::Atomic(a)) => *a,
        _ => AtomicType::AnyAtomic,
    }
}

/// Navigate the structural type through a child step. This is where
/// structural typing pays off: stepping into a constructed element
/// recovers the content's precise type (the view-unfolding enabler of
/// §3.1).
fn child_step_type(
    ctx: &mut Context<'_>,
    input: &SequenceType,
    name: Option<&aldsp_xdm::QName>,
    span: crate::ir::Span,
) -> SequenceType {
    let input_occ = input.occurrence();
    match input.item_type() {
        None => SequenceType::Empty,
        Some(ItemType::Element(et)) => match (&et.content, name) {
            (ContentType::Complex(c), Some(n)) => match c.child(n) {
                Some(decl) => {
                    let occ = decl.occ.iterated_by(input_occ);
                    SequenceType::Seq(ItemType::Element(decl.elem.clone()), occ)
                }
                None => {
                    // statically known absent child: empty (a common
                    // outcome of aggressive structural typing); warn
                    ctx.diag(
                        span,
                        format!(
                            "child {n} is not declared in the content of element {}",
                            et.name
                                .as_ref()
                                .map(|q| q.to_string())
                                .unwrap_or_else(|| "*".into())
                        ),
                    );
                    SequenceType::Empty
                }
            },
            (ContentType::Complex(_), None) => {
                SequenceType::Seq(ItemType::Element(ElementType::any()), Occurrence::Star)
            }
            (ContentType::Simple(_), _) => SequenceType::Empty,
            (ContentType::Any, _) => {
                SequenceType::Seq(ItemType::Element(ElementType::any()), Occurrence::Star)
            }
        },
        Some(ItemType::Document) | Some(ItemType::AnyNode) | Some(ItemType::AnyItem) => {
            SequenceType::Seq(ItemType::Element(ElementType::any()), Occurrence::Star)
        }
        Some(ItemType::Error) => err_ty(),
        Some(other) => {
            ctx.diag(span, format!("cannot apply a child step to {other}"));
            err_ty()
        }
    }
}

/// The structural content type of a constructor's content expression.
fn structural_content_type(content: &CExpr) -> ContentType {
    // single atomic-typed content → typed simple content
    match (&content.kind, &content.ty) {
        (_, SequenceType::Empty) => ContentType::Complex(ComplexContent::default()),
        (CKind::Seq(parts), _) => {
            // a sequence of element-typed parts → complex content
            let mut children = Vec::new();
            for p in parts {
                match p.ty.item_type() {
                    Some(ItemType::Element(et)) => children.push(ChildDecl {
                        elem: et.clone(),
                        occ: p.ty.occurrence(),
                    }),
                    Some(ItemType::Atomic(a)) if parts.len() == 1 => {
                        return ContentType::Simple(*a)
                    }
                    _ => return ContentType::Any,
                }
            }
            ContentType::Complex(ComplexContent {
                attributes: vec![],
                children,
            })
        }
        (_, SequenceType::Seq(ItemType::Atomic(a), _)) => ContentType::Simple(*a),
        (_, SequenceType::Seq(ItemType::Element(et), occ)) => {
            ContentType::Complex(ComplexContent {
                attributes: vec![],
                children: vec![ChildDecl {
                    elem: et.clone(),
                    occ: *occ,
                }],
            })
        }
        _ => ContentType::Any,
    }
}

fn builtin_type(op: Builtin, args: &[CExpr]) -> SequenceType {
    use Builtin as B;
    match op {
        B::Count | B::StringLength => SequenceType::atomic(AtomicType::Integer),
        B::Sum => SequenceType::Seq(ItemType::Atomic(atomic_of(&args[0].ty)), Occurrence::One),
        B::Avg | B::Min | B::Max => SequenceType::Seq(
            ItemType::Atomic(atomic_of(&args[0].ty)),
            Occurrence::Optional,
        ),
        B::Exists | B::Empty | B::Not | B::Boolean | B::Contains | B::StartsWith => boolean1(),
        B::True | B::False => boolean1(),
        B::String | B::Concat | B::UpperCase | B::LowerCase | B::Substring => {
            SequenceType::atomic(AtomicType::String)
        }
        B::Subsequence => args[0].ty.with_occurrence(Occurrence::Star),
        B::DistinctValues => args[0].ty.atomized().with_occurrence(Occurrence::Star),
        B::Abs => SequenceType::Seq(
            ItemType::Atomic(atomic_of(&args[0].ty)),
            Occurrence::Optional,
        ),
        B::Async => args[0].ty.clone(),
        B::FailOver => args[0].ty.union(&args[1].ty),
        B::Timeout => args[0].ty.union(&args[2].ty),
    }
}
