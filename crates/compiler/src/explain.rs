//! Plan EXPLAIN rendering.
//!
//! The compiled [`CExpr`] tree **is** the physical plan the runtime
//! interprets, so EXPLAIN is a pretty-printer over it: one line per
//! plan node, `#id` labels from [`CExpr::assign_node_ids`], clause
//! sub-lines labelled `#id.idx` (the same `(node, clause)` addressing
//! the runtime's operator traces use), the generated SQL text for every
//! pushed scan, PP-k specs, the group-by mode the optimizer chose, and
//! cache / fail-over / timeout annotations.

use crate::ir::{Builtin, CExpr, CKind, Clause, LocalJoinMethod, PpkSpec};
use aldsp_relational::{render_select, Dialect};
use aldsp_xdm::QName;
use std::collections::HashMap;
use std::fmt::Write;

/// Context the renderer needs beyond the plan itself.
///
/// Dialects decide how each pushed `Select` is rendered to SQL text;
/// cache enablement is *runtime* state (the mid-tier function cache is
/// configured per deployed function), so the server supplies a callback
/// rather than the compiler guessing.
pub struct ExplainContext<'a> {
    /// Connection name → SQL dialect (from the adaptor registry).
    pub dialects: &'a HashMap<String, Dialect>,
    /// Is the mid-tier function cache enabled for this source function?
    pub cache_enabled: &'a dyn Fn(&QName) -> bool,
    /// Workload-governor terms this plan would run under (priority,
    /// deadline, memory cap) — server state, rendered as a header line
    /// so EXPLAIN shows how the query will be scheduled, not just how
    /// it will be evaluated. `None` leaves the plan text unchanged.
    pub governor: Option<String>,
    /// Materialization terms for this function (policy, dependency /
    /// entry counts) — server state from the matview registry, rendered
    /// as a `-- matview:` header. `None` leaves the plan text unchanged.
    pub matview: Option<String>,
    /// The pushdown level the plan was compiled under (from
    /// [`crate::CompiledQuery::pushdown`]), rendered as a
    /// `-- pushdown:` header so the differential oracle — and a human
    /// reading the plan — can confirm which path produced a result.
    pub pushdown: crate::compile::PushdownLevel,
    /// The plan's compiled expression programs (from
    /// [`crate::CompiledQuery::programs`]): rendered as a `-- vm:`
    /// header plus a `-- program:` disassembly under each covered
    /// subtree root, so lowering-coverage regressions are visible in
    /// review. `None` leaves the plan text unchanged.
    pub programs: Option<&'a crate::program::ProgramSet>,
    /// The plan's parallel-eligibility marks (from
    /// [`crate::CompiledQuery::parallel`]): rendered as a
    /// `-- parallel:` header listing each FLWOR region that morsel-
    /// driven execution may fan out, so parallelizability regressions
    /// are visible in review. `None` leaves the plan text unchanged.
    pub parallel: Option<&'a crate::parallel::ParallelPlan>,
    /// The plan's middleware-join decisions (from
    /// [`crate::CompiledQuery::joins`]): rendered as a `-- join:` header
    /// listing, per marked join, the chosen strategy, estimated build /
    /// probe cardinalities and whether the build side was reordered —
    /// so join-planning regressions are visible in review. `None`
    /// leaves the plan text unchanged.
    pub joins: Option<&'a crate::joins::JoinPlan>,
}

impl<'a> ExplainContext<'a> {
    fn dialect(&self, connection: &str) -> Dialect {
        self.dialects
            .get(connection)
            .copied()
            .unwrap_or(Dialect::Sql92)
    }
}

/// Render the physical plan as an indented tree, one node per line.
pub fn explain_plan(plan: &CExpr, ctx: &ExplainContext<'_>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "-- pushdown: {}", ctx.pushdown);
    if let Some(g) = &ctx.governor {
        let _ = writeln!(out, "-- governor: {g}");
    }
    if let Some(m) = &ctx.matview {
        let _ = writeln!(out, "-- matview: {m}");
    }
    if let Some(p) = ctx.programs {
        let _ = writeln!(out, "-- vm: {p}");
    }
    if let Some(p) = ctx.parallel {
        let _ = writeln!(out, "-- parallel: {p}");
    }
    if let Some(j) = ctx.joins {
        let _ = writeln!(out, "-- join: {j}");
    }
    render_expr(plan, ctx, 0, &mut out);
    out
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn render_expr(e: &CExpr, ctx: &ExplainContext<'_>, depth: usize, out: &mut String) {
    render_expr_node(e, ctx, depth, out);
    // A compiled subtree root gets its disassembly right under the
    // subtree it replaces at execution time.
    if let Some(prog) = ctx.programs.and_then(|p| p.lookup(e.node_id)) {
        indent(out, depth + 1);
        let _ = writeln!(
            out,
            "-- program: ops={} stack={}",
            prog.ops.len(),
            prog.max_stack
        );
        for (i, op) in prog.ops.iter().enumerate() {
            indent(out, depth + 1);
            let _ = writeln!(out, "--   {i}: {}", prog.render_op(op));
        }
    }
}

fn render_expr_node(e: &CExpr, ctx: &ExplainContext<'_>, depth: usize, out: &mut String) {
    indent(out, depth);
    let _ = write!(out, "#{} ", e.node_id);
    match &e.kind {
        CKind::Const(v) => {
            let _ = writeln!(out, "Const {}", v.string_value());
        }
        CKind::Var { name: v, .. } => {
            let _ = writeln!(out, "Var ${v}");
        }
        CKind::Seq(items) => {
            let _ = writeln!(out, "Seq n={}", items.len());
            for i in items {
                render_expr(i, ctx, depth + 1, out);
            }
        }
        CKind::Range(a, b) => {
            out.push_str("Range\n");
            render_expr(a, ctx, depth + 1, out);
            render_expr(b, ctx, depth + 1, out);
        }
        CKind::Flwor { clauses, ret } => {
            out.push_str("FLWOR\n");
            for (idx, c) in clauses.iter().enumerate() {
                render_clause(e.node_id, idx, c, ctx, depth + 1, out);
            }
            indent(out, depth + 1);
            out.push_str("return\n");
            render_expr(ret, ctx, depth + 2, out);
        }
        CKind::If { cond, then, els } => {
            out.push_str("If\n");
            render_expr(cond, ctx, depth + 1, out);
            render_expr(then, ctx, depth + 1, out);
            render_expr(els, ctx, depth + 1, out);
        }
        CKind::Quantified {
            every,
            var,
            source,
            satisfies,
        } => {
            let _ = writeln!(
                out,
                "Quantified {} ${var}",
                if *every { "every" } else { "some" }
            );
            render_expr(source, ctx, depth + 1, out);
            render_expr(satisfies, ctx, depth + 1, out);
        }
        CKind::Typeswitch {
            operand,
            cases,
            default,
        } => {
            let _ = writeln!(out, "Typeswitch cases={}", cases.len());
            render_expr(operand, ctx, depth + 1, out);
            for (ty, var, branch) in cases {
                indent(out, depth + 1);
                let _ = writeln!(out, "case {ty} ${var}");
                render_expr(branch, ctx, depth + 2, out);
            }
            indent(out, depth + 1);
            let _ = writeln!(out, "default ${}", default.0);
            render_expr(&default.1, ctx, depth + 2, out);
        }
        CKind::And(a, b) => {
            out.push_str("And\n");
            render_expr(a, ctx, depth + 1, out);
            render_expr(b, ctx, depth + 1, out);
        }
        CKind::Or(a, b) => {
            out.push_str("Or\n");
            render_expr(a, ctx, depth + 1, out);
            render_expr(b, ctx, depth + 1, out);
        }
        CKind::Compare {
            op,
            general,
            lhs,
            rhs,
        } => {
            let _ = writeln!(
                out,
                "Compare {op:?}{}",
                if *general { " (general)" } else { "" }
            );
            render_expr(lhs, ctx, depth + 1, out);
            render_expr(rhs, ctx, depth + 1, out);
        }
        CKind::Arith { op, lhs, rhs } => {
            let _ = writeln!(out, "Arith {op}");
            render_expr(lhs, ctx, depth + 1, out);
            render_expr(rhs, ctx, depth + 1, out);
        }
        CKind::Data(input) => {
            out.push_str("Data\n");
            render_expr(input, ctx, depth + 1, out);
        }
        CKind::ChildStep { input, name } => {
            let _ = writeln!(out, "ChildStep {}", name_test(name));
            render_expr(input, ctx, depth + 1, out);
        }
        CKind::AttrStep { input, name } => {
            let _ = writeln!(out, "AttrStep @{}", name_test(name));
            render_expr(input, ctx, depth + 1, out);
        }
        CKind::DescendantStep { input } => {
            out.push_str("DescendantStep\n");
            render_expr(input, ctx, depth + 1, out);
        }
        CKind::Filter {
            input,
            predicate,
            positional,
            ..
        } => {
            let _ = writeln!(
                out,
                "Filter{}",
                if *positional { " (positional)" } else { "" }
            );
            render_expr(input, ctx, depth + 1, out);
            render_expr(predicate, ctx, depth + 1, out);
        }
        CKind::ElementCtor {
            name,
            conditional,
            attributes,
            content,
        } => {
            let _ = writeln!(
                out,
                "ElementCtor <{name}{}> attrs={}",
                if *conditional { "?" } else { "" },
                attributes.len()
            );
            for (_, _, v) in attributes {
                render_expr(v, ctx, depth + 1, out);
            }
            render_expr(content, ctx, depth + 1, out);
        }
        CKind::Builtin { op, args } => {
            match op {
                Builtin::Async => out.push_str("Async [parallel part, §5.4]\n"),
                Builtin::Timeout => out.push_str("Timeout [alternate on expiry, §5.6]\n"),
                Builtin::FailOver => out.push_str("FailOver [alternate on error, §5.6]\n"),
                _ => {
                    let _ = writeln!(out, "Builtin {op:?}");
                }
            }
            for a in args {
                render_expr(a, ctx, depth + 1, out);
            }
        }
        CKind::PhysicalCall { name, args } => {
            let cached = (ctx.cache_enabled)(name);
            let _ = writeln!(
                out,
                "SourceCall {name}{}",
                if cached { " [cached]" } else { "" }
            );
            for a in args {
                render_expr(a, ctx, depth + 1, out);
            }
        }
        CKind::UserCall { name, args } => {
            let _ = writeln!(out, "UserCall {name}");
            for a in args {
                render_expr(a, ctx, depth + 1, out);
            }
        }
        CKind::TypeMatch { input, ty } => {
            let _ = writeln!(out, "TypeMatch {ty}");
            render_expr(input, ctx, depth + 1, out);
        }
        CKind::Cast {
            input,
            target,
            optional,
        } => {
            let _ = writeln!(out, "Cast {target}{}", if *optional { "?" } else { "" });
            render_expr(input, ctx, depth + 1, out);
        }
        CKind::Castable { input, target } => {
            let _ = writeln!(out, "Castable {target}");
            render_expr(input, ctx, depth + 1, out);
        }
        CKind::InstanceOf { input, ty } => {
            let _ = writeln!(out, "InstanceOf {ty}");
            render_expr(input, ctx, depth + 1, out);
        }
        CKind::Error(inputs) => {
            out.push_str("Error\n");
            for i in inputs {
                render_expr(i, ctx, depth + 1, out);
            }
        }
    }
}

fn render_clause(
    flwor_id: u32,
    idx: usize,
    c: &Clause,
    ctx: &ExplainContext<'_>,
    depth: usize,
    out: &mut String,
) {
    indent(out, depth);
    let _ = write!(out, "#{flwor_id}.{idx} ");
    match c {
        Clause::For { var, pos, source } => {
            match pos {
                Some(p) => {
                    let _ = writeln!(out, "For ${var} at ${p}");
                }
                None => {
                    let _ = writeln!(out, "For ${var}");
                }
            }
            render_expr(source, ctx, depth + 1, out);
        }
        Clause::Let { var, value } => {
            let _ = writeln!(out, "Let ${var}");
            render_expr(value, ctx, depth + 1, out);
        }
        Clause::Where(e) => {
            out.push_str("Where\n");
            render_expr(e, ctx, depth + 1, out);
        }
        Clause::GroupBy {
            bindings,
            keys,
            pre_clustered,
            ..
        } => {
            let mode = if *pre_clustered {
                "streaming (pre-clustered, constant memory)"
            } else {
                "sorted (buffers groups)"
            };
            let key_names: Vec<&str> = keys.iter().map(|(_, a)| a.as_str()).collect();
            let _ = writeln!(
                out,
                "GroupBy mode={mode} keys=[{}] regroups={}",
                key_names.join(", "),
                bindings.len()
            );
            for (k, _) in keys {
                render_expr(k, ctx, depth + 1, out);
            }
        }
        Clause::OrderBy(specs) => {
            let _ = writeln!(out, "OrderBy keys={}", specs.len());
            for s in specs {
                render_expr(&s.expr, ctx, depth + 1, out);
            }
        }
        Clause::SqlFor {
            connection,
            select,
            params,
            binds,
            ppk,
        } => {
            let dialect = ctx.dialect(connection);
            let bind_vars: Vec<String> = binds.iter().map(|(v, _)| format!("${v}")).collect();
            let _ = writeln!(
                out,
                "SqlScan connection={connection} dialect={} params={} binds=[{}]",
                dialect.name(),
                params.len(),
                bind_vars.join(", ")
            );
            if let Some(spec) = ppk {
                indent(out, depth + 1);
                let _ = writeln!(out, "{}", ppk_line(spec));
            }
            let sql = render_select(select, dialect);
            for line in sql.lines() {
                indent(out, depth + 1);
                let _ = writeln!(out, "sql> {line}");
            }
            for p in params {
                render_expr(p, ctx, depth + 1, out);
            }
            if let Some(spec) = ppk {
                for k in &spec.outer_keys {
                    render_expr(k, ctx, depth + 1, out);
                }
            }
        }
    }
}

fn ppk_line(spec: &PpkSpec) -> String {
    let method = match spec.local_method {
        LocalJoinMethod::NestedLoop => "nested-loop",
        LocalJoinMethod::IndexNestedLoop => "index-nested-loop",
    };
    format!(
        "ppk: k={} local-join={method} prefetch-depth={} outer-join={}",
        spec.k, spec.prefetch_depth, spec.outer_join
    )
}

fn name_test(name: &Option<QName>) -> String {
    match name {
        Some(q) => q.to_string(),
        None => "*".to_string(),
    }
}
