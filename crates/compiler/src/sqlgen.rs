//! SQL plan preparation, pushdown analysis and SQL generation (§4.3–4.4).
//!
//! After view unfolding and predicate normalization, this pass looks at
//! regions of the expression tree "that involve data that all comes from
//! the same relational database" (determined from the metadata on the
//! physical functions) and replaces them with [`Clause::SqlFor`] nodes
//! carrying generated SQL:
//!
//! * consecutive `for` clauses over tables/navigation functions of one
//!   connection become a join tree (Table 1(b));
//! * pushable `where` conjuncts go into the `ON`/`WHERE`; expressions
//!   without pushed variables are shipped as *parameters* evaluated in
//!   the XQuery engine (§4.3) — which is how the inverse-function
//!   rewrite's `date2int($start)` reaches the source (§4.4);
//! * correlated nested FLWORs in constructor content are hoisted:
//!   same-connection, single-outer-table cases merge into a **left
//!   outer join** with a clustered middleware group-by (Tables 1(c),
//!   2(g)); cross-source cases become **PP-k** dependent joins (§4.2);
//! * `group by` over pushed fields becomes SQL `GROUP BY`/`DISTINCT`
//!   (Tables 1(e), 1(f)), aggregates over group bindings push as SQL
//!   aggregates;
//! * trailing `order by` and `fn:subsequence` push as `ORDER BY` and
//!   dialect-specific pagination (Table 2(i)) when the vendor supports
//!   it;
//! * quantified expressions over one source become `EXISTS` semi-joins
//!   (Table 2(h)).

use crate::context::Context;
use crate::ir::{Builtin, CExpr, CKind, Clause, PpkSpec};
use aldsp_metadata::SourceBinding;
use aldsp_relational::{
    AggFunc, JoinKind, OrderBy, ScalarExpr, Select, SqlType, SqlValue, TableRef,
};
use aldsp_xdm::item::CompOp;
use aldsp_xdm::types::{ContentType, ElementType};
use aldsp_xdm::value::AtomicType;
use aldsp_xdm::QName;
use std::collections::HashMap;

/// Insertion-ordered variable map — SQL column order must be
/// deterministic for the dialect goldens.
#[derive(Debug, Default)]
struct VarMap {
    entries: Vec<(String, PushedVar)>,
}

impl VarMap {
    fn insert(&mut self, k: String, v: PushedVar) {
        self.entries.push((k, v));
    }
    fn get(&self, k: &str) -> Option<&PushedVar> {
        self.entries.iter().find(|(n, _)| n == k).map(|(_, v)| v)
    }
    fn remove(&mut self, k: &str) {
        self.entries.retain(|(n, _)| n != k);
    }
    fn contains_key(&self, k: &str) -> bool {
        self.get(k).is_some()
    }
    fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
    fn iter(&self) -> impl Iterator<Item = (&String, &PushedVar)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
    fn values(&self) -> impl Iterator<Item = &PushedVar> {
        self.entries.iter().map(|(_, v)| v)
    }
}

/// The synthetic tuple-id bind appended by PP-k outer joins; see
/// [`PpkSpec`].
pub const TID_TYPE: AtomicType = AtomicType::Integer;

/// Run pushdown over the whole tree (bottom-up so nested FLWORs are
/// processed before their parents try to hoist them).
///
/// The [`Context::pushdown`] level gates the pass: `Off` leaves the
/// naive plan untouched (every table function stays a middleware scan
/// — the differential oracle's reference path), `Joins` forms join
/// regions and pushes predicates/projections but keeps trailing
/// group-by / order-by / pagination in the middleware, and `Full` (the
/// default) pushes everything.
pub fn push_down(ctx: &mut Context<'_>, e: &mut CExpr) {
    use crate::compile::PushdownLevel;
    if ctx.pushdown == PushdownLevel::Off {
        return;
    }
    let full = ctx.pushdown == PushdownLevel::Full;
    e.for_each_child_mut(&mut |c| push_down(ctx, c));
    if let CKind::Flwor { clauses, ret } = &mut e.kind {
        form_regions(ctx, clauses, ret);
    }
    // fold the rewritten field references (Data(<COL>{$f}</COL>) → $f)
    // before the pattern passes below match on them
    crate::rules::optimize(ctx, e);
    if let CKind::Flwor { clauses, ret } = &mut e.kind {
        let span = e.span;
        absorb_wheres(clauses);
        push_scalar_projections(ctx, clauses, ret);
        hoist_dependent_joins(ctx, clauses, ret, span);
        if full {
            push_trailing_group_by(ctx, clauses, ret);
            push_trailing_order_by(clauses);
        }
        prune_unused_columns(clauses, ret);
    }
    // clean up after the pattern passes, then try pagination pushdown on
    // the (possibly collapsed) node
    crate::rules::optimize(ctx, e);
    if full {
        push_subsequence(ctx, e);
    }
}

/// Metadata about one pushed FLWOR variable.
#[derive(Debug, Clone)]
struct PushedVar {
    alias: String,
    #[allow(dead_code)] // kept for diagnostics/debugging of regions
    table: String,
    #[allow(dead_code)]
    connection: String,
    element: QName,
    columns: Vec<(String, AtomicType, bool)>, // (name, xml type, nullable)
    #[allow(dead_code)]
    primary_key: Vec<String>,
}

impl PushedVar {
    fn column(&self, local: &str) -> Option<(&str, AtomicType, bool)> {
        self.columns
            .iter()
            .find(|(n, _, _)| n == local)
            .map(|(n, t, nl)| (n.as_str(), *t, *nl))
    }
}

/// The in-progress SQL region for one connection.
struct Region {
    connection: String,
    from: TableRef,
    wheres: Vec<ScalarExpr>,
    params: Vec<CExpr>,
    vars: VarMap,
    alias_counter: usize,
    /// correlation equalities `(outer key expr, inner column)` that make
    /// this region a dependent join
    correlations: Vec<(CExpr, ScalarExpr)>,
}

impl Region {
    fn next_alias(&mut self) -> String {
        self.alias_counter += 1;
        format!("t{}", self.alias_counter)
    }
}

/// Extract table metadata from a physical read/navigation call.
#[allow(clippy::type_complexity)]
fn table_of_call(
    ctx: &Context<'_>,
    e: &CExpr,
) -> Option<(
    String,
    String,
    QName,
    Vec<(String, AtomicType, bool)>,
    Vec<String>,
    Option<(String, Vec<(String, String)>)>,
)> {
    let CKind::PhysicalCall { name, args } = &e.kind else {
        return None;
    };
    let f = ctx.registry.function(name)?;
    match &f.source {
        SourceBinding::RelationalTable {
            connection,
            table,
            primary_key,
            shape,
        } => Some((
            connection.clone(),
            table.clone(),
            shape.name.clone()?,
            shape_columns(shape),
            primary_key.clone(),
            None,
        )),
        SourceBinding::RelationalNavigation {
            connection,
            to_table,
            key_pairs,
            shape,
            from_table: _,
            ..
        } => {
            // navigation: the argument must be a pushed row variable; the
            // caller checks that and supplies the join
            let arg_var = match &args[0].kind {
                CKind::Var { name: v, .. } => v.clone(),
                _ => return None,
            };
            Some((
                connection.clone(),
                to_table.clone(),
                shape.name.clone()?,
                shape_columns(shape),
                Vec::new(),
                Some((arg_var, key_pairs.clone())),
            ))
        }
        _ => None,
    }
}

fn shape_columns(shape: &ElementType) -> Vec<(String, AtomicType, bool)> {
    let ContentType::Complex(c) = &shape.content else {
        return Vec::new();
    };
    c.children
        .iter()
        .filter_map(|ch| {
            let name = ch.elem.name.as_ref()?.local_name().to_string();
            let ContentType::Simple(t) = ch.elem.content else {
                return None;
            };
            Some((name, t, ch.occ.allows_empty()))
        })
        .collect()
}

/// Phase 1: scan the clause list, forming SQL regions out of
/// for-over-table/navigation clauses plus pushable wheres, then replace
/// each region with a `SqlFor` and rewrite downstream field references.
fn form_regions(ctx: &mut Context<'_>, clauses: &mut Vec<Clause>, ret: &mut CExpr) {
    let mut i = 0;
    while i < clauses.len() {
        // try to start a region at clause i
        let Some(start) = try_start_region(ctx, &clauses[i]) else {
            i += 1;
            continue;
        };
        let mut region = start;
        let mut consumed = vec![i];
        let mut j = i + 1;
        while j < clauses.len() {
            match &clauses[j] {
                Clause::For {
                    var,
                    pos: None,
                    source,
                } => {
                    if let Some((conn, table, element, columns, pk, nav)) =
                        table_of_call(ctx, source)
                    {
                        if conn != region.connection {
                            break;
                        }
                        let alias = region.next_alias();
                        let tref = TableRef::table(&table, &alias);
                        match nav {
                            Some((arg_var, key_pairs)) => {
                                let Some(from_pv) = region.vars.get(&arg_var).cloned() else {
                                    break; // navigation from an unpushed var
                                };
                                let mut on: Option<ScalarExpr> = None;
                                for (fc, tc) in &key_pairs {
                                    let term = ScalarExpr::col(&from_pv.alias, fc)
                                        .eq(ScalarExpr::col(&alias, tc));
                                    on = Some(match on {
                                        Some(p) => p.and(term),
                                        None => term,
                                    });
                                }
                                region.from = region.from.clone().join(
                                    JoinKind::Inner,
                                    tref,
                                    on.expect("nav has key pairs"),
                                );
                            }
                            None => {
                                // cross join for now; join conditions are
                                // folded in from where clauses below
                                region.from = region.from.clone().join(
                                    JoinKind::Inner,
                                    tref,
                                    ScalarExpr::lit(SqlValue::Bool(true)),
                                );
                            }
                        }
                        region.vars.insert(
                            var.clone(),
                            PushedVar {
                                alias,
                                table,
                                connection: conn,
                                element,
                                columns,
                                primary_key: pk,
                            },
                        );
                        consumed.push(j);
                        j += 1;
                        continue;
                    }
                    break;
                }
                Clause::Where(w) => {
                    let mut translated = None;
                    {
                        let mut tr = Translator {
                            ctx,
                            region: &mut region,
                            allow_params: true,
                        };
                        if let Some(sql) = tr.pushable(w) {
                            translated = Some(sql);
                        }
                    }
                    match translated {
                        Some(sql) => {
                            // mutation smoke test: consume the conjunct
                            // without attaching it, so the pushed plan
                            // returns extra rows the naive plan filters
                            if ctx.mutation != Some(crate::compile::Mutation::DropPushedPredicate) {
                                attach_condition(&mut region, sql);
                            }
                            consumed.push(j);
                            j += 1;
                            continue;
                        }
                        None => {
                            // a correlation equality? col op outer-expr
                            if let Some((outer, col)) = correlation_of(ctx, &region, w) {
                                region.correlations.push((outer, col));
                                consumed.push(j);
                                j += 1;
                                continue;
                            }
                            // an unpushable where referencing pushed vars
                            // only blocks pushes *behind* it if it uses a
                            // var bound later; stop conservatively
                            break;
                        }
                    }
                }
                // lets/others end the region
                _ => break,
            }
        }
        if region.vars.is_empty() {
            i += 1;
            continue;
        }
        // decide the fetched columns by scanning downstream usage
        let mut usage: HashMap<String, ColumnUsage> = HashMap::new();
        for (v, _) in region.vars.iter() {
            usage.insert(v.clone(), ColumnUsage::default());
        }
        for (idx, c) in clauses.iter().enumerate() {
            if consumed.contains(&idx) {
                continue;
            }
            collect_usage_clause(c, &mut usage);
        }
        collect_usage(ret, &mut usage);
        // materialize the SqlFor clause
        let sql_for = build_sql_for(ctx, &mut region, &usage);
        let Some((sql_for, rewrites)) = sql_for else {
            i += 1;
            continue;
        };
        // splice: remove consumed clauses, insert the SqlFor at position i
        let mut kept = Vec::with_capacity(clauses.len());
        for (idx, c) in clauses.drain(..).enumerate() {
            if idx == i {
                kept.push(sql_for.clone());
            }
            if !consumed.contains(&idx) {
                kept.push(c);
            }
        }
        if consumed.contains(&(clauses.len())) { /* unreachable */ }
        *clauses = kept;
        // rewrite downstream references
        for c in clauses.iter_mut().skip(i + 1) {
            rewrite_clause_refs(c, &rewrites);
        }
        rewrite_refs(ret, &rewrites);
        // group-by bindings that regroup a whole pushed row need the row
        // value as a variable: bind a reconstruction let after the SqlFor
        // (it is dropped as dead code if grouping pushes fully)
        let mut row_lets: Vec<Clause> = Vec::new();
        for c in clauses.iter_mut().skip(i + 1) {
            if let Clause::GroupBy { bindings, .. } = c {
                for (from, _) in bindings.iter_mut() {
                    if let Some(rw) = rewrites.iter().find(|r| &r.var == from) {
                        let row_var = ctx.fresh(&format!("{}_row", rw.var));
                        row_lets.push(Clause::Let {
                            var: row_var.clone(),
                            value: reconstruct_row(rw, crate::ir::Span::default()),
                        });
                        *from = row_var;
                    }
                }
            }
        }
        for (off, l) in row_lets.into_iter().enumerate() {
            clauses.insert(i + 1 + off, l);
        }
        i += 1;
    }
}

/// A typed `<COL>{$field}</COL>` constructor for a rewritten field
/// reference; the types let the Data-folding rule fire without a fresh
/// type-inference pass.
fn typed_field_element(
    col: &str,
    fvar: &str,
    ty: AtomicType,
    nullable: bool,
    span: crate::ir::Span,
) -> CExpr {
    use aldsp_xdm::types::{ItemType, Occurrence, SequenceType};
    let mut content = CExpr::var(fvar, span);
    content.ty = SequenceType::Seq(ItemType::Atomic(ty), Occurrence::Optional);
    let mut ctor = CExpr::new(
        CKind::ElementCtor {
            name: QName::local(col),
            conditional: nullable,
            attributes: vec![],
            content: Box::new(content),
        },
        span,
    );
    ctor.ty = SequenceType::Seq(
        ItemType::element_simple(QName::local(col), ty),
        if nullable {
            Occurrence::Optional
        } else {
            Occurrence::One
        },
    );
    ctor
}

/// Build the reconstructed row element for a rewritten variable.
fn reconstruct_row(rw: &Rewrite, span: crate::ir::Span) -> CExpr {
    use aldsp_xdm::types::{ItemType, Occurrence, SequenceType};
    let parts: Vec<CExpr> = rw
        .fields
        .iter()
        .map(|(col, fvar, ty, nullable)| typed_field_element(col, fvar, *ty, *nullable, span))
        .collect();
    let mut ctor = CExpr::new(
        CKind::ElementCtor {
            name: rw.element.clone(),
            conditional: false,
            attributes: vec![],
            content: Box::new(CExpr::new(CKind::Seq(parts), span)),
        },
        span,
    );
    ctor.ty = SequenceType::Seq(ItemType::element_any(rw.element.clone()), Occurrence::One);
    ctor
}

/// Per-variable downstream usage.
#[derive(Debug, Clone, Default)]
struct ColumnUsage {
    cols: Vec<String>,
    whole: bool,
}

fn collect_usage_clause(c: &Clause, usage: &mut HashMap<String, ColumnUsage>) {
    match c {
        Clause::For { source, .. } => collect_usage(source, usage),
        Clause::Let { value, .. } => collect_usage(value, usage),
        Clause::Where(w) => collect_usage(w, usage),
        Clause::GroupBy {
            keys,
            bindings,
            carry,
            ..
        } => {
            for (k, _) in keys {
                collect_usage(k, usage);
            }
            for (from, _) in bindings.iter().chain(carry.iter()) {
                if let Some(u) = usage.get_mut(from) {
                    u.whole = true;
                }
            }
        }
        Clause::OrderBy(specs) => {
            for s in specs {
                collect_usage(&s.expr, usage);
            }
        }
        Clause::SqlFor { params, ppk, .. } => {
            for p in params {
                collect_usage(p, usage);
            }
            if let Some(p) = ppk {
                for k in &p.outer_keys {
                    collect_usage(k, usage);
                }
            }
        }
    }
}

fn collect_usage(e: &CExpr, usage: &mut HashMap<String, ColumnUsage>) {
    match &e.kind {
        CKind::ChildStep {
            input,
            name: Some(n),
        } => {
            if let CKind::Var { name: v, .. } = &input.kind {
                if let Some(u) = usage.get_mut(v) {
                    if !u.cols.contains(&n.local_name().to_string()) {
                        u.cols.push(n.local_name().to_string());
                    }
                    return;
                }
            }
            collect_usage(input, usage);
        }
        CKind::Var { name: v, .. } => {
            if let Some(u) = usage.get_mut(v) {
                u.whole = true;
            }
        }
        _ => e.for_each_child(&mut |c| collect_usage(c, usage)),
    }
}

/// Start a region from a `for` over a table function.
fn try_start_region(ctx: &Context<'_>, c: &Clause) -> Option<Region> {
    let Clause::For {
        var,
        pos: None,
        source,
    } = c
    else {
        return None;
    };
    let (connection, table, element, columns, pk, nav) = table_of_call(ctx, source)?;
    if nav.is_some() {
        return None; // navigation can't begin a region (needs its source)
    }
    let mut region = Region {
        connection,
        from: TableRef::table(&table, "t1"),
        wheres: Vec::new(),
        params: Vec::new(),
        vars: VarMap::default(),
        alias_counter: 1,
        correlations: Vec::new(),
    };
    region.vars.insert(
        var.clone(),
        PushedVar {
            alias: "t1".into(),
            table,
            connection: region.connection.clone(),
            element,
            columns,
            primary_key: pk,
        },
    );
    Some(region)
}

/// Fold a pushed condition into the deepest join whose sides it
/// connects, or the WHERE list otherwise (makes Table 1(b)'s `JOIN … ON`
/// shape).
fn attach_condition(region: &mut Region, cond: ScalarExpr) {
    fn aliases_in(e: &ScalarExpr) -> Vec<String> {
        let mut out = Vec::new();
        e.walk(&mut |n| {
            if let ScalarExpr::Column { table, .. } = n {
                if !out.contains(table) {
                    out.push(table.clone());
                }
            }
        });
        out
    }
    let needed = aliases_in(&cond);
    if needed.len() >= 2 {
        // attach to the top join if it spans both sides
        if let TableRef::Join {
            left, right, on, ..
        } = &mut region.from
        {
            let mut laliases = Vec::new();
            left.aliases(&mut laliases);
            let mut raliases = Vec::new();
            right.aliases(&mut raliases);
            let spans = needed.iter().any(|a| laliases.contains(a))
                && needed.iter().any(|a| raliases.contains(a));
            if spans {
                if matches!(on, ScalarExpr::Literal(SqlValue::Bool(true))) {
                    *on = cond;
                } else {
                    let prev = on.clone();
                    *on = prev.and(cond);
                }
                return;
            }
        }
    }
    region.wheres.push(cond);
}

/// Detect `inner-col op outer-expr` equality correlations.
fn correlation_of(ctx: &Context<'_>, region: &Region, w: &CExpr) -> Option<(CExpr, ScalarExpr)> {
    let CKind::Compare {
        op: CompOp::Eq,
        lhs,
        rhs,
        ..
    } = &w.kind
    else {
        return None;
    };
    let col_of = |e: &CExpr| -> Option<ScalarExpr> {
        let core = match &e.kind {
            CKind::Data(i) => i,
            _ => return col_expr(region, e),
        };
        col_expr(region, core)
    };
    let is_outer = |e: &CExpr| -> bool {
        // no pushed vars and no free use of region tables
        e.free_vars().iter().all(|v| !region.vars.contains_key(v))
    };
    let _ = ctx;
    if let Some(c) = col_of(lhs) {
        if is_outer(rhs) {
            return Some(((**rhs).clone(), c));
        }
    }
    if let Some(c) = col_of(rhs) {
        if is_outer(lhs) {
            return Some(((**lhs).clone(), c));
        }
    }
    None
}

fn col_expr(region: &Region, e: &CExpr) -> Option<ScalarExpr> {
    let core = match &e.kind {
        CKind::Data(i) => i.as_ref(),
        _ => e,
    };
    let CKind::ChildStep {
        input,
        name: Some(n),
    } = &core.kind
    else {
        return None;
    };
    let CKind::Var { name: v, .. } = &input.kind else {
        return None;
    };
    let pv = region.vars.get(v)?;
    let (col, _, _) = pv.column(n.local_name())?;
    Some(ScalarExpr::col(&pv.alias, col))
}

/// Build the final `SqlFor` clause and the downstream rewrite map.
#[allow(clippy::type_complexity)]
fn build_sql_for(
    ctx: &mut Context<'_>,
    region: &mut Region,
    usage: &HashMap<String, ColumnUsage>,
) -> Option<(Clause, Vec<Rewrite>)> {
    let mut select = Select::new(region.from.clone());
    let mut where_: Option<ScalarExpr> = None;
    for w in region.wheres.drain(..) {
        where_ = Some(match where_ {
            Some(p) => p.and(w),
            None => w,
        });
    }
    select.where_ = where_;
    let mut binds: Vec<(String, AtomicType)> = Vec::new();
    let mut rewrites: Vec<Rewrite> = Vec::new();
    let mut col_no = 0usize;
    for (var, pv) in region.vars.iter() {
        let u = usage.get(var).cloned().unwrap_or_default();
        let fetch: Vec<(String, AtomicType, bool)> = if u.whole {
            pv.columns.clone()
        } else {
            pv.columns
                .iter()
                .filter(|(n, _, _)| u.cols.contains(n))
                .cloned()
                .collect()
        };
        let mut fields = Vec::new();
        for (cname, cty, nullable) in &fetch {
            col_no += 1;
            let alias = format!("c{col_no}");
            select.columns.push(aldsp_relational::OutputColumn {
                expr: ScalarExpr::col(&pv.alias, cname),
                alias,
            });
            let fvar = ctx.fresh(&format!("{var}#{cname}"));
            binds.push((fvar.clone(), *cty));
            fields.push((cname.clone(), fvar, *cty, *nullable));
        }
        rewrites.push(Rewrite {
            var: var.clone(),
            element: pv.element.clone(),
            fields,
            whole: u.whole,
        });
    }
    if binds.is_empty() {
        // nothing consumed: still fetch one column (existence/cardinality
        // matters — each row is one tuple)
        let (var, pv) = region.vars.iter().next()?;
        let (cname, cty, _) = pv.columns.first()?.clone();
        select.columns.push(aldsp_relational::OutputColumn {
            expr: ScalarExpr::col(&pv.alias, &cname),
            alias: "c1".into(),
        });
        let fvar = ctx.fresh(&format!("{var}#{cname}"));
        binds.push((fvar, cty));
    }
    // correlations → PP-k spec (keys must also be fetched for the local
    // block join)
    let ppk = if region.correlations.is_empty() {
        None
    } else {
        let mut outer_keys = Vec::new();
        let mut key_columns = Vec::new();
        let mut bind_key_indices = Vec::new();
        for (outer, col) in region.correlations.drain(..) {
            outer_keys.push(outer);
            key_columns.push(col.clone());
            // ensure the key column is among the outputs
            let pos = select
                .columns
                .iter()
                .position(|c| c.expr == col)
                .unwrap_or_else(|| {
                    let alias = format!("c{}", select.columns.len() + 1);
                    select.columns.push(aldsp_relational::OutputColumn {
                        expr: col.clone(),
                        alias,
                    });
                    let ScalarExpr::Column { column, .. } = &col else {
                        unreachable!()
                    };
                    let ty = region
                        .vars
                        .values()
                        .find_map(|pv| pv.column(column).map(|(_, t, _)| t))
                        .unwrap_or(AtomicType::AnyAtomic);
                    binds.push((ctx.fresh(&format!("key#{column}")), ty));
                    select.columns.len() - 1
                });
            bind_key_indices.push(pos);
        }
        Some(PpkSpec {
            k: ctx.ppk_block_size, // default 20, the paper's empirically-good value (§4.2)
            outer_keys,
            key_columns,
            bind_key_indices,
            local_method: ctx.ppk_local_method,
            outer_join: false,
            prefetch_depth: ctx.ppk_prefetch_depth,
        })
    };
    Some((
        Clause::SqlFor {
            connection: region.connection.clone(),
            select: Box::new(select),
            params: std::mem::take(&mut region.params),
            binds,
            ppk,
        },
        rewrites,
    ))
}

/// How downstream references to a pushed variable are rewritten.
#[derive(Debug, Clone)]
struct Rewrite {
    var: String,
    element: QName,
    /// `(column, field var, type, nullable)`.
    fields: Vec<(String, String, AtomicType, bool)>,
    whole: bool,
}

fn rewrite_clause_refs(c: &mut Clause, rewrites: &[Rewrite]) {
    match c {
        Clause::For { source, .. } => rewrite_refs(source, rewrites),
        Clause::Let { value, .. } => rewrite_refs(value, rewrites),
        Clause::Where(w) => rewrite_refs(w, rewrites),
        Clause::GroupBy { keys, .. } => {
            for (k, _) in keys.iter_mut() {
                rewrite_refs(k, rewrites);
            }
        }
        Clause::OrderBy(specs) => {
            for s in specs.iter_mut() {
                rewrite_refs(&mut s.expr, rewrites);
            }
        }
        Clause::SqlFor { params, ppk, .. } => {
            for p in params.iter_mut() {
                rewrite_refs(p, rewrites);
            }
            if let Some(pk) = ppk {
                for k in pk.outer_keys.iter_mut() {
                    rewrite_refs(k, rewrites);
                }
            }
        }
    }
}

/// Rewrite `$v/COL` → field variables and whole-row uses of `$v` →
/// reconstructed row elements (the runtime's extract-field / construct
/// tuple ops in IR form, §5.2).
fn rewrite_refs(e: &mut CExpr, rewrites: &[Rewrite]) {
    let span = e.span;
    // $v/COL
    if let CKind::ChildStep {
        input,
        name: Some(n),
    } = &e.kind
    {
        if let CKind::Var { name: v, .. } = &input.kind {
            if let Some(rw) = rewrites.iter().find(|r| &r.var == v) {
                if let Some((col, fvar, fty, nullable)) =
                    rw.fields.iter().find(|(c, _, _, _)| c == n.local_name())
                {
                    // the source element: <COL>{value}</COL>, omitted when
                    // the column is NULL → conditional construction
                    // (column elements are unqualified, see row_shape)
                    *e = typed_field_element(col, fvar, *fty, *nullable, span);
                    return;
                }
            }
        }
    }
    // whole $v
    if let CKind::Var { name: v, .. } = &e.kind {
        if let Some(rw) = rewrites.iter().find(|r| &r.var == v && r.whole) {
            *e = reconstruct_row(rw, span);
            return;
        }
    }
    e.for_each_child_mut(&mut |c| rewrite_refs(c, rewrites));
}

// ---- predicate translation ---------------------------------------------------

struct Translator<'a, 'r> {
    ctx: &'a Context<'r>,
    region: &'a mut Region,
    allow_params: bool,
}

impl Translator<'_, '_> {
    /// Translate a predicate to SQL if pushable; `None` leaves it in the
    /// middleware.
    fn pushable(&mut self, e: &CExpr) -> Option<ScalarExpr> {
        let saved_params = self.region.params.len();
        match self.try_expr(e) {
            Some(s) => Some(s),
            None => {
                self.region.params.truncate(saved_params);
                None
            }
        }
    }

    fn try_expr(&mut self, e: &CExpr) -> Option<ScalarExpr> {
        match &e.kind {
            CKind::Data(inner) => self.try_expr(inner),
            CKind::Const(v) => Some(ScalarExpr::Literal(
                SqlValue::from_xml(Some(v), sql_type_of(v.type_of())?).ok()?,
            )),
            CKind::ChildStep { .. } => col_expr(self.region, e),
            CKind::And(a, b) => Some(self.try_expr(a)?.and(self.try_expr(b)?)),
            CKind::Or(a, b) => Some(self.try_expr(a)?.or(self.try_expr(b)?)),
            CKind::Compare { op, lhs, rhs, .. } => {
                let l = self.try_expr(lhs)?;
                let r = self.try_expr(rhs)?;
                Some(ScalarExpr::Compare {
                    op: *op,
                    lhs: Box::new(l),
                    rhs: Box::new(r),
                })
            }
            CKind::Arith { op, lhs, rhs } => {
                let l = self.try_expr(lhs)?;
                let r = self.try_expr(rhs)?;
                Some(ScalarExpr::Arith {
                    op: *op,
                    lhs: Box::new(l),
                    rhs: Box::new(r),
                })
            }
            CKind::If { cond, then, els } => {
                let c = self.try_expr(cond)?;
                let t = self.try_expr(then)?;
                let x = self.try_expr(els)?;
                Some(ScalarExpr::Case {
                    when: vec![(c, t)],
                    els: Some(Box::new(x)),
                })
            }
            CKind::Builtin { op, args } => match op {
                Builtin::Not => Some(ScalarExpr::Not(Box::new(self.try_expr(&args[0])?))),
                Builtin::Empty => {
                    // empty($v/COL) → COL IS NULL
                    let c = col_expr(self.region, &args[0])?;
                    Some(ScalarExpr::IsNull(Box::new(c)))
                }
                Builtin::Exists => {
                    let c = col_expr(self.region, &args[0])?;
                    Some(ScalarExpr::Not(Box::new(ScalarExpr::IsNull(Box::new(c)))))
                }
                Builtin::UpperCase => Some(ScalarExpr::Func {
                    name: "UPPER".into(),
                    args: vec![self.try_expr(&args[0])?],
                }),
                Builtin::LowerCase => Some(ScalarExpr::Func {
                    name: "LOWER".into(),
                    args: vec![self.try_expr(&args[0])?],
                }),
                Builtin::StringLength => Some(ScalarExpr::Func {
                    name: "LENGTH".into(),
                    args: vec![self.try_expr(&args[0])?],
                }),
                Builtin::Substring => {
                    let mut sargs = Vec::with_capacity(args.len());
                    for a in args {
                        sargs.push(self.try_expr(a)?);
                    }
                    Some(ScalarExpr::Func {
                        name: "SUBSTR".into(),
                        args: sargs,
                    })
                }
                Builtin::Concat => {
                    let mut sargs = Vec::with_capacity(args.len());
                    for a in args {
                        sargs.push(self.try_expr(a)?);
                    }
                    Some(ScalarExpr::Func {
                        name: "CONCAT".into(),
                        args: sargs,
                    })
                }
                Builtin::Abs => Some(ScalarExpr::Func {
                    name: "ABS".into(),
                    args: vec![self.try_expr(&args[0])?],
                }),
                Builtin::True => Some(ScalarExpr::Literal(SqlValue::Bool(true))),
                Builtin::False => Some(ScalarExpr::Literal(SqlValue::Bool(false))),
                _ => self.as_param(e),
            },
            // a quantified expression over the same source → EXISTS
            // semi-join (Table 2(h))
            CKind::Quantified {
                every: false,
                var,
                source,
                satisfies,
            } => self.try_exists(var, source, satisfies),
            CKind::Cast { input, target, .. } => {
                // pushable as a typed parameter when independent; else
                // translate through (types line up via SQL affinity)
                match self.try_expr(input) {
                    Some(s) => {
                        let _ = target;
                        Some(s)
                    }
                    None => self.as_param(e),
                }
            }
            _ => self.as_param(e),
        }
    }

    /// "Other expressions can first be evaluated in the XQuery runtime
    /// engine and then pushed as SQL parameters" (§4.3).
    fn as_param(&mut self, e: &CExpr) -> Option<ScalarExpr> {
        if !self.allow_params {
            return None;
        }
        // only expressions independent of the pushed region qualify
        let free = e.free_vars();
        if free.iter().any(|v| self.region.vars.contains_key(v)) {
            return None;
        }
        // node constructors etc. are non-pushable even as params; require
        // an atomizable expression — conservatively accept everything
        // whose type is atomic or unknown-but-data-wrapped
        let idx = self.region.params.len();
        self.region
            .params
            .push(CExpr::new(CKind::Data(Box::new(e.clone())), e.span));
        Some(ScalarExpr::Param(idx))
    }

    fn try_exists(&mut self, var: &str, source: &CExpr, satisfies: &CExpr) -> Option<ScalarExpr> {
        let (conn, table, element, columns, pk, nav) = table_of_call(self.ctx, source)?;
        if conn != self.region.connection || nav.is_some() {
            return None;
        }
        let alias = self.region.next_alias();
        // temporarily extend the region's var map so the inner predicate
        // resolves both inner and outer columns
        self.region.vars.insert(
            var.to_string(),
            PushedVar {
                alias: alias.clone(),
                table: table.clone(),
                connection: conn,
                element,
                columns,
                primary_key: pk,
            },
        );
        let inner_pred = self.try_expr(satisfies);
        self.region.vars.remove(var);
        let inner_pred = inner_pred?;
        let mut sub = Select::new(TableRef::table(&table, &alias))
            .column(ScalarExpr::lit(SqlValue::Int(1)), "c1");
        sub.where_ = Some(inner_pred);
        Some(ScalarExpr::Exists(Box::new(sub)))
    }
}

fn sql_type_of(t: AtomicType) -> Option<SqlType> {
    SqlType::from_xml_type(t)
}

// ---- phase 2: dependent-join hoisting ---------------------------------------

/// Find correlated single-`SqlFor` FLWORs nested in the return
/// expression and hoist them into the outer clause list: merged as a
/// LEFT OUTER JOIN when same-connection (Tables 1(c)/2(g)), or as a
/// PP-k dependent join with middleware re-nesting otherwise (§4.2).
fn hoist_dependent_joins(
    ctx: &mut Context<'_>,
    clauses: &mut Vec<Clause>,
    ret: &mut CExpr,
    span: crate::ir::Span,
) {
    // an existing group clause is a hard barrier (scope changes)
    if clauses.iter().any(|c| matches!(c, Clause::GroupBy { .. })) {
        return;
    }
    // hoisting is only useful (and only batches) when this FLWOR owns the
    // driving tuple loop; a let/where-only block should stay simple so an
    // enclosing FLWOR can flatten it and hoist at the right level
    if !clauses
        .iter()
        .any(|c| matches!(c, Clause::For { .. } | Clause::SqlFor { .. }))
    {
        return;
    }
    loop {
        let has_order = clauses.iter().any(|c| matches!(c, Clause::OrderBy(_)));
        // locate the outer SqlFor: single table, uncorrelated, followed
        // only by non-binding-loop clauses (lets / wheres / order by)
        let outer_info: Option<(usize, String, String, String)> =
            clauses.iter().enumerate().find_map(|(i, c)| {
                if let Clause::SqlFor {
                    connection,
                    select,
                    ppk: None,
                    params,
                    ..
                } = c
                {
                    if params.is_empty()
                        && clauses[i + 1..].iter().all(|t| {
                            matches!(
                                t,
                                Clause::Let { .. } | Clause::Where(_) | Clause::OrderBy(_)
                            )
                        })
                    {
                        if let TableRef::Table { name, alias } = &select.from {
                            return Some((i, connection.clone(), name.clone(), alias.clone()));
                        }
                    }
                }
                None
            });
        let outer_is_last = outer_info
            .as_ref()
            .is_some_and(|(i, ..)| *i + 1 == clauses.len());
        // search the return, then let values, for a hoistable nested FLWOR
        let (found, slot) = {
            match find_nested_dependent(ret) {
                Some(f) => (Some(f), Slot::Ret),
                None => {
                    let mut hit = None;
                    for (li, c) in clauses.iter().enumerate() {
                        if let Clause::Let { value, .. } = c {
                            if let Some(f) = find_nested_dependent(value) {
                                // let-slot hoisting is aggregate-only (the
                                // Table 2(i) `let $oc := count(…)` shape)
                                if f.agg.is_some() {
                                    hit = Some((f, Slot::Let(li)));
                                    break;
                                }
                            }
                        }
                    }
                    match hit {
                        Some((f, sl)) => (Some(f), sl),
                        None => (None, Slot::Ret),
                    }
                }
            }
        };
        let Some(NestedDependent {
            path_marker,
            inner_clause,
            inner_ret,
            agg,
        }) = found
        else {
            break;
        };
        // temporarily take the slot expression so merges can mutate the
        // clause list while rewriting it
        let mut slot_expr = match slot {
            Slot::Ret => std::mem::replace(ret, CExpr::empty(span)),
            Slot::Let(li) => {
                let Clause::Let { value, .. } = &mut clauses[li] else {
                    unreachable!()
                };
                std::mem::replace(value, CExpr::empty(span))
            }
        };
        let hoisted = match (&outer_info, &inner_clause) {
            (
                Some((outer_idx, oconn, otable, oalias)),
                Clause::SqlFor {
                    connection,
                    select,
                    params,
                    binds,
                    ppk: Some(ppk),
                },
            ) if oconn == connection && params.is_empty() => {
                // the re-nesting (non-aggregate) variant inserts a group
                // clause, which is only sound when nothing follows the
                // outer SqlFor and the slot is the return
                if agg.is_none() && !(outer_is_last && matches!(slot, Slot::Ret)) {
                    false
                } else {
                    merge_same_connection(
                        ctx,
                        clauses,
                        *outer_idx,
                        otable,
                        oalias,
                        select,
                        binds,
                        ppk,
                        inner_ret.clone(),
                        agg,
                        &mut slot_expr,
                        &path_marker,
                        span,
                    )
                }
            }
            (_, Clause::SqlFor { ppk: Some(_), .. }) if matches!(slot, Slot::Ret) && !has_order => {
                hoist_cross_source(
                    ctx,
                    clauses,
                    inner_clause.clone(),
                    inner_ret.clone(),
                    agg,
                    &mut slot_expr,
                    &path_marker,
                    span,
                )
            }
            _ => false,
        };
        // restore the slot
        match slot {
            Slot::Ret => *ret = slot_expr,
            Slot::Let(li) => {
                let Clause::Let { value, .. } = &mut clauses[li] else {
                    unreachable!()
                };
                *value = slot_expr;
            }
        }
        drain_pending_insertions(clauses);
        if !hoisted {
            clear_marker(ret, &path_marker);
            break;
        }
    }
}

/// Which expression a nested dependent was found in.
enum Slot {
    Ret,
    Let(usize),
}

/// A located nested dependent join. `path_marker` is the span used to
/// find the node again for replacement.
struct NestedDependent {
    path_marker: crate::ir::Span,
    inner_clause: Clause,
    inner_ret: CExpr,
    agg: Option<Builtin>,
}

/// Search `e` for `Flwor{[SqlFor(ppk)], ret}` (optionally under a
/// count/sum aggregate).
fn find_nested_dependent(e: &CExpr) -> Option<NestedDependent> {
    // aggregate form first: count(Flwor{[SqlFor(ppk)]})
    if let CKind::Builtin {
        op: op @ (Builtin::Count | Builtin::Sum | Builtin::Min | Builtin::Max | Builtin::Avg),
        args,
    } = &e.kind
    {
        if let CKind::Flwor { clauses, ret } = &args[0].kind {
            if clauses.len() == 1 {
                if let Clause::SqlFor { ppk: Some(_), .. } = &clauses[0] {
                    return Some(NestedDependent {
                        path_marker: e.span,
                        inner_clause: clauses[0].clone(),
                        inner_ret: (**ret).clone(),
                        agg: Some(*op),
                    });
                }
            }
        }
    }
    if let CKind::Flwor { clauses, ret } = &e.kind {
        if clauses.len() == 1 {
            if let Clause::SqlFor { ppk: Some(_), .. } = &clauses[0] {
                return Some(NestedDependent {
                    path_marker: e.span,
                    inner_clause: clauses[0].clone(),
                    inner_ret: (**ret).clone(),
                    agg: None,
                });
            }
        }
    }
    // never hoist across the async/timeout/fail-over boundaries (§5.4,
    // §5.6): those functions own their operands' evaluation — moving a
    // source access out of them would strip their protection
    if matches!(
        &e.kind,
        CKind::Builtin {
            op: Builtin::Async | Builtin::Timeout | Builtin::FailOver,
            ..
        }
    ) {
        return None;
    }
    let mut found = None;
    e.for_each_child(&mut |c| {
        if found.is_none() {
            found = find_nested_dependent(c);
        }
    });
    found
}

/// Replace the marked nested node with `replacement`.
fn replace_marked(e: &mut CExpr, marker: &crate::ir::Span, replacement: &CExpr) -> bool {
    let is_target =
        e.span == *marker && matches!(&e.kind, CKind::Flwor { .. } | CKind::Builtin { .. });
    if is_target {
        *e = replacement.clone();
        return true;
    }
    let mut done = false;
    e.for_each_child_mut(&mut |c| {
        if !done {
            done = replace_marked(c, marker, replacement);
        }
    });
    done
}

fn clear_marker(_e: &mut CExpr, _marker: &crate::ir::Span) {
    // nothing to clear — the search is deterministic, so a failed hoist
    // simply terminates the loop (see caller)
}

/// Same-connection merge: extend the outer select with a LEFT OUTER JOIN
/// of the inner table, then either push the aggregate entirely (GROUP BY
/// in SQL — Table 2(g)) or re-nest in the middleware with a clustered
/// group-by (Table 1(c) + §4.2's streaming grouping).
#[allow(clippy::too_many_arguments)]
fn merge_same_connection(
    ctx: &mut Context<'_>,
    clauses: &mut [Clause],
    outer_idx: usize,
    otable: &str,
    oalias: &str,
    inner_select: &Select,
    inner_binds: &[(String, AtomicType)],
    ppk: &PpkSpec,
    inner_ret: CExpr,
    agg: Option<Builtin>,
    ret: &mut CExpr,
    marker: &crate::ir::Span,
    span: crate::ir::Span,
) -> bool {
    // the inner select must be a single table with no pagination
    let TableRef::Table {
        name: itable,
        alias: _,
    } = &inner_select.from
    else {
        return false;
    };
    // outer PK columns (needed for grouping identity)
    let pk_cols: Vec<String> = {
        let f = ctx.registry.functions().find_map(|f| match &f.source {
            SourceBinding::RelationalTable {
                table, primary_key, ..
            } if table == otable => Some(primary_key.clone()),
            _ => None,
        });
        match f {
            Some(pk) if !pk.is_empty() => pk,
            _ => return false,
        }
    };
    // correlation: outer_keys must be field vars bound by the outer SqlFor
    let Clause::SqlFor {
        select: outer_select,
        binds: outer_binds,
        ..
    } = &mut clauses[outer_idx]
    else {
        return false;
    };
    let mut on: Option<ScalarExpr> = None;
    let ialias = "t_inner".to_string();
    for (outer_key, key_col) in ppk.outer_keys.iter().zip(&ppk.key_columns) {
        // outer key must be (data of) an outer bind var
        let kv = match &outer_key.kind {
            CKind::Var { name: v, .. } => v.clone(),
            CKind::Data(inner) => match &inner.kind {
                CKind::Var { name: v, .. } => v.clone(),
                _ => return false,
            },
            _ => return false,
        };
        let Some(pos) = outer_binds.iter().position(|(b, _)| *b == kv) else {
            return false;
        };
        let outer_col = outer_select.columns[pos].expr.clone();
        let ScalarExpr::Column { column, .. } = key_col else {
            return false;
        };
        let term = outer_col.eq(ScalarExpr::col(&ialias, column));
        on = Some(match on {
            Some(p) => p.and(term),
            None => term,
        });
    }
    let Some(on) = on else { return false };
    // splice the join in
    outer_select.from = outer_select.from.clone().join(
        JoinKind::LeftOuter,
        TableRef::table(itable, &ialias),
        match &inner_select.where_ {
            Some(w) => {
                let rebased = rebase_aliases(w, inner_select, &ialias);
                on.and(rebased)
            }
            None => on,
        },
    );
    match agg {
        Some(op) => {
            // full SQL aggregation (Table 2(g)): GROUP BY outer columns
            let group_cols: Vec<ScalarExpr> = outer_select
                .columns
                .iter()
                .map(|c| c.expr.clone())
                .collect();
            outer_select.group_by = group_cols;
            // aggregate argument: first inner output column (or * count)
            let inner_col = rebase_aliases(&inner_select.columns[0].expr, inner_select, &ialias);
            let func = match op {
                Builtin::Count => AggFunc::Count,
                Builtin::Sum => AggFunc::Sum,
                Builtin::Avg => AggFunc::Avg,
                Builtin::Min => AggFunc::Min,
                Builtin::Max => AggFunc::Max,
                _ => unreachable!("agg matched above"),
            };
            let alias = format!("c{}", outer_select.columns.len() + 1);
            outer_select.columns.push(aldsp_relational::OutputColumn {
                expr: ScalarExpr::Agg {
                    func,
                    arg: Some(Box::new(inner_col)),
                    distinct: false,
                },
                alias,
            });
            let agg_var = ctx.fresh("agg");
            outer_binds.push((agg_var.clone(), AtomicType::Integer));
            replace_marked(ret, marker, &CExpr::var(&agg_var, span))
        }
        None => {
            // middleware re-nesting: fetch inner fields, ORDER BY outer
            // PK, then a *pre-clustered* streaming group-by (§4.2)
            let mut inner_field_vars = Vec::with_capacity(inner_binds.len());
            for (i, col) in inner_select.columns.iter().enumerate() {
                let alias = format!("c{}", outer_select.columns.len() + 1);
                outer_select.columns.push(aldsp_relational::OutputColumn {
                    expr: rebase_aliases(&col.expr, inner_select, &ialias),
                    alias,
                });
                let (bvar, bty) = inner_binds[i].clone();
                outer_binds.push((bvar.clone(), bty));
                inner_field_vars.push(bvar);
            }
            // ensure PK columns are fetched & ordered
            let mut pk_field_vars = Vec::new();
            for pk in &pk_cols {
                let col = ScalarExpr::col(oalias, pk);
                let pos = outer_select.columns.iter().position(|c| c.expr == col);
                let pos = match pos {
                    Some(p) => p,
                    None => {
                        let alias = format!("c{}", outer_select.columns.len() + 1);
                        outer_select.columns.push(aldsp_relational::OutputColumn {
                            expr: col.clone(),
                            alias,
                        });
                        outer_binds.push((ctx.fresh(&format!("pk#{pk}")), AtomicType::AnyAtomic));
                        outer_select.columns.len() - 1
                    }
                };
                pk_field_vars.push(outer_binds[pos].0.clone());
                outer_select.order_by.push(OrderBy {
                    expr: col,
                    descending: false,
                });
            }
            // per-joined-row value of the nested return, then regroup
            let val_var = ctx.fresh("nestval");
            // guard: an unmatched outer row produces NULL inner fields; the
            // nested value must then be empty. All-inner-fields-null test:
            let mut guard: Option<CExpr> = None;
            for fv in &inner_field_vars {
                let t = CExpr::new(
                    CKind::Builtin {
                        op: Builtin::Exists,
                        args: vec![CExpr::var(fv, span)],
                    },
                    span,
                );
                guard = Some(match guard {
                    Some(g) => CExpr::new(CKind::Or(Box::new(g), Box::new(t)), span),
                    None => t,
                });
            }
            let guarded = match guard {
                Some(g) => CExpr::new(
                    CKind::If {
                        cond: Box::new(g),
                        then: Box::new(inner_ret),
                        els: Box::new(CExpr::empty(span)),
                    },
                    span,
                ),
                None => inner_ret,
            };
            let grouped_var = ctx.fresh("nested");
            // group keys: outer PK fields plus every outer bind still used
            let outer_bind_names: Vec<(String, AtomicType)> = outer_binds.clone();
            let mut keys: Vec<(CExpr, String)> = Vec::new();
            let mut key_renames: Vec<(String, String)> = Vec::new();
            for pkv in &pk_field_vars {
                let alias = ctx.fresh("gk");
                keys.push((CExpr::var(pkv, span), alias.clone()));
                key_renames.push((pkv.clone(), alias));
            }
            for (b, _) in &outer_bind_names {
                if pk_field_vars.contains(b) || inner_field_vars.contains(b) {
                    continue;
                }
                let alias = ctx.fresh("gk");
                keys.push((CExpr::var(b, span), alias.clone()));
                key_renames.push((b.clone(), alias));
            }
            let extra = vec![
                Clause::Let {
                    var: val_var.clone(),
                    value: guarded,
                },
                Clause::GroupBy {
                    bindings: vec![(val_var, grouped_var.clone())],
                    keys,
                    carry: Vec::new(),
                    pre_clustered: true,
                },
            ];
            // replace the nested expression and rename outer binds to
            // their group-key aliases in the return
            if !replace_marked(ret, marker, &CExpr::var(&grouped_var, span)) {
                return false;
            }
            for (old, new) in &key_renames {
                ret.substitute(old, &CExpr::var(new, span));
            }
            // append the new clauses right after the outer SqlFor —
            // ownership dance: we only have &mut [Clause]; signal via a
            // sentinel and let the caller… simpler: we re-enter with Vec
            // access below.
            PENDING.with(|p| p.borrow_mut().push((outer_idx + 1, extra)));
            true
        }
    }
}

thread_local! {
    /// Clause insertions requested during a merge (the merge only holds a
    /// slice borrow); drained by [`hoist_dependent_joins`]'s caller wrapper.
    static PENDING: std::cell::RefCell<Vec<(usize, Vec<Clause>)>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Rewrite inner-select column aliases to the joined alias.
fn rebase_aliases(e: &ScalarExpr, inner: &Select, new_alias: &str) -> ScalarExpr {
    let TableRef::Table { alias, .. } = &inner.from else {
        return e.clone();
    };
    let mut out = e.clone();
    fn rec(e: &mut ScalarExpr, from: &str, to: &str) {
        if let ScalarExpr::Column { table, .. } = e {
            if table == from {
                *table = to.to_string();
            }
        }
        match e {
            ScalarExpr::Compare { lhs, rhs, .. } | ScalarExpr::Arith { lhs, rhs, .. } => {
                rec(lhs, from, to);
                rec(rhs, from, to);
            }
            ScalarExpr::And(a, b) | ScalarExpr::Or(a, b) => {
                rec(a, from, to);
                rec(b, from, to);
            }
            ScalarExpr::Not(a) | ScalarExpr::IsNull(a) => rec(a, from, to),
            ScalarExpr::Case { when, els } => {
                for (c, v) in when {
                    rec(c, from, to);
                    rec(v, from, to);
                }
                if let Some(x) = els {
                    rec(x, from, to);
                }
            }
            ScalarExpr::InList { expr, list } => {
                rec(expr, from, to);
                for i in list {
                    rec(i, from, to);
                }
            }
            ScalarExpr::Func { args, .. } => {
                for a in args {
                    rec(a, from, to);
                }
            }
            ScalarExpr::Agg { arg: Some(a), .. } => rec(a, from, to),
            _ => {}
        }
    }
    rec(&mut out, alias, new_alias);
    out
}

/// Cross-source hoist: move the dependent `SqlFor` into the outer clause
/// list so the runtime can batch it (PP-k), re-nesting via a tuple-id
/// keyed, pre-clustered group-by.
#[allow(clippy::too_many_arguments)]
fn hoist_cross_source(
    ctx: &mut Context<'_>,
    clauses: &mut Vec<Clause>,
    inner_clause: Clause,
    inner_ret: CExpr,
    agg: Option<Builtin>,
    ret: &mut CExpr,
    marker: &crate::ir::Span,
    span: crate::ir::Span,
) -> bool {
    let Clause::SqlFor {
        connection,
        select,
        params,
        mut binds,
        ppk: Some(mut ppk),
    } = inner_clause
    else {
        return false;
    };
    // the PP-k operator emits a synthetic outer-tuple ordinal so grouping
    // can re-nest per outer tuple
    ppk.outer_join = true;
    let tid = ctx.fresh("tid");
    binds.push((tid.clone(), TID_TYPE));
    let val_var = ctx.fresh("nestval");
    // unmatched outer tuples surface with all inner fields empty
    let inner_field_vars: Vec<String> = binds
        .iter()
        .take(binds.len() - 1)
        .map(|(b, _)| b.clone())
        .collect();
    let mut guard: Option<CExpr> = None;
    for fv in &inner_field_vars {
        let t = CExpr::new(
            CKind::Builtin {
                op: Builtin::Exists,
                args: vec![CExpr::var(fv, span)],
            },
            span,
        );
        guard = Some(match guard {
            Some(g) => CExpr::new(CKind::Or(Box::new(g), Box::new(t)), span),
            None => t,
        });
    }
    let guarded = match guard {
        Some(g) => CExpr::new(
            CKind::If {
                cond: Box::new(g),
                then: Box::new(inner_ret),
                els: Box::new(CExpr::empty(span)),
            },
            span,
        ),
        None => inner_ret,
    };
    let grouped_var = ctx.fresh("nested");
    // keys: the tuple id plus every variable the return still needs
    let replacement = match agg {
        Some(Builtin::Count) => CExpr::new(
            CKind::Builtin {
                op: Builtin::Count,
                args: vec![CExpr::var(&grouped_var, span)],
            },
            span,
        ),
        Some(op) => CExpr::new(
            CKind::Builtin {
                op,
                args: vec![CExpr::var(&grouped_var, span)],
            },
            span,
        ),
        None => CExpr::var(&grouped_var, span),
    };
    if !replace_marked(ret, marker, &replacement) {
        return false;
    }
    let keys: Vec<(CExpr, String)> = vec![(CExpr::var(&tid, span), ctx.fresh("gk"))];
    // every other variable the return still needs is functionally
    // dependent on the tuple id: *carry* it (no atomization)
    let mut carry = Vec::new();
    let mut renames = Vec::new();
    let needed: Vec<String> = {
        let mut free = ret.free_vars();
        free.remove(&grouped_var);
        let bound_before: Vec<String> = clauses
            .iter()
            .flat_map(crate::rules::clause_bindings)
            .collect();
        bound_before
            .into_iter()
            .filter(|b| free.contains(b))
            .collect()
    };
    for b in needed {
        let alias = ctx.fresh("gk");
        renames.push((b.clone(), alias.clone()));
        carry.push((b.clone(), alias));
    }
    for (old, new) in &renames {
        ret.substitute(old, &CExpr::var(new, span));
    }
    clauses.push(Clause::SqlFor {
        connection,
        select,
        params,
        binds,
        ppk: Some(ppk),
    });
    clauses.push(Clause::Let {
        var: val_var.clone(),
        value: guarded,
    });
    clauses.push(Clause::GroupBy {
        bindings: vec![(val_var, grouped_var)],
        keys,
        carry,
        pre_clustered: true,
    });
    true
}

// ---- phase 3: trailing clause pushdowns --------------------------------------

/// `[SqlFor, GroupBy]` → SQL GROUP BY / DISTINCT (Tables 1(e)/1(f)),
/// with aggregates over group bindings pushed when that is all the
/// bindings are used for; otherwise ORDER BY the keys and mark the
/// group-by pre-clustered (backend sort, §4.2).
fn push_trailing_group_by(ctx: &mut Context<'_>, clauses: &mut Vec<Clause>, ret: &mut CExpr) {
    // pattern: SqlFor, zero or more row-reconstruction Lets, GroupBy last
    if clauses.len() < 2 || !matches!(clauses[0], Clause::SqlFor { .. }) {
        return;
    }
    let last = clauses.len() - 1;
    if !matches!(clauses[last], Clause::GroupBy { .. }) {
        return;
    }
    // intermediate clauses must be lets (their vars may feed bindings)
    let mut row_let_vars: Vec<String> = Vec::new();
    for c in &clauses[1..last] {
        match c {
            Clause::Let { var, value } if matches!(value.kind, CKind::ElementCtor { .. }) => {
                row_let_vars.push(var.clone())
            }
            _ => return,
        }
    }
    let (first, rest) = clauses.split_at_mut(1);
    let Clause::SqlFor {
        select,
        binds,
        ppk: None,
        ..
    } = &mut first[0]
    else {
        return;
    };
    let Clause::GroupBy {
        bindings,
        keys,
        carry,
        pre_clustered,
    } = rest.last_mut().expect("checked")
    else {
        return;
    };
    if !carry.is_empty() {
        return; // carried values need the middleware group operator
    }
    // keys must be pushed field vars
    let mut key_cols = Vec::new();
    for (k, _) in keys.iter() {
        let kv = match &k.kind {
            CKind::Var { name: v, .. } => v,
            CKind::Data(i) => match &i.kind {
                CKind::Var { name: v, .. } => v,
                _ => return,
            },
            _ => return,
        };
        let Some(pos) = binds.iter().position(|(b, _)| b == kv) else {
            return;
        };
        key_cols.push(select.columns[pos].expr.clone());
    }
    if bindings.is_empty() {
        // DISTINCT form (Table 1(f)) — only when the return uses keys only
        select.distinct = true;
        // prune outputs to the keys
        let mut new_cols = Vec::new();
        let mut new_binds = Vec::new();
        for (k, alias) in keys.iter() {
            let kv = match &k.kind {
                CKind::Var { name: v, .. } => v.clone(),
                CKind::Data(i) => match &i.kind {
                    CKind::Var { name: v, .. } => v.clone(),
                    _ => unreachable!("checked above"),
                },
                _ => unreachable!("checked above"),
            };
            let pos = binds.iter().position(|(b, _)| *b == kv).expect("checked");
            new_cols.push(aldsp_relational::OutputColumn {
                expr: select.columns[pos].expr.clone(),
                alias: format!("c{}", new_cols.len() + 1),
            });
            new_binds.push((alias.clone(), binds[pos].1));
        }
        select.columns = new_cols;
        *binds = new_binds;
        clauses.truncate(clauses.len() - 1);
        return;
    }
    // aggregate-only bindings? check every use of each binding var in ret
    let mut agg_rewrites: Vec<(String, Builtin, Option<usize>)> = Vec::new();
    for (from, to) in bindings.iter() {
        // a binding over a pushed field pushes any aggregate; a binding
        // over a reconstructed row pushes COUNT (as COUNT(*)) only
        let from_pos = binds.iter().position(|(b, _)| b == from);
        if from_pos.is_none() && !row_let_vars.contains(from) {
            push_order_for_clustering(select, &key_cols, pre_clustered);
            return;
        }
        match sole_aggregate_use(ret, to) {
            Some(Builtin::Count) => agg_rewrites.push((to.clone(), Builtin::Count, from_pos)),
            Some(op) if from_pos.is_some() => agg_rewrites.push((to.clone(), op, from_pos)),
            _ => {
                push_order_for_clustering(select, &key_cols, pre_clustered);
                return;
            }
        }
    }
    // full push: SELECT keys, AGG(field) … GROUP BY keys
    let mut new_cols = Vec::new();
    let mut new_binds = Vec::new();
    for (k, alias) in keys.iter() {
        let kv = match &k.kind {
            CKind::Var { name: v, .. } => v.clone(),
            CKind::Data(i) => match &i.kind {
                CKind::Var { name: v, .. } => v.clone(),
                _ => unreachable!("checked above"),
            },
            _ => unreachable!("checked above"),
        };
        let pos = binds.iter().position(|(b, _)| *b == kv).expect("checked");
        new_cols.push(aldsp_relational::OutputColumn {
            expr: select.columns[pos].expr.clone(),
            alias: format!("c{}", new_cols.len() + 1),
        });
        new_binds.push((alias.clone(), binds[pos].1));
    }
    let mut ret_rewrites = Vec::new();
    for (gvar, op, from_pos) in &agg_rewrites {
        let func = match op {
            Builtin::Count => AggFunc::Count,
            Builtin::Sum => AggFunc::Sum,
            Builtin::Avg => AggFunc::Avg,
            Builtin::Min => AggFunc::Min,
            Builtin::Max => AggFunc::Max,
            _ => return,
        };
        // count($g) over a row variable is COUNT(*)
        let arg = if *op == Builtin::Count {
            None
        } else {
            Some(Box::new(
                select.columns[from_pos.expect("non-count aggregates need a field")]
                    .expr
                    .clone(),
            ))
        };
        let alias = format!("c{}", new_cols.len() + 1);
        new_cols.push(aldsp_relational::OutputColumn {
            expr: ScalarExpr::Agg {
                func,
                arg,
                distinct: false,
            },
            alias,
        });
        let fresh = ctx.fresh("aggv");
        new_binds.push((fresh.clone(), AtomicType::Integer));
        ret_rewrites.push((gvar.clone(), *op, fresh));
    }
    select.group_by = key_cols;
    select.columns = new_cols;
    *binds = new_binds;
    // replace aggregate calls in the return
    for (gvar, op, fresh) in &ret_rewrites {
        replace_aggregate_use(ret, gvar, *op, fresh);
    }
    clauses.truncate(clauses.len() - 1);
}

fn push_order_for_clustering(
    select: &mut Select,
    key_cols: &[ScalarExpr],
    pre_clustered: &mut bool,
) {
    // "in the worst case, ALDSP falls back on sorting for grouping, which
    // then can possibly be pushed to the backend" (§4.2)
    for k in key_cols {
        if !select.order_by.iter().any(|o| &o.expr == k) {
            select.order_by.push(OrderBy {
                expr: k.clone(),
                descending: false,
            });
        }
    }
    *pre_clustered = true;
}

/// Does `ret` use `$var` exclusively as `agg($var)`? Returns the single
/// aggregate op if so.
fn sole_aggregate_use(ret: &CExpr, var: &str) -> Option<Builtin> {
    let mut ops: Vec<Builtin> = Vec::new();
    let mut bare = false;
    fn scan(e: &CExpr, var: &str, ops: &mut Vec<Builtin>, bare: &mut bool) {
        if let CKind::Builtin {
            op: op @ (Builtin::Count | Builtin::Sum | Builtin::Avg | Builtin::Min | Builtin::Max),
            args,
        } = &e.kind
        {
            if args.len() == 1 {
                let inner = match &args[0].kind {
                    CKind::Data(i) => i.as_ref(),
                    _ => &args[0],
                };
                if matches!(&inner.kind, CKind::Var { name: v, .. } if v == var) {
                    ops.push(*op);
                    return;
                }
            }
        }
        if matches!(&e.kind, CKind::Var { name: v, .. } if v == var) {
            *bare = true;
        }
        e.for_each_child(&mut |c| scan(c, var, ops, bare));
    }
    scan(ret, var, &mut ops, &mut bare);
    if bare || ops.is_empty() || !ops.iter().all(|o| *o == ops[0]) {
        return None;
    }
    Some(ops[0])
}

fn replace_aggregate_use(e: &mut CExpr, var: &str, op: Builtin, fresh: &str) {
    if let CKind::Builtin { op: eop, args } = &e.kind {
        if *eop == op && args.len() == 1 {
            let inner = match &args[0].kind {
                CKind::Data(i) => i.as_ref(),
                _ => &args[0],
            };
            if matches!(&inner.kind, CKind::Var { name: v, .. } if v == var) {
                *e = CExpr::var(fresh, e.span);
                return;
            }
        }
    }
    e.for_each_child_mut(&mut |c| replace_aggregate_use(c, var, op, fresh));
}

/// Drop output columns whose field variables are no longer referenced
/// (computed-projection pushdown can orphan the raw columns it replaced)
/// — "any unused information not be fetched at all" (§4.2).
fn prune_unused_columns(clauses: &mut [Clause], ret: &CExpr) {
    // collect every variable still used anywhere
    let mut used: std::collections::HashSet<String> = ret.free_vars();
    for c in clauses.iter() {
        match c {
            Clause::For { source, .. } => used.extend(source.free_vars()),
            Clause::Let { value, .. } => used.extend(value.free_vars()),
            Clause::Where(w) => used.extend(w.free_vars()),
            Clause::GroupBy {
                keys,
                bindings,
                carry,
                ..
            } => {
                for (k, _) in keys {
                    used.extend(k.free_vars());
                }
                for (from, _) in bindings.iter().chain(carry.iter()) {
                    used.insert(from.clone());
                }
            }
            Clause::OrderBy(specs) => {
                for s in specs {
                    used.extend(s.expr.free_vars());
                }
            }
            Clause::SqlFor { params, ppk, .. } => {
                for p in params {
                    used.extend(p.free_vars());
                }
                if let Some(pk) = ppk {
                    for k in &pk.outer_keys {
                        used.extend(k.free_vars());
                    }
                }
            }
        }
    }
    for c in clauses.iter_mut() {
        // PP-k statements keep their key columns (indices are positional);
        // only plain statements prune
        let Clause::SqlFor {
            select,
            binds,
            ppk: None,
            ..
        } = c
        else {
            continue;
        };
        if binds.len() <= 1 {
            continue;
        }
        let keep: Vec<bool> = binds.iter().map(|(b, _)| used.contains(b)).collect();
        if keep.iter().all(|k| *k) || keep.iter().all(|k| !*k) {
            continue; // nothing to do, or degenerate (cardinality-only scan)
        }
        let mut new_binds = Vec::new();
        let mut new_cols = Vec::new();
        for (i, k) in keep.iter().enumerate() {
            if *k {
                new_binds.push(binds[i].clone());
                let mut col = select.columns[i].clone();
                col.alias = format!("c{}", new_cols.len() + 1);
                new_cols.push(col);
            }
        }
        *binds = new_binds;
        select.columns = new_cols;
    }
}

/// Fold `where` clauses that follow a `SqlFor` and reference only its
/// bind variables (they surface when view unfolding flattens a nested
/// FLWOR *after* region formation) back into the statement's WHERE.
fn absorb_wheres(clauses: &mut Vec<Clause>) {
    let mut i = 1;
    while i < clauses.len() {
        let absorbable = matches!(clauses[i], Clause::Where(_))
            && matches!(clauses[i - 1], Clause::SqlFor { ppk: None, .. });
        if absorbable {
            let Clause::Where(w) = clauses[i].clone() else {
                unreachable!()
            };
            let (head, _) = clauses.split_at_mut(i);
            let Clause::SqlFor {
                select,
                binds,
                params,
                ..
            } = &mut head[i - 1]
            else {
                unreachable!()
            };
            let saved_params = params.len();
            if let Some(sql) = translate_bound(&w, select, binds, params) {
                select.where_ = Some(match select.where_.take() {
                    Some(prev) => prev.and(sql),
                    None => sql,
                });
                clauses.remove(i);
                continue;
            }
            params.truncate(saved_params);
        }
        i += 1;
    }
}

/// Translate a predicate over a `SqlFor`'s bind variables into SQL;
/// bind-independent sub-expressions ship as parameters (§4.3).
fn translate_bound(
    e: &CExpr,
    select: &Select,
    binds: &[(String, AtomicType)],
    params: &mut Vec<CExpr>,
) -> Option<ScalarExpr> {
    let bind_col = |v: &str| -> Option<ScalarExpr> {
        binds
            .iter()
            .position(|(b, _)| b == v)
            .map(|pos| select.columns[pos].expr.clone())
    };
    match &e.kind {
        CKind::Data(inner) | CKind::TypeMatch { input: inner, .. } => {
            translate_bound(inner, select, binds, params)
        }
        CKind::Var { name: v, .. } => bind_col(v).or_else(|| as_bound_param(e, binds, params)),
        CKind::Const(v) => Some(ScalarExpr::Literal(
            SqlValue::from_xml(Some(v), sql_type_of(v.type_of())?).ok()?,
        )),
        CKind::Compare { op, lhs, rhs, .. } => {
            let l = translate_bound(lhs, select, binds, params)?;
            let r = translate_bound(rhs, select, binds, params)?;
            Some(ScalarExpr::Compare {
                op: *op,
                lhs: Box::new(l),
                rhs: Box::new(r),
            })
        }
        CKind::And(a, b) => Some(
            translate_bound(a, select, binds, params)?
                .and(translate_bound(b, select, binds, params)?),
        ),
        CKind::Or(a, b) => Some(
            translate_bound(a, select, binds, params)?
                .or(translate_bound(b, select, binds, params)?),
        ),
        CKind::Arith { op, lhs, rhs } => {
            let l = translate_bound(lhs, select, binds, params)?;
            let r = translate_bound(rhs, select, binds, params)?;
            Some(ScalarExpr::Arith {
                op: *op,
                lhs: Box::new(l),
                rhs: Box::new(r),
            })
        }
        CKind::If { cond, then, els } => {
            let c = translate_bound(cond, select, binds, params)?;
            let t = translate_bound(then, select, binds, params)?;
            let x = translate_bound(els, select, binds, params)?;
            Some(ScalarExpr::Case {
                when: vec![(c, t)],
                els: Some(Box::new(x)),
            })
        }
        CKind::Builtin {
            op: Builtin::Not,
            args,
        } => Some(ScalarExpr::Not(Box::new(translate_bound(
            &args[0], select, binds, params,
        )?))),
        CKind::Builtin {
            op:
                op @ (Builtin::UpperCase
                | Builtin::LowerCase
                | Builtin::StringLength
                | Builtin::Substring
                | Builtin::Concat
                | Builtin::Abs),
            args,
        } => {
            let name = match op {
                Builtin::UpperCase => "UPPER",
                Builtin::LowerCase => "LOWER",
                Builtin::StringLength => "LENGTH",
                Builtin::Substring => "SUBSTR",
                Builtin::Concat => "CONCAT",
                Builtin::Abs => "ABS",
                _ => unreachable!("matched above"),
            };
            let mut sargs = Vec::with_capacity(args.len());
            for a in args {
                sargs.push(translate_bound(a, select, binds, params)?);
            }
            Some(ScalarExpr::Func {
                name: name.into(),
                args: sargs,
            })
        }
        CKind::Builtin {
            op: Builtin::Empty,
            args,
        } => {
            let inner = strip_data(&args[0]);
            if let CKind::Var { name: v, .. } = &inner.kind {
                return bind_col(v).map(|c| ScalarExpr::IsNull(Box::new(c)));
            }
            as_bound_param(e, binds, params)
        }
        CKind::Builtin {
            op: Builtin::Exists,
            args,
        } => {
            let inner = strip_data(&args[0]);
            if let CKind::Var { name: v, .. } = &inner.kind {
                return bind_col(v)
                    .map(|c| ScalarExpr::Not(Box::new(ScalarExpr::IsNull(Box::new(c)))));
            }
            as_bound_param(e, binds, params)
        }
        _ => as_bound_param(e, binds, params),
    }
}

fn strip_data(e: &CExpr) -> &CExpr {
    match &e.kind {
        CKind::Data(inner) => strip_data(inner),
        _ => e,
    }
}

/// Ship a bind-independent expression as a parameter.
fn as_bound_param(
    e: &CExpr,
    binds: &[(String, AtomicType)],
    params: &mut Vec<CExpr>,
) -> Option<ScalarExpr> {
    let free = e.free_vars();
    if free.iter().any(|v| binds.iter().any(|(b, _)| b == v)) {
        return None;
    }
    let idx = params.len();
    params.push(CExpr::new(CKind::Data(Box::new(e.clone())), e.span));
    Some(ScalarExpr::Param(idx))
}

/// Push *computed scalar projections* into the statement: a pushable
/// `if/then/else`, arithmetic or string expression in the return that
/// reads only one `SqlFor`'s fields becomes an output column (the exact
/// published form of Table 1(d), where the `CASE` sits in the SELECT
/// list). "Things considered to be pushable to SQL include … if-then-
/// else expressions" (§4.3).
fn push_scalar_projections(ctx: &mut Context<'_>, clauses: &mut [Clause], ret: &mut CExpr) {
    // single uncorrelated SqlFor only (multi-region attribution is the
    // compiler's job elsewhere)
    let mut target = None;
    for (i, c) in clauses.iter().enumerate() {
        if let Clause::SqlFor { ppk: None, .. } = c {
            if target.is_some() {
                return;
            }
            target = Some(i);
        }
    }
    let Some(i) = target else { return };
    let Clause::SqlFor {
        select,
        binds,
        params,
        ..
    } = &mut clauses[i]
    else {
        unreachable!()
    };
    push_scalars_in(ctx, ret, select, binds, params);
}

/// Recursively replace pushable computed subexpressions with fresh field
/// variables backed by new output columns.
fn push_scalars_in(
    ctx: &mut Context<'_>,
    e: &mut CExpr,
    select: &mut Select,
    binds: &mut Vec<(String, AtomicType)>,
    params: &mut Vec<CExpr>,
) {
    let pushable_shape = matches!(
        &e.kind,
        CKind::If { .. }
            | CKind::Arith { .. }
            | CKind::Builtin {
                op: Builtin::UpperCase
                    | Builtin::LowerCase
                    | Builtin::StringLength
                    | Builtin::Substring
                    | Builtin::Concat
                    | Builtin::Abs,
                ..
            }
    );
    if pushable_shape {
        // must read at least one of this statement's fields, and all its
        // branches/operands must translate
        let uses_bind = e
            .free_vars()
            .iter()
            .any(|v| binds.iter().any(|(b, _)| b == v));
        if uses_bind {
            let saved = params.len();
            if let Some(sql) = translate_bound(e, select, binds, params) {
                let ty = match e.ty.item_type() {
                    Some(aldsp_xdm::types::ItemType::Atomic(t)) => *t,
                    _ => AtomicType::AnyAtomic,
                };
                if let Some(sqlty) = SqlType::from_xml_type(ty) {
                    let _ = sqlty;
                    let alias = format!("c{}", select.columns.len() + 1);
                    select
                        .columns
                        .push(aldsp_relational::OutputColumn { expr: sql, alias });
                    let fvar = ctx.fresh("proj");
                    binds.push((fvar.clone(), ty));
                    let mut var = CExpr::var(&fvar, e.span);
                    var.ty = e.ty.clone();
                    *e = var;
                    return;
                }
            }
            params.truncate(saved);
        }
    }
    // don't descend into nested FLWORs that own their own statements
    if matches!(&e.kind, CKind::Flwor { .. }) {
        return;
    }
    e.for_each_child_mut(&mut |c| push_scalars_in(ctx, c, select, binds, params));
}

/// `[SqlFor, (Let|Where)*, OrderBy(fields)]` → `ORDER BY` in the SQL.
/// Order keys may reference the SqlFor's binds directly or through
/// simple `let` aliases (`let $oc := $aggvar`).
fn push_trailing_order_by(clauses: &mut Vec<Clause>) {
    // find the single uncorrelated SqlFor
    let Some(sf_idx) = clauses
        .iter()
        .position(|c| matches!(c, Clause::SqlFor { ppk: None, params, .. } if params.is_empty()))
    else {
        return;
    };
    // alias map through intermediate lets
    let mut aliases: Vec<(String, String)> = Vec::new(); // let var → bind var
    let mut order_idx = None;
    for (i, c) in clauses.iter().enumerate().skip(sf_idx + 1) {
        match c {
            Clause::Let { var, value } => {
                let inner = match &value.kind {
                    CKind::Data(x) => x.as_ref(),
                    _ => value,
                };
                if let CKind::Var { name: v, .. } = &inner.kind {
                    aliases.push((var.clone(), v.clone()));
                }
            }
            Clause::Where(_) => {}
            Clause::OrderBy(_) => {
                order_idx = Some(i);
                break;
            }
            _ => return, // another loop intervenes
        }
    }
    let Some(oi) = order_idx else { return };
    let resolve = |mut v: String, aliases: &[(String, String)]| -> String {
        while let Some((_, to)) = aliases.iter().find(|(from, _)| *from == v) {
            v = to.clone();
        }
        v
    };
    let Clause::OrderBy(specs) = clauses[oi].clone() else {
        unreachable!()
    };
    let mut pushed = Vec::new();
    {
        let Clause::SqlFor { select, binds, .. } = &clauses[sf_idx] else {
            unreachable!()
        };
        for s in &specs {
            let v = match &s.expr.kind {
                CKind::Var { name: v, .. } => v.clone(),
                CKind::Data(inner) => match &inner.kind {
                    CKind::Var { name: v, .. } => v.clone(),
                    _ => return,
                },
                _ => return,
            };
            let v = resolve(v, &aliases);
            let Some(pos) = binds.iter().position(|(b, _)| *b == v) else {
                return;
            };
            pushed.push(OrderBy {
                expr: select.columns[pos].expr.clone(),
                descending: s.descending,
            });
        }
    }
    let Clause::SqlFor { select, .. } = &mut clauses[sf_idx] else {
        unreachable!()
    };
    select.order_by.extend(pushed);
    clauses.remove(oi);
}

/// `subsequence(Flwor{[SqlFor]}, start, len)` → OFFSET/FETCH pushed into
/// the SQL when the connection's dialect supports pagination (Table
/// 2(i)); otherwise the builtin stays in the middleware.
fn push_subsequence(ctx: &mut Context<'_>, e: &mut CExpr) {
    let CKind::Builtin {
        op: Builtin::Subsequence,
        args,
    } = &mut e.kind
    else {
        return;
    };
    let (start, len) = {
        let s = match args.get(1).map(|a| &a.kind) {
            Some(CKind::Const(v)) => match v.cast_to(AtomicType::Integer) {
                Ok(aldsp_xdm::value::AtomicValue::Integer(i)) => i,
                _ => return,
            },
            _ => return,
        };
        let l = match args.get(2).map(|a| &a.kind) {
            Some(CKind::Const(v)) => match v.cast_to(AtomicType::Integer) {
                Ok(aldsp_xdm::value::AtomicValue::Integer(i)) => Some(i),
                _ => return,
            },
            None => None,
            _ => return,
        };
        (s, l)
    };
    if start < 1 || len.is_some_and(|l| l < 0) {
        return; // non-canonical ranges stay in the middleware
    }
    let CKind::Flwor { clauses, .. } = &mut args[0].kind else {
        return;
    };
    let all_pushed = clauses.len() == 1;
    if !all_pushed {
        return;
    }
    let Clause::SqlFor {
        connection,
        select,
        ppk: None,
        params,
        ..
    } = &mut clauses[0]
    else {
        return;
    };
    if !params.is_empty() || !ctx.dialect_of(connection).supports_pagination() {
        return;
    }
    select.offset = Some((start - 1) as u64);
    select.fetch = len.map(|l| l as u64);
    // the builtin is now redundant
    let inner = args.remove(0);
    *e = inner;
}

/// Drain the pending clause insertions requested by same-connection
/// merges (see `merge_same_connection`).
pub fn drain_pending_insertions(clauses: &mut Vec<Clause>) {
    PENDING.with(|p| {
        let mut pending = p.borrow_mut();
        // apply in reverse order so indices stay valid
        pending.sort_by_key(|p| std::cmp::Reverse(p.0));
        for (idx, extra) in pending.drain(..) {
            let at = idx.min(clauses.len());
            for (off, c) in extra.into_iter().enumerate() {
                clauses.insert(at + off, c);
            }
        }
    });
}
