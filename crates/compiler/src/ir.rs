//! The compiler's expression tree (the paper's "internal form", §3.3
//! stage 2).
//!
//! Produced from the parser AST by [`crate::translate`] (normalization:
//! names resolved, scopes checked, implicit operations such as
//! atomization made explicit, variables alpha-renamed unique), then
//! refined in place by type checking, the optimizer rules and SQL
//! pushdown. The optimized tree **is** the executable plan: the runtime
//! crate interprets it, with the SQL-bearing [`Clause::SqlFor`] nodes
//! marking the regions that were pushed to relational sources and the
//! [`PpkSpec`] annotation selecting the paper's PP-k distributed join.

use aldsp_relational::{ScalarExpr, Select};
use aldsp_xdm::item::CompOp;
use aldsp_xdm::types::SequenceType;
use aldsp_xdm::value::{ArithOp, AtomicType, AtomicValue};
use aldsp_xdm::QName;
use std::collections::HashSet;

pub use aldsp_parser::ast::Span;

/// A typed compiler expression.
#[derive(Debug, Clone)]
pub struct CExpr {
    /// The node kind.
    pub kind: CKind,
    /// The inferred static type (filled by the type checker; `item()*`
    /// until then).
    pub ty: SequenceType,
    /// Source location.
    pub span: Span,
    /// Stable plan-node identifier, assigned pre-order by
    /// [`CExpr::assign_node_ids`] after optimization (0 = unassigned).
    /// Shared between EXPLAIN output and runtime operator traces.
    pub node_id: u32,
}

/// Equality ignores `node_id`: two structurally identical plans compare
/// equal whether or not ids have been assigned yet.
impl PartialEq for CExpr {
    fn eq(&self, other: &CExpr) -> bool {
        self.kind == other.kind && self.ty == other.ty && self.span == other.span
    }
}

impl CExpr {
    /// Construct an untyped node (type to be inferred).
    pub fn new(kind: CKind, span: Span) -> CExpr {
        CExpr {
            kind,
            ty: SequenceType::any(),
            span,
            node_id: 0,
        }
    }

    /// The empty sequence `()`.
    pub fn empty(span: Span) -> CExpr {
        CExpr {
            kind: CKind::Seq(Vec::new()),
            ty: SequenceType::Empty,
            span,
            node_id: 0,
        }
    }

    /// A constant.
    pub fn constant(v: AtomicValue, span: Span) -> CExpr {
        let ty = SequenceType::atomic(v.type_of());
        CExpr {
            kind: CKind::Const(v),
            ty,
            span,
            node_id: 0,
        }
    }

    /// A variable reference (unslotted until the frame-layout pass).
    pub fn var(name: &str, span: Span) -> CExpr {
        CExpr::new(
            CKind::Var {
                name: name.to_string(),
                slot: NO_SLOT,
            },
            span,
        )
    }
}

/// Sentinel slot for variables the frame-layout pass has not (or could
/// not) resolve; the runtime reports these as unbound by name.
pub const NO_SLOT: u32 = u32::MAX;

/// Expression kinds after normalization.
#[derive(Debug, Clone, PartialEq)]
pub enum CKind {
    /// A literal atomic value.
    Const(AtomicValue),
    /// A variable reference (alpha-renamed unique). `slot` is the dense
    /// frame index assigned by the frame-layout pass (Fig. 4 array
    /// tuples at IR granularity); the name is kept for EXPLAIN and
    /// error text.
    Var {
        /// Alpha-renamed unique name.
        name: String,
        /// Frame slot, or [`NO_SLOT`] before layout.
        slot: u32,
    },
    /// Sequence concatenation (empty = `()`).
    Seq(Vec<CExpr>),
    /// `a to b`.
    Range(Box<CExpr>, Box<CExpr>),
    /// A normalized FLW(G)OR block.
    Flwor {
        /// Clauses in pipeline order.
        clauses: Vec<Clause>,
        /// The per-tuple return expression.
        ret: Box<CExpr>,
    },
    /// `if (cond) then t else e` (condition under effective boolean
    /// value).
    If {
        /// Condition.
        cond: Box<CExpr>,
        /// Then branch.
        then: Box<CExpr>,
        /// Else branch.
        els: Box<CExpr>,
    },
    /// A single-variable quantifier (multi-binding forms are unnested
    /// during translation).
    Quantified {
        /// `every` vs `some`.
        every: bool,
        /// Bound variable.
        var: String,
        /// Domain.
        source: Box<CExpr>,
        /// Predicate.
        satisfies: Box<CExpr>,
    },
    /// `typeswitch`.
    Typeswitch {
        /// Operand (bound once).
        operand: Box<CExpr>,
        /// `(type, var, branch)` cases; the var is always generated.
        cases: Vec<(SequenceType, String, CExpr)>,
        /// Default branch `(var, body)`.
        default: Box<(String, CExpr)>,
    },
    /// Logical `and` (EBV operands).
    And(Box<CExpr>, Box<CExpr>),
    /// Logical `or`.
    Or(Box<CExpr>, Box<CExpr>),
    /// Value or general comparison.
    Compare {
        /// Operator.
        op: CompOp,
        /// General (`=`) vs value (`eq`) semantics.
        general: bool,
        /// Left operand.
        lhs: Box<CExpr>,
        /// Right operand.
        rhs: Box<CExpr>,
    },
    /// Arithmetic (operands atomized by normalization).
    Arith {
        /// Operator.
        op: ArithOp,
        /// Left operand.
        lhs: Box<CExpr>,
        /// Right operand.
        rhs: Box<CExpr>,
    },
    /// Explicit atomization (`fn:data`, also inserted for implicit
    /// atomization during normalization — §3.3 stage 3).
    Data(Box<CExpr>),
    /// `input/child::name` (`None` = wildcard).
    ChildStep {
        /// The step input.
        input: Box<CExpr>,
        /// Name test.
        name: Option<QName>,
    },
    /// `input/@name`.
    AttrStep {
        /// The step input.
        input: Box<CExpr>,
        /// Name test (`None` = `@*`).
        name: Option<QName>,
    },
    /// `input//…` — descendant-or-self.
    DescendantStep {
        /// The step input.
        input: Box<CExpr>,
    },
    /// `input[pred]`. `positional` is set by the type checker when the
    /// predicate has a numeric type (`[3]` selects by position).
    Filter {
        /// Filtered input.
        input: Box<CExpr>,
        /// Predicate; evaluated with the context item bound to `ctx_var`.
        predicate: Box<CExpr>,
        /// Generated variable the predicate's context item binds to.
        ctx_var: String,
        /// Position-selection semantics?
        positional: bool,
    },
    /// An element constructor (direct constructors normalize to this),
    /// including the ALDSP `<E?>` conditional form (§3.1).
    ElementCtor {
        /// Element name.
        name: QName,
        /// Conditional construction: emit only if content non-empty.
        conditional: bool,
        /// Attribute constructors `(name, conditional, value)`.
        attributes: Vec<(QName, bool, CExpr)>,
        /// Content expression (a `Seq` of parts).
        content: Box<CExpr>,
    },
    /// A call to a built-in function.
    Builtin {
        /// Which builtin.
        op: Builtin,
        /// Arguments.
        args: Vec<CExpr>,
    },
    /// A call to a *physical* (source) function — a data-source access
    /// (§3.2). The runtime dispatches this through the adaptor framework.
    PhysicalCall {
        /// The resolved physical function name.
        name: QName,
        /// Arguments.
        args: Vec<CExpr>,
    },
    /// A call to a user-defined XQuery function that has not (yet) been
    /// inlined (view unfolding inlines these, §4.2).
    UserCall {
        /// Function name.
        name: QName,
        /// Arguments.
        args: Vec<CExpr>,
    },
    /// Runtime type check inserted by optimistic static typing (§4.1).
    TypeMatch {
        /// Checked expression.
        input: Box<CExpr>,
        /// Required type.
        ty: SequenceType,
    },
    /// `cast as` (target is atomic).
    Cast {
        /// Input.
        input: Box<CExpr>,
        /// Target atomic type.
        target: AtomicType,
        /// `true` when the cast target was written with `?`.
        optional: bool,
    },
    /// `castable as`.
    Castable {
        /// Input.
        input: Box<CExpr>,
        /// Target atomic type.
        target: AtomicType,
    },
    /// `instance of`.
    InstanceOf {
        /// Input.
        input: Box<CExpr>,
        /// Tested type.
        ty: SequenceType,
    },
    /// The error expression substituted during design-time recovery
    /// (§4.1); keeps the salvageable inputs.
    Error(Vec<CExpr>),
}

/// One normalized FLWOR clause.
#[derive(Debug, Clone, PartialEq)]
pub enum Clause {
    /// `for $var (at $pos)? in source`.
    For {
        /// Binding variable.
        var: String,
        /// Positional variable.
        pos: Option<String>,
        /// Domain expression.
        source: CExpr,
    },
    /// `let $var := value`.
    Let {
        /// Binding variable.
        var: String,
        /// Bound expression.
        value: CExpr,
    },
    /// `where cond` (EBV).
    Where(CExpr),
    /// The ALDSP group clause (§3.1). After grouping, only the `to`
    /// binding variables and key aliases remain in scope.
    GroupBy {
        /// `(from, to)` regrouping pairs.
        bindings: Vec<(String, String)>,
        /// `(key expression, alias)` pairs (aliases always present —
        /// generated when the query omitted them).
        keys: Vec<(CExpr, String)>,
        /// `(from, to)` pass-through pairs: variables functionally
        /// dependent on the keys, carried from the group's first tuple
        /// *without* atomization (used by dependent-join re-nesting,
        /// §4.2).
        carry: Vec<(String, String)>,
        /// Set by the optimizer when the input is known clustered on the
        /// keys, enabling the streaming constant-memory group operator
        /// (§4.2, §5.2).
        pre_clustered: bool,
    },
    /// `order by`.
    OrderBy(Vec<OrderSpec>),
    /// A pushed SQL region (§4.3–4.4): executes `select` on `connection`
    /// and binds one tuple per row, one field variable per output column.
    /// Replaces one or more `For`/`Where`/`Let` clauses.
    SqlFor {
        /// Connection name (pragma metadata, resolved by the adaptors).
        connection: String,
        /// The generated SQL.
        select: Box<Select>,
        /// Expressions for the statement's positional parameters,
        /// evaluated per outer tuple (correlated / external values).
        params: Vec<CExpr>,
        /// `(field variable, column type)` — field i binds output column
        /// i; SQL NULL binds the empty sequence.
        binds: Vec<(String, AtomicType)>,
        /// PP-k batching (§4.2/§5.2); `None` executes once per outer
        /// tuple (or once overall when `params` is empty).
        ppk: Option<PpkSpec>,
    },
}

/// PP-k distributed-join specification (§4.2): fetch in blocks of `k`
/// outer tuples via a disjunctive parameterized query, then join in the
/// middleware.
#[derive(Debug, Clone, PartialEq)]
pub struct PpkSpec {
    /// Block size (the paper's default is 20).
    pub k: usize,
    /// Key expressions evaluated on each outer tuple.
    pub outer_keys: Vec<CExpr>,
    /// The matching inner columns (as SQL expressions over the select's
    /// FROM aliases) used to build the disjunctive block predicate.
    pub key_columns: Vec<ScalarExpr>,
    /// Indices into `binds` of the columns to compare with `outer_keys`
    /// when joining a fetched block back to its outer tuples.
    pub bind_key_indices: Vec<usize>,
    /// The local join method used within a block (§5.2: PP-k using
    /// nested loops or PP-k using index nested loops).
    pub local_method: LocalJoinMethod,
    /// `true` when unmatched outer tuples must still produce output
    /// (left-outer semantics from nested constructors).
    pub outer_join: bool,
    /// How many block fetches the runtime may keep in flight ahead of
    /// the local join (0 = synchronous).
    pub prefetch_depth: usize,
}

/// The middleware-side join method inside a PP-k block (§5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocalJoinMethod {
    /// Nested loops over the fetched block.
    NestedLoop,
    /// Build an index (hash) on the fetched block, probe per outer tuple
    /// — "the most performant one" per §5.2.
    IndexNestedLoop,
}

/// One order-by key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderSpec {
    /// Key expression.
    pub expr: CExpr,
    /// Descending?
    pub descending: bool,
    /// Empty-least (default true).
    pub empty_least: bool,
}

/// The built-in function repertoire (§4.3 lists the pushable subset;
/// §5.4–5.6 add the ALDSP extensions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Builtin {
    /// `fn:count`.
    Count,
    /// `fn:sum`.
    Sum,
    /// `fn:avg`.
    Avg,
    /// `fn:min`.
    Min,
    /// `fn:max`.
    Max,
    /// `fn:exists`.
    Exists,
    /// `fn:empty`.
    Empty,
    /// `fn:not`.
    Not,
    /// `fn:true`.
    True,
    /// `fn:false`.
    False,
    /// `fn:string`.
    String,
    /// `fn:concat`.
    Concat,
    /// `fn:string-length`.
    StringLength,
    /// `fn:upper-case`.
    UpperCase,
    /// `fn:lower-case`.
    LowerCase,
    /// `fn:substring`.
    Substring,
    /// `fn:contains`.
    Contains,
    /// `fn:starts-with`.
    StartsWith,
    /// `fn:subsequence`.
    Subsequence,
    /// `fn:distinct-values`.
    DistinctValues,
    /// `fn:abs`.
    Abs,
    /// `fn:boolean` (EBV).
    Boolean,
    /// `fn-bea:async` — evaluate the argument on another thread (§5.4).
    Async,
    /// `fn-bea:timeout($expr, $millis, $alt)` (§5.6).
    Timeout,
    /// `fn-bea:fail-over($expr, $alt)` (§5.6).
    FailOver,
}

impl Builtin {
    /// Resolve `(namespace-uri, local, arity)` to a builtin.
    pub fn resolve(uri: Option<&str>, local: &str, arity: usize) -> Option<Builtin> {
        use aldsp_xdm::qname::ns;
        let std_fn = uri.is_none() || uri == Some(ns::FN);
        let bea = uri == Some(ns::FN_BEA);
        Some(match (local, arity) {
            ("data", 1) => return None, // handled specially (CKind::Data)
            ("count", 1) if std_fn => Builtin::Count,
            ("sum", 1) if std_fn => Builtin::Sum,
            ("avg", 1) if std_fn => Builtin::Avg,
            ("min", 1) if std_fn => Builtin::Min,
            ("max", 1) if std_fn => Builtin::Max,
            ("exists", 1) if std_fn => Builtin::Exists,
            ("empty", 1) if std_fn => Builtin::Empty,
            ("not", 1) if std_fn => Builtin::Not,
            ("true", 0) if std_fn => Builtin::True,
            ("false", 0) if std_fn => Builtin::False,
            ("string", 1) if std_fn => Builtin::String,
            ("concat", _) if std_fn && arity >= 2 => Builtin::Concat,
            ("string-length", 1) if std_fn => Builtin::StringLength,
            ("upper-case", 1) if std_fn => Builtin::UpperCase,
            ("lower-case", 1) if std_fn => Builtin::LowerCase,
            ("substring", 2 | 3) if std_fn => Builtin::Substring,
            ("contains", 2) if std_fn => Builtin::Contains,
            ("starts-with", 2) if std_fn => Builtin::StartsWith,
            ("subsequence", 2 | 3) if std_fn => Builtin::Subsequence,
            ("distinct-values", 1) if std_fn => Builtin::DistinctValues,
            ("abs", 1) if std_fn => Builtin::Abs,
            ("boolean", 1) if std_fn => Builtin::Boolean,
            ("async", 1) if bea => Builtin::Async,
            ("timeout", 3) if bea => Builtin::Timeout,
            ("fail-over", 2) if bea => Builtin::FailOver,
            _ => return None,
        })
    }
}

// ---- tree utilities ---------------------------------------------------------

impl CExpr {
    /// Visit every sub-expression (pre-order), including clause bodies.
    pub fn walk(&self, f: &mut dyn FnMut(&CExpr)) {
        f(self);
        self.for_each_child(&mut |c| c.walk(f));
    }

    /// Apply `f` to each direct child expression.
    pub fn for_each_child(&self, f: &mut dyn FnMut(&CExpr)) {
        match &self.kind {
            CKind::Const(_) | CKind::Var { .. } | CKind::Error(_) => {
                if let CKind::Error(inputs) = &self.kind {
                    for i in inputs {
                        f(i);
                    }
                }
            }
            CKind::Seq(items) => items.iter().for_each(f),
            CKind::Range(a, b) | CKind::And(a, b) | CKind::Or(a, b) => {
                f(a);
                f(b);
            }
            CKind::Flwor { clauses, ret } => {
                for c in clauses {
                    match c {
                        Clause::For { source, .. } => f(source),
                        Clause::Let { value, .. } => f(value),
                        Clause::Where(e) => f(e),
                        Clause::GroupBy { keys, .. } => keys.iter().for_each(|(e, _)| f(e)),
                        Clause::OrderBy(specs) => specs.iter().for_each(|s| f(&s.expr)),
                        Clause::SqlFor { params, ppk, .. } => {
                            params.iter().for_each(&mut *f);
                            if let Some(p) = ppk {
                                p.outer_keys.iter().for_each(&mut *f);
                            }
                        }
                    }
                }
                f(ret);
            }
            CKind::If { cond, then, els } => {
                f(cond);
                f(then);
                f(els);
            }
            CKind::Quantified {
                source, satisfies, ..
            } => {
                f(source);
                f(satisfies);
            }
            CKind::Typeswitch {
                operand,
                cases,
                default,
            } => {
                f(operand);
                for (_, _, b) in cases {
                    f(b);
                }
                f(&default.1);
            }
            CKind::Compare { lhs, rhs, .. } | CKind::Arith { lhs, rhs, .. } => {
                f(lhs);
                f(rhs);
            }
            CKind::Data(a) | CKind::DescendantStep { input: a } => f(a),
            CKind::ChildStep { input, .. } | CKind::AttrStep { input, .. } => f(input),
            CKind::Filter {
                input, predicate, ..
            } => {
                f(input);
                f(predicate);
            }
            CKind::ElementCtor {
                attributes,
                content,
                ..
            } => {
                for (_, _, v) in attributes {
                    f(v);
                }
                f(content);
            }
            CKind::Builtin { args, .. }
            | CKind::PhysicalCall { args, .. }
            | CKind::UserCall { args, .. } => args.iter().for_each(f),
            CKind::TypeMatch { input, .. }
            | CKind::Cast { input, .. }
            | CKind::Castable { input, .. }
            | CKind::InstanceOf { input, .. } => f(input),
        }
    }

    /// Number every node pre-order starting at 1 (0 stays "unassigned")
    /// and return the count assigned. Run once on the finished plan; the
    /// ids are stable for the life of the [`crate::CompiledQuery`] and
    /// key both EXPLAIN lines and runtime trace records. Clauses have no
    /// id of their own: they are addressed as
    /// `(owning Flwor node_id, clause index)`.
    pub fn assign_node_ids(&mut self) -> u32 {
        fn go(e: &mut CExpr, next: &mut u32) {
            e.node_id = *next;
            *next += 1;
            e.for_each_child_mut(&mut |c| go(c, next));
        }
        let mut next = 1u32;
        go(self, &mut next);
        next - 1
    }

    /// The free variables of this expression.
    pub fn free_vars(&self) -> HashSet<String> {
        let mut free = HashSet::new();
        collect_free(self, &mut HashSet::new(), &mut free);
        free
    }

    /// Substitute free occurrences of `var` with `replacement`.
    pub fn substitute(&mut self, var: &str, replacement: &CExpr) {
        match &mut self.kind {
            CKind::Var { name: v, .. } if v == var => {
                *self = replacement.clone();
            }
            CKind::Flwor { clauses, ret } => {
                let mut shadowed = false;
                for c in clauses.iter_mut() {
                    if shadowed {
                        break;
                    }
                    match c {
                        Clause::For {
                            var: v,
                            pos,
                            source,
                        } => {
                            source.substitute(var, replacement);
                            if v == var || pos.as_deref() == Some(var) {
                                shadowed = true;
                            }
                        }
                        Clause::Let { var: v, value } => {
                            value.substitute(var, replacement);
                            if v == var {
                                shadowed = true;
                            }
                        }
                        Clause::Where(e) => e.substitute(var, replacement),
                        Clause::GroupBy { bindings, keys, .. } => {
                            for (k, _) in keys.iter_mut() {
                                k.substitute(var, replacement);
                            }
                            if bindings.iter().any(|(_, to)| to == var)
                                || keys.iter().any(|(_, a)| a == var)
                            {
                                shadowed = true;
                            }
                        }
                        Clause::OrderBy(specs) => {
                            for s in specs.iter_mut() {
                                s.expr.substitute(var, replacement);
                            }
                        }
                        Clause::SqlFor {
                            params, ppk, binds, ..
                        } => {
                            for p in params.iter_mut() {
                                p.substitute(var, replacement);
                            }
                            if let Some(p) = ppk {
                                for e in p.outer_keys.iter_mut() {
                                    e.substitute(var, replacement);
                                }
                            }
                            if binds.iter().any(|(b, _)| b == var) {
                                shadowed = true;
                            }
                        }
                    }
                }
                if !shadowed {
                    ret.substitute(var, replacement);
                }
            }
            CKind::Quantified {
                var: v,
                source,
                satisfies,
                ..
            } => {
                source.substitute(var, replacement);
                if v != var {
                    satisfies.substitute(var, replacement);
                }
            }
            CKind::Filter {
                input,
                predicate,
                ctx_var,
                ..
            } => {
                input.substitute(var, replacement);
                if ctx_var != var {
                    predicate.substitute(var, replacement);
                }
            }
            CKind::Typeswitch {
                operand,
                cases,
                default,
            } => {
                operand.substitute(var, replacement);
                for (_, v, b) in cases.iter_mut() {
                    if v != var {
                        b.substitute(var, replacement);
                    }
                }
                if default.0 != var {
                    default.1.substitute(var, replacement);
                }
            }
            _ => {
                self.for_each_child_mut(&mut |c| c.substitute(var, replacement));
            }
        }
    }

    /// Apply `f` to each direct child expression, mutably.
    pub fn for_each_child_mut(&mut self, f: &mut dyn FnMut(&mut CExpr)) {
        match &mut self.kind {
            CKind::Const(_) | CKind::Var { .. } => {}
            CKind::Error(inputs) => inputs.iter_mut().for_each(f),
            CKind::Seq(items) => items.iter_mut().for_each(f),
            CKind::Range(a, b) | CKind::And(a, b) | CKind::Or(a, b) => {
                f(a);
                f(b);
            }
            CKind::Flwor { clauses, ret } => {
                for c in clauses.iter_mut() {
                    match c {
                        Clause::For { source, .. } => f(source),
                        Clause::Let { value, .. } => f(value),
                        Clause::Where(e) => f(e),
                        Clause::GroupBy { keys, .. } => keys.iter_mut().for_each(|(e, _)| f(e)),
                        Clause::OrderBy(specs) => specs.iter_mut().for_each(|s| f(&mut s.expr)),
                        Clause::SqlFor { params, ppk, .. } => {
                            params.iter_mut().for_each(&mut *f);
                            if let Some(p) = ppk {
                                p.outer_keys.iter_mut().for_each(&mut *f);
                            }
                        }
                    }
                }
                f(ret);
            }
            CKind::If { cond, then, els } => {
                f(cond);
                f(then);
                f(els);
            }
            CKind::Quantified {
                source, satisfies, ..
            } => {
                f(source);
                f(satisfies);
            }
            CKind::Typeswitch {
                operand,
                cases,
                default,
            } => {
                f(operand);
                for (_, _, b) in cases.iter_mut() {
                    f(b);
                }
                f(&mut default.1);
            }
            CKind::Compare { lhs, rhs, .. } | CKind::Arith { lhs, rhs, .. } => {
                f(lhs);
                f(rhs);
            }
            CKind::Data(a) | CKind::DescendantStep { input: a } => f(a),
            CKind::ChildStep { input, .. } | CKind::AttrStep { input, .. } => f(input),
            CKind::Filter {
                input, predicate, ..
            } => {
                f(input);
                f(predicate);
            }
            CKind::ElementCtor {
                attributes,
                content,
                ..
            } => {
                for (_, _, v) in attributes.iter_mut() {
                    f(v);
                }
                f(content);
            }
            CKind::Builtin { args, .. }
            | CKind::PhysicalCall { args, .. }
            | CKind::UserCall { args, .. } => args.iter_mut().for_each(f),
            CKind::TypeMatch { input, .. }
            | CKind::Cast { input, .. }
            | CKind::Castable { input, .. }
            | CKind::InstanceOf { input, .. } => f(input),
        }
    }
}

fn collect_free(e: &CExpr, bound: &mut HashSet<String>, free: &mut HashSet<String>) {
    match &e.kind {
        CKind::Var { name: v, .. } => {
            if !bound.contains(v) {
                free.insert(v.clone());
            }
        }
        CKind::Flwor { clauses, ret } => {
            let mut local: Vec<String> = Vec::new();
            let add = |name: &str, bound: &mut HashSet<String>, local: &mut Vec<String>| {
                if bound.insert(name.to_string()) {
                    local.push(name.to_string());
                }
            };
            for c in clauses {
                match c {
                    Clause::For { var, pos, source } => {
                        collect_free(source, bound, free);
                        add(var, bound, &mut local);
                        if let Some(p) = pos {
                            add(p, bound, &mut local);
                        }
                    }
                    Clause::Let { var, value } => {
                        collect_free(value, bound, free);
                        add(var, bound, &mut local);
                    }
                    Clause::Where(w) => collect_free(w, bound, free),
                    Clause::GroupBy {
                        bindings,
                        keys,
                        carry,
                        ..
                    } => {
                        for (k, _) in keys {
                            collect_free(k, bound, free);
                        }
                        for (from, _) in carry {
                            if !bound.contains(from) {
                                free.insert(from.clone());
                            }
                        }
                        for (_, to) in bindings {
                            add(to, bound, &mut local);
                        }
                        for (_, alias) in keys {
                            add(alias, bound, &mut local);
                        }
                        for (_, to) in carry {
                            add(to, bound, &mut local);
                        }
                    }
                    Clause::OrderBy(specs) => {
                        for s in specs {
                            collect_free(&s.expr, bound, free);
                        }
                    }
                    Clause::SqlFor {
                        params, binds, ppk, ..
                    } => {
                        for p in params {
                            collect_free(p, bound, free);
                        }
                        if let Some(p) = ppk {
                            for k in &p.outer_keys {
                                collect_free(k, bound, free);
                            }
                        }
                        for (b, _) in binds {
                            add(b, bound, &mut local);
                        }
                    }
                }
            }
            collect_free(ret, bound, free);
            for v in local {
                bound.remove(&v);
            }
        }
        CKind::Quantified {
            var,
            source,
            satisfies,
            ..
        } => {
            collect_free(source, bound, free);
            let added = bound.insert(var.clone());
            collect_free(satisfies, bound, free);
            if added {
                bound.remove(var);
            }
        }
        CKind::Filter {
            input,
            predicate,
            ctx_var,
            ..
        } => {
            collect_free(input, bound, free);
            let added = bound.insert(ctx_var.clone());
            collect_free(predicate, bound, free);
            if added {
                bound.remove(ctx_var);
            }
        }
        CKind::Typeswitch {
            operand,
            cases,
            default,
        } => {
            collect_free(operand, bound, free);
            for (_, v, b) in cases {
                let added = bound.insert(v.clone());
                collect_free(b, bound, free);
                if added {
                    bound.remove(v);
                }
            }
            let added = bound.insert(default.0.clone());
            collect_free(&default.1, bound, free);
            if added {
                bound.remove(&default.0);
            }
        }
        _ => {
            e.for_each_child(&mut |c| collect_free(c, bound, free));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sp() -> Span {
        Span::default()
    }

    #[test]
    fn free_vars_respect_flwor_scoping() {
        // for $x in $src return ($x, $y)
        let e = CExpr::new(
            CKind::Flwor {
                clauses: vec![Clause::For {
                    var: "x".into(),
                    pos: None,
                    source: CExpr::var("src", sp()),
                }],
                ret: Box::new(CExpr::new(
                    CKind::Seq(vec![CExpr::var("x", sp()), CExpr::var("y", sp())]),
                    sp(),
                )),
            },
            sp(),
        );
        let free = e.free_vars();
        assert!(free.contains("src"));
        assert!(free.contains("y"));
        assert!(!free.contains("x"));
    }

    #[test]
    fn substitution_avoids_shadowed_bindings() {
        // for $x in $a return $x — substituting x must not touch the body
        let mut e = CExpr::new(
            CKind::Flwor {
                clauses: vec![Clause::For {
                    var: "x".into(),
                    pos: None,
                    source: CExpr::var("a", sp()),
                }],
                ret: Box::new(CExpr::var("x", sp())),
            },
            sp(),
        );
        e.substitute("x", &CExpr::constant(AtomicValue::Integer(1), sp()));
        let CKind::Flwor { ret, .. } = &e.kind else {
            panic!()
        };
        assert_eq!(
            ret.kind,
            CKind::Var {
                name: "x".into(),
                slot: NO_SLOT
            }
        );
        // but substituting a genuinely free var works
        e.substitute("a", &CExpr::constant(AtomicValue::Integer(2), sp()));
        let CKind::Flwor { clauses, .. } = &e.kind else {
            panic!()
        };
        let Clause::For { source, .. } = &clauses[0] else {
            panic!()
        };
        assert_eq!(source.kind, CKind::Const(AtomicValue::Integer(2)));
    }

    #[test]
    fn builtin_resolution() {
        use aldsp_xdm::qname::ns;
        assert_eq!(
            Builtin::resolve(Some(ns::FN), "count", 1),
            Some(Builtin::Count)
        );
        assert_eq!(Builtin::resolve(None, "count", 1), Some(Builtin::Count));
        assert_eq!(Builtin::resolve(Some(ns::FN), "count", 2), None);
        assert_eq!(
            Builtin::resolve(Some(ns::FN_BEA), "async", 1),
            Some(Builtin::Async)
        );
        assert_eq!(Builtin::resolve(None, "async", 1), None);
        assert_eq!(
            Builtin::resolve(Some(ns::FN_BEA), "fail-over", 2),
            Some(Builtin::FailOver)
        );
        assert_eq!(Builtin::resolve(None, "nonsense", 1), None);
    }

    #[test]
    fn quantifier_scoping_in_free_vars() {
        let e = CExpr::new(
            CKind::Quantified {
                every: false,
                var: "o".into(),
                source: Box::new(CExpr::var("orders", sp())),
                satisfies: Box::new(CExpr::new(
                    CKind::Seq(vec![CExpr::var("o", sp()), CExpr::var("c", sp())]),
                    sp(),
                )),
            },
            sp(),
        );
        let free = e.free_vars();
        assert!(free.contains("orders") && free.contains("c") && !free.contains("o"));
    }
}
