//! Compile-once/execute-many bytecode programs for scalar expression
//! subtrees (the paper's §3.3 "compiled plan" taken one level further).
//!
//! This pass runs **after** [`crate::frames`] so every `CKind::Var` it
//! sees carries its final frame slot, and after `assign_node_ids` so a
//! compiled subtree can be keyed by its root's `node_id`. It lowers the
//! scalar-shaped fragments of the plan — comparisons, arithmetic,
//! boolean connectives, casts, path steps, constant/var reads, strict
//! builtins, constant positional filters — into immutable [`Program`]s
//! (a flat op vector plus constant pools) stored in the cached plan and
//! shared via `Arc`. The runtime's `ExprVM` executes a `Program` with a
//! pre-sized operand stack and zero recursion.
//!
//! Coverage is deliberately partial: shapes with their own iteration or
//! construction machinery (FLWORs, quantifiers, typeswitch, element
//! constructors, user/physical calls, general filters) are *not*
//! lowered. The walker keeps evaluating those, and any compiled subtree
//! underneath them is picked up by the runtime's per-node program
//! probe, so results are byte-identical by construction and coverage
//! can grow incrementally. Each uncovered subtree root is counted in
//! [`ProgramSet::fallback_subtrees`] and surfaced in per-query stats.

use crate::ir::{Builtin, CExpr, CKind, NO_SLOT};
use aldsp_xdm::item::CompOp;
use aldsp_xdm::types::SequenceType;
use aldsp_xdm::value::{ArithOp, AtomicType, AtomicValue};
use aldsp_xdm::QName;
use std::fmt;
use std::sync::Arc;

/// One VM instruction. Operands reference the owning [`Program`]'s
/// pools by index; jump targets are absolute op indices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// Push the pooled constant as a singleton sequence.
    Const(u16),
    /// Push the frame slot's value (shared, not copied). `name` indexes
    /// the name pool and is only used for the unbound-variable error.
    Var { slot: u32, name: u16 },
    /// Pop `n` values and push their concatenation.
    Seq(u16),
    /// Pop `hi`, `lo`; push the integer range `lo to hi`.
    Range,
    /// Pop a value; push its effective boolean value.
    Ebv,
    /// Pop a value; if its EBV is false push `false` and jump, else
    /// fall through (the `and` short-circuit).
    AndShort(u32),
    /// Pop a value; if its EBV is true push `true` and jump, else fall
    /// through (the `or` short-circuit).
    OrShort(u32),
    /// Pop a value; jump when its EBV is false.
    JumpIfFalse(u32),
    /// Unconditional jump.
    Jump(u32),
    /// Pop `rhs`, `lhs`; push the comparison result.
    Compare { op: CompOp, general: bool },
    /// Pop `rhs`, `lhs`; push the arithmetic result.
    Arith(ArithOp),
    /// Pop a value; push its atomization.
    Data,
    /// Pop a value; push the matching child elements of its nodes.
    ChildStep(Option<u16>),
    /// Pop a value; push the matching attributes of its nodes.
    AttrStep(Option<u16>),
    /// Pop a value; push its descendant elements, document order.
    DescendantStep,
    /// Pop a value; push `cast as` on its atomization.
    Cast { target: AtomicType, optional: bool },
    /// Pop a value; push whether the cast would succeed.
    Castable(AtomicType),
    /// Pop a value; push whether it matches the pooled sequence type.
    InstanceOf(u16),
    /// Pop a value; push it back if it matches the pooled sequence
    /// type, else raise the type-match error.
    TypeMatch(u16),
    /// Pop `argc` arguments; push the builtin's result.
    Call { op: Builtin, argc: u8 },
    /// Pop a value; push its `n`th item (1-based), or empty. The
    /// lowering of a constant positional filter.
    PickConst(i64),
}

/// An immutable compiled expression: flat ops plus the pools they
/// reference, shared by every execution of the cached plan.
#[derive(Debug, Default)]
pub struct Program {
    pub ops: Vec<Op>,
    pub consts: Vec<AtomicValue>,
    pub names: Vec<String>,
    pub qnames: Vec<QName>,
    pub types: Vec<SequenceType>,
    /// Worst-case operand-stack depth, so the VM reserves once and
    /// never reallocates mid-run.
    pub max_stack: u32,
}

impl Program {
    /// Render one op for EXPLAIN, resolving pool references.
    pub fn render_op(&self, op: &Op) -> String {
        match op {
            Op::Const(i) => format!("const {}", self.consts[*i as usize].string_value()),
            Op::Var { slot, name } => {
                format!("var slot={} (${})", slot, self.names[*name as usize])
            }
            Op::Seq(n) => format!("seq {n}"),
            Op::Range => "range".into(),
            Op::Ebv => "ebv".into(),
            Op::AndShort(t) => format!("and-short -> {t}"),
            Op::OrShort(t) => format!("or-short -> {t}"),
            Op::JumpIfFalse(t) => format!("jump-if-false -> {t}"),
            Op::Jump(t) => format!("jump -> {t}"),
            Op::Compare { op, general } => format!(
                "compare {} ({})",
                op.keyword(),
                if *general { "general" } else { "value" }
            ),
            Op::Arith(op) => format!("arith {op:?}"),
            Op::Data => "data".into(),
            Op::ChildStep(None) => "child::*".into(),
            Op::ChildStep(Some(i)) => format!("child::{}", self.qnames[*i as usize]),
            Op::AttrStep(None) => "attribute::*".into(),
            Op::AttrStep(Some(i)) => format!("attribute::{}", self.qnames[*i as usize]),
            Op::DescendantStep => "descendant::*".into(),
            Op::Cast { target, optional } => {
                format!("cast as {target}{}", if *optional { "?" } else { "" })
            }
            Op::Castable(t) => format!("castable as {t}"),
            Op::InstanceOf(i) => format!("instance of {}", self.types[*i as usize]),
            Op::TypeMatch(i) => format!("type-match {}", self.types[*i as usize]),
            Op::Call { op, argc } => format!("call {op:?}/{argc}"),
            Op::PickConst(n) => format!("pick {n}"),
        }
    }
}

/// The per-plan table of compiled programs, indexed by the root
/// `node_id` of each covered subtree (ids are pre-order from 1, so
/// index 0 is never used).
#[derive(Debug, Default)]
pub struct ProgramSet {
    progs: Vec<Option<Arc<Program>>>,
    /// Number of compiled subtrees.
    pub compiled: u32,
    /// Number of subtree roots the lowering declined — a static plan
    /// property, recorded once per execution in per-query stats.
    pub fallback_subtrees: u32,
}

impl ProgramSet {
    /// The program whose covered subtree is rooted at `node_id`, if any.
    #[inline]
    pub fn lookup(&self, node_id: u32) -> Option<&Arc<Program>> {
        self.progs.get(node_id as usize)?.as_ref()
    }

    /// True when the plan compiled no programs (lowering disabled or
    /// nothing coverable).
    pub fn is_empty(&self) -> bool {
        self.compiled == 0
    }

    /// Iterate `(node_id, program)` pairs in plan order (for EXPLAIN).
    pub fn iter(&self) -> impl Iterator<Item = (u32, &Arc<Program>)> {
        self.progs
            .iter()
            .enumerate()
            .filter_map(|(id, p)| p.as_ref().map(|p| (id as u32, p)))
    }
}

impl fmt::Display for ProgramSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "programs={} fallback-subtrees={}",
            self.compiled, self.fallback_subtrees
        )
    }
}

/// Lower every coverable subtree of the finished plan. `node_count` is
/// the value returned by `assign_node_ids`.
pub fn lower_plan(plan: &CExpr, node_count: u32) -> ProgramSet {
    let mut set = ProgramSet {
        progs: vec![None; node_count as usize + 1],
        compiled: 0,
        fallback_subtrees: 0,
    };
    attempt(plan, &mut set);
    set
}

/// Try to compile the subtree rooted at `e`; on failure, count the
/// fallback and recurse so interior scalar fragments still compile.
fn attempt(e: &CExpr, set: &mut ProgramSet) {
    // A bare constant or variable read is already a single non-recursive
    // lookup in the walker (`eval_operand`); a program would only add
    // dispatch. Not compiled, and not a fallback either.
    if matches!(e.kind, CKind::Const(_) | CKind::Var { .. }) {
        return;
    }
    if let Some(prog) = try_lower(e) {
        set.progs[e.node_id as usize] = Some(Arc::new(prog));
        set.compiled += 1;
        return; // the whole subtree is covered; nothing nests deeper
    }
    set.fallback_subtrees += 1;
    e.for_each_child(&mut |c| attempt(c, set));
}

/// Compile one subtree, or `None` when it contains an uncovered shape
/// (or overflows a u16 pool — never seen in practice).
fn try_lower(e: &CExpr) -> Option<Program> {
    let mut b = Builder::default();
    b.lower(e)?;
    debug_assert_eq!(b.depth, 1, "a program must leave exactly one value");
    Some(b.prog)
}

#[derive(Default)]
struct Builder {
    prog: Program,
    /// Simulated operand-stack depth at the current emission point.
    depth: u32,
}

impl Builder {
    /// Append `op` whose net stack effect is `delta`, returning its
    /// index (for jump patching).
    fn emit(&mut self, op: Op, delta: i32) -> usize {
        self.prog.ops.push(op);
        // Ops that pop-then-push never exceed the pre-op depth, so the
        // peak only moves on a net push.
        self.depth = self.depth.checked_add_signed(delta).expect("stack sim");
        self.prog.max_stack = self.prog.max_stack.max(self.depth);
        self.prog.ops.len() - 1
    }

    /// Point the jump at `at` to the current end of the program.
    fn patch(&mut self, at: usize) {
        let target = self.prog.ops.len() as u32;
        match &mut self.prog.ops[at] {
            Op::AndShort(t) | Op::OrShort(t) | Op::JumpIfFalse(t) | Op::Jump(t) => *t = target,
            other => unreachable!("patching non-jump {other:?}"),
        }
    }

    fn const_idx(&mut self, v: &AtomicValue) -> Option<u16> {
        pool_idx(&mut self.prog.consts, v)
    }

    fn name_idx(&mut self, n: &str) -> Option<u16> {
        match self.prog.names.iter().position(|x| x == n) {
            Some(i) => u16::try_from(i).ok(),
            None => {
                self.prog.names.push(n.to_string());
                u16::try_from(self.prog.names.len() - 1).ok()
            }
        }
    }

    fn qname_idx(&mut self, q: &QName) -> Option<u16> {
        pool_idx(&mut self.prog.qnames, q)
    }

    fn type_idx(&mut self, t: &SequenceType) -> Option<u16> {
        pool_idx(&mut self.prog.types, t)
    }

    /// Emit code that leaves exactly `e`'s value on the stack, or
    /// `None` when `e` contains an uncovered shape.
    fn lower(&mut self, e: &CExpr) -> Option<()> {
        match &e.kind {
            CKind::Const(v) => {
                let i = self.const_idx(v)?;
                self.emit(Op::Const(i), 1);
            }
            CKind::Var { name, slot } => {
                if *slot == NO_SLOT {
                    return None; // unframed (external/global) variable
                }
                let n = self.name_idx(name)?;
                self.emit(
                    Op::Var {
                        slot: *slot,
                        name: n,
                    },
                    1,
                );
            }
            CKind::Seq(parts) => {
                let n = u16::try_from(parts.len()).ok()?;
                for p in parts {
                    self.lower(p)?;
                }
                self.emit(Op::Seq(n), 1 - parts.len() as i32);
            }
            CKind::Range(lo, hi) => {
                self.lower(lo)?;
                self.lower(hi)?;
                self.emit(Op::Range, -1);
            }
            CKind::If { cond, then, els } => {
                self.lower(cond)?;
                let jf = self.emit(Op::JumpIfFalse(0), -1);
                self.lower(then)?;
                let jend = self.emit(Op::Jump(0), 0);
                self.depth -= 1; // the else arm re-pushes on its own path
                self.patch(jf);
                self.lower(els)?;
                self.patch(jend);
            }
            CKind::And(a, b) => {
                self.lower(a)?;
                // On the jump path the short-circuit pushes `false`, so
                // the peak depth already covers it.
                let js = self.emit(Op::AndShort(0), -1);
                self.lower(b)?;
                self.emit(Op::Ebv, 0);
                self.patch(js);
            }
            CKind::Or(a, b) => {
                self.lower(a)?;
                let js = self.emit(Op::OrShort(0), -1);
                self.lower(b)?;
                self.emit(Op::Ebv, 0);
                self.patch(js);
            }
            CKind::Compare {
                op,
                general,
                lhs,
                rhs,
            } => {
                self.lower(lhs)?;
                self.lower(rhs)?;
                self.emit(
                    Op::Compare {
                        op: *op,
                        general: *general,
                    },
                    -1,
                );
            }
            CKind::Arith { op, lhs, rhs } => {
                self.lower(lhs)?;
                self.lower(rhs)?;
                self.emit(Op::Arith(*op), -1);
            }
            CKind::Data(input) => {
                self.lower(input)?;
                self.emit(Op::Data, 0);
            }
            CKind::ChildStep { input, name } => {
                let q = match name {
                    Some(q) => Some(self.qname_idx(q)?),
                    None => None,
                };
                self.lower(input)?;
                self.emit(Op::ChildStep(q), 0);
            }
            CKind::AttrStep { input, name } => {
                let q = match name {
                    Some(q) => Some(self.qname_idx(q)?),
                    None => None,
                };
                self.lower(input)?;
                self.emit(Op::AttrStep(q), 0);
            }
            CKind::DescendantStep { input } => {
                self.lower(input)?;
                self.emit(Op::DescendantStep, 0);
            }
            CKind::Filter {
                input,
                predicate,
                positional,
                ..
            } => {
                // Only the constant positional form `e[3]` compiles; a
                // general predicate re-evaluates per item with a bound
                // context variable, which is the walker's job (the
                // predicate subtree is attempted separately).
                if !*positional {
                    return None;
                }
                let CKind::Const(c) = &predicate.kind else {
                    return None;
                };
                let Ok(AtomicValue::Integer(n)) = c.cast_to(AtomicType::Integer) else {
                    return None;
                };
                self.lower(input)?;
                self.emit(Op::PickConst(n), 0);
            }
            CKind::Builtin { op, args } => {
                // These three have their own evaluation regime (threads,
                // laziness, error capture) — walker only.
                if matches!(op, Builtin::Async | Builtin::Timeout | Builtin::FailOver) {
                    return None;
                }
                let argc = u8::try_from(args.len()).ok()?;
                for a in args {
                    self.lower(a)?;
                }
                self.emit(Op::Call { op: *op, argc }, 1 - args.len() as i32);
            }
            CKind::Cast {
                input,
                target,
                optional,
            } => {
                self.lower(input)?;
                self.emit(
                    Op::Cast {
                        target: *target,
                        optional: *optional,
                    },
                    0,
                );
            }
            CKind::Castable { input, target } => {
                self.lower(input)?;
                self.emit(Op::Castable(*target), 0);
            }
            CKind::InstanceOf { input, ty } => {
                let t = self.type_idx(ty)?;
                self.lower(input)?;
                self.emit(Op::InstanceOf(t), 0);
            }
            CKind::TypeMatch { input, ty } => {
                let t = self.type_idx(ty)?;
                self.lower(input)?;
                self.emit(Op::TypeMatch(t), 0);
            }
            // Shapes with their own iteration/construction machinery
            // stay on the walker.
            CKind::Flwor { .. }
            | CKind::Quantified { .. }
            | CKind::Typeswitch { .. }
            | CKind::ElementCtor { .. }
            | CKind::PhysicalCall { .. }
            | CKind::UserCall { .. }
            | CKind::Error(_) => return None,
        }
        Some(())
    }
}

fn pool_idx<T: Clone + PartialEq>(pool: &mut Vec<T>, v: &T) -> Option<u16> {
    match pool.iter().position(|x| x == v) {
        Some(i) => u16::try_from(i).ok(),
        None => {
            pool.push(v.clone());
            u16::try_from(pool.len() - 1).ok()
        }
    }
}
