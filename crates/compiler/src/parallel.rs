//! Plan-time parallel-eligibility analysis for morsel-driven execution.
//!
//! The runtime can split an uncorrelated table scan into fixed-size row
//! morsels and evaluate the *partitionable* clause prefix — per-tuple
//! `where` predicates, `let` bindings, grouping-key extraction, sort-key
//! extraction — on a shared worker pool, then merge deterministically so
//! the result is byte-identical to single-threaded execution. Whether a
//! FLWOR has such a prefix is a static property of the plan, so it is
//! decided here, once, at compile time: the runtime consults the
//! [`ParallelPlan`] by FLWOR `node_id` instead of re-deriving the shape
//! per execution, and EXPLAIN renders the decision as a `-- parallel:`
//! header so reviewers can see which operators may fan out.
//!
//! A FLWOR is marked eligible when its clause list starts with
//!
//! ```text
//! SqlFor(uncorrelated, no PP-k) (Where | Let)* (GroupBy(sorted) | OrderBy)?
//! ```
//!
//! The scan must be uncorrelated (no parameters, no PP-k spec): its
//! result set is then a function of nothing but the source, so the rows
//! can be partitioned freely. `Where`/`Let` are per-tuple maps — order
//! within a morsel is preserved and morsels are merged in input order.
//! A trailing *sorted* group-by or order-by is included in the region
//! because both are partitionable with a deterministic merge; a
//! *streaming* (pre-clustered) group-by is not — it is already
//! constant-memory and order-driven, so it consumes the merged stream
//! sequentially. Any remaining clauses run downstream of the merge,
//! unchanged.

use crate::ir::{CExpr, CKind, Clause};
use std::fmt;

/// How the parallel region ends, which decides the merge strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParTail {
    /// Pure per-tuple map (`where`/`let` only): morsel outputs are
    /// concatenated in input order.
    Map,
    /// A sorted group-by: each partition groups independently into a
    /// key-sorted group list; partitions merge pairwise by key, equal
    /// keys combining accumulators in partition (= input) order.
    Group,
    /// An order-by: each partition sorts independently; partitions merge
    /// pairwise with ties resolved toward the earlier partition, which
    /// reproduces a global stable sort.
    Sort,
}

impl fmt::Display for ParTail {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ParTail::Map => "map",
            ParTail::Group => "group",
            ParTail::Sort => "sort",
        })
    }
}

/// One FLWOR's parallel region: how many leading clauses it covers
/// (scan + maps + tail) and how it ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelMark {
    /// Number of leading clauses inside the region, *including* the
    /// scan and the tail clause (when the tail is not [`ParTail::Map`]).
    /// Clauses at `clauses..` run sequentially downstream of the merge.
    pub clauses: usize,
    /// The merge strategy the region's last operator requires.
    pub tail: ParTail,
}

/// Parallel-eligibility marks for every FLWOR in a plan, keyed by the
/// FLWOR's `node_id` (assigned by [`CExpr::assign_node_ids`], so the
/// analysis must run after that pass).
#[derive(Debug, Default)]
pub struct ParallelPlan {
    /// `(flwor node_id, mark)`, sorted by node id (pre-order ids are
    /// visited in order, so the walk produces them sorted).
    marks: Vec<(u32, ParallelMark)>,
}

impl ParallelPlan {
    /// The mark for a FLWOR node, if it was found eligible.
    pub fn mark(&self, flwor_id: u32) -> Option<ParallelMark> {
        self.marks
            .binary_search_by_key(&flwor_id, |&(id, _)| id)
            .ok()
            .map(|i| self.marks[i].1)
    }

    /// No FLWOR in the plan is eligible.
    pub fn is_empty(&self) -> bool {
        self.marks.is_empty()
    }

    /// All marks, in node-id order (for EXPLAIN).
    pub fn iter(&self) -> impl Iterator<Item = (u32, ParallelMark)> + '_ {
        self.marks.iter().copied()
    }
}

impl fmt::Display for ParallelPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.marks.is_empty() {
            return f.write_str("none");
        }
        for (i, (id, m)) in self.marks.iter().enumerate() {
            if i > 0 {
                f.write_str("; ")?;
            }
            write!(f, "#{id} morsels={} tail={}", m.clauses, m.tail)?;
        }
        Ok(())
    }
}

/// Analyze a plan (with node ids assigned) and mark every FLWOR whose
/// leading clauses form a partitionable region.
pub fn analyze(plan: &CExpr) -> ParallelPlan {
    let mut marks = Vec::new();
    plan.walk(&mut |e| {
        if let CKind::Flwor { clauses, .. } = &e.kind {
            if let Some(mark) = analyze_clauses(clauses) {
                marks.push((e.node_id, mark));
            }
        }
    });
    marks.sort_by_key(|&(id, _)| id);
    ParallelPlan { marks }
}

fn analyze_clauses(clauses: &[Clause]) -> Option<ParallelMark> {
    match clauses.first()? {
        Clause::SqlFor { params, ppk, .. } if params.is_empty() && ppk.is_none() => {}
        _ => return None,
    }
    let mut i = 1;
    while let Some(Clause::Where(_) | Clause::Let { .. }) = clauses.get(i) {
        i += 1;
    }
    let tail = match clauses.get(i) {
        Some(Clause::GroupBy {
            pre_clustered: false,
            ..
        }) => {
            i += 1;
            ParTail::Group
        }
        Some(Clause::OrderBy(_)) => {
            i += 1;
            ParTail::Sort
        }
        _ => ParTail::Map,
    };
    // a bare scan with nothing to evaluate per tuple gains nothing from
    // fan-out; require at least one partitionable operator after it
    if i < 2 {
        return None;
    }
    Some(ParallelMark { clauses: i, tail })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::compile;

    #[test]
    fn grouped_scan_is_marked_with_group_tail() {
        let q = compile(
            r#"for $o in c:ORDER()
               let $oid := $o/OID
               group $oid as $ids by fn:substring($o/CID, 1, 2) as $k
               return <G>{ $k, fn:count($ids) }</G>"#,
        );
        let marks: Vec<_> = q.parallel.iter().collect();
        assert_eq!(marks.len(), 1, "plan: {:#?}", q.plan);
        let (_, mark) = marks[0];
        assert_eq!(mark.tail, ParTail::Group);
        assert!(mark.clauses >= 2, "{mark:?}");
    }

    #[test]
    fn correlated_scan_is_not_marked() {
        // the cross-source dependent join: the inner scan is
        // parameterized per outer tuple (PP-k), so neither FLWOR level
        // has a partitionable uncorrelated prefix beyond the bare scan
        let q = compile(
            r#"for $c in c:CUSTOMER()
               return <P>{ $c/CID, <CARDS>{
                 for $k in cc:CREDIT_CARD() where $k/CID eq $c/CID return $k/CCN
               }</CARDS> }</P>"#,
        );
        for (id, mark) in q.parallel.iter() {
            // any marked region must start at an uncorrelated scan;
            // the PP-k join itself must never be inside one
            assert_eq!(mark.tail, ParTail::Map, "#{id}: {mark:?}");
        }
    }

    #[test]
    fn streaming_group_stays_sequential() {
        // same-source nested for compiles to a pre-clustered group over
        // one pushed outer-join scan: the group consumes the merged
        // stream, it is not part of the region
        let q = compile(
            r#"for $c in c:CUSTOMER()
               return <CUST>{ $c/CID, <ORDERS>{
                 for $o in c:ORDER() where $c/CID eq $o/CID return $o/OID
               }</ORDERS> }</CUST>"#,
        );
        for (_, mark) in q.parallel.iter() {
            assert_ne!(mark.tail, ParTail::Group, "streaming group marked");
        }
    }

    #[test]
    fn display_renders_marks() {
        let q = compile(
            r#"for $o in c:ORDER()
               let $oid := $o/OID
               group $oid as $ids by fn:substring($o/CID, 1, 2) as $k
               return <G>{ $k }</G>"#,
        );
        let s = q.parallel.to_string();
        assert!(s.contains("tail=group"), "{s}");
        assert!(ParallelPlan::default().to_string() == "none");
    }
}
