//! The rule-driven optimizer (§4.2).
//!
//! ALDSP's optimizer (and its lineage analyzer, §6) are driven by a
//! rewrite-rule engine over the expression tree. The rules here are the
//! ones the paper calls out:
//!
//! * **View unfolding** — user-function inlining ([`inline_user_calls`]),
//!   the XQuery analogue of relational view unfolding; recursion-safe.
//! * **Source-access elimination** — constructor/navigation elimination:
//!   `fn:data(<E>{x}</E>/LAST_NAME)`-style patterns collapse so that
//!   data feeding unused constructor parts is never fetched (§4.2's
//!   `$name` example).
//! * **Predicate normalization** — conjunctive `where` splitting and
//!   pushing each predicate to the earliest clause position its
//!   variables allow (preparing SQL pushdown, §4.3).
//! * **Nested-FLWOR flattening** and `if/()` → `where` conversion, which
//!   together let predicates travel through unfolded views.
//! * **Inverse functions** (§4.4) — `f($x) op $y` rewrites to
//!   `$x op f⁻¹($y)` for registered inverses, unblocking pushdown and
//!   updates through value transformations.
//! * **Dead-let elimination** — unused (pure) lets are dropped, so
//!   unused source accesses disappear entirely.

use crate::context::Context;
use crate::ir::{CExpr, CKind, Clause};
use aldsp_xdm::types::{ItemType, SequenceType};
use std::collections::HashSet;

/// Run the optimizer to fixpoint (bounded).
pub fn optimize(ctx: &mut Context<'_>, e: &mut CExpr) {
    inline_user_calls(ctx, e, &mut Vec::new(), 0);
    for _ in 0..20 {
        let mut changed = false;
        rewrite_bottom_up(e, &mut |node| {
            let c = simplify_node(ctx, node);
            changed |= c;
            c
        });
        if !changed {
            break;
        }
    }
}

/// Apply `f` to every node, children first, so local rewrites see
/// already-simplified inputs.
fn rewrite_bottom_up(e: &mut CExpr, f: &mut dyn FnMut(&mut CExpr) -> bool) {
    e.for_each_child_mut(&mut |c| rewrite_bottom_up(c, f));
    // re-run on this node until it stops changing locally
    while f(e) {
        e.for_each_child_mut(&mut |c| rewrite_bottom_up(c, f));
    }
}

/// View unfolding: inline user-defined function calls, renaming
/// parameters fresh and binding arguments with `let`s. Recursive calls
/// are left in place (and reported — ALDSP's data-service functions are
/// non-recursive).
pub fn inline_user_calls(
    ctx: &mut Context<'_>,
    e: &mut CExpr,
    stack: &mut Vec<aldsp_xdm::QName>,
    depth: usize,
) {
    e.for_each_child_mut(&mut |c| inline_user_calls(ctx, c, stack, depth));
    if let CKind::UserCall { name, args } = &e.kind {
        if depth > 64 {
            ctx.diag(e.span, format!("inlining depth exceeded at {name}"));
            return;
        }
        if stack.contains(name) {
            ctx.diag(
                e.span,
                format!("recursive data-service function {name} cannot be unfolded"),
            );
            return;
        }
        let Some(f) = ctx.functions.get(name) else {
            return;
        };
        let Some(body) = f.body.clone() else {
            // body in error (§4.1) or external-without-binding: leave the
            // call; the signature already type-checked the use site
            return;
        };
        let params = f.params.clone();
        let fname = name.clone();
        let args = args.clone();
        // rename the body's bound variables fresh? Bodies were translated
        // with globally-unique names, but inlining the same function
        // twice would duplicate them — so alpha-rename parameters and
        // rely on let-binding for arguments.
        let mut inlined = body;
        let mut clauses = Vec::with_capacity(params.len());
        for ((pvar, _pty), arg) in params.iter().zip(args) {
            let fresh = ctx.fresh(pvar);
            inlined.substitute(pvar, &CExpr::var(&fresh, inlined.span));
            clauses.push(Clause::Let {
                var: fresh,
                value: arg,
            });
        }
        let mut result = if clauses.is_empty() {
            inlined
        } else {
            CExpr::new(
                CKind::Flwor {
                    clauses,
                    ret: Box::new(inlined),
                },
                e.span,
            )
        };
        // rename *all* bindings introduced by the body so that a second
        // inlining of the same function cannot collide
        freshen_bindings(ctx, &mut result);
        stack.push(fname);
        inline_user_calls(ctx, &mut result, stack, depth + 1);
        stack.pop();
        *e = result;
    }
}

/// Alpha-rename every binding introduced inside `e` to a fresh name.
fn freshen_bindings(ctx: &mut Context<'_>, e: &mut CExpr) {
    match &mut e.kind {
        CKind::Flwor { clauses, ret } => {
            let mut renames: Vec<(String, String)> = Vec::new();
            let apply = |s: &mut CExpr, renames: &[(String, String)], ctx: &mut Context<'_>| {
                let mut s2 = std::mem::replace(s, CExpr::empty(Default::default()));
                for (old, new) in renames {
                    s2.substitute(old, &CExpr::var(new, s2.span));
                }
                freshen_bindings(ctx, &mut s2);
                *s = s2;
            };
            for c in clauses.iter_mut() {
                match c {
                    Clause::For { var, pos, source } => {
                        apply(source, &renames, ctx);
                        let nv = ctx.fresh(var.split("__").next().unwrap_or(var));
                        renames.push((var.clone(), nv.clone()));
                        *var = nv;
                        if let Some(p) = pos {
                            let np = ctx.fresh(p.split("__").next().unwrap_or(p));
                            renames.push((p.clone(), np.clone()));
                            *p = np;
                        }
                    }
                    Clause::Let { var, value } => {
                        apply(value, &renames, ctx);
                        let nv = ctx.fresh(var.split("__").next().unwrap_or(var));
                        renames.push((var.clone(), nv.clone()));
                        *var = nv;
                    }
                    Clause::Where(w) => apply(w, &renames, ctx),
                    Clause::GroupBy {
                        bindings,
                        keys,
                        carry,
                        ..
                    } => {
                        for (k, alias) in keys.iter_mut() {
                            apply(k, &renames, ctx);
                            let na = ctx.fresh(alias.split("__").next().unwrap_or(alias));
                            renames.push((alias.clone(), na.clone()));
                            *alias = na;
                        }
                        for (from, to) in bindings.iter_mut().chain(carry.iter_mut()) {
                            if let Some((_, n)) = renames.iter().find(|(o, _)| o == from) {
                                *from = n.clone();
                            }
                            let nt = ctx.fresh(to.split("__").next().unwrap_or(to));
                            renames.push((to.clone(), nt.clone()));
                            *to = nt;
                        }
                    }
                    Clause::OrderBy(specs) => {
                        for s in specs.iter_mut() {
                            apply(&mut s.expr, &renames, ctx);
                        }
                    }
                    Clause::SqlFor {
                        params, ppk, binds, ..
                    } => {
                        for p in params.iter_mut() {
                            apply(p, &renames, ctx);
                        }
                        if let Some(pk) = ppk {
                            for k in pk.outer_keys.iter_mut() {
                                apply(k, &renames, ctx);
                            }
                        }
                        for (b, _) in binds.iter_mut() {
                            let nb = ctx.fresh(b.split("__").next().unwrap_or(b));
                            renames.push((b.clone(), nb.clone()));
                            *b = nb;
                        }
                    }
                }
            }
            apply(ret, &renames, ctx);
        }
        CKind::Quantified {
            var,
            source,
            satisfies,
            ..
        } => {
            freshen_bindings(ctx, source);
            let nv = ctx.fresh(var.split("__").next().unwrap_or(var));
            satisfies.substitute(var, &CExpr::var(&nv, satisfies.span));
            *var = nv;
            freshen_bindings(ctx, satisfies);
        }
        CKind::Filter {
            input,
            predicate,
            ctx_var,
            ..
        } => {
            freshen_bindings(ctx, input);
            let nv = ctx.fresh("ctx");
            predicate.substitute(ctx_var, &CExpr::var(&nv, predicate.span));
            *ctx_var = nv;
            freshen_bindings(ctx, predicate);
        }
        CKind::Typeswitch {
            operand,
            cases,
            default,
        } => {
            freshen_bindings(ctx, operand);
            for (_, v, b) in cases.iter_mut() {
                let nv = ctx.fresh("tsw");
                b.substitute(v, &CExpr::var(&nv, b.span));
                *v = nv;
                freshen_bindings(ctx, b);
            }
            let nv = ctx.fresh("tsw");
            default
                .1
                .substitute(&default.0, &CExpr::var(&nv, default.1.span));
            default.0 = nv;
            freshen_bindings(ctx, &mut default.1);
        }
        _ => e.for_each_child_mut(&mut |c| freshen_bindings(ctx, c)),
    }
}

/// One local simplification step; returns true if the node changed.
fn simplify_node(ctx: &mut Context<'_>, e: &mut CExpr) -> bool {
    let span = e.span;
    match &mut e.kind {
        // data(<E>{x}</E>) with simple content → atomized content
        CKind::Data(inner) => {
            // data(<E>{x}</E>) and data(<E?>{x}</E>) both equal data(x)
            // for atomic content: the conditional form omits the element
            // exactly when x is empty, and data of nothing is nothing
            if let CKind::ElementCtor {
                attributes,
                content,
                ..
            } = &inner.kind
            {
                if attributes.is_empty() && is_atomic_content(content) {
                    let c = (**content).clone();
                    *e = CExpr::new(CKind::Data(Box::new(unwrap_seq1(c))), span);
                    return true;
                }
            }
            // data(data(x)) → data(x)
            if let CKind::Data(inner2) = &inner.kind {
                let i = (**inner2).clone();
                *e = CExpr::new(CKind::Data(Box::new(i)), span);
                return false; // structurally same shape; avoid loop
            }
            // data(FLWOR) → FLWOR wrapping data over the return
            if let CKind::Flwor { clauses, ret } = &inner.kind {
                if flwor_is_mappable(clauses) {
                    let new_ret = CExpr::new(CKind::Data(Box::new((**ret).clone())), ret.span);
                    *e = CExpr::new(
                        CKind::Flwor {
                            clauses: clauses.clone(),
                            ret: Box::new(new_ret),
                        },
                        span,
                    );
                    return true;
                }
            }
            false
        }
        // <E>…</E>/child — constructor/navigation elimination (§4.2)
        CKind::ChildStep {
            input,
            name: Some(name),
        } => {
            match &input.kind {
                CKind::ElementCtor { content, .. } => {
                    if let Some(projected) = project_content(content, name) {
                        *e = projected;
                        return true;
                    }
                    false
                }
                // ($x/A)/B etc. left alone; FLWOR maps through
                CKind::Flwor { clauses, ret } if flwor_is_mappable(clauses) => {
                    let new_ret = CExpr::new(
                        CKind::ChildStep {
                            input: Box::new((**ret).clone()),
                            name: Some(name.clone()),
                        },
                        ret.span,
                    );
                    *e = CExpr::new(
                        CKind::Flwor {
                            clauses: clauses.clone(),
                            ret: Box::new(new_ret),
                        },
                        span,
                    );
                    true
                }
                CKind::If { cond, then, els } => {
                    // step distributes over if
                    let mk = |b: &CExpr| {
                        CExpr::new(
                            CKind::ChildStep {
                                input: Box::new(b.clone()),
                                name: Some(name.clone()),
                            },
                            b.span,
                        )
                    };
                    *e = CExpr::new(
                        CKind::If {
                            cond: cond.clone(),
                            then: Box::new(mk(then)),
                            els: Box::new(mk(els)),
                        },
                        span,
                    );
                    true
                }
                CKind::Seq(parts) if !parts.is_empty() => {
                    let mapped: Vec<CExpr> = parts
                        .iter()
                        .map(|p| {
                            CExpr::new(
                                CKind::ChildStep {
                                    input: Box::new(p.clone()),
                                    name: Some(name.clone()),
                                },
                                p.span,
                            )
                        })
                        .collect();
                    *e = CExpr::new(CKind::Seq(mapped), span);
                    true
                }
                _ => false,
            }
        }
        // filter over FLWOR maps into the return (non-positional)
        CKind::Filter {
            input,
            predicate,
            ctx_var,
            positional: false,
        } => {
            match &input.kind {
                CKind::Flwor { clauses, ret } if flwor_is_mappable(clauses) => {
                    let new_ret = CExpr::new(
                        CKind::Filter {
                            input: Box::new((**ret).clone()),
                            predicate: predicate.clone(),
                            ctx_var: ctx_var.clone(),
                            positional: false,
                        },
                        ret.span,
                    );
                    *e = CExpr::new(
                        CKind::Flwor {
                            clauses: clauses.clone(),
                            ret: Box::new(new_ret),
                        },
                        span,
                    );
                    true
                }
                // filter over a many-valued source normalizes to FLWOR
                // form so pushdown sees one uniform shape:
                //   e[p]  ≡  for $v in e where p($v) return $v
                CKind::PhysicalCall { .. } | CKind::ChildStep { .. } | CKind::Var { .. }
                    if !singleton_like(&input.ty) =>
                {
                    let iv = (**input).clone();
                    let pred = (**predicate).clone();
                    let cv = ctx_var.clone();
                    *e = CExpr::new(
                        CKind::Flwor {
                            clauses: vec![
                                Clause::For {
                                    var: cv.clone(),
                                    pos: None,
                                    source: iv,
                                },
                                Clause::Where(pred),
                            ],
                            ret: Box::new(CExpr::var(&cv, span)),
                        },
                        span,
                    );
                    true
                }
                // filter over a singleton: let + if (unlocks predicate
                // motion into where clauses)
                _ if singleton_like(&input.ty) => {
                    let iv = (**input).clone();
                    let pred = (**predicate).clone();
                    let cv = ctx_var.clone();
                    *e = CExpr::new(
                        CKind::Flwor {
                            clauses: vec![Clause::Let {
                                var: cv.clone(),
                                value: iv,
                            }],
                            ret: Box::new(CExpr::new(
                                CKind::If {
                                    cond: Box::new(pred),
                                    then: Box::new(CExpr::var(&cv, span)),
                                    els: Box::new(CExpr::empty(span)),
                                },
                                span,
                            )),
                        },
                        span,
                    );
                    true
                }
                _ => false,
            }
        }
        CKind::Flwor { .. } => {
            let mut taken = std::mem::replace(e, CExpr::empty(span));
            let changed;
            if let CKind::Flwor {
                ref mut clauses,
                ref mut ret,
            } = taken.kind
            {
                let mut replacement: Option<CExpr> = None;
                changed = simplify_flwor(ctx, clauses, ret, span, &mut replacement);
                *e = match replacement {
                    Some(r) => r,
                    None => taken,
                };
            } else {
                unreachable!("matched Flwor above");
            }
            changed
        }
        // if with constant condition
        CKind::If { cond, then, els } => {
            if let CKind::Const(aldsp_xdm::value::AtomicValue::Boolean(b)) = &cond.kind {
                let chosen = if *b {
                    (**then).clone()
                } else {
                    (**els).clone()
                };
                *e = chosen;
                return true;
            }
            false
        }
        // inverse-function rewrite (§4.4): f($x) op $y → $x op f⁻¹($y)
        CKind::Compare {
            op,
            general,
            lhs,
            rhs,
        } => {
            let op = *op;
            let general = *general;
            if let Some((inner, inv, other, swapped)) = match_inverse(ctx, lhs, rhs) {
                let new_lhs = if swapped {
                    other.clone()
                } else {
                    inner.clone()
                };
                let new_rhs_core = if swapped { inner } else { other };
                let inv_call = CExpr::new(
                    CKind::PhysicalCall {
                        name: inv,
                        args: vec![new_rhs_core],
                    },
                    span,
                );
                let (l, r) = if swapped {
                    (inv_call, new_lhs)
                } else {
                    (new_lhs, inv_call)
                };
                *e = CExpr::new(
                    CKind::Compare {
                        op,
                        general,
                        lhs: Box::new(l),
                        rhs: Box::new(r),
                    },
                    span,
                );
                return true;
            }
            false
        }
        _ => false,
    }
}

/// Match `f(x) op y` (either side) where `f` has a registered inverse.
/// Returns `(x, f⁻¹ name, y, swapped)`.
fn match_inverse(
    ctx: &Context<'_>,
    lhs: &CExpr,
    rhs: &CExpr,
) -> Option<(CExpr, aldsp_xdm::QName, CExpr, bool)> {
    let extract = |side: &CExpr| -> Option<(aldsp_xdm::QName, CExpr)> {
        let core = match &side.kind {
            CKind::Data(inner) => inner,
            _ => return extract_call(side),
        };
        extract_call(core)
    };
    fn extract_call(e: &CExpr) -> Option<(aldsp_xdm::QName, CExpr)> {
        match &e.kind {
            CKind::PhysicalCall { name, args } | CKind::UserCall { name, args }
                if args.len() == 1 =>
            {
                Some((name.clone(), args[0].clone()))
            }
            _ => None,
        }
    }
    if let Some((f, x)) = extract(lhs) {
        if let Some(inv) = ctx.inverses.inverse_of(&f) {
            return Some((x, inv.clone(), rhs.clone(), false));
        }
    }
    if let Some((f, x)) = extract(rhs) {
        if let Some(inv) = ctx.inverses.inverse_of(&f) {
            return Some((x, inv.clone(), lhs.clone(), true));
        }
    }
    None
}

fn simplify_flwor(
    _ctx: &mut Context<'_>,
    clauses: &mut Vec<Clause>,
    ret: &mut Box<CExpr>,
    span: crate::ir::Span,
    replacement: &mut Option<CExpr>,
) -> bool {
    let mut changed = false;
    // 1. split conjunctive where clauses
    let mut i = 0;
    while i < clauses.len() {
        if let Clause::Where(w) = &clauses[i] {
            if let CKind::And(a, b) = &w.kind {
                let (a, b) = ((**a).clone(), (**b).clone());
                clauses[i] = Clause::Where(a);
                clauses.insert(i + 1, Clause::Where(b));
                changed = true;
                continue;
            }
        }
        i += 1;
    }
    // 1b. project child steps on let-bound constructors: with
    //     `let $v := <E><CID>{…}</CID>…</E>`, an occurrence of `$v/CID`
    //     downstream becomes the (cheap) CID constructor itself, so a
    //     predicate on it no longer forces construction of the rest —
    //     the §4.2 access-elimination pattern
    for i in 0..clauses.len() {
        let Clause::Let { var, value } = &clauses[i] else {
            continue;
        };
        let CKind::ElementCtor { content, .. } = &value.kind else {
            continue;
        };
        let var = var.clone();
        let content = (**content).clone();
        #[allow(clippy::needless_range_loop)]
        for j in (i + 1)..clauses.len() {
            let mut c = clauses[j].clone();
            let mut c_changed = false;
            match &mut c {
                Clause::For { source, .. } => {
                    c_changed |= project_var_steps(source, &var, &content)
                }
                Clause::Let { value, .. } => c_changed |= project_var_steps(value, &var, &content),
                Clause::Where(w) => c_changed |= project_var_steps(w, &var, &content),
                Clause::GroupBy { keys, .. } => {
                    for (k, _) in keys.iter_mut() {
                        c_changed |= project_var_steps(k, &var, &content);
                    }
                }
                Clause::OrderBy(specs) => {
                    for s in specs.iter_mut() {
                        c_changed |= project_var_steps(&mut s.expr, &var, &content);
                    }
                }
                Clause::SqlFor { params, .. } => {
                    for p in params.iter_mut() {
                        c_changed |= project_var_steps(p, &var, &content);
                    }
                }
            }
            if c_changed {
                clauses[j] = c;
                changed = true;
            }
        }
        let mut r = (**ret).clone();
        if project_var_steps(&mut r, &var, &content) {
            **ret = r;
            changed = true;
        }
    }
    // 2. if the return is `if (p) then r else ()`, lift p into a where
    //    clause (valid: per-tuple filtering) — unless grouping follows
    let has_group = clauses.iter().any(|c| matches!(c, Clause::GroupBy { .. }));
    if !has_group {
        if let CKind::If { cond, then, els } = &ret.kind {
            if is_empty_seq(els) {
                clauses.push(Clause::Where((**cond).clone()));
                let t = (**then).clone();
                **ret = t;
                changed = true;
            }
        }
    }
    // 3. flatten a mappable nested FLWOR in return position
    if let CKind::Flwor {
        clauses: inner,
        ret: iret,
    } = &ret.kind
    {
        if flwor_is_mappable(inner) && !has_group {
            let mut all = clauses.clone();
            all.extend(inner.clone());
            let new_ret = (**iret).clone();
            *replacement = Some(CExpr::new(
                CKind::Flwor {
                    clauses: all,
                    ret: Box::new(new_ret),
                },
                span,
            ));
            return true;
        }
    }
    // 4. push where clauses to the earliest position their variables allow
    changed |= hoist_wheres(clauses);
    // 4b. inline single-use pure lets (keeps pushdown patterns visible
    //     through `let $cs := … return subsequence($cs, …)` chains)
    {
        let mut i = 0;
        while i < clauses.len() {
            if let Clause::Let { var, value } = &clauses[i] {
                if is_pure(value) {
                    let var = var.clone();
                    let mut uses = 0usize;
                    for c in clauses.iter().skip(i + 1) {
                        uses += clause_var_uses(c, &var);
                    }
                    uses += count_var_uses(ret, &var);
                    if uses == 1 {
                        let value = value.clone();
                        clauses.remove(i);
                        for c in clauses.iter_mut().skip(i) {
                            substitute_clause(c, &var, &value);
                        }
                        ret.substitute(&var, &value);
                        changed = true;
                        continue;
                    }
                }
            }
            i += 1;
        }
    }
    // 5. drop unused pure lets (unused source accesses vanish, §4.2)
    let used = {
        let mut used: HashSet<String> = ret.free_vars();
        for c in clauses.iter() {
            match c {
                Clause::For { source, .. } => used.extend(source.free_vars()),
                Clause::Let { value, .. } => used.extend(value.free_vars()),
                Clause::Where(w) => used.extend(w.free_vars()),
                Clause::GroupBy {
                    bindings,
                    keys,
                    carry,
                    ..
                } => {
                    for (k, _) in keys {
                        used.extend(k.free_vars());
                    }
                    for (from, _) in bindings.iter().chain(carry.iter()) {
                        used.insert(from.clone());
                    }
                }
                Clause::OrderBy(specs) => {
                    for s in specs {
                        used.extend(s.expr.free_vars());
                    }
                }
                Clause::SqlFor { params, ppk, .. } => {
                    for p in params {
                        used.extend(p.free_vars());
                    }
                    if let Some(pk) = ppk {
                        for k in &pk.outer_keys {
                            used.extend(k.free_vars());
                        }
                    }
                }
            }
        }
        used
    };
    let before = clauses.len();
    clauses.retain(|c| match c {
        Clause::Let { var, value } => used.contains(var) || !is_pure(value),
        _ => true,
    });
    changed |= clauses.len() != before;
    // 6. a FLWOR with no clauses is just its return
    if clauses.is_empty() {
        *replacement = Some((**ret).clone());
        return true;
    }
    // 7. single trivial let whose body is the var → the value
    if clauses.len() == 1 {
        if let Clause::Let { var, value } = &clauses[0] {
            if matches!(&ret.kind, CKind::Var { name: v, .. } if v == var) {
                *replacement = Some(value.clone());
                return true;
            }
        }
    }
    changed
}

/// The staged predicate-placement pass: global analyses over whole
/// clause lists that the per-node rewrite walk cannot express — run
/// once, after normalization, before SQL pushdown.
///
/// * **Redundant-predicate elimination** — a pure `where` clause that
///   structurally repeats an earlier filter in the same scope (a common
///   residue of view unfolding, where caller and callee guard the same
///   condition) is dropped.
/// * **Contradiction pruning** — two value-comparison filters
///   `expr eq C1` … `expr eq C2` with `C1 ≠ C2` can never both hold,
///   so the *later* one is replaced by `where false()` (replacing the
///   later clause keeps error semantics: the first comparison still
///   evaluates, and when it held, the second was type-safe and false).
///
/// Both rewrites are idempotent by construction — the staged-pass
/// contract `run_pass` asserts in debug builds.
pub fn place_predicates(_ctx: &mut Context<'_>, e: &mut CExpr) {
    place_predicates_rec(e);
}

fn place_predicates_rec(e: &mut CExpr) {
    e.for_each_child_mut(&mut place_predicates_rec);
    if let CKind::Flwor { clauses, .. } = &mut e.kind {
        prune_contradictions(clauses);
        drop_duplicate_wheres(clauses);
    }
}

/// Match a value comparison `expr eq <literal>` (either side) against
/// a type whose structural equality is semantic equality.
fn const_equality(w: &CExpr) -> Option<(&CExpr, &aldsp_xdm::value::AtomicValue)> {
    use aldsp_xdm::value::AtomicValue;
    let CKind::Compare {
        op: aldsp_xdm::item::CompOp::Eq,
        general: false,
        lhs,
        rhs,
    } = &w.kind
    else {
        return None;
    };
    let (expr, v) = match (&lhs.kind, &rhs.kind) {
        (_, CKind::Const(v)) => (&**lhs, v),
        (CKind::Const(v), _) => (&**rhs, v),
        _ => return None,
    };
    // Integer/String/Boolean literals compare structurally iff they
    // compare semantically; decimals (1.0 vs 1.00) and dates do not
    matches!(
        v,
        AtomicValue::Integer(_) | AtomicValue::String(_) | AtomicValue::Boolean(_)
    )
    .then_some((expr, v))
}

fn prune_contradictions(clauses: &mut [Clause]) {
    for j in 1..clauses.len() {
        let Clause::Where(w) = &clauses[j] else {
            continue;
        };
        let Some((expr, v)) = const_equality(w) else {
            continue;
        };
        let (expr, v, span) = (expr.clone(), v.clone(), w.span);
        let mut found = false;
        for c in clauses[..j].iter().rev() {
            match c {
                // grouping/ordering rebinds or reorders scope: stop looking
                Clause::GroupBy { .. } | Clause::OrderBy(_) => break,
                Clause::Where(prev) => {
                    if let Some((pe, pv)) = const_equality(prev) {
                        if *pe == expr && pv.type_of() == v.type_of() && *pv != v {
                            found = true;
                            break;
                        }
                    }
                }
                _ => {}
            }
        }
        if found {
            clauses[j] = Clause::Where(CExpr::constant(
                aldsp_xdm::value::AtomicValue::Boolean(false),
                span,
            ));
        }
    }
}

fn drop_duplicate_wheres(clauses: &mut Vec<Clause>) {
    let mut i = 1;
    while i < clauses.len() {
        let mut duplicate = false;
        if let Clause::Where(w) = &clauses[i] {
            if is_pure(w) {
                for c in clauses[..i].iter().rev() {
                    match c {
                        Clause::GroupBy { .. } | Clause::OrderBy(_) => break,
                        Clause::Where(prev) if prev == w => {
                            duplicate = true;
                            break;
                        }
                        _ => {}
                    }
                }
            }
        }
        if duplicate {
            clauses.remove(i);
        } else {
            i += 1;
        }
    }
}

/// Move `where` clauses up to just after the clause that binds the last
/// of their free variables (§4.3's "where conditions pushed into joins").
fn hoist_wheres(clauses: &mut Vec<Clause>) -> bool {
    let mut changed = false;
    let mut i = 0;
    while i < clauses.len() {
        if matches!(clauses[i], Clause::Where(_)) {
            let Clause::Where(w) = clauses[i].clone() else {
                unreachable!()
            };
            let free = w.free_vars();
            // earliest legal position: after the last binding clause that
            // introduces one of `free`, and never across group/order
            let mut earliest = 0;
            for (j, c) in clauses.iter().enumerate().take(i) {
                let binds_needed = clause_bindings(c).iter().any(|b| free.contains(b));
                let barrier = matches!(c, Clause::GroupBy { .. } | Clause::OrderBy(_));
                if binds_needed || barrier {
                    earliest = j + 1;
                }
            }
            // never leapfrog a sibling filter: hoisting is about
            // crossing *binding* clauses, and two filters with the
            // same earliest slot would otherwise swap places on every
            // pass, making the rewrite fixpoint diverge
            while earliest < i && matches!(clauses[earliest], Clause::Where(_)) {
                earliest += 1;
            }
            if earliest < i {
                clauses.remove(i);
                clauses.insert(earliest, Clause::Where(w));
                changed = true;
            }
        }
        i += 1;
    }
    changed
}

/// The variables a clause binds.
pub fn clause_bindings(c: &Clause) -> Vec<String> {
    match c {
        Clause::For { var, pos, .. } => {
            let mut v = vec![var.clone()];
            if let Some(p) = pos {
                v.push(p.clone());
            }
            v
        }
        Clause::Let { var, .. } => vec![var.clone()],
        Clause::GroupBy {
            bindings,
            keys,
            carry,
            ..
        } => bindings
            .iter()
            .map(|(_, to)| to.clone())
            .chain(keys.iter().map(|(_, a)| a.clone()))
            .chain(carry.iter().map(|(_, to)| to.clone()))
            .collect(),
        Clause::SqlFor { binds, .. } => binds.iter().map(|(b, _)| b.clone()).collect(),
        _ => Vec::new(),
    }
}

/// Clauses that make a FLWOR an item-wise map (safe to push maps/filters
/// through): no grouping or ordering.
fn flwor_is_mappable(clauses: &[Clause]) -> bool {
    clauses
        .iter()
        .all(|c| !matches!(c, Clause::GroupBy { .. } | Clause::OrderBy(_)))
}

fn is_empty_seq(e: &CExpr) -> bool {
    matches!(&e.kind, CKind::Seq(v) if v.is_empty())
}

fn singleton_like(t: &SequenceType) -> bool {
    !t.occurrence().allows_many() && !matches!(t, SequenceType::Empty)
}

fn is_atomic_content(content: &CExpr) -> bool {
    match &content.ty {
        SequenceType::Seq(ItemType::Atomic(_), _) => true,
        SequenceType::Empty => true,
        _ => matches!(&content.kind, CKind::Seq(parts) if parts.len() == 1
            && matches!(&parts[0].ty, SequenceType::Seq(ItemType::Atomic(_), _))),
    }
}

fn unwrap_seq1(e: CExpr) -> CExpr {
    match e.kind {
        CKind::Seq(mut parts) if parts.len() == 1 => parts.remove(0),
        _ => e,
    }
}

/// Replace `ChildStep(Var var, name)` occurrences inside `e` with the
/// projection of `content` (a let-bound constructor's content), where
/// projectable. Does not descend into scopes that rebind `var`.
fn project_var_steps(e: &mut CExpr, var: &str, content: &CExpr) -> bool {
    // rebinding can't occur: translation alpha-renamed all bindings unique
    let mut changed = false;
    if let CKind::ChildStep {
        input,
        name: Some(name),
    } = &e.kind
    {
        if matches!(&input.kind, CKind::Var { name: v, .. } if v == var) {
            if let Some(projected) = project_content(content, name) {
                *e = projected;
                return true;
            }
        }
    }
    e.for_each_child_mut(&mut |c| changed |= project_var_steps(c, var, content));
    changed
}

/// Project `ctor-content/child::name`: succeeds when every content part
/// has a statically known element name (then the matching parts are the
/// step result) — the §4.2 source-access-elimination enabler.
fn project_content(content: &CExpr, name: &aldsp_xdm::QName) -> Option<CExpr> {
    let parts: Vec<&CExpr> = match &content.kind {
        CKind::Seq(parts) => parts.iter().collect(),
        _ => vec![content],
    };
    let mut selected = Vec::new();
    for p in parts {
        match &p.kind {
            CKind::ElementCtor { name: n, .. } => {
                if n == name {
                    selected.push(p.clone());
                }
            }
            // a typed part with a known, *different* element name can be
            // skipped; matching or unknown shapes block projection
            _ => match p.ty.item_type() {
                Some(ItemType::Element(et)) => match &et.name {
                    Some(n) if n != name => {}
                    _ => return None,
                },
                Some(ItemType::Atomic(_)) => {
                    // text content: contributes nothing to a child step
                }
                _ => return None,
            },
        }
    }
    Some(match selected.len() {
        0 => CExpr::empty(content.span),
        1 => selected.remove(0),
        _ => CExpr::new(CKind::Seq(selected), content.span),
    })
}

/// Occurrences of a free variable in an expression.
fn count_var_uses(e: &CExpr, var: &str) -> usize {
    let mut n = 0;
    // bindings are globally unique after translation, so no shadowing
    e.walk(&mut |x| {
        if matches!(&x.kind, CKind::Var { name: v, .. } if v == var) {
            n += 1;
        }
    });
    n
}

fn clause_var_uses(c: &Clause, var: &str) -> usize {
    let mut n = 0;
    match c {
        Clause::For { source, .. } => n += count_var_uses(source, var),
        Clause::Let { value, .. } => n += count_var_uses(value, var),
        Clause::Where(w) => n += count_var_uses(w, var),
        Clause::GroupBy {
            keys,
            bindings,
            carry,
            ..
        } => {
            for (k, _) in keys {
                n += count_var_uses(k, var);
            }
            n += carry.iter().filter(|(from, _)| from == var).count() * 2;
            // a group binding holds the variable *by name* — it cannot be
            // substituted with an expression, so treat it as two uses to
            // block single-use inlining
            n += bindings.iter().filter(|(from, _)| from == var).count() * 2;
        }
        Clause::OrderBy(specs) => {
            for s in specs {
                n += count_var_uses(&s.expr, var);
            }
        }
        Clause::SqlFor { params, ppk, .. } => {
            for p in params {
                n += count_var_uses(p, var);
            }
            if let Some(pk) = ppk {
                for k in &pk.outer_keys {
                    n += count_var_uses(k, var);
                }
            }
        }
    }
    n
}

fn substitute_clause(c: &mut Clause, var: &str, value: &CExpr) {
    match c {
        Clause::For { source, .. } => source.substitute(var, value),
        Clause::Let { value: v, .. } => v.substitute(var, value),
        Clause::Where(w) => w.substitute(var, value),
        Clause::GroupBy { keys, .. } => {
            for (k, _) in keys.iter_mut() {
                k.substitute(var, value);
            }
        }
        Clause::OrderBy(specs) => {
            for s in specs.iter_mut() {
                s.expr.substitute(var, value);
            }
        }
        Clause::SqlFor { params, ppk, .. } => {
            for p in params.iter_mut() {
                p.substitute(var, value);
            }
            if let Some(pk) = ppk {
                for k in pk.outer_keys.iter_mut() {
                    k.substitute(var, value);
                }
            }
        }
    }
}

/// Purity for dead-code elimination: everything except the async/timing
/// extension functions is side-effect-free; dropping an unused *pure*
/// source access is precisely the paper's "not fetched at all" win.
pub fn is_pure(e: &CExpr) -> bool {
    let mut pure = true;
    e.walk(&mut |n| {
        if let CKind::Builtin {
            op: crate::ir::Builtin::Async | crate::ir::Builtin::Timeout | crate::ir::Builtin::FailOver,
            ..
        } = &n.kind
        {
            pure = false;
        }
    });
    pure
}

/// Is this expression free of data-source accesses? (Used by let-content
/// projection and cost heuristics.)
pub fn is_cheap(e: &CExpr) -> bool {
    let mut cheap = true;
    e.walk(&mut |n| {
        if matches!(&n.kind, CKind::PhysicalCall { .. } | CKind::UserCall { .. }) {
            cheap = false;
        }
    });
    cheap
}

#[cfg(test)]
mod rules_tests {
    use crate::tests::compile;

    /// Regression: two `where` conjuncts whose earliest legal slots
    /// coincide used to leapfrog each other on every `hoist_wheres`
    /// pass, so the rewrite fixpoint diverged and compilation hung.
    #[test]
    fn equal_earliest_wheres_reach_fixpoint() {
        // both split conjuncts hoist to just after `for $c`
        compile(
            r#"for $c in c:CUSTOMER()
               where $c/CID ne "CUST001" and $c/LAST_NAME eq "Jones"
               return $c/CID"#,
        );
        // join conjunct and single-var conjunct share the slot after
        // the second `for`
        compile(
            r#"for $cc in cc:CREDIT_CARD()
               for $c in c:CUSTOMER()
               where $cc/CID eq $c/CID and lib:int2date($c/SINCE) le lib:int2date(1005)
               return $c/CID"#,
        );
    }
}

#[cfg(test)]
mod predicate_placement_tests {
    use super::*;
    use aldsp_parser::ast::Span;
    use aldsp_xdm::item::CompOp;
    use aldsp_xdm::value::AtomicValue;

    fn sp() -> Span {
        Span::default()
    }

    fn eq_const(var: &str, v: AtomicValue) -> CExpr {
        CExpr::new(
            CKind::Compare {
                op: CompOp::Eq,
                general: false,
                lhs: Box::new(CExpr::var(var, sp())),
                rhs: Box::new(CExpr::constant(v, sp())),
            },
            sp(),
        )
    }

    fn wheres(filters: Vec<CExpr>) -> Vec<Clause> {
        filters.into_iter().map(Clause::Where).collect()
    }

    fn is_where_false(c: &Clause) -> bool {
        matches!(c, Clause::Where(w)
            if matches!(&w.kind, CKind::Const(AtomicValue::Boolean(false))))
    }

    #[test]
    fn contradictory_equalities_prune_the_later_filter() {
        let mut clauses = wheres(vec![
            eq_const("x", AtomicValue::String("a".into())),
            eq_const("x", AtomicValue::String("b".into())),
        ]);
        prune_contradictions(&mut clauses);
        assert!(matches!(&clauses[0], Clause::Where(w)
            if matches!(w.kind, CKind::Compare { .. })));
        assert!(is_where_false(&clauses[1]));

        // same value: no contradiction (duplicate elimination's job)
        let mut same = wheres(vec![
            eq_const("x", AtomicValue::Integer(7)),
            eq_const("x", AtomicValue::Integer(7)),
        ]);
        prune_contradictions(&mut same);
        assert!(!same.iter().any(is_where_false));

        // non-Integer/String/Boolean literal types are excluded from the rule
        let mut dec = wheres(vec![
            eq_const(
                "x",
                AtomicValue::Decimal(aldsp_xdm::value::Decimal::from_int(1)),
            ),
            eq_const(
                "x",
                AtomicValue::Decimal(aldsp_xdm::value::Decimal::from_int(2)),
            ),
        ]);
        prune_contradictions(&mut dec);
        assert!(!dec.iter().any(is_where_false));

        // a group-by between the filters rebinds scope: no pruning across it
        let mut grouped = vec![
            Clause::Where(eq_const("x", AtomicValue::Integer(1))),
            Clause::GroupBy {
                bindings: vec![],
                keys: vec![],
                carry: vec![],
                pre_clustered: false,
            },
            Clause::Where(eq_const("x", AtomicValue::Integer(2))),
        ];
        prune_contradictions(&mut grouped);
        assert!(!grouped.iter().any(is_where_false));
    }

    #[test]
    fn duplicate_pure_wheres_collapse_to_one() {
        let mut clauses = wheres(vec![
            eq_const("x", AtomicValue::Integer(7)),
            eq_const("x", AtomicValue::Integer(7)),
            eq_const("x", AtomicValue::Integer(7)),
        ]);
        drop_duplicate_wheres(&mut clauses);
        assert_eq!(clauses.len(), 1);
    }

    #[test]
    fn place_predicates_is_idempotent_on_mixed_filters() {
        let reg = aldsp_metadata::Registry::new();
        let mut ctx = Context::new(&reg, crate::context::Mode::FailFast);
        let clauses = vec![
            Clause::Where(eq_const("x", AtomicValue::Integer(1))),
            Clause::Where(eq_const("x", AtomicValue::Integer(1))),
            Clause::Where(eq_const("x", AtomicValue::Integer(2))),
        ];
        let mut plan = CExpr::new(
            CKind::Flwor {
                clauses,
                ret: Box::new(CExpr::var("x", sp())),
            },
            sp(),
        );
        place_predicates(&mut ctx, &mut plan);
        let CKind::Flwor { clauses, .. } = &plan.kind else {
            panic!("flwor survived");
        };
        // dup removed, contradiction replaced with `where false`
        assert_eq!(clauses.len(), 2);
        assert!(is_where_false(&clauses[1]));
        let once = plan.clone();
        place_predicates(&mut ctx, &mut plan);
        assert_eq!(plan, once);
    }
}
