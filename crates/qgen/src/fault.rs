//! Seeded fault schedules and the fault-trial invariant.
//!
//! A [`FaultPlan`] attaches consumed-on-fire faults (error-after-N,
//! latency spikes, disconnects) to named relational sources. The
//! invariant checked by [`run_fault_trial`] is the §2.3 failover
//! contract generalized: under any injected fault the query must end
//! in **either** a byte-identical result **or** a typed error — and a
//! streaming consumer must never observe a truncated or reordered
//! prefix that it cannot distinguish from a complete result.

use aldsp::relational::{Fault, FaultKind, FaultTrigger};
use aldsp::security::Principal;
use aldsp::xdm::item::Item;
use aldsp::xdm::xml::serialize_sequence;
use aldsp::{AldspServer, QueryRequest, ServerError};
use rand::{Rng, SeedableRng, StdRng};
use std::time::Duration;

/// A generated schedule: faults per source name, plus an optional
/// request deadline (latency spikes only matter under one).
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// `(source name, fault)` pairs to install before the run.
    pub faults: Vec<(String, Fault)>,
    /// Deadline to attach to the faulted request, if any.
    pub deadline: Option<Duration>,
}

impl FaultPlan {
    /// Human-readable one-line description for failure reports.
    pub fn describe(&self) -> String {
        let parts: Vec<String> = self
            .faults
            .iter()
            .map(|(src, f)| format!("{src}:{:?}@{:?}", f.kind, f.trigger))
            .collect();
        format!("faults=[{}] deadline={:?}", parts.join(", "), self.deadline)
    }
}

/// Map a seed to a fault plan over `sources`. Triggers are kept small
/// (the fixture worlds return tens-to-hundreds of rows) so schedules
/// actually fire mid-query rather than after it completes.
pub fn generate_plan(seed: u64, sources: &[&str]) -> FaultPlan {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xFA07_FA07_FA07_FA07);
    let n = rng.gen_range(1..3usize);
    let mut faults = Vec::new();
    let mut spiked = false;
    for _ in 0..n {
        let source = sources[rng.gen_range(0..sources.len())].to_string();
        let trigger = if rng.gen_bool(0.5) {
            FaultTrigger::Roundtrips(rng.gen_range(0..4u64))
        } else {
            FaultTrigger::RowsReturned(rng.gen_range(0..40u64))
        };
        let kind = match rng.gen_range(0..3u32) {
            0 => FaultKind::ErrorOnce,
            1 => FaultKind::Disconnect,
            _ => {
                spiked = true;
                FaultKind::LatencySpike(Duration::from_millis(rng.gen_range(40..200u64)))
            }
        };
        faults.push((source, Fault { trigger, kind }));
    }
    // attach a deadline often enough that latency spikes get to matter,
    // generous enough that un-spiked queries never trip it
    let deadline = if spiked || rng.gen_bool(0.3) {
        Some(Duration::from_millis(150))
    } else {
        None
    };
    FaultPlan { faults, deadline }
}

/// How a fault trial ended (all three are invariant-respecting).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultOutcome {
    /// The fault didn't bite (or was absorbed): byte-identical result.
    Identical,
    /// A typed runtime/source error surfaced.
    TypedError,
    /// A typed workload error (deadline/budget/admission) surfaced.
    WorkloadError,
}

/// Install `plan` on `server`'s sources, run `query` streaming, and
/// check the invariant against the known-good `baseline` items.
/// Returns the outcome, or a violation description.
///
/// `install` receives each source name with its complete schedule —
/// the caller owns the `Arc<RelationalServer>` handles (and calls
/// `set_faults`); `cleanup` runs after the trial (`clear_faults`).
pub fn run_fault_trial(
    server: &AldspServer,
    principal: &Principal,
    query: &str,
    baseline: &[Item],
    plan: &FaultPlan,
    install: impl Fn(&str, Vec<Fault>),
    cleanup: impl Fn(),
) -> Result<FaultOutcome, String> {
    let mut by_source: Vec<(&str, Vec<Fault>)> = Vec::new();
    for (source, fault) in &plan.faults {
        match by_source.iter_mut().find(|(s, _)| s == source) {
            Some((_, fs)) => fs.push(*fault),
            None => by_source.push((source, vec![*fault])),
        }
    }
    for (source, faults) in by_source {
        install(source, faults);
    }
    let mut delivered: Vec<Item> = Vec::new();
    let mut sink = |item: Item| {
        delivered.push(item);
        true
    };
    let mut req = QueryRequest::new(query)
        .principal(principal.clone())
        .stream_to(&mut sink);
    if let Some(d) = plan.deadline {
        req = req.deadline(d);
    }
    let result = server.execute(req);
    cleanup();

    // regardless of outcome, what streamed out must be a prefix of the
    // baseline — a fault may cut a stream short, never corrupt it
    let n = delivered.len();
    if n > baseline.len() || serialize_sequence(&delivered) != serialize_sequence(&baseline[..n]) {
        return Err(format!(
            "delivered stream is not a prefix of the baseline ({}; {n}/{} items)\n  got: {}",
            plan.describe(),
            baseline.len(),
            serialize_sequence(&delivered),
        ));
    }
    match result {
        Ok(_) => {
            if n == baseline.len() {
                Ok(FaultOutcome::Identical)
            } else {
                Err(format!(
                    "query reported success but delivered {n}/{} items ({})",
                    baseline.len(),
                    plan.describe()
                ))
            }
        }
        Err(ServerError::Execute(_)) => Ok(FaultOutcome::TypedError),
        Err(ServerError::Workload(_)) => Ok(FaultOutcome::WorkloadError),
        Err(other) => Err(format!("untyped failure {other:?} ({})", plan.describe())),
    }
}
