//! The generator's view of the federated schema.
//!
//! A [`CatalogModel`] is built from the same introspected relational
//! [`Catalog`]s the server registers (§2.1), so the generator can only
//! emit queries over functions that actually exist: one read function
//! per table, `get<TABLE>` navigation functions per foreign key, plus
//! declared cross-source equality links (the federation joins the
//! catalogs themselves cannot express) and registered value transforms
//! with inverses (§4.4).

use aldsp::relational::{Catalog, SqlType};

/// A column's generator-relevant type (collapsed from [`SqlType`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColTy {
    /// Integer-valued.
    Int,
    /// String-valued.
    Str,
    /// Exact decimal.
    Dec,
    /// Anything else (floats, temporals, booleans): projectable but
    /// never compared, ordered by or aggregated — float formatting and
    /// temporal comparison semantics vary by path.
    Other,
}

impl ColTy {
    fn of(ty: SqlType) -> ColTy {
        match ty {
            SqlType::Integer => ColTy::Int,
            SqlType::Varchar => ColTy::Str,
            SqlType::Decimal => ColTy::Dec,
            _ => ColTy::Other,
        }
    }
}

/// One column the generator may project, compare or order by.
#[derive(Debug, Clone)]
pub struct ColumnModel {
    /// Column (and row-element child) name.
    pub name: String,
    /// Generator type class.
    pub ty: ColTy,
    /// Whether NULLs occur — nullable columns are excluded from order
    /// and group keys (vendor NULL-ordering differs) and from SQL-vs-
    /// middleware-divergent aggregates like `fn:sum`.
    pub nullable: bool,
    /// Rendered literals that select interestingly against the fixture
    /// data (supplied by the test world, e.g. `"C0003"`, `1005`).
    /// Predicates on string columns without samples are not generated.
    pub samples: Vec<String>,
}

/// A navigation function introspection derived from a foreign key.
#[derive(Debug, Clone)]
pub struct NavModel {
    /// Function local name (`getORDER`).
    pub function: String,
    /// Table the navigation starts from (the argument row's table).
    pub from_table: String,
    /// Table it lands on.
    pub to_table: String,
}

/// One table of one source.
#[derive(Debug, Clone)]
pub struct TableModel {
    /// Table (and read-function) name.
    pub name: String,
    /// Columns in declaration order.
    pub columns: Vec<ColumnModel>,
    /// Primary-key column names.
    pub primary_key: Vec<String>,
}

/// One registered relational source.
#[derive(Debug, Clone)]
pub struct SourceModel {
    /// Namespace prefix used in generated prologs (`c`, `cc`).
    pub prefix: String,
    /// The namespace the source was registered under.
    pub namespace: String,
    /// Tables, in catalog order.
    pub tables: Vec<TableModel>,
    /// Navigation functions, in catalog order.
    pub navs: Vec<NavModel>,
}

/// A declared cross- or same-source equality join edge:
/// `left.column = right.column` is a meaningful join (same domain).
#[derive(Debug, Clone)]
pub struct JoinEdge {
    /// `(source index, table name, column name)` of the left side.
    pub left: (usize, String, String),
    /// Right side.
    pub right: (usize, String, String),
}

/// A registered value transform with a declared inverse (§4.4), e.g.
/// `lib:int2date` over integer columns.
#[derive(Debug, Clone)]
pub struct TransformModel {
    /// Prefix for the prolog (`lib`).
    pub prefix: String,
    /// Namespace (`urn:lib`).
    pub namespace: String,
    /// Function local name (`int2date`).
    pub function: String,
    /// Column type class it applies to.
    pub applies_to: ColTy,
}

/// Everything the generator knows about the world.
#[derive(Debug, Clone, Default)]
pub struct CatalogModel {
    /// Registered sources.
    pub sources: Vec<SourceModel>,
    /// Equality-joinable column pairs (FK edges are added automatically
    /// by [`CatalogModel::source`]; cross-source edges are declared).
    pub edges: Vec<JoinEdge>,
    /// Invertible value transforms.
    pub transforms: Vec<TransformModel>,
}

impl CatalogModel {
    /// An empty model; add sources with [`CatalogModel::source`].
    pub fn new() -> CatalogModel {
        CatalogModel::default()
    }

    /// Register a source from its introspected catalog. Mirrors
    /// `introspect_relational`: one read function per table and two
    /// `get<TABLE>` navigation functions per foreign key; FK column
    /// pairs also become join edges.
    pub fn source(mut self, catalog: &Catalog, prefix: &str, namespace: &str) -> CatalogModel {
        let idx = self.sources.len();
        let mut tables = Vec::new();
        let mut navs = Vec::new();
        for t in catalog.tables() {
            tables.push(TableModel {
                name: t.name.clone(),
                columns: t
                    .columns
                    .iter()
                    .map(|c| ColumnModel {
                        name: c.name.clone(),
                        ty: ColTy::of(c.ty),
                        nullable: c.nullable,
                        samples: Vec::new(),
                    })
                    .collect(),
                primary_key: t.primary_key.clone(),
            });
        }
        for t in catalog.tables() {
            for fk in &t.foreign_keys {
                navs.push(NavModel {
                    function: format!("get{}", fk.ref_table),
                    from_table: t.name.clone(),
                    to_table: fk.ref_table.clone(),
                });
                navs.push(NavModel {
                    function: format!("get{}", t.name),
                    from_table: fk.ref_table.clone(),
                    to_table: t.name.clone(),
                });
                for (c, rc) in fk.columns.iter().zip(&fk.ref_columns) {
                    self.edges.push(JoinEdge {
                        left: (idx, t.name.clone(), c.clone()),
                        right: (idx, fk.ref_table.clone(), rc.clone()),
                    });
                }
            }
        }
        self.sources.push(SourceModel {
            prefix: prefix.to_string(),
            namespace: namespace.to_string(),
            tables,
            navs,
        });
        self
    }

    /// Declare a cross-source equality join edge by source prefix.
    pub fn link(mut self, left: (&str, &str, &str), right: (&str, &str, &str)) -> CatalogModel {
        let li = self.source_index(left.0);
        let ri = self.source_index(right.0);
        self.edges.push(JoinEdge {
            left: (li, left.1.to_string(), left.2.to_string()),
            right: (ri, right.1.to_string(), right.2.to_string()),
        });
        self
    }

    /// Register an invertible transform the generator may wrap around
    /// comparisons on `applies_to`-typed columns.
    pub fn transform(
        mut self,
        prefix: &str,
        namespace: &str,
        function: &str,
        applies_to: ColTy,
    ) -> CatalogModel {
        self.transforms.push(TransformModel {
            prefix: prefix.to_string(),
            namespace: namespace.to_string(),
            function: function.to_string(),
            applies_to,
        });
        self
    }

    /// Attach sample literals to a column (rendered form, e.g. `"C0003"`
    /// for strings, `1005` for integers).
    pub fn samples(
        mut self,
        prefix: &str,
        table: &str,
        column: &str,
        lits: &[&str],
    ) -> CatalogModel {
        let si = self.source_index(prefix);
        let col = self.sources[si]
            .tables
            .iter_mut()
            .find(|t| t.name == table)
            .unwrap_or_else(|| panic!("unknown table {table}"))
            .columns
            .iter_mut()
            .find(|c| c.name == column)
            .unwrap_or_else(|| panic!("unknown column {table}.{column}"));
        col.samples = lits.iter().map(|s| s.to_string()).collect();
        self
    }

    fn source_index(&self, prefix: &str) -> usize {
        self.sources
            .iter()
            .position(|s| s.prefix == prefix)
            .unwrap_or_else(|| panic!("unknown source prefix {prefix}"))
    }

    /// The table model at `(source, table)`.
    pub fn table(&self, source: usize, table: &str) -> &TableModel {
        self.sources[source]
            .tables
            .iter()
            .find(|t| t.name == table)
            .unwrap_or_else(|| panic!("unknown table {table}"))
    }

    /// The prolog declaring every namespace the model can reference.
    pub fn prolog(&self) -> String {
        let mut out = String::new();
        for s in &self.sources {
            out.push_str(&format!(
                "declare namespace {} = \"{}\";\n",
                s.prefix, s.namespace
            ));
        }
        let mut seen: Vec<&str> = Vec::new();
        for t in &self.transforms {
            if !seen.contains(&t.prefix.as_str()) {
                out.push_str(&format!(
                    "declare namespace {} = \"{}\";\n",
                    t.prefix, t.namespace
                ));
                seen.push(&t.prefix);
            }
        }
        out
    }
}
