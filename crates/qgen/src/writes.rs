//! Seeded write-workload generation for the materialized-view
//! differential cell.
//!
//! The read side of the harness ([`crate::gen`]) asks "does every
//! configuration compute the same answer?"; this module supplies the
//! write side of the §6 + matview contract: a deterministic stream of
//! single-column point writes against the running example's `CUSTOMER`
//! table, spread across the columns that exercise every maintenance
//! classification — displayed (patch), transformed-displayed (patch
//! through the forward function), restricting-for-some-views
//! (invalidate), unreferenced (skip), and NULL transitions (patch
//! refusal → surgical invalidation).

use aldsp::xdm::value::{AtomicValue, DateTime};
use rand::{Rng, SeedableRng, StdRng};

/// One generated point write: set `field` of the customer with
/// `cid` to `value` through an updatable provider's SDO.
#[derive(Debug, Clone)]
pub struct WriteOp {
    /// Target customer id (formatted like the fixture's `C{i:04}`).
    pub cid: String,
    /// Top-level field name in the updatable provider's shape.
    pub field: String,
    /// New value; `None` writes SQL NULL (only generated for nullable
    /// columns).
    pub value: Option<AtomicValue>,
}

impl WriteOp {
    /// One-line description for failure reports.
    pub fn describe(&self) -> String {
        format!("{}.{} := {:?}", self.cid, self.field, self.value)
    }
}

/// Map a seed to `count` point writes over `customers` fixture rows.
/// Deterministic: same seed, same workload.
pub fn generate_writes(seed: u64, count: usize, customers: usize) -> Vec<WriteOp> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x005E_EDD3_17A5_u64);
    let mut out = Vec::with_capacity(count);
    for k in 0..count {
        let i = rng.gen_range(0..customers.max(1));
        let cid = format!("C{i:04}");
        let (field, value) = match rng.gen_range(0..5u32) {
            // displayed in the profile shape: the patch path
            0 => ("LAST_NAME", Some(AtomicValue::str(&format!("L{seed}w{k}")))),
            // nullable, displayed elsewhere: skip for profile views
            1 => (
                "FIRST_NAME",
                if rng.gen_bool(0.25) {
                    None // NULL transition
                } else {
                    Some(AtomicValue::str(&format!("F{seed}w{k}")))
                },
            ),
            // surfaces through lib:int2date: forward-transform patch
            2 => (
                "SINCE",
                Some(AtomicValue::DateTime(DateTime(
                    1000 + rng.gen_range(0..5000i64),
                ))),
            ),
            // referenced by no profile view: pure skip
            3 => ("SSN", Some(AtomicValue::str(&format!("{k:09}")))),
            // membership-relevant for name-filtered views: invalidation
            _ => (
                "LAST_NAME",
                Some(AtomicValue::str(
                    ["Jones", "Smith", "Chen"][rng.gen_range(0..3usize)],
                )),
            ),
        };
        out.push(WriteOp {
            cid,
            field: field.into(),
            value,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        for seed in [0u64, 9, 12345] {
            let a = generate_writes(seed, 20, 25);
            let b = generate_writes(seed, 20, 25);
            assert_eq!(
                a.iter().map(WriteOp::describe).collect::<Vec<_>>(),
                b.iter().map(WriteOp::describe).collect::<Vec<_>>(),
            );
        }
    }

    #[test]
    fn covers_every_column_class() {
        let ops = generate_writes(7, 200, 25);
        for field in ["LAST_NAME", "FIRST_NAME", "SINCE", "SSN"] {
            assert!(
                ops.iter().any(|o| o.field == field),
                "no {field} write in 200 ops"
            );
        }
        assert!(ops.iter().any(|o| o.value.is_none()), "no NULL transition");
    }
}
