//! Seeded random FLWGOR generation.
//!
//! [`generate`] maps a `u64` seed to a [`GenQuery`] — a structured
//! query over a [`CatalogModel`] exercising the optimizer surface the
//! differential oracle cares about: scans, FK navigation joins,
//! cross-source equality joins, pushable comparison predicates,
//! inverse-function (transformed-value) predicates, existential
//! semi-joins, order-by with mixed directions, single-block grouping
//! with aggregates, and conditional / nested construction in return
//! clauses.
//!
//! Every generated query is **order-total by construction**: queries
//! with more than one `for` always carry an `order by` whose trailing
//! keys append each bound variable's primary-key columns, and grouped
//! queries order by the group key. This is what makes byte-identical
//! comparison across configuration cells sound — without a total
//! order, SQL join output order and middleware nested-loop order are
//! both *correct* but not *equal*. Nullable columns are never used as
//! order or group keys (NULL-ordering is vendor-defined) and
//! aggregates other than `count` only touch non-nullable integer
//! columns (`fn:sum(()) = 0` but `SUM` of no rows is SQL NULL).

use crate::model::{CatalogModel, ColTy, ColumnModel, TableModel};
use rand::{Rng, SeedableRng, StdRng};

/// A value-comparison operator (`eq ne lt le gt ge` — keyword forms
/// parse unambiguously and treat NULL/empty like SQL treats UNKNOWN).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `eq`
    Eq,
    /// `ne`
    Ne,
    /// `lt`
    Lt,
    /// `le`
    Le,
    /// `gt`
    Gt,
    /// `ge`
    Ge,
}

impl CmpOp {
    const ALL: [CmpOp; 6] = [
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ];

    fn render(self) -> &'static str {
        match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
        }
    }
}

/// How a `for` clause binds its variable.
#[derive(Debug, Clone)]
pub enum Access {
    /// Table read function: `c:TABLE()`.
    Scan,
    /// FK navigation from an earlier variable: `c:getORDER($v0)`.
    Nav {
        /// Navigation function local name.
        function: String,
        /// Index of the variable navigated from.
        of: usize,
    },
}

/// One `for $vI in …` clause. The variable name is the clause index.
#[derive(Debug, Clone)]
pub struct ForClause {
    /// Source index into [`CatalogModel::sources`].
    pub source: usize,
    /// Table the variable ranges over.
    pub table: String,
    /// Binding form.
    pub access: Access,
}

/// A `where` conjunct.
#[derive(Debug, Clone)]
pub enum Pred {
    /// `$v/COL op literal`.
    Cmp {
        /// Variable index.
        var: usize,
        /// Column name.
        column: String,
        /// Operator.
        op: CmpOp,
        /// Rendered literal.
        lit: String,
    },
    /// `lib:f($v/COL) op lib:f(literal)` — a transformed-value
    /// predicate the §4.4 inverse rewrite can unblock for pushdown.
    Transform {
        /// Index into [`CatalogModel::transforms`].
        tf: usize,
        /// Variable index.
        var: usize,
        /// Column name.
        column: String,
        /// Operator.
        op: CmpOp,
        /// Rendered literal (argument to the transform on the RHS).
        lit: String,
    },
    /// `$a/C1 eq $b/C2` — an equality join over a model edge.
    Join {
        /// Left variable index.
        lvar: usize,
        /// Left column.
        lcol: String,
        /// Right variable index.
        rvar: usize,
        /// Right column.
        rcol: String,
    },
    /// `exists(c:getX($v))` — existential semi-join.
    Exists {
        /// Variable index navigated from.
        var: usize,
        /// Source of the navigation function.
        source: usize,
        /// Navigation function local name.
        function: String,
    },
    /// `(A or B)` over two simple comparisons.
    Or(Box<Pred>, Box<Pred>),
}

/// One explicit `order by` key.
#[derive(Debug, Clone)]
pub struct OrderKey {
    /// Variable index.
    pub var: usize,
    /// Column name (always non-nullable).
    pub column: String,
    /// Render `descending`.
    pub descending: bool,
}

/// The clause between `where` and `return`.
#[derive(Debug, Clone)]
pub enum Tail {
    /// Neither ordering nor grouping (single-`for` queries only —
    /// scan/filter order is preserved by every configuration cell).
    None,
    /// `order by` with the user keys followed by primary-key
    /// totalizers for every bound variable (see module docs).
    OrderBy {
        /// All keys, totalizers included, in render order.
        keys: Vec<OrderKey>,
    },
    /// `group $v0 as $p by $v0/COL as $k order by $k` — single-`for`
    /// queries only; output order made total by ordering on the key.
    GroupBy {
        /// Group key column (non-nullable).
        column: String,
        /// Optionally also `sum()` this non-nullable integer column.
        agg_sum: Option<String>,
    },
}

/// One item of the constructed return element.
#[derive(Debug, Clone)]
pub enum RetItem {
    /// `$v/COL` — projects the column element.
    Field {
        /// Variable index.
        var: usize,
        /// Column name.
        column: String,
    },
    /// `if ($v/COL op lit) then $v/THEN else ()` — conditional
    /// construction.
    Cond {
        /// Variable index.
        var: usize,
        /// Tested column.
        column: String,
        /// Operator.
        op: CmpOp,
        /// Rendered literal.
        lit: String,
        /// Column projected when the test holds.
        then_column: String,
    },
    /// `count(c:getX($v))` — order-insensitive dependent aggregate.
    CountNav {
        /// Variable navigated from.
        var: usize,
        /// Source of the navigation function.
        source: usize,
        /// Navigation function local name.
        function: String,
    },
    /// `sum(for $w in c:getX($v) return $w/COL)` over a non-nullable
    /// integer column.
    SumNav {
        /// Variable navigated from.
        var: usize,
        /// Source of the navigation function.
        source: usize,
        /// Navigation function local name.
        function: String,
        /// Summed column.
        column: String,
    },
    /// `for $w in c:getX($v) order by $w/PK return $w/COL` — a
    /// correlated nested sequence, made order-total by its PK.
    NestedSeq {
        /// Variable navigated from.
        var: usize,
        /// Source of the navigation function.
        source: usize,
        /// Navigation function local name.
        function: String,
        /// Projected column.
        column: String,
        /// Single-column primary key used as the nested order key.
        order_col: String,
    },
}

/// A generated query: structure plus the seed that produced it.
#[derive(Debug, Clone)]
pub struct GenQuery {
    /// The seed [`generate`] was called with (0 after shrinking).
    pub seed: u64,
    /// `for` clauses; variable `$vI` is `fors[I]`.
    pub fors: Vec<ForClause>,
    /// `where` conjuncts.
    pub preds: Vec<Pred>,
    /// Order/group clause.
    pub tail: Tail,
    /// Return items (ignored when `tail` is `GroupBy`, which renders
    /// its own aggregate element).
    pub ret: Vec<RetItem>,
}

fn pick<'a, T>(rng: &mut StdRng, xs: &'a [T]) -> &'a T {
    &xs[rng.gen_range(0..xs.len())]
}

/// Columns of `t` usable in literal comparisons: sampled Int/Str.
fn cmp_columns(t: &TableModel) -> Vec<&ColumnModel> {
    t.columns
        .iter()
        .filter(|c| !c.samples.is_empty() && matches!(c.ty, ColTy::Int | ColTy::Str))
        .collect()
}

/// Columns of `t` usable as order/group keys: non-nullable Int/Str.
fn key_columns(t: &TableModel) -> Vec<&ColumnModel> {
    t.columns
        .iter()
        .filter(|c| !c.nullable && matches!(c.ty, ColTy::Int | ColTy::Str))
        .collect()
}

/// Non-nullable integer columns of `t` (safe under `fn:sum`).
fn sum_columns(t: &TableModel) -> Vec<&ColumnModel> {
    t.columns
        .iter()
        .filter(|c| !c.nullable && c.ty == ColTy::Int)
        .collect()
}

/// Map `seed` to a query over `model`. Pure: the same seed and model
/// always produce the same query, on every platform (the PRNG is the
/// workspace's integer-only xoshiro256** shim).
pub fn generate(model: &CatalogModel, seed: u64) -> GenQuery {
    let mut rng = StdRng::seed_from_u64(seed);
    let rng = &mut rng;

    // --- for clauses ---------------------------------------------------
    let nf = *pick(rng, &[1usize, 1, 2, 2, 2, 3]);
    let mut fors: Vec<ForClause> = Vec::new();
    let mut preds: Vec<Pred> = Vec::new();
    let s0 = rng.gen_range(0..model.sources.len());
    let t0 = pick(rng, &model.sources[s0].tables).name.clone();
    fors.push(ForClause {
        source: s0,
        table: t0,
        access: Access::Scan,
    });
    while fors.len() < nf {
        // candidate navigations from already-bound variables
        let navs: Vec<(usize, usize, String, String)> = fors
            .iter()
            .enumerate()
            .flat_map(|(vi, f)| {
                model.sources[f.source]
                    .navs
                    .iter()
                    .filter(|n| n.from_table == f.table)
                    .map(move |n| (vi, f.source, n.function.clone(), n.to_table.clone()))
            })
            .collect();
        // candidate join edges touching an already-bound variable
        let mut edges: Vec<(usize, String, usize, String, String)> = Vec::new();
        for e in &model.edges {
            for (vi, f) in fors.iter().enumerate() {
                if e.left.0 == f.source && e.left.1 == f.table {
                    edges.push((
                        vi,
                        e.left.2.clone(),
                        e.right.0,
                        e.right.1.clone(),
                        e.right.2.clone(),
                    ));
                }
                if e.right.0 == f.source && e.right.1 == f.table {
                    edges.push((
                        vi,
                        e.right.2.clone(),
                        e.left.0,
                        e.left.1.clone(),
                        e.left.2.clone(),
                    ));
                }
            }
        }
        let roll = rng.gen_range(0..100u32);
        if roll < 55 && !navs.is_empty() {
            let (of, source, function, to_table) = pick(rng, &navs).clone();
            fors.push(ForClause {
                source,
                table: to_table,
                access: Access::Nav { function, of },
            });
        } else if roll < 90 && !edges.is_empty() {
            let (lvar, lcol, rsource, rtable, rcol) = pick(rng, &edges).clone();
            fors.push(ForClause {
                source: rsource,
                table: rtable,
                access: Access::Scan,
            });
            preds.push(Pred::Join {
                lvar,
                lcol,
                rvar: fors.len() - 1,
                rcol,
            });
        } else {
            // rare: an independent scan (small cartesian product)
            let s = rng.gen_range(0..model.sources.len());
            let t = pick(rng, &model.sources[s].tables).name.clone();
            fors.push(ForClause {
                source: s,
                table: t,
                access: Access::Scan,
            });
        }
    }

    // --- where conjuncts -----------------------------------------------
    let simple_cmp = |rng: &mut StdRng, fors: &[ForClause]| -> Option<Pred> {
        let candidates: Vec<(usize, &ForClause)> = fors
            .iter()
            .enumerate()
            .filter(|(_, f)| !cmp_columns(model.table(f.source, &f.table)).is_empty())
            .collect();
        if candidates.is_empty() {
            return None;
        }
        let (var, f) = *pick(rng, &candidates);
        let cols = cmp_columns(model.table(f.source, &f.table));
        let col = pick(rng, &cols);
        Some(Pred::Cmp {
            var,
            column: col.name.clone(),
            op: *pick(rng, &CmpOp::ALL),
            lit: pick(rng, &col.samples).clone(),
        })
    };
    let npred = rng.gen_range(0..3usize);
    for _ in 0..npred {
        let roll = rng.gen_range(0..100u32);
        if roll < 15 && !model.transforms.is_empty() {
            // transformed-value predicate on a matching sampled column
            let tf = rng.gen_range(0..model.transforms.len());
            let want = model.transforms[tf].applies_to;
            let candidates: Vec<(usize, String, String)> = fors
                .iter()
                .enumerate()
                .flat_map(|(vi, f)| {
                    model
                        .table(f.source, &f.table)
                        .columns
                        .iter()
                        .filter(|c| c.ty == want && !c.samples.is_empty())
                        .map(move |c| (vi, c.name.clone(), c.samples.clone()))
                })
                .map(|(vi, name, samples)| {
                    let lit = samples[0].clone();
                    (vi, name, lit)
                })
                .collect();
            if !candidates.is_empty() {
                let (var, column, lit) = pick(rng, &candidates).clone();
                preds.push(Pred::Transform {
                    tf,
                    var,
                    column,
                    op: *pick(rng, &[CmpOp::Gt, CmpOp::Le, CmpOp::Eq]),
                    lit,
                });
                continue;
            }
        }
        if roll < 30 {
            // existential semi-join from a variable that has navigations
            let navs: Vec<(usize, usize, String)> = fors
                .iter()
                .enumerate()
                .flat_map(|(vi, f)| {
                    model.sources[f.source]
                        .navs
                        .iter()
                        .filter(|n| n.from_table == f.table)
                        .map(move |n| (vi, f.source, n.function.clone()))
                })
                .collect();
            if !navs.is_empty() {
                let (var, source, function) = pick(rng, &navs).clone();
                preds.push(Pred::Exists {
                    var,
                    source,
                    function,
                });
                continue;
            }
        }
        if roll < 42 {
            if let (Some(a), Some(b)) = (simple_cmp(rng, &fors), simple_cmp(rng, &fors)) {
                preds.push(Pred::Or(Box::new(a), Box::new(b)));
                continue;
            }
        }
        if let Some(p) = simple_cmp(rng, &fors) {
            preds.push(p);
        }
    }

    // --- tail ----------------------------------------------------------
    let groupable = fors.len() == 1 && {
        let f = &fors[0];
        !key_columns(model.table(f.source, &f.table)).is_empty()
    };
    let tail = if fors.len() == 1 {
        match rng.gen_range(0..100u32) {
            r if r < 25 && groupable => {
                let f = &fors[0];
                let t = model.table(f.source, &f.table);
                let keys = key_columns(t);
                let sums = sum_columns(t);
                Tail::GroupBy {
                    column: pick(rng, &keys).name.clone(),
                    agg_sum: if !sums.is_empty() && rng.gen_bool(0.5) {
                        Some(pick(rng, &sums).name.clone())
                    } else {
                        None
                    },
                }
            }
            r if r < 65 => order_by(rng, model, &fors),
            _ => Tail::None,
        }
    } else {
        // multi-for: total order is mandatory (see module docs)
        order_by(rng, model, &fors)
    };

    // --- return --------------------------------------------------------
    let ret = if matches!(tail, Tail::GroupBy { .. }) {
        Vec::new()
    } else {
        let mut items = Vec::new();
        let n = rng.gen_range(1..4usize);
        for _ in 0..n {
            items.push(ret_item(rng, model, &fors));
        }
        items
    };

    GenQuery {
        seed,
        fors,
        preds,
        tail,
        ret,
    }
}

/// User-chosen keys plus every variable's primary-key totalizers.
fn order_by(rng: &mut StdRng, model: &CatalogModel, fors: &[ForClause]) -> Tail {
    let mut keys: Vec<OrderKey> = Vec::new();
    let nuser = rng.gen_range(0..3usize);
    for _ in 0..nuser {
        let var = rng.gen_range(0..fors.len());
        let f = &fors[var];
        let cols = key_columns(model.table(f.source, &f.table));
        if cols.is_empty() {
            continue;
        }
        let col = pick(rng, &cols).name.clone();
        if keys.iter().any(|k| k.var == var && k.column == col) {
            continue;
        }
        keys.push(OrderKey {
            var,
            column: col,
            descending: rng.gen_bool(0.25),
        });
    }
    for (var, f) in fors.iter().enumerate() {
        for pk in &model.table(f.source, &f.table).primary_key {
            if !keys.iter().any(|k| k.var == var && &k.column == pk) {
                keys.push(OrderKey {
                    var,
                    column: pk.clone(),
                    descending: false,
                });
            }
        }
    }
    Tail::OrderBy { keys }
}

fn ret_item(rng: &mut StdRng, model: &CatalogModel, fors: &[ForClause]) -> RetItem {
    let navs: Vec<(usize, usize, String, String)> = fors
        .iter()
        .enumerate()
        .flat_map(|(vi, f)| {
            model.sources[f.source]
                .navs
                .iter()
                .filter(|n| n.from_table == f.table)
                .map(move |n| (vi, f.source, n.function.clone(), n.to_table.clone()))
        })
        .collect();
    let roll = rng.gen_range(0..100u32);
    if roll >= 50 {
        // conditional construction
        if roll < 70 {
            let candidates: Vec<(usize, &ForClause)> = fors
                .iter()
                .enumerate()
                .filter(|(_, f)| !cmp_columns(model.table(f.source, &f.table)).is_empty())
                .collect();
            if !candidates.is_empty() {
                let (var, f) = *pick(rng, &candidates);
                let t = model.table(f.source, &f.table);
                let cols = cmp_columns(t);
                let col = pick(rng, &cols);
                let then = pick(rng, &t.columns);
                return RetItem::Cond {
                    var,
                    column: col.name.clone(),
                    op: *pick(rng, &[CmpOp::Eq, CmpOp::Ne, CmpOp::Ge]),
                    lit: pick(rng, &col.samples).clone(),
                    then_column: then.name.clone(),
                };
            }
        } else if !navs.is_empty() {
            let (var, source, function, to_table) = pick(rng, &navs).clone();
            let target = model.table(source, &to_table);
            let sums = sum_columns(target);
            if roll < 80 {
                return RetItem::CountNav {
                    var,
                    source,
                    function,
                };
            }
            if roll < 90 && !sums.is_empty() {
                return RetItem::SumNav {
                    var,
                    source,
                    function,
                    column: sums[0].name.clone(),
                };
            }
            if target.primary_key.len() == 1 {
                return RetItem::NestedSeq {
                    var,
                    source,
                    function,
                    column: pick(rng, &target.columns).name.clone(),
                    order_col: target.primary_key[0].clone(),
                };
            }
        }
    }
    let var = rng.gen_range(0..fors.len());
    let f = &fors[var];
    let col = pick(rng, &model.table(f.source, &f.table).columns);
    RetItem::Field {
        var,
        column: col.name.clone(),
    }
}

impl GenQuery {
    /// Render to query text (prolog included).
    pub fn render(&self, model: &CatalogModel) -> String {
        let mut q = model.prolog();
        for (i, f) in self.fors.iter().enumerate() {
            let pfx = &model.sources[f.source].prefix;
            match &f.access {
                Access::Scan => {
                    q.push_str(&format!("for $v{i} in {pfx}:{}()\n", f.table));
                }
                Access::Nav { function, of } => {
                    q.push_str(&format!("for $v{i} in {pfx}:{function}($v{of})\n"));
                }
            }
        }
        if !self.preds.is_empty() {
            let conj: Vec<String> = self.preds.iter().map(|p| self.pred(model, p)).collect();
            q.push_str(&format!("where {}\n", conj.join(" and ")));
        }
        match &self.tail {
            Tail::None => {}
            Tail::OrderBy { keys } => {
                let ks: Vec<String> = keys
                    .iter()
                    .map(|k| {
                        format!(
                            "$v{}/{}{}",
                            k.var,
                            k.column,
                            if k.descending { " descending" } else { "" }
                        )
                    })
                    .collect();
                q.push_str(&format!("order by {}\n", ks.join(", ")));
            }
            Tail::GroupBy { column, agg_sum } => {
                q.push_str(&format!("group $v0 as $p by $v0/{column} as $k\n"));
                q.push_str("order by $k\n");
                let mut body = String::from("<g><k>{ $k }</k><c>{ count($p) }</c>");
                if let Some(s) = agg_sum {
                    body.push_str(&format!("<s>{{ sum(for $x in $p return $x/{s}) }}</s>"));
                }
                body.push_str("</g>");
                q.push_str(&format!("return {body}\n"));
                return q;
            }
        }
        let mut body = String::from("<r>");
        for (j, item) in self.ret.iter().enumerate() {
            body.push_str(&format!(
                "<f{j}>{{ {} }}</f{j}>",
                self.ret_expr(model, item, j)
            ));
        }
        body.push_str("</r>");
        q.push_str(&format!("return {body}\n"));
        q
    }

    fn pred(&self, model: &CatalogModel, p: &Pred) -> String {
        match p {
            Pred::Cmp {
                var,
                column,
                op,
                lit,
            } => format!("$v{var}/{column} {} {lit}", op.render()),
            Pred::Transform {
                tf,
                var,
                column,
                op,
                lit,
            } => {
                let t = &model.transforms[*tf];
                format!(
                    "{p}:{f}($v{var}/{column}) {op} {p}:{f}({lit})",
                    p = t.prefix,
                    f = t.function,
                    op = op.render()
                )
            }
            Pred::Join {
                lvar,
                lcol,
                rvar,
                rcol,
            } => format!("$v{lvar}/{lcol} eq $v{rvar}/{rcol}"),
            Pred::Exists {
                var,
                source,
                function,
            } => format!(
                "exists({}:{function}($v{var}))",
                model.sources[*source].prefix
            ),
            Pred::Or(a, b) => format!("({} or {})", self.pred(model, a), self.pred(model, b)),
        }
    }

    fn ret_expr(&self, model: &CatalogModel, item: &RetItem, j: usize) -> String {
        match item {
            RetItem::Field { var, column } => format!("$v{var}/{column}"),
            RetItem::Cond {
                var,
                column,
                op,
                lit,
                then_column,
            } => format!(
                "if ($v{var}/{column} {} {lit}) then $v{var}/{then_column} else ()",
                op.render()
            ),
            RetItem::CountNav {
                var,
                source,
                function,
            } => format!(
                "count({}:{function}($v{var}))",
                model.sources[*source].prefix
            ),
            RetItem::SumNav {
                var,
                source,
                function,
                column,
            } => format!(
                "sum(for $w{j} in {}:{function}($v{var}) return $w{j}/{column})",
                model.sources[*source].prefix
            ),
            RetItem::NestedSeq {
                var,
                source,
                function,
                column,
                order_col,
            } => format!(
                "for $w{j} in {}:{function}($v{var}) order by $w{j}/{order_col} return $w{j}/{column}",
                model.sources[*source].prefix
            ),
        }
    }
}
