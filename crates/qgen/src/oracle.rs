//! The differential oracle: one query, many configurations, one
//! answer.
//!
//! A configuration cell is a full [`AldspServer`] built with a
//! particular optimizer/runtime setting ([`CellSpec`]); cell 0 is the
//! **reference**: SQL pushdown off (every operator runs in the
//! middleware interpreter), no prefetch, materialized, unbudgeted.
//! [`Oracle::check`] executes a query in every cell and demands the
//! serialized token stream be byte-identical to the reference — the
//! optimizer may change *how* an answer is computed, never *what* it
//! is (§4.3's contract for the pushdown framework).

use aldsp::security::Principal;
use aldsp::xdm::item::Item;
use aldsp::xdm::xml::serialize_sequence;
use aldsp::{
    AldspServer, ExecutionOptions, JoinStrategy, PushdownLevel, QueryRequest, ServerError,
};

/// One configuration cell of the differential matrix.
#[derive(Debug, Clone)]
pub struct CellSpec {
    /// Short cell name used in mismatch reports (`"off"`, `"full+pp2"`).
    pub name: &'static str,
    /// SQL pushdown level for this cell's compiler.
    pub pushdown: PushdownLevel,
    /// PP-k prefetch depth (0 disables pipelined prefetch).
    pub prefetch_depth: usize,
    /// Deliver results through a streaming sink instead of
    /// materializing (the serialized bytes must not care).
    pub streaming: bool,
    /// Per-query memory budget in bytes (`None` = unbudgeted). Budgets
    /// in the matrix are sized to never trip — a budget that changes
    /// the answer is exactly the kind of bug the oracle exists to
    /// catch.
    pub memory_budget: Option<u64>,
    /// Run compiled expression subtrees on the bytecode VM (`true`) or
    /// force the pure tree-walker (`false`). The reference cell keeps
    /// the walker so every VM cell is checked against uncompiled
    /// evaluation.
    pub vm: bool,
    /// Worker threads for morsel-driven parallel execution (1 =
    /// sequential). Multi-worker cells run unbudgeted — a budget trip
    /// mid-fan-out may surface at a different tuple than sequential
    /// execution, and the oracle pins *successful* outputs.
    pub workers: usize,
    /// Middleware join-method selection for the join planner
    /// ([`JoinStrategy::Auto`] = cost-based; forced levels pin every
    /// strategy's output to the naive reference).
    pub join_strategy: JoinStrategy,
}

/// The default 11-cell matrix from the roadmap: pushdown {off, joins,
/// full} × representative prefetch/streaming/budget/VM settings, plus
/// the workers {1, 4} axis — multi-worker cells must be byte-identical
/// to the single-threaded reference, pinning the morsel merge's
/// determinism. The multi-worker cells keep pushdown at joins/full:
/// parallel regions anchor on a pushed SQL scan, so a pushdown-off
/// plan never fans out (its scans are plain source calls). Cell 0 is the naive reference: no pushdown *and* no
/// expression VM, so every other cell's bytecode programs are
/// differentially checked against pure tree-walking.
pub fn default_matrix() -> Vec<CellSpec> {
    let cell =
        |name, pushdown, prefetch_depth, streaming, memory_budget, vm, workers, join| CellSpec {
            name,
            pushdown,
            prefetch_depth,
            streaming,
            memory_budget,
            vm,
            workers,
            join_strategy: join,
        };
    let auto = JoinStrategy::Auto;
    vec![
        cell("off", PushdownLevel::Off, 0, false, None, false, 1, auto),
        cell("off+vm", PushdownLevel::Off, 0, false, None, true, 1, auto),
        cell(
            "off+stream",
            PushdownLevel::Off,
            0,
            true,
            None,
            true,
            1,
            auto,
        ),
        cell("joins", PushdownLevel::Joins, 0, false, None, true, 1, auto),
        cell(
            "joins+pp2",
            PushdownLevel::Joins,
            2,
            true,
            None,
            true,
            1,
            auto,
        ),
        cell("full", PushdownLevel::Full, 0, false, None, true, 1, auto),
        cell(
            "full+pp2",
            PushdownLevel::Full,
            2,
            false,
            None,
            true,
            1,
            auto,
        ),
        cell(
            "full+stream",
            PushdownLevel::Full,
            2,
            true,
            None,
            true,
            1,
            auto,
        ),
        cell(
            "full+budget",
            PushdownLevel::Full,
            0,
            false,
            Some(64 << 20),
            true,
            1,
            auto,
        ),
        cell(
            "full+mt4",
            PushdownLevel::Full,
            0,
            false,
            None,
            true,
            4,
            auto,
        ),
        cell(
            "joins+mt4",
            PushdownLevel::Joins,
            0,
            false,
            None,
            true,
            4,
            auto,
        ),
        // the join-strategy axis: every middleware join method must be
        // byte-identical to the naive nested-loop reference
        cell(
            "joins+hash",
            PushdownLevel::Joins,
            0,
            false,
            None,
            true,
            1,
            JoinStrategy::Hash,
        ),
        cell(
            "joins+merge",
            PushdownLevel::Joins,
            0,
            false,
            None,
            true,
            1,
            JoinStrategy::Merge,
        ),
        cell(
            "joins+inl",
            PushdownLevel::Joins,
            0,
            false,
            None,
            true,
            1,
            JoinStrategy::IndexNl,
        ),
        cell(
            "full+hash",
            PushdownLevel::Full,
            2,
            false,
            None,
            true,
            1,
            JoinStrategy::Hash,
        ),
    ]
}

/// Why a differential check failed.
#[derive(Debug, Clone)]
pub enum Mismatch {
    /// A cell returned an error (the reference succeeded, or the
    /// reference itself failed — either way the seed is a finding).
    Error {
        /// Failing cell name.
        cell: &'static str,
        /// Rendered error.
        error: String,
    },
    /// A cell's serialized output differed from the reference.
    Diverged {
        /// Diverging cell name.
        cell: &'static str,
        /// Reference (cell 0) serialization.
        expected: String,
        /// This cell's serialization.
        actual: String,
    },
}

impl std::fmt::Display for Mismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Mismatch::Error { cell, error } => write!(f, "cell '{cell}' errored: {error}"),
            Mismatch::Diverged {
                cell,
                expected,
                actual,
            } => write!(
                f,
                "cell '{cell}' diverged from reference\n  reference: {expected}\n  cell:      {actual}"
            ),
        }
    }
}

/// The oracle: the cell servers (built once, reused across seeds — the
/// fixture data is immutable) plus the principal queries run as.
pub struct Oracle {
    cells: Vec<(CellSpec, AldspServer)>,
    principal: Principal,
}

impl Oracle {
    /// Build every cell server with `build` (a closure over the shared
    /// fixture data; typically `world_tuned` with the spec's knobs).
    pub fn new(
        specs: Vec<CellSpec>,
        principal: Principal,
        mut build: impl FnMut(&CellSpec) -> AldspServer,
    ) -> Oracle {
        assert!(!specs.is_empty(), "oracle needs at least a reference cell");
        let cells = specs
            .into_iter()
            .map(|spec| {
                let server = build(&spec);
                (spec, server)
            })
            .collect();
        Oracle { cells, principal }
    }

    /// Cell specs, reference first.
    pub fn specs(&self) -> impl Iterator<Item = &CellSpec> {
        self.cells.iter().map(|(s, _)| s)
    }

    /// Execute `query` in cell `i` and serialize the result. Streaming
    /// cells collect their sink items and serialize once at the end,
    /// so atomic-separator whitespace matches the materialized path.
    pub fn run_cell(&self, i: usize, query: &str) -> Result<String, ServerError> {
        let (spec, server) = &self.cells[i];
        let mut req = QueryRequest::new(query).principal(self.principal.clone());
        if let Some(b) = spec.memory_budget {
            req = req.memory_budget(b);
        }
        if spec.workers != 1 || spec.join_strategy != JoinStrategy::Auto {
            // a tiny morsel size so the small fixture actually fans
            // out; compile knobs repeat the cell's own settings (the
            // override replaces the whole set)
            req = req.execution(
                ExecutionOptions::new()
                    .workers(spec.workers)
                    .morsel_size(2)
                    .pushdown(spec.pushdown)
                    .ppk_prefetch_depth(spec.prefetch_depth)
                    .join_strategy(spec.join_strategy),
            );
        }
        if spec.streaming {
            let mut collected: Vec<Item> = Vec::new();
            let mut sink = |item: Item| {
                collected.push(item);
                true
            };
            server.execute(req.stream_to(&mut sink))?;
            Ok(serialize_sequence(&collected))
        } else {
            let resp = server.execute(req)?;
            Ok(serialize_sequence(resp.items()))
        }
    }

    /// Run `query` in every cell; `Ok` returns the reference
    /// serialization, `Err` the first mismatch.
    pub fn check(&self, query: &str) -> Result<String, Mismatch> {
        let reference = self.run_cell(0, query).map_err(|e| Mismatch::Error {
            cell: self.cells[0].0.name,
            error: e.to_string(),
        })?;
        for i in 1..self.cells.len() {
            let name = self.cells[i].0.name;
            let out = self.run_cell(i, query).map_err(|e| Mismatch::Error {
                cell: name,
                error: e.to_string(),
            })?;
            if out != reference {
                return Err(Mismatch::Diverged {
                    cell: name,
                    expected: reference,
                    actual: out,
                });
            }
        }
        Ok(reference)
    }

    /// Materialized reference items (for fault-trial prefix checks).
    pub fn reference_items(&self, query: &str) -> Result<Vec<Item>, ServerError> {
        let (_, server) = &self.cells[0];
        let resp = server.execute(QueryRequest::new(query).principal(self.principal.clone()))?;
        Ok(resp.into_items())
    }
}
