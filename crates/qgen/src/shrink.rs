//! Greedy structural shrinking of failing queries.
//!
//! Given a failing [`GenQuery`] and a predicate that re-runs the
//! oracle, [`shrink`] repeatedly tries structure-removing candidates
//! (drop a return item, drop a predicate, simplify a disjunction or
//! conditional, drop the trailing `for`, simplify the tail) and keeps
//! the first candidate that still fails, until no candidate fails.
//! The result is a local minimum: removing any single piece makes the
//! bug disappear — which is exactly what a human wants to read in a
//! failure report.

use crate::gen::{Access, GenQuery, Pred, RetItem, Tail};
use crate::model::CatalogModel;

/// One-step-smaller variants of `q`, most-aggressive first.
fn candidates(model: &CatalogModel, q: &GenQuery) -> Vec<GenQuery> {
    let mut out = Vec::new();

    // drop the trailing for (nothing can reference a later variable),
    // with everything mentioning it
    if q.fors.len() > 1 {
        let last = q.fors.len() - 1;
        let mut c = q.clone();
        c.fors.pop();
        c.preds.retain(|p| !pred_uses(p, last));
        c.ret.retain(|r| !ret_uses(r, last));
        if let Tail::OrderBy { keys } = &mut c.tail {
            keys.retain(|k| k.var != last);
        }
        if c.ret.is_empty() && !matches!(c.tail, Tail::GroupBy { .. }) {
            c.ret.push(RetItem::Field {
                var: 0,
                column: any_column(model, &c, 0),
            });
        }
        out.push(c);
    }

    // drop each predicate (skip Join preds while both sides are still
    // bound — dropping one turns a join into a cartesian product,
    // which grows the query instead of shrinking it)
    for i in 0..q.preds.len() {
        if matches!(q.preds[i], Pred::Join { .. }) {
            continue;
        }
        let mut c = q.clone();
        c.preds.remove(i);
        out.push(c);
    }

    // simplify a disjunction to its left arm
    for i in 0..q.preds.len() {
        if let Pred::Or(a, _) = &q.preds[i] {
            let mut c = q.clone();
            c.preds[i] = (**a).clone();
            out.push(c);
        }
    }

    // drop each return item (keep at least one)
    if q.ret.len() > 1 {
        for i in 0..q.ret.len() {
            let mut c = q.clone();
            c.ret.remove(i);
            out.push(c);
        }
    }

    // replace a compound return item with a plain field
    for i in 0..q.ret.len() {
        let var = match &q.ret[i] {
            RetItem::Field { .. } => continue,
            RetItem::Cond { var, .. }
            | RetItem::CountNav { var, .. }
            | RetItem::SumNav { var, .. }
            | RetItem::NestedSeq { var, .. } => *var,
        };
        let mut c = q.clone();
        c.ret[i] = RetItem::Field {
            var,
            column: any_column(model, q, var),
        };
        out.push(c);
    }

    // simplify the tail
    match &q.tail {
        Tail::GroupBy {
            agg_sum: Some(_),
            column,
        } => {
            let mut c = q.clone();
            c.tail = Tail::GroupBy {
                column: column.clone(),
                agg_sum: None,
            };
            out.push(c);
        }
        Tail::OrderBy { .. } if q.fors.len() == 1 => {
            // single-for order-by can be dropped entirely
            let mut c = q.clone();
            c.tail = Tail::None;
            out.push(c);
        }
        Tail::OrderBy { keys } => {
            // multi-for: PK totalizers must stay (they carry the total
            // order the oracle depends on); try dropping user keys
            for i in 0..keys.len() {
                let k = &keys[i];
                if is_pk_key(model, q, k.var, &k.column) {
                    continue;
                }
                let mut ks = keys.clone();
                ks.remove(i);
                let mut c = q.clone();
                c.tail = Tail::OrderBy { keys: ks };
                out.push(c);
            }
        }
        _ => {}
    }

    out
}

fn pred_uses(p: &Pred, var: usize) -> bool {
    match p {
        Pred::Cmp { var: v, .. } | Pred::Transform { var: v, .. } | Pred::Exists { var: v, .. } => {
            *v == var
        }
        Pred::Join { lvar, rvar, .. } => *lvar == var || *rvar == var,
        Pred::Or(a, b) => pred_uses(a, var) || pred_uses(b, var),
    }
}

fn ret_uses(r: &RetItem, var: usize) -> bool {
    match r {
        RetItem::Field { var: v, .. }
        | RetItem::Cond { var: v, .. }
        | RetItem::CountNav { var: v, .. }
        | RetItem::SumNav { var: v, .. }
        | RetItem::NestedSeq { var: v, .. } => *v == var,
    }
}

/// Candidates that dropped a `for` another `for` navigates from are
/// discarded — no dangling `Nav.of` references reach the renderer.
fn well_formed(q: &GenQuery) -> bool {
    q.fors.iter().enumerate().all(|(i, f)| match &f.access {
        Access::Scan => true,
        Access::Nav { of, .. } => *of < i,
    })
}

/// A replacement projection column for `var`: its PK head if the
/// table has one, else its first column.
fn any_column(model: &CatalogModel, q: &GenQuery, var: usize) -> String {
    let f = &q.fors[var];
    let t = model.table(f.source, &f.table);
    t.primary_key
        .first()
        .cloned()
        .unwrap_or_else(|| t.columns[0].name.clone())
}

fn is_pk_key(model: &CatalogModel, q: &GenQuery, var: usize, column: &str) -> bool {
    let f = &q.fors[var];
    model
        .table(f.source, &f.table)
        .primary_key
        .iter()
        .any(|pk| pk == column)
}

/// Shrink `q` while `still_fails` holds. `still_fails` is called on
/// each candidate; it should render the candidate against the model
/// and re-run the oracle, returning `true` when the failure persists.
pub fn shrink(
    model: &CatalogModel,
    q: &GenQuery,
    mut still_fails: impl FnMut(&GenQuery) -> bool,
) -> GenQuery {
    let mut cur = q.clone();
    loop {
        let mut advanced = false;
        for cand in candidates(model, &cur) {
            if !well_formed(&cand) {
                continue;
            }
            if still_fails(&cand) {
                cur = cand;
                advanced = true;
                break;
            }
        }
        if !advanced {
            return cur;
        }
    }
}
