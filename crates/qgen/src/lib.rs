//! # aldsp-qgen — differential query-correctness harness
//!
//! SQLancer-style differential testing for the ALDSP reproduction: a
//! seeded, deterministic random FLWGOR generator ([`gen`]) driven by a
//! model of the introspected catalogs ([`model`]), an oracle that
//! executes each generated query under a matrix of optimizer/runtime
//! configurations and demands byte-identical serialized results
//! ([`oracle`]), seeded fault-schedule trials asserting the
//! result-or-typed-error invariant ([`fault`]), and a greedy shrinker
//! that reduces a failing seed to a minimal query ([`shrink`]).
//!
//! The contract under test is §4.3's: the pushdown framework (and
//! every other optimization — PP-k prefetch, streaming delivery,
//! memory budgeting) may change *how* an answer is computed, never
//! *what* it is. The naive reference cell (pushdown off, everything
//! interpreted in the middleware) defines *what*.
//!
//! Reproduce any failure with its seed:
//!
//! ```text
//! DIFFTEST_SEED_START=<seed> DIFFTEST_SEEDS=1 cargo test -p aldsp --test difftest
//! ```

pub mod fault;
pub mod gen;
pub mod model;
pub mod oracle;
pub mod shrink;
pub mod writes;

pub use fault::{generate_plan, run_fault_trial, FaultOutcome, FaultPlan};
pub use gen::{generate, GenQuery};
pub use model::{CatalogModel, ColTy};
pub use oracle::{default_matrix, CellSpec, Mismatch, Oracle};
pub use shrink::shrink;
pub use writes::{generate_writes, WriteOp};
