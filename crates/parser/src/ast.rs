//! Abstract syntax for the ALDSP XQuery dialect.
//!
//! The AST mirrors the July-2004 XQuery working draft subset ALDSP 2.1
//! supports (§3.1), plus the ALDSP extensions: the FLWGOR `group … by`
//! clause, conditional construction (`<E?>`), and `(::pragma …::)`
//! annotations carrying data-source metadata (§3.2).

use aldsp_xdm::item::CompOp;
use aldsp_xdm::value::{ArithOp, AtomicValue};
use aldsp_xdm::QName;

/// A half-open byte range into the source text, for diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// Start byte offset.
    pub start: u32,
    /// End byte offset (exclusive).
    pub end: u32,
}

impl Span {
    /// Construct a span.
    pub fn new(start: usize, end: usize) -> Span {
        Span {
            start: start as u32,
            end: end as u32,
        }
    }

    /// The union of two spans.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

/// A parsed XQuery module: prolog plus an optional main query body.
#[derive(Debug, Clone, Default)]
pub struct Module {
    /// `xquery version "…"` if present.
    pub version: Option<String>,
    /// `declare namespace p = "uri"` bindings, in order.
    pub namespaces: Vec<(String, String)>,
    /// `declare default element namespace "uri"`.
    pub default_element_ns: Option<String>,
    /// `import schema namespace p = "uri" (at "loc")?`.
    pub schema_imports: Vec<SchemaImport>,
    /// Function declarations (a data service file is a set of these).
    pub functions: Vec<FunctionDecl>,
    /// `declare variable $x as T external` declarations.
    pub variables: Vec<VarDecl>,
    /// The main query expression, if any.
    pub body: Option<Expr>,
}

/// One `import schema` declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemaImport {
    /// Bound prefix, if given.
    pub prefix: Option<String>,
    /// Target namespace URI.
    pub uri: String,
    /// `at` location hint, if given (captured, not dereferenced).
    pub location: Option<String>,
}

/// A `(::pragma … ::)` annotation. ALDSP uses these to carry source
/// metadata on system-generated functions (§3.2): kind (`read`,
/// `navigate`, …), RDBMS vendor/version/connection, key info, WSDL
/// location, and so on. The content is stored raw plus parsed into
/// `key="value"` pairs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Pragma {
    /// Raw pragma content (after `::pragma`, before the closing `::)`).
    pub raw: String,
    /// `key="value"` attributes extracted from the raw content.
    pub attrs: Vec<(String, String)>,
}

impl Pragma {
    /// Parse a raw pragma body into attributes.
    pub fn parse(raw: &str) -> Pragma {
        let mut attrs = Vec::new();
        let bytes = raw.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            // find `key="value"` pairs
            while i < bytes.len() && !(bytes[i].is_ascii_alphabetic() || bytes[i] == b'_') {
                i += 1;
            }
            let ks = i;
            while i < bytes.len()
                && (bytes[i].is_ascii_alphanumeric() || matches!(bytes[i], b'_' | b'-' | b':'))
            {
                i += 1;
            }
            let key = &raw[ks..i];
            while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                i += 1;
            }
            if i < bytes.len() && bytes[i] == b'=' {
                i += 1;
                while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                    i += 1;
                }
                if i < bytes.len() && bytes[i] == b'"' {
                    i += 1;
                    let vs = i;
                    while i < bytes.len() && bytes[i] != b'"' {
                        i += 1;
                    }
                    attrs.push((key.to_string(), raw[vs..i].to_string()));
                    i += 1;
                }
            }
        }
        Pragma {
            raw: raw.to_string(),
            attrs,
        }
    }

    /// Look up an attribute value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A lexical (possibly prefixed) name, resolved to a [`QName`] during
/// compilation against the module's namespace environment.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Name {
    /// The prefix as written, if any.
    pub prefix: Option<String>,
    /// The local part.
    pub local: String,
}

impl Name {
    /// An unprefixed name.
    pub fn local(s: &str) -> Name {
        Name {
            prefix: None,
            local: s.to_string(),
        }
    }

    /// A prefixed name.
    pub fn prefixed(p: &str, l: &str) -> Name {
        Name {
            prefix: Some(p.to_string()),
            local: l.to_string(),
        }
    }

    /// Parse `p:l` or `l`.
    pub fn parse(lexical: &str) -> Name {
        match lexical.split_once(':') {
            Some((p, l)) => Name::prefixed(p, l),
            None => Name::local(lexical),
        }
    }

    /// Resolve against a prefix→uri mapping; unprefixed names take
    /// `default_ns` when provided.
    pub fn resolve(
        &self,
        lookup: &dyn Fn(&str) -> Option<String>,
        default_ns: Option<&str>,
    ) -> Option<QName> {
        match &self.prefix {
            Some(p) => lookup(p).map(|u| QName::with_prefix(p, &u, &self.local)),
            None => Some(match default_ns {
                Some(u) => QName::new(u, &self.local),
                None => QName::local(&self.local),
            }),
        }
    }
}

impl std::fmt::Display for Name {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.prefix {
            Some(p) => write!(f, "{p}:{}", self.local),
            None => f.write_str(&self.local),
        }
    }
}

/// A function declaration.
#[derive(Debug, Clone)]
pub struct FunctionDecl {
    /// Pragmas immediately preceding the declaration.
    pub pragmas: Vec<Pragma>,
    /// The function name.
    pub name: Name,
    /// Parameters in order.
    pub params: Vec<Param>,
    /// Declared return type, if any.
    pub return_type: Option<SeqTypeAst>,
    /// The body; `None` when declared `external` **or** when the body
    /// failed to parse (the paper keeps error-free signatures available
    /// for checking other functions, §4.1 — `external` distinguishes).
    pub body: Option<Expr>,
    /// `true` when declared `external`.
    pub external: bool,
    /// Source span of the whole declaration.
    pub span: Span,
}

/// One function parameter.
#[derive(Debug, Clone)]
pub struct Param {
    /// Parameter variable name (without `$`).
    pub name: String,
    /// Declared type, if any.
    pub ty: Option<SeqTypeAst>,
}

/// An external variable declaration.
#[derive(Debug, Clone)]
pub struct VarDecl {
    /// Variable name (without `$`).
    pub name: String,
    /// Declared type, if any.
    pub ty: Option<SeqTypeAst>,
}

/// Occurrence indicator in a sequence-type annotation.
pub use aldsp_xdm::types::Occurrence;

/// Syntactic sequence type, resolved by the compiler.
#[derive(Debug, Clone, PartialEq)]
pub struct SeqTypeAst {
    /// The item-type part.
    pub item: ItemTypeAst,
    /// Occurrence indicator.
    pub occ: Occurrence,
}

/// Syntactic item type.
#[derive(Debug, Clone, PartialEq)]
pub enum ItemTypeAst {
    /// `item()`.
    AnyItem,
    /// `node()`.
    AnyNode,
    /// `text()`.
    Text,
    /// `document-node()`.
    Document,
    /// `empty-sequence()` (only valid as a whole sequence type).
    EmptySequence,
    /// A named atomic type, e.g. `xs:string`.
    Atomic(Name),
    /// `element()` / `element(N)` — content `ANYTYPE`.
    Element(Option<Name>),
    /// `schema-element(N)` — N must be declared in an imported schema.
    SchemaElement(Name),
    /// `attribute()` / `attribute(N)`.
    Attribute(Option<Name>),
}

/// An expression with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// The expression kind.
    pub kind: ExprKind,
    /// Source span.
    pub span: Span,
}

impl Expr {
    /// Construct an expression.
    pub fn new(kind: ExprKind, span: Span) -> Expr {
        Expr { kind, span }
    }
}

/// Expression kinds of the ALDSP XQuery subset.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// A literal atomic value.
    Literal(AtomicValue),
    /// `$x`.
    VarRef(String),
    /// `.` — the context item.
    ContextItem,
    /// `()` or `(a, b, …)` — sequence construction (flattening).
    Sequence(Vec<Expr>),
    /// `a to b`.
    Range(Box<Expr>, Box<Expr>),
    /// A FLWOR (or FLWGOR) expression.
    Flwor {
        /// The clause list in source order.
        clauses: Vec<Clause>,
        /// The `return` expression.
        ret: Box<Expr>,
    },
    /// `if (c) then t else e`.
    If {
        /// Condition.
        cond: Box<Expr>,
        /// Then branch.
        then: Box<Expr>,
        /// Else branch.
        els: Box<Expr>,
    },
    /// `some`/`every` `$v in e … satisfies p`.
    Quantified {
        /// `true` for `every`, `false` for `some`.
        every: bool,
        /// `(variable, domain)` bindings.
        bindings: Vec<(String, Expr)>,
        /// The `satisfies` predicate.
        satisfies: Box<Expr>,
    },
    /// `typeswitch (e) case … default …`.
    Typeswitch {
        /// The operand.
        operand: Box<Expr>,
        /// `case ($v as)? T return e` branches.
        cases: Vec<TypeswitchCase>,
        /// Default branch variable, if bound.
        default_var: Option<String>,
        /// Default branch body.
        default: Box<Expr>,
    },
    /// `a or b`.
    Or(Box<Expr>, Box<Expr>),
    /// `a and b`.
    And(Box<Expr>, Box<Expr>),
    /// Value (`eq`) or general (`=`) comparison.
    Comparison {
        /// The operator.
        op: CompOp,
        /// `true` for general (`=`), `false` for value (`eq`) form.
        general: bool,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Arithmetic.
    Arith {
        /// The operator.
        op: ArithOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary minus.
    Neg(Box<Expr>),
    /// A path: a start expression followed by steps.
    Path {
        /// The origin (`ContextItem` for relative paths).
        start: Box<Expr>,
        /// The navigation steps.
        steps: Vec<Step>,
    },
    /// Predicates applied to a non-path primary: `expr[p1][p2]`.
    Filter {
        /// The filtered expression.
        base: Box<Expr>,
        /// The predicate list.
        predicates: Vec<Expr>,
    },
    /// A function call.
    Call {
        /// The function name.
        name: Name,
        /// Arguments in order.
        args: Vec<Expr>,
    },
    /// A direct element constructor, with the ALDSP `<E?>` extension.
    DirectElement {
        /// The element name.
        name: Name,
        /// `true` when written `<E?>` — construct only if content
        /// is non-empty (§3.1).
        conditional: bool,
        /// Attribute constructors.
        attributes: Vec<AttrConstructor>,
        /// Child content: text chunks and enclosed expressions.
        content: Vec<Expr>,
        /// Namespace declarations written on the tag.
        namespaces: Vec<(String, String)>,
        /// Default-namespace declaration written on the tag, if any.
        default_ns: Option<String>,
    },
    /// `e instance of T`.
    InstanceOf(Box<Expr>, SeqTypeAst),
    /// `e cast as T`.
    CastAs(Box<Expr>, SeqTypeAst),
    /// `e castable as T`.
    CastableAs(Box<Expr>, SeqTypeAst),
    /// `e treat as T`.
    TreatAs(Box<Expr>, SeqTypeAst),
    /// The error placeholder substituted during design-time error
    /// recovery (§4.1); carries the salvageable sub-expressions.
    Error(Vec<Expr>),
}

/// One `typeswitch` case.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeswitchCase {
    /// Case variable, if bound.
    pub var: Option<String>,
    /// The matched type.
    pub ty: SeqTypeAst,
    /// The branch body.
    pub body: Expr,
}

/// An attribute constructor inside a direct element constructor. The
/// value is a list of literal/enclosed parts; `conditional` marks the
/// ALDSP `name?="…"` extension.
#[derive(Debug, Clone, PartialEq)]
pub struct AttrConstructor {
    /// The attribute name.
    pub name: Name,
    /// `true` when written `name?=…` — emit only if the value is
    /// non-empty.
    pub conditional: bool,
    /// Value parts: string literals and enclosed expressions.
    pub value: Vec<Expr>,
}

/// One FLW(G)OR clause.
#[derive(Debug, Clone, PartialEq)]
pub enum Clause {
    /// `for $v (at $p)? in e`.
    For {
        /// Binding variable.
        var: String,
        /// Positional variable, if any.
        pos_var: Option<String>,
        /// Declared type annotation, if any.
        ty: Option<SeqTypeAst>,
        /// The domain expression.
        source: Expr,
    },
    /// `let $v := e`.
    Let {
        /// Binding variable.
        var: String,
        /// Declared type annotation, if any.
        ty: Option<SeqTypeAst>,
        /// The bound expression.
        value: Expr,
    },
    /// `where e`.
    Where(Expr),
    /// The ALDSP group clause:
    /// `group ($v1 as $v2 (, …)*)? by e1 (as $k1)? (, e2 (as $k2)?)*`.
    GroupBy {
        /// Regrouped variables: each `(source var, sequence var)` pair.
        bindings: Vec<GroupBinding>,
        /// Grouping keys.
        keys: Vec<GroupKey>,
    },
    /// `order by e (ascending|descending)? (, …)*`.
    OrderBy(Vec<OrderSpec>),
}

/// One `group $a as $b` binding.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupBinding {
    /// The pre-grouping variable.
    pub from: String,
    /// The variable bound to the per-group sequence.
    pub to: String,
}

/// One grouping key `expr (as $name)?`.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupKey {
    /// The grouping expression.
    pub expr: Expr,
    /// The key's binding name, if given.
    pub alias: Option<String>,
}

/// One `order by` specification.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderSpec {
    /// The ordering key expression.
    pub expr: Expr,
    /// `true` for `descending`.
    pub descending: bool,
    /// `true` for `empty least` (the default).
    pub empty_least: bool,
}

/// A node-name test in a step.
#[derive(Debug, Clone, PartialEq)]
pub enum NameTest {
    /// A specific name.
    Name(Name),
    /// `*`.
    Wildcard,
}

/// One path step with its predicates.
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    /// The axis.
    pub axis: Axis,
    /// The node-name test.
    pub test: NameTest,
    /// Predicates applied to the step result.
    pub predicates: Vec<Expr>,
}

/// Supported axes — the data-centric subset (the paper notes "complex
/// path expressions" are simply not pushable, §4.3; descendant is kept
/// for in-memory navigation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// `child::` (default).
    Child,
    /// `attribute::` / `@`.
    Attribute,
    /// `descendant-or-self::node()/` — the `//` abbreviation.
    DescendantOrSelf,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pragma_attr_parsing() {
        let p = Pragma::parse(
            r#"function dsml:CUSTOMER kind="read" sourceType="relational" connection="db1""#,
        );
        assert_eq!(p.get("kind"), Some("read"));
        assert_eq!(p.get("connection"), Some("db1"));
        assert_eq!(p.get("missing"), None);
    }

    #[test]
    fn pragma_tolerates_noise() {
        let p = Pragma::parse("   ...  kind=\"navigate\" <xml>junk</xml> key=\"CID\"");
        assert_eq!(p.get("kind"), Some("navigate"));
        assert_eq!(p.get("key"), Some("CID"));
    }

    #[test]
    fn name_parse_and_resolve() {
        let n = Name::parse("tns:getProfile");
        assert_eq!(n.prefix.as_deref(), Some("tns"));
        let lookup = |p: &str| (p == "tns").then(|| "urn:profile".to_string());
        let q = n.resolve(&lookup, None).unwrap();
        assert_eq!(q.uri(), Some("urn:profile"));
        assert_eq!(q.local_name(), "getProfile");
        // unprefixed with default
        let u = Name::parse("CUSTOMER")
            .resolve(&lookup, Some("urn:d"))
            .unwrap();
        assert_eq!(u.uri(), Some("urn:d"));
        // unbound prefix
        assert!(Name::parse("zz:x").resolve(&lookup, None).is_none());
    }

    #[test]
    fn span_union() {
        let a = Span::new(2, 5);
        let b = Span::new(4, 9);
        assert_eq!(a.to(b), Span::new(2, 9));
    }
}
