//! The recursive-descent XQuery parser with error recovery (§4.1).
//!
//! The parser has the two modes the paper describes: **fail-fast** for
//! runtime query compilation (stop at the first error) and **recover**
//! for design-time use by the graphical XQuery editor: on a syntax error
//! inside a prolog declaration it records a diagnostic, skips to the next
//! `;`, and keeps going, so one compilation pass surfaces as many errors
//! as possible. Error-free signatures of functions with broken bodies are
//! retained so uses of those functions can still be checked.

use crate::ast::*;
use crate::lexer::{decode_refs, is_name_start, Scanner, Tok};
use aldsp_xdm::item::CompOp;
use aldsp_xdm::value::{ArithOp, AtomicValue, Decimal};

/// A parser or analysis diagnostic.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Where in the source.
    pub span: Span,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}..{}] {}",
            self.span.start, self.span.end, self.message
        )
    }
}

impl std::error::Error for Diagnostic {}

/// Compilation mode (§4.1): fail on first error at runtime, recover and
/// collect as many errors as possible at design time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Stop at the first error (runtime query compilation).
    FailFast,
    /// Recover per-declaration and collect diagnostics (XQuery editor).
    Recover,
}

/// Parse a whole module in [`Mode::Recover`], returning the (partial)
/// module plus all diagnostics.
pub fn parse_module(src: &str) -> (Module, Vec<Diagnostic>) {
    let mut p = Parser::new(src, Mode::Recover);
    let m = p.module();
    (m, p.diags)
}

/// Parse a whole module in [`Mode::FailFast`].
pub fn parse_module_strict(src: &str) -> Result<Module, Diagnostic> {
    let mut p = Parser::new(src, Mode::FailFast);
    let m = p.module();
    match p.diags.into_iter().next() {
        Some(d) => Err(d),
        None => Ok(m),
    }
}

/// Parse a standalone expression (an ad-hoc query body).
pub fn parse_expr(src: &str) -> Result<Expr, Diagnostic> {
    let mut p = Parser::new(src, Mode::FailFast);
    let e = p.expr().map_err(|d| d.clone_first(&p.diags))?;
    if let Err(d) = p.expect_eof() {
        return Err(d.clone_first(&p.diags));
    }
    match p.diags.into_iter().next() {
        Some(d) => Err(d),
        None => Ok(e),
    }
}

/// Internal error marker: the diagnostic has already been pushed.
struct Fail;

impl Fail {
    fn clone_first(&self, diags: &[Diagnostic]) -> Diagnostic {
        diags.first().cloned().unwrap_or_else(|| Diagnostic {
            span: Span::default(),
            message: "parse error".into(),
        })
    }
}

type PResult<T> = Result<T, Fail>;

struct Parser<'a> {
    s: Scanner<'a>,
    mode: Mode,
    diags: Vec<Diagnostic>,
    pending_pragmas: Vec<Pragma>,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str, mode: Mode) -> Parser<'a> {
        Parser {
            s: Scanner::new(src),
            mode,
            diags: Vec::new(),
            pending_pragmas: Vec::new(),
        }
    }

    // ---- token plumbing -------------------------------------------------

    /// Consume and return the next non-trivia token; pragmas are captured
    /// into `pending_pragmas`; lexical errors become diagnostics and the
    /// offending character is skipped.
    fn next(&mut self) -> (Tok, Span) {
        loop {
            match self.s.next() {
                Ok((Tok::Pragma(body), _)) => {
                    self.pending_pragmas.push(Pragma::parse(&body));
                }
                Ok(ts) => return ts,
                Err(e) => {
                    self.diags.push(Diagnostic {
                        span: Span::new(e.pos, e.pos + 1),
                        message: e.message,
                    });
                    // skip one char and retry so recovery can proceed
                    let p = self.s.raw_pos();
                    if self.s.peek_char().is_none() {
                        return (Tok::Eof, Span::new(p, p));
                    }
                    self.s.seek(p + 1);
                }
            }
        }
    }

    /// Permanently consume any pragmas (and trivia) ahead of the next
    /// token, capturing them into `pending_pragmas`. Used before each
    /// prolog declaration so its annotations attach to it.
    fn consume_pragmas(&mut self) {
        loop {
            let p = self.s.raw_pos();
            match self.s.next() {
                Ok((Tok::Pragma(body), _)) => {
                    self.pending_pragmas.push(Pragma::parse(&body));
                }
                _ => {
                    self.s.seek(p);
                    return;
                }
            }
        }
    }

    /// Peek the next token without consuming it.
    fn peek(&mut self) -> (Tok, Span) {
        let p = self.s.raw_pos();
        let n_diags = self.diags.len();
        let n_pragmas = self.pending_pragmas.len();
        let ts = self.next();
        self.s.seek(p);
        self.diags.truncate(n_diags);
        self.pending_pragmas.truncate(n_pragmas);
        ts
    }

    /// Peek the token after the next one.
    fn peek2(&mut self) -> Tok {
        let p = self.s.raw_pos();
        let n_diags = self.diags.len();
        let n_pragmas = self.pending_pragmas.len();
        let _ = self.next();
        let (t, _) = self.next();
        self.s.seek(p);
        self.diags.truncate(n_diags);
        self.pending_pragmas.truncate(n_pragmas);
        t
    }

    fn at_name(&mut self, kw: &str) -> bool {
        matches!(self.peek().0, Tok::Name(n) if n == kw)
    }

    fn eat_name(&mut self, kw: &str) -> bool {
        if self.at_name(kw) {
            self.next();
            true
        } else {
            false
        }
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if &self.peek().0 == t {
            self.next();
            true
        } else {
            false
        }
    }

    fn fail(&mut self, span: Span, message: String) -> Fail {
        self.diags.push(Diagnostic { span, message });
        Fail
    }

    fn expect(&mut self, t: Tok) -> PResult<Span> {
        let (tok, span) = self.peek();
        if tok == t {
            self.next();
            Ok(span)
        } else {
            Err(self.fail(
                span,
                format!("expected {}, found {}", t.describe(), tok.describe()),
            ))
        }
    }

    fn expect_kw(&mut self, kw: &str) -> PResult<Span> {
        let (tok, span) = self.peek();
        if matches!(&tok, Tok::Name(n) if n == kw) {
            self.next();
            Ok(span)
        } else {
            Err(self.fail(span, format!("expected '{kw}', found {}", tok.describe())))
        }
    }

    fn expect_var(&mut self) -> PResult<String> {
        let (tok, span) = self.peek();
        match tok {
            Tok::Var(v) => {
                self.next();
                Ok(v)
            }
            other => Err(self.fail(
                span,
                format!("expected a variable, found {}", other.describe()),
            )),
        }
    }

    fn expect_name(&mut self) -> PResult<(Name, Span)> {
        let (tok, span) = self.peek();
        match tok {
            Tok::Name(n) => {
                self.next();
                Ok((Name::parse(&n), span))
            }
            other => Err(self.fail(span, format!("expected a name, found {}", other.describe()))),
        }
    }

    fn expect_string(&mut self) -> PResult<String> {
        let (tok, span) = self.peek();
        match tok {
            Tok::Str(s) => {
                self.next();
                Ok(s)
            }
            other => Err(self.fail(
                span,
                format!("expected a string literal, found {}", other.describe()),
            )),
        }
    }

    fn expect_eof(&mut self) -> Result<(), Fail> {
        let (tok, span) = self.peek();
        if tok == Tok::Eof {
            Ok(())
        } else {
            Err(self.fail(
                span,
                format!("unexpected {} after expression", tok.describe()),
            ))
        }
    }

    /// Skip to just after the next `;` (declaration-level recovery, §4.1).
    fn skip_to_semi(&mut self) {
        loop {
            let (tok, _) = self.next();
            match tok {
                Tok::Semi | Tok::Eof => return,
                _ => {}
            }
        }
    }

    // ---- module / prolog ------------------------------------------------

    fn module(&mut self) -> Module {
        let mut m = Module::default();
        // version declaration
        if self.at_name("xquery") && matches!(self.peek2(), Tok::Name(n) if n == "version") {
            self.next();
            self.next();
            match self.expect_string() {
                Ok(v) => m.version = Some(v),
                Err(_) => {
                    self.skip_to_semi();
                }
            }
            if self.eat_name("encoding") {
                let _ = self.expect_string();
            }
            let _ = self.expect(Tok::Semi);
        }
        // prolog declarations, interleaved (in recover mode) with
        // skip-past-garbage resynchronization: the design-time editor
        // must find every salvageable declaration in the file (§4.1)
        loop {
            self.consume_pragmas();
            let (tok, span) = self.peek();
            match &tok {
                Tok::Eof => break,
                Tok::Name(n) if n == "declare" || n == "import" => {
                    let pragmas = std::mem::take(&mut self.pending_pragmas);
                    match self.declaration(&mut m, pragmas) {
                        Ok(()) => {}
                        Err(_) => {
                            if self.mode == Mode::FailFast {
                                return m;
                            }
                            self.skip_to_semi();
                        }
                    }
                }
                _ => {
                    // the main query body — or garbage
                    match self.expr() {
                        Ok(e) => {
                            let (after, aspan) = self.peek();
                            if after == Tok::Eof {
                                m.body = Some(e);
                                return m;
                            }
                            self.diags.push(Diagnostic {
                                span: aspan,
                                message: format!(
                                    "unexpected {} after expression",
                                    after.describe()
                                ),
                            });
                            if self.mode == Mode::FailFast {
                                return m;
                            }
                            self.skip_to_semi();
                        }
                        Err(_) => {
                            if self.mode == Mode::FailFast {
                                return m;
                            }
                            let _ = span;
                            self.skip_to_semi();
                        }
                    }
                }
            }
        }
        m
    }

    fn declaration(&mut self, m: &mut Module, pragmas: Vec<Pragma>) -> PResult<()> {
        if self.eat_name("import") {
            self.expect_kw("schema")?;
            let mut prefix = None;
            if self.eat_name("namespace") {
                let (n, _) = self.expect_name()?;
                prefix = Some(n.local);
                self.expect(Tok::Eq)?;
            } else if self.eat_name("default") {
                self.expect_kw("element")?;
                self.expect_kw("namespace")?;
            }
            let uri = self.expect_string()?;
            let mut location = None;
            if self.eat_name("at") {
                location = Some(self.expect_string()?);
            }
            self.expect(Tok::Semi)?;
            m.schema_imports.push(SchemaImport {
                prefix,
                uri,
                location,
            });
            return Ok(());
        }
        self.expect_kw("declare")?;
        if self.eat_name("namespace") {
            let (n, span) = self.expect_name()?;
            if n.prefix.is_some() {
                return Err(self.fail(span, "namespace prefix must be an NCName".into()));
            }
            self.expect(Tok::Eq)?;
            let uri = self.expect_string()?;
            self.expect(Tok::Semi)?;
            m.namespaces.push((n.local, uri));
            Ok(())
        } else if self.eat_name("default") {
            self.expect_kw("element")?;
            self.expect_kw("namespace")?;
            let uri = self.expect_string()?;
            self.expect(Tok::Semi)?;
            m.default_element_ns = Some(uri);
            Ok(())
        } else if self.eat_name("variable") {
            let name = self.expect_var()?;
            let ty = if self.eat_name("as") {
                Some(self.seq_type()?)
            } else {
                None
            };
            self.expect_kw("external")?;
            self.expect(Tok::Semi)?;
            m.variables.push(VarDecl { name, ty });
            Ok(())
        } else if self.eat_name("function") {
            self.function_decl(m, pragmas)
        } else {
            let (tok, span) = self.peek();
            Err(self.fail(
                span,
                format!("unsupported declaration starting with {}", tok.describe()),
            ))
        }
    }

    fn function_decl(&mut self, m: &mut Module, pragmas: Vec<Pragma>) -> PResult<()> {
        let (name, start_span) = self.expect_name()?;
        self.expect(Tok::LParen)?;
        let mut params = Vec::new();
        if !self.eat(&Tok::RParen) {
            loop {
                let pname = self.expect_var()?;
                let ty = if self.eat_name("as") {
                    Some(self.seq_type()?)
                } else {
                    None
                };
                params.push(Param { name: pname, ty });
                if self.eat(&Tok::Comma) {
                    continue;
                }
                self.expect(Tok::RParen)?;
                break;
            }
        }
        let return_type = if self.eat_name("as") {
            Some(self.seq_type()?)
        } else {
            None
        };
        // At this point the signature is complete and error-free; per the
        // paper, a body error must not discard the signature.
        let (external, body) = if self.eat_name("external") {
            (true, None)
        } else {
            match self.expect(Tok::LBrace) {
                Ok(_) => match self.expr().and_then(|e| {
                    self.expect(Tok::RBrace)?;
                    Ok(e)
                }) {
                    Ok(e) => (false, Some(e)),
                    Err(f) => {
                        if self.mode == Mode::FailFast {
                            return Err(f);
                        }
                        // body in error: keep the signature, drop the body
                        self.skip_to_semi();
                        let span = start_span;
                        m.functions.push(FunctionDecl {
                            pragmas,
                            name,
                            params,
                            return_type,
                            body: None,
                            external: false,
                            span,
                        });
                        return Ok(());
                    }
                },
                Err(f) => return Err(f),
            }
        };
        let end = self.expect(Tok::Semi)?;
        m.functions.push(FunctionDecl {
            pragmas,
            name,
            params,
            return_type,
            body,
            external,
            span: start_span.to(end),
        });
        Ok(())
    }

    // ---- sequence types --------------------------------------------------

    fn seq_type(&mut self) -> PResult<SeqTypeAst> {
        let (name, span) = self.expect_name()?;
        let kind_with_parens = self.peek().0 == Tok::LParen;
        let item = if kind_with_parens {
            self.next(); // '('
            match name.to_string().as_str() {
                "item" => {
                    self.expect(Tok::RParen)?;
                    ItemTypeAst::AnyItem
                }
                "node" => {
                    self.expect(Tok::RParen)?;
                    ItemTypeAst::AnyNode
                }
                "text" => {
                    self.expect(Tok::RParen)?;
                    ItemTypeAst::Text
                }
                "document-node" => {
                    self.expect(Tok::RParen)?;
                    ItemTypeAst::Document
                }
                "empty-sequence" => {
                    self.expect(Tok::RParen)?;
                    return Ok(SeqTypeAst {
                        item: ItemTypeAst::EmptySequence,
                        occ: Occurrence::One,
                    });
                }
                "element" | "schema-element" | "attribute" => {
                    let inner = if self.peek().0 == Tok::RParen || self.eat(&Tok::Star) {
                        None
                    } else {
                        let (n, _) = self.expect_name()?;
                        // optional ", TypeName" — captured and ignored
                        // (structural typing supersedes the nominal part)
                        if self.eat(&Tok::Comma) {
                            let _ = self.expect_name()?;
                        }
                        Some(n)
                    };
                    self.expect(Tok::RParen)?;
                    match name.to_string().as_str() {
                        "element" => ItemTypeAst::Element(inner),
                        "attribute" => ItemTypeAst::Attribute(inner),
                        _ => match inner {
                            Some(n) => ItemTypeAst::SchemaElement(n),
                            None => {
                                return Err(
                                    self.fail(span, "schema-element() requires a name".into())
                                )
                            }
                        },
                    }
                }
                other => {
                    return Err(self.fail(span, format!("unknown item-type constructor '{other}'")))
                }
            }
        } else {
            ItemTypeAst::Atomic(name)
        };
        let occ = if self.eat(&Tok::QMark) {
            Occurrence::Optional
        } else if self.eat(&Tok::Star) {
            Occurrence::Star
        } else if self.eat(&Tok::Plus) {
            Occurrence::Plus
        } else {
            Occurrence::One
        };
        Ok(SeqTypeAst { item, occ })
    }

    // ---- expressions ------------------------------------------------------

    /// `Expr ::= ExprSingle ("," ExprSingle)*`
    fn expr(&mut self) -> PResult<Expr> {
        let first = self.expr_single()?;
        if self.peek().0 != Tok::Comma {
            return Ok(first);
        }
        let mut items = vec![first];
        while self.eat(&Tok::Comma) {
            items.push(self.expr_single()?);
        }
        let span = items[0].span.to(items.last().expect("non-empty").span);
        Ok(Expr::new(ExprKind::Sequence(items), span))
    }

    fn expr_single(&mut self) -> PResult<Expr> {
        let (tok, _) = self.peek();
        if let Tok::Name(n) = &tok {
            match n.as_str() {
                "for" | "let" => return self.flwor(),
                "some" | "every" => {
                    // only if followed by a variable (else it's a path step)
                    if matches!(self.peek2(), Tok::Var(_)) {
                        return self.quantified();
                    }
                }
                "if" if self.peek2() == Tok::LParen => return self.if_expr(),
                "typeswitch" if self.peek2() == Tok::LParen => return self.typeswitch(),
                _ => {}
            }
        }
        self.or_expr()
    }

    fn flwor(&mut self) -> PResult<Expr> {
        let start = self.peek().1;
        let mut clauses = Vec::new();
        loop {
            let (tok, _) = self.peek();
            let Tok::Name(kw) = &tok else { break };
            match kw.as_str() {
                "for" => {
                    self.next();
                    loop {
                        let var = self.expect_var()?;
                        let ty = if self.eat_name("as") {
                            Some(self.seq_type()?)
                        } else {
                            None
                        };
                        let pos_var = if self.eat_name("at") {
                            Some(self.expect_var()?)
                        } else {
                            None
                        };
                        self.expect_kw("in")?;
                        let source = self.expr_single()?;
                        clauses.push(Clause::For {
                            var,
                            pos_var,
                            ty,
                            source,
                        });
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                }
                "let" => {
                    self.next();
                    loop {
                        let var = self.expect_var()?;
                        let ty = if self.eat_name("as") {
                            Some(self.seq_type()?)
                        } else {
                            None
                        };
                        self.expect(Tok::Assign)?;
                        let value = self.expr_single()?;
                        clauses.push(Clause::Let { var, ty, value });
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                }
                "where" => {
                    self.next();
                    clauses.push(Clause::Where(self.expr_single()?));
                }
                "group" => {
                    self.next();
                    clauses.push(self.group_clause()?);
                }
                "stable" => {
                    self.next();
                    self.expect_kw("order")?;
                    self.expect_kw("by")?;
                    clauses.push(Clause::OrderBy(self.order_specs()?));
                }
                "order" => {
                    self.next();
                    self.expect_kw("by")?;
                    clauses.push(Clause::OrderBy(self.order_specs()?));
                }
                _ => break,
            }
        }
        let end = self.expect_kw("return")?;
        let ret = self.expr_single()?;
        if !clauses
            .iter()
            .any(|c| matches!(c, Clause::For { .. } | Clause::Let { .. }))
        {
            return Err(self.fail(start, "FLWOR requires at least one for/let clause".into()));
        }
        let span = start.to(end).to(ret.span);
        Ok(Expr::new(
            ExprKind::Flwor {
                clauses,
                ret: Box::new(ret),
            },
            span,
        ))
    }

    /// The ALDSP FLWGOR group clause (§3.1):
    /// `group (var1 as var2)? by expr (as var3)? (, expr (as var4)?)*`
    fn group_clause(&mut self) -> PResult<Clause> {
        let mut bindings = Vec::new();
        if matches!(self.peek().0, Tok::Var(_)) {
            loop {
                let from = self.expect_var()?;
                self.expect_kw("as")?;
                let to = self.expect_var()?;
                bindings.push(GroupBinding { from, to });
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        self.expect_kw("by")?;
        let mut keys = Vec::new();
        loop {
            let expr = self.expr_single()?;
            let alias = if self.eat_name("as") {
                Some(self.expect_var()?)
            } else {
                None
            };
            keys.push(GroupKey { expr, alias });
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        Ok(Clause::GroupBy { bindings, keys })
    }

    fn order_specs(&mut self) -> PResult<Vec<OrderSpec>> {
        let mut specs = Vec::new();
        loop {
            let expr = self.expr_single()?;
            let mut descending = false;
            if self.eat_name("descending") {
                descending = true;
            } else {
                let _ = self.eat_name("ascending");
            }
            let mut empty_least = true;
            if self.eat_name("empty") {
                if self.eat_name("greatest") {
                    empty_least = false;
                } else {
                    self.expect_kw("least")?;
                }
            }
            specs.push(OrderSpec {
                expr,
                descending,
                empty_least,
            });
            if !self.eat(&Tok::Comma) {
                return Ok(specs);
            }
        }
    }

    fn quantified(&mut self) -> PResult<Expr> {
        let (tok, start) = self.next();
        let every = matches!(&tok, Tok::Name(n) if n == "every");
        let mut bindings = Vec::new();
        loop {
            let var = self.expect_var()?;
            self.expect_kw("in")?;
            let source = self.expr_single()?;
            bindings.push((var, source));
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        self.expect_kw("satisfies")?;
        let satisfies = self.expr_single()?;
        let span = start.to(satisfies.span);
        Ok(Expr::new(
            ExprKind::Quantified {
                every,
                bindings,
                satisfies: Box::new(satisfies),
            },
            span,
        ))
    }

    fn if_expr(&mut self) -> PResult<Expr> {
        let (_, start) = self.next(); // 'if'
        self.expect(Tok::LParen)?;
        let cond = self.expr()?;
        self.expect(Tok::RParen)?;
        self.expect_kw("then")?;
        let then = self.expr_single()?;
        self.expect_kw("else")?;
        let els = self.expr_single()?;
        let span = start.to(els.span);
        Ok(Expr::new(
            ExprKind::If {
                cond: Box::new(cond),
                then: Box::new(then),
                els: Box::new(els),
            },
            span,
        ))
    }

    fn typeswitch(&mut self) -> PResult<Expr> {
        let (_, start) = self.next(); // 'typeswitch'
        self.expect(Tok::LParen)?;
        let operand = self.expr()?;
        self.expect(Tok::RParen)?;
        let mut cases = Vec::new();
        while self.eat_name("case") {
            let var = if matches!(self.peek().0, Tok::Var(_)) {
                let v = self.expect_var()?;
                self.expect_kw("as")?;
                Some(v)
            } else {
                None
            };
            let ty = self.seq_type()?;
            self.expect_kw("return")?;
            let body = self.expr_single()?;
            cases.push(TypeswitchCase { var, ty, body });
        }
        if cases.is_empty() {
            return Err(self.fail(start, "typeswitch requires at least one case".into()));
        }
        self.expect_kw("default")?;
        let default_var = if matches!(self.peek().0, Tok::Var(_)) {
            Some(self.expect_var()?)
        } else {
            None
        };
        self.expect_kw("return")?;
        let default = self.expr_single()?;
        let span = start.to(default.span);
        Ok(Expr::new(
            ExprKind::Typeswitch {
                operand: Box::new(operand),
                cases,
                default_var,
                default: Box::new(default),
            },
            span,
        ))
    }

    fn or_expr(&mut self) -> PResult<Expr> {
        let mut lhs = self.and_expr()?;
        while self.at_name("or") {
            self.next();
            let rhs = self.and_expr()?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr::new(ExprKind::Or(Box::new(lhs), Box::new(rhs)), span);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> PResult<Expr> {
        let mut lhs = self.comparison_expr()?;
        while self.at_name("and") {
            self.next();
            let rhs = self.comparison_expr()?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr::new(ExprKind::And(Box::new(lhs), Box::new(rhs)), span);
        }
        Ok(lhs)
    }

    fn comparison_expr(&mut self) -> PResult<Expr> {
        let lhs = self.range_expr()?;
        let (tok, _) = self.peek();
        let (op, general) = match &tok {
            Tok::Eq => (CompOp::Eq, true),
            Tok::Ne => (CompOp::Ne, true),
            Tok::Lt => (CompOp::Lt, true),
            Tok::Le => (CompOp::Le, true),
            Tok::Gt => (CompOp::Gt, true),
            Tok::Ge => (CompOp::Ge, true),
            Tok::Name(n) => match n.as_str() {
                "eq" => (CompOp::Eq, false),
                "ne" => (CompOp::Ne, false),
                "lt" => (CompOp::Lt, false),
                "le" => (CompOp::Le, false),
                "gt" => (CompOp::Gt, false),
                "ge" => (CompOp::Ge, false),
                _ => return Ok(lhs),
            },
            _ => return Ok(lhs),
        };
        self.next();
        let rhs = self.range_expr()?;
        let span = lhs.span.to(rhs.span);
        Ok(Expr::new(
            ExprKind::Comparison {
                op,
                general,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            },
            span,
        ))
    }

    fn range_expr(&mut self) -> PResult<Expr> {
        let lhs = self.additive_expr()?;
        if self.at_name("to") {
            self.next();
            let rhs = self.additive_expr()?;
            let span = lhs.span.to(rhs.span);
            return Ok(Expr::new(
                ExprKind::Range(Box::new(lhs), Box::new(rhs)),
                span,
            ));
        }
        Ok(lhs)
    }

    fn additive_expr(&mut self) -> PResult<Expr> {
        let mut lhs = self.multiplicative_expr()?;
        loop {
            let op = match self.peek().0 {
                Tok::Plus => ArithOp::Add,
                Tok::Minus => ArithOp::Sub,
                _ => return Ok(lhs),
            };
            self.next();
            let rhs = self.multiplicative_expr()?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr::new(
                ExprKind::Arith {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            );
        }
    }

    fn multiplicative_expr(&mut self) -> PResult<Expr> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match &self.peek().0 {
                Tok::Star => ArithOp::Mul,
                Tok::Name(n) if n == "div" => ArithOp::Div,
                Tok::Name(n) if n == "mod" => ArithOp::Mod,
                _ => return Ok(lhs),
            };
            self.next();
            let rhs = self.unary_expr()?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr::new(
                ExprKind::Arith {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            );
        }
    }

    fn unary_expr(&mut self) -> PResult<Expr> {
        if self.peek().0 == Tok::Minus {
            let (_, start) = self.next();
            let inner = self.unary_expr()?;
            let span = start.to(inner.span);
            return Ok(Expr::new(ExprKind::Neg(Box::new(inner)), span));
        }
        if self.peek().0 == Tok::Plus {
            self.next();
            return self.unary_expr();
        }
        self.type_ops_expr()
    }

    fn type_ops_expr(&mut self) -> PResult<Expr> {
        let mut e = self.path_expr()?;
        loop {
            if self.at_name("instance") && matches!(self.peek2(), Tok::Name(n) if n == "of") {
                self.next();
                self.next();
                let ty = self.seq_type()?;
                let span = e.span;
                e = Expr::new(ExprKind::InstanceOf(Box::new(e), ty), span);
            } else if self.at_name("cast") {
                self.next();
                self.expect_kw("as")?;
                let ty = self.seq_type()?;
                let span = e.span;
                e = Expr::new(ExprKind::CastAs(Box::new(e), ty), span);
            } else if self.at_name("castable") {
                self.next();
                self.expect_kw("as")?;
                let ty = self.seq_type()?;
                let span = e.span;
                e = Expr::new(ExprKind::CastableAs(Box::new(e), ty), span);
            } else if self.at_name("treat") {
                self.next();
                self.expect_kw("as")?;
                let ty = self.seq_type()?;
                let span = e.span;
                e = Expr::new(ExprKind::TreatAs(Box::new(e), ty), span);
            } else {
                return Ok(e);
            }
        }
    }

    // ---- paths, steps, primaries -------------------------------------------

    fn path_expr(&mut self) -> PResult<Expr> {
        let (tok, start) = self.peek();
        // leading step (relative path) vs primary
        let (base, mut steps) = match &tok {
            Tok::Name(_) if self.peek2() != Tok::LParen => {
                let step = self.step()?;
                (Expr::new(ExprKind::ContextItem, start), vec![step])
            }
            Tok::Star => {
                let step = self.step()?;
                (Expr::new(ExprKind::ContextItem, start), vec![step])
            }
            Tok::At => {
                let step = self.step()?;
                (Expr::new(ExprKind::ContextItem, start), vec![step])
            }
            _ => {
                let mut primary = self.primary_expr()?;
                // postfix predicates on the primary
                let mut preds = Vec::new();
                while self.peek().0 == Tok::LBracket {
                    self.next();
                    preds.push(self.expr()?);
                    self.expect(Tok::RBracket)?;
                }
                if !preds.is_empty() {
                    let span = primary.span;
                    primary = Expr::new(
                        ExprKind::Filter {
                            base: Box::new(primary),
                            predicates: preds,
                        },
                        span,
                    );
                }
                (primary, Vec::new())
            }
        };
        while matches!(self.peek().0, Tok::Slash | Tok::SlashSlash) {
            let (sep, _) = self.next();
            if sep == Tok::SlashSlash {
                // `//E` abbreviates descendant-or-self::node()/child::E
                steps.push(Step {
                    axis: Axis::DescendantOrSelf,
                    test: NameTest::Wildcard,
                    predicates: Vec::new(),
                });
            }
            steps.push(self.step()?);
        }
        if steps.is_empty() {
            return Ok(base);
        }
        let span = start.to(steps_span(&steps, base.span));
        Ok(Expr::new(
            ExprKind::Path {
                start: Box::new(base),
                steps,
            },
            span,
        ))
    }

    fn step(&mut self) -> PResult<Step> {
        let (tok, span) = self.peek();
        let (axis, test) = match tok {
            Tok::At => {
                self.next();
                let (t, _) = self.peek();
                let test = match t {
                    Tok::Star => {
                        self.next();
                        NameTest::Wildcard
                    }
                    Tok::Name(n) => {
                        self.next();
                        NameTest::Name(Name::parse(&n))
                    }
                    other => {
                        return Err(self.fail(
                            span,
                            format!(
                                "expected attribute name after '@', found {}",
                                other.describe()
                            ),
                        ))
                    }
                };
                (Axis::Attribute, test)
            }
            Tok::Star => {
                self.next();
                (Axis::Child, NameTest::Wildcard)
            }
            Tok::Name(n) => {
                self.next();
                (Axis::Child, NameTest::Name(Name::parse(&n)))
            }
            other => {
                return Err(self.fail(
                    span,
                    format!("expected a path step, found {}", other.describe()),
                ))
            }
        };
        let mut predicates = Vec::new();
        while self.peek().0 == Tok::LBracket {
            self.next();
            predicates.push(self.expr()?);
            self.expect(Tok::RBracket)?;
        }
        Ok(Step {
            axis,
            test,
            predicates,
        })
    }

    fn primary_expr(&mut self) -> PResult<Expr> {
        let (tok, span) = self.peek();
        match tok {
            Tok::Int(i) => {
                self.next();
                Ok(Expr::new(ExprKind::Literal(AtomicValue::Integer(i)), span))
            }
            Tok::Dec(d) => {
                self.next();
                match Decimal::parse(&d) {
                    Some(v) => Ok(Expr::new(ExprKind::Literal(AtomicValue::Decimal(v)), span)),
                    None => Err(self.fail(span, format!("invalid decimal literal '{d}'"))),
                }
            }
            Tok::Dbl(v) => {
                self.next();
                Ok(Expr::new(ExprKind::Literal(AtomicValue::Double(v)), span))
            }
            Tok::Str(s) => {
                self.next();
                Ok(Expr::new(ExprKind::Literal(AtomicValue::str(&s)), span))
            }
            Tok::Var(v) => {
                self.next();
                Ok(Expr::new(ExprKind::VarRef(v), span))
            }
            Tok::Dot => {
                self.next();
                Ok(Expr::new(ExprKind::ContextItem, span))
            }
            Tok::LParen => {
                self.next();
                if self.eat(&Tok::RParen) {
                    return Ok(Expr::new(ExprKind::Sequence(Vec::new()), span));
                }
                let inner = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(inner)
            }
            Tok::Name(_) if self.peek2() == Tok::LParen => self.function_call(),
            Tok::Lt => {
                // direct constructor iff '<' is immediately followed by a
                // name-start character
                let after = span.end as usize;
                self.s.seek(span.start as usize);
                if self.s.peek_char_at(1).is_some_and(is_name_start) {
                    self.direct_constructor()
                } else {
                    self.s.seek(after);
                    Err(self.fail(span, "unexpected '<' (not a constructor)".into()))
                }
            }
            other => Err(self.fail(
                span,
                format!("unexpected {} in expression", other.describe()),
            )),
        }
    }

    fn function_call(&mut self) -> PResult<Expr> {
        let (name, start) = self.expect_name()?;
        self.expect(Tok::LParen)?;
        let mut args = Vec::new();
        if !self.eat(&Tok::RParen) {
            loop {
                args.push(self.expr_single()?);
                if self.eat(&Tok::Comma) {
                    continue;
                }
                self.expect(Tok::RParen)?;
                break;
            }
        }
        let end = Span::new(self.s.raw_pos(), self.s.raw_pos());
        Ok(Expr::new(ExprKind::Call { name, args }, start.to(end)))
    }

    // ---- direct constructors (raw mode) --------------------------------------

    /// Parse `<Name …>…</Name>` (or `<Name?>` — the ALDSP conditional
    /// construction extension, §3.1) directly from the character stream.
    /// On entry the scanner is positioned at `<`.
    fn direct_constructor(&mut self) -> PResult<Expr> {
        let start = self.s.raw_pos();
        self.s.bump_char(); // '<'
        let Some(raw_name) = self.s.read_raw_name() else {
            return Err(self.fail(
                Span::new(start, start + 1),
                "expected element name after '<'".into(),
            ));
        };
        let name = Name::parse(&raw_name);
        // the `<E?>` extension: '?' directly after the name
        let conditional = if self.s.peek_char() == Some(b'?') {
            self.s.bump_char();
            true
        } else {
            false
        };
        let mut attributes = Vec::new();
        let mut namespaces = Vec::new();
        let mut default_ns = None;
        loop {
            self.s.skip_ws_raw();
            match self.s.peek_char() {
                Some(b'>') | Some(b'/') => break,
                Some(c) if is_name_start(c) => {
                    let aname_raw = self.s.read_raw_name().expect("name start checked");
                    let a_cond = if self.s.peek_char() == Some(b'?') {
                        self.s.bump_char();
                        true
                    } else {
                        false
                    };
                    self.s.skip_ws_raw();
                    if self.s.peek_char() != Some(b'=') {
                        return Err(self.fail(
                            Span::new(self.s.raw_pos(), self.s.raw_pos() + 1),
                            format!("expected '=' after attribute name '{aname_raw}'"),
                        ));
                    }
                    self.s.bump_char();
                    self.s.skip_ws_raw();
                    let value = self.attr_value()?;
                    if aname_raw == "xmlns" {
                        default_ns = Some(attr_static_text(&value));
                    } else if let Some(p) = aname_raw.strip_prefix("xmlns:") {
                        namespaces.push((p.to_string(), attr_static_text(&value)));
                    } else {
                        attributes.push(AttrConstructor {
                            name: Name::parse(&aname_raw),
                            conditional: a_cond,
                            value,
                        });
                    }
                }
                _ => {
                    return Err(self.fail(
                        Span::new(self.s.raw_pos(), self.s.raw_pos() + 1),
                        "unterminated start tag".into(),
                    ))
                }
            }
        }
        if self.s.peek_char() == Some(b'/') {
            self.s.bump_char();
            if self.s.bump_char() != Some(b'>') {
                return Err(self.fail(
                    Span::new(self.s.raw_pos(), self.s.raw_pos() + 1),
                    "expected '>' after '/'".into(),
                ));
            }
            let span = Span::new(start, self.s.raw_pos());
            return Ok(Expr::new(
                ExprKind::DirectElement {
                    name,
                    conditional,
                    attributes,
                    content: Vec::new(),
                    namespaces,
                    default_ns,
                },
                span,
            ));
        }
        self.s.bump_char(); // '>'
        let content = self.constructor_content(&raw_name, start)?;
        let span = Span::new(start, self.s.raw_pos());
        Ok(Expr::new(
            ExprKind::DirectElement {
                name,
                conditional,
                attributes,
                content,
                namespaces,
                default_ns,
            },
            span,
        ))
    }

    /// Parse an attribute value `"…{expr}…"` into literal/enclosed parts.
    fn attr_value(&mut self) -> PResult<Vec<Expr>> {
        let quote = match self.s.peek_char() {
            Some(q @ (b'"' | b'\'')) => {
                self.s.bump_char();
                q
            }
            _ => {
                return Err(self.fail(
                    Span::new(self.s.raw_pos(), self.s.raw_pos() + 1),
                    "attribute value must be quoted".into(),
                ))
            }
        };
        let mut parts: Vec<Expr> = Vec::new();
        let mut text = String::new();
        let text_start = self.s.raw_pos();
        loop {
            match self.s.peek_char() {
                Some(c) if c == quote => {
                    self.s.bump_char();
                    break;
                }
                Some(b'{') => {
                    if self.s.peek_char_at(1) == Some(b'{') {
                        self.s.bump_char();
                        self.s.bump_char();
                        text.push('{');
                        continue;
                    }
                    if !text.is_empty() {
                        parts.push(Expr::new(
                            ExprKind::Literal(AtomicValue::str(&decode_refs(&text))),
                            Span::new(text_start, self.s.raw_pos()),
                        ));
                        text.clear();
                    }
                    self.s.bump_char(); // '{'
                    let inner = self.expr()?;
                    let (tok, sp) = self.peek();
                    if tok != Tok::RBrace {
                        return Err(
                            self.fail(sp, "expected '}' closing enclosed expression".into())
                        );
                    }
                    self.next();
                    parts.push(inner);
                }
                Some(b'}') => {
                    if self.s.peek_char_at(1) == Some(b'}') {
                        self.s.bump_char();
                        self.s.bump_char();
                        text.push('}');
                    } else {
                        return Err(self.fail(
                            Span::new(self.s.raw_pos(), self.s.raw_pos() + 1),
                            "unescaped '}' in attribute value".into(),
                        ));
                    }
                }
                Some(c) => {
                    self.s.bump_char();
                    text.push(c as char);
                }
                None => {
                    return Err(self.fail(
                        Span::new(self.s.raw_pos(), self.s.raw_pos()),
                        "unterminated attribute value".into(),
                    ))
                }
            }
        }
        if !text.is_empty() {
            parts.push(Expr::new(
                ExprKind::Literal(AtomicValue::str(&decode_refs(&text))),
                Span::new(text_start, self.s.raw_pos()),
            ));
        }
        Ok(parts)
    }

    /// Parse element content until the matching close tag.
    fn constructor_content(&mut self, open_name: &str, open_pos: usize) -> PResult<Vec<Expr>> {
        let mut content: Vec<Expr> = Vec::new();
        let mut text = String::new();
        let mut text_start = self.s.raw_pos();
        macro_rules! flush_text {
            () => {
                if !text.is_empty() {
                    // whitespace-only boundary text is formatting noise;
                    // kept text becomes an *untyped* text node (XQuery
                    // constructor character content is unvalidated)
                    if !text.trim().is_empty() {
                        content.push(Expr::new(
                            ExprKind::Literal(AtomicValue::untyped(&decode_refs(&text))),
                            Span::new(text_start, self.s.raw_pos()),
                        ));
                    }
                    text.clear();
                }
            };
        }
        loop {
            match self.s.peek_char() {
                Some(b'<') => {
                    if self.s.at_raw("</") {
                        flush_text!();
                        self.s.bump_char();
                        self.s.bump_char();
                        let close = self.s.read_raw_name().unwrap_or_default();
                        if close != open_name {
                            return Err(self.fail(
                                Span::new(self.s.raw_pos(), self.s.raw_pos()),
                                format!("mismatched close tag </{close}> for <{open_name}>"),
                            ));
                        }
                        self.s.skip_ws_raw();
                        if self.s.bump_char() != Some(b'>') {
                            return Err(self.fail(
                                Span::new(self.s.raw_pos(), self.s.raw_pos()),
                                "expected '>' in close tag".into(),
                            ));
                        }
                        return Ok(content);
                    } else if self.s.at_raw("<!--") {
                        flush_text!();
                        while !self.s.at_raw("-->") {
                            if self.s.bump_char().is_none() {
                                return Err(self.fail(
                                    Span::new(open_pos, open_pos + 1),
                                    "unterminated comment in constructor".into(),
                                ));
                            }
                        }
                        self.s.seek(self.s.raw_pos() + 3);
                        text_start = self.s.raw_pos();
                    } else {
                        flush_text!();
                        content.push(self.direct_constructor()?);
                        text_start = self.s.raw_pos();
                    }
                }
                Some(b'{') => {
                    if self.s.peek_char_at(1) == Some(b'{') {
                        self.s.bump_char();
                        self.s.bump_char();
                        text.push('{');
                        continue;
                    }
                    flush_text!();
                    self.s.bump_char(); // '{'
                    let inner = self.expr()?;
                    let (tok, sp) = self.peek();
                    if tok != Tok::RBrace {
                        return Err(
                            self.fail(sp, "expected '}' closing enclosed expression".into())
                        );
                    }
                    self.next();
                    content.push(inner);
                    text_start = self.s.raw_pos();
                }
                Some(b'}') => {
                    if self.s.peek_char_at(1) == Some(b'}') {
                        self.s.bump_char();
                        self.s.bump_char();
                        text.push('}');
                    } else {
                        return Err(self.fail(
                            Span::new(self.s.raw_pos(), self.s.raw_pos() + 1),
                            "unescaped '}' in element content".into(),
                        ));
                    }
                }
                Some(c) => {
                    self.s.bump_char();
                    text.push(c as char);
                }
                None => {
                    return Err(self.fail(
                        Span::new(open_pos, open_pos + 1),
                        format!("unterminated element <{open_name}>"),
                    ))
                }
            }
        }
    }
}

fn steps_span(steps: &[Step], fallback: Span) -> Span {
    steps
        .last()
        .and_then(|s| s.predicates.last().map(|p| p.span))
        .unwrap_or(fallback)
}

fn attr_static_text(parts: &[Expr]) -> String {
    parts
        .iter()
        .filter_map(|p| match &p.kind {
            ExprKind::Literal(v) => Some(v.string_value()),
            _ => None,
        })
        .collect()
}
