//! # aldsp-parser — the ALDSP XQuery front end
//!
//! Lexer and recursive-descent parser for the XQuery dialect ALDSP 2.1
//! supports (the July-2004 XQuery working draft subset, §3.1 of the VLDB
//! 2006 paper), with the ALDSP extensions:
//!
//! * the FLWGOR `group … by` clause,
//! * conditional element/attribute construction (`<E?>`, `a?="…"`),
//! * `(::pragma … ::)` metadata annotations on declarations (§3.2),
//!
//! and the paper's two-mode error handling (§4.1): fail-fast for runtime
//! compilation, recover-and-collect for the design-time XQuery editor.

pub mod ast;
pub mod lexer;
pub mod parser;

pub use ast::{Expr, ExprKind, FunctionDecl, Module, Name, Pragma};
pub use parser::{parse_expr, parse_module, parse_module_strict, Diagnostic, Mode};

#[cfg(test)]
mod tests {
    use super::ast::*;
    use super::*;
    use aldsp_xdm::item::CompOp;
    use aldsp_xdm::value::AtomicValue;

    fn expr(src: &str) -> Expr {
        parse_expr(src).unwrap_or_else(|d| panic!("parse failed: {d}\n{src}"))
    }

    #[test]
    fn flwor_with_where_and_return() {
        let e = expr(r#"for $c in CUSTOMER() where $c/CID eq "CUST001" return $c/FIRST_NAME"#);
        let ExprKind::Flwor { clauses, ret } = &e.kind else {
            panic!("expected FLWOR, got {e:?}")
        };
        assert_eq!(clauses.len(), 2);
        assert!(matches!(&clauses[0], Clause::For { var, .. } if var == "c"));
        let Clause::Where(w) = &clauses[1] else {
            panic!()
        };
        assert!(matches!(
            &w.kind,
            ExprKind::Comparison {
                op: CompOp::Eq,
                general: false,
                ..
            }
        ));
        assert!(matches!(&ret.kind, ExprKind::Path { .. }));
    }

    #[test]
    fn group_clause_full_form() {
        // the paper's §3.1 example
        let e = expr(
            r#"for $c in CUSTOMER()
               let $cid := $c/CID
               group $cid as $ids by $c/LAST_NAME as $name
               return <CUSTOMER_IDS name="{$name}">{ $ids }</CUSTOMER_IDS>"#,
        );
        let ExprKind::Flwor { clauses, .. } = &e.kind else {
            panic!()
        };
        let Clause::GroupBy { bindings, keys } = &clauses[2] else {
            panic!("expected group clause, got {:?}", clauses[2])
        };
        assert_eq!(bindings.len(), 1);
        assert_eq!(bindings[0].from, "cid");
        assert_eq!(bindings[0].to, "ids");
        assert_eq!(keys.len(), 1);
        assert_eq!(keys[0].alias.as_deref(), Some("name"));
    }

    #[test]
    fn group_clause_keys_only_distinct_form() {
        // Table 1(f): group by with no bindings
        let e = expr("for $c in CUSTOMER() group by $c/LAST_NAME as $l return $l");
        let ExprKind::Flwor { clauses, .. } = &e.kind else {
            panic!()
        };
        let Clause::GroupBy { bindings, keys } = &clauses[1] else {
            panic!()
        };
        assert!(bindings.is_empty());
        assert_eq!(keys.len(), 1);
    }

    #[test]
    fn order_by_descending() {
        let e = expr("for $c in C() order by $c/N descending, $c/M return $c");
        let ExprKind::Flwor { clauses, .. } = &e.kind else {
            panic!()
        };
        let Clause::OrderBy(specs) = &clauses[1] else {
            panic!()
        };
        assert!(specs[0].descending);
        assert!(!specs[1].descending);
    }

    #[test]
    fn direct_constructor_with_enclosed_exprs() {
        let e = expr(r#"<PROFILE id="{$x}" kind="a{$y}b"><CID>{fn:data($c/CID)}</CID></PROFILE>"#);
        let ExprKind::DirectElement {
            name,
            attributes,
            content,
            conditional,
            ..
        } = &e.kind
        else {
            panic!("expected constructor, got {e:?}")
        };
        assert_eq!(name.local, "PROFILE");
        assert!(!conditional);
        assert_eq!(attributes.len(), 2);
        assert_eq!(attributes[1].value.len(), 3); // "a", {$y}, "b"
        assert_eq!(content.len(), 1);
        let ExprKind::DirectElement {
            name: cname,
            content: ccontent,
            ..
        } = &content[0].kind
        else {
            panic!()
        };
        assert_eq!(cname.local, "CID");
        let ExprKind::Call { name: f, .. } = &ccontent[0].kind else {
            panic!()
        };
        assert_eq!(f.to_string(), "fn:data");
    }

    #[test]
    fn conditional_construction_extension() {
        // §3.1: <FIRST_NAME?>{$fname}</FIRST_NAME>
        let e = expr("<FIRST_NAME?>{$fname}</FIRST_NAME>");
        let ExprKind::DirectElement { conditional, .. } = &e.kind else {
            panic!()
        };
        assert!(*conditional);
        // conditional attribute
        let e = expr(r#"<E a?="{$v}"/>"#);
        let ExprKind::DirectElement { attributes, .. } = &e.kind else {
            panic!()
        };
        assert!(attributes[0].conditional);
    }

    #[test]
    fn constructor_brace_escapes_and_text() {
        let e = expr("<E>literal {{braces}} kept</E>");
        let ExprKind::DirectElement { content, .. } = &e.kind else {
            panic!()
        };
        assert_eq!(content.len(), 1);
        let ExprKind::Literal(v) = &content[0].kind else {
            panic!()
        };
        assert_eq!(v.string_value(), "literal {braces} kept");
    }

    #[test]
    fn nested_constructors_with_namespaces() {
        let e = expr(r#"<tns:PROFILE xmlns:tns="urn:p" xmlns="urn:d"><INNER/></tns:PROFILE>"#);
        let ExprKind::DirectElement {
            namespaces,
            default_ns,
            content,
            ..
        } = &e.kind
        else {
            panic!()
        };
        assert_eq!(namespaces[0], ("tns".to_string(), "urn:p".to_string()));
        assert_eq!(default_ns.as_deref(), Some("urn:d"));
        assert_eq!(content.len(), 1);
    }

    #[test]
    fn predicates_on_calls_and_steps() {
        // the paper's navigation-function pattern:
        //   ns2:CREDIT_CARD()[CID eq $CUSTOMER/CID]
        let e = expr("ns2:CREDIT_CARD()[CID eq $CUSTOMER/CID]");
        let ExprKind::Filter { base, predicates } = &e.kind else {
            panic!("{e:?}")
        };
        assert!(matches!(&base.kind, ExprKind::Call { .. }));
        assert_eq!(predicates.len(), 1);
        // relative path inside the predicate
        let ExprKind::Comparison { lhs, .. } = &predicates[0].kind else {
            panic!()
        };
        let ExprKind::Path { start, steps } = &lhs.kind else {
            panic!()
        };
        assert!(matches!(&start.kind, ExprKind::ContextItem));
        assert_eq!(steps.len(), 1);
    }

    #[test]
    fn quantified_expression() {
        // Table 2(h)
        let e = expr("some $o in ORDERS() satisfies $c/CID eq $o/CID");
        let ExprKind::Quantified {
            every, bindings, ..
        } = &e.kind
        else {
            panic!()
        };
        assert!(!every);
        assert_eq!(bindings.len(), 1);
        let e = expr("every $x in (1,2), $y in (3) satisfies $x lt $y");
        let ExprKind::Quantified {
            every, bindings, ..
        } = &e.kind
        else {
            panic!()
        };
        assert!(every);
        assert_eq!(bindings.len(), 2);
    }

    #[test]
    fn if_then_else_and_operators() {
        let e = expr(r#"if ($c/CID eq "X") then $c/A else $c/B"#);
        assert!(matches!(&e.kind, ExprKind::If { .. }));
        let e = expr("1 + 2 * 3");
        let ExprKind::Arith { op, rhs, .. } = &e.kind else {
            panic!()
        };
        assert_eq!(*op, aldsp_xdm::value::ArithOp::Add);
        assert!(matches!(&rhs.kind, ExprKind::Arith { .. }));
        let e = expr("$a = 1 or $b != 2 and $c < 3");
        assert!(matches!(&e.kind, ExprKind::Or(..)));
    }

    #[test]
    fn general_vs_value_comparisons() {
        let g = expr("$a = $b");
        assert!(matches!(
            &g.kind,
            ExprKind::Comparison { general: true, .. }
        ));
        let v = expr("$a eq $b");
        assert!(matches!(
            &v.kind,
            ExprKind::Comparison { general: false, .. }
        ));
    }

    #[test]
    fn instance_of_and_cast() {
        let e = expr("$x instance of element(CUSTOMER)*");
        assert!(matches!(&e.kind, ExprKind::InstanceOf(..)));
        let e = expr("$x cast as xs:integer");
        assert!(matches!(&e.kind, ExprKind::CastAs(..)));
        let e = expr("$x castable as xs:date");
        assert!(matches!(&e.kind, ExprKind::CastableAs(..)));
    }

    #[test]
    fn typeswitch_parses() {
        let e = expr(
            "typeswitch ($x) case $e as element(A) return 1 case xs:string return 2 default $d return 3",
        );
        let ExprKind::Typeswitch {
            cases, default_var, ..
        } = &e.kind
        else {
            panic!()
        };
        assert_eq!(cases.len(), 2);
        assert_eq!(cases[0].var.as_deref(), Some("e"));
        assert_eq!(default_var.as_deref(), Some("d"));
    }

    #[test]
    fn sequence_and_range() {
        let e = expr("(1, 2, 3)");
        let ExprKind::Sequence(items) = &e.kind else {
            panic!()
        };
        assert_eq!(items.len(), 3);
        let e = expr("1 to 10");
        assert!(matches!(&e.kind, ExprKind::Range(..)));
        let e = expr("()");
        assert!(matches!(&e.kind, ExprKind::Sequence(v) if v.is_empty()));
    }

    #[test]
    fn paths_with_descendants_and_attributes() {
        let e = expr("$doc//ORDER/@id");
        let ExprKind::Path { steps, .. } = &e.kind else {
            panic!()
        };
        assert_eq!(steps.len(), 3);
        assert_eq!(steps[0].axis, Axis::DescendantOrSelf);
        assert_eq!(steps[2].axis, Axis::Attribute);
    }

    #[test]
    fn negative_numbers_and_literals() {
        let e = expr("-5");
        assert!(matches!(&e.kind, ExprKind::Neg(..)));
        let e = expr("2.5");
        assert!(matches!(
            &e.kind,
            ExprKind::Literal(AtomicValue::Decimal(_))
        ));
        let e = expr(r#""hello""#);
        assert!(matches!(&e.kind, ExprKind::Literal(AtomicValue::String(_))));
    }

    // ---- module-level tests -------------------------------------------------

    #[test]
    fn full_module_prolog() {
        let src = r#"
            xquery version "1.0" encoding "UTF8";
            declare namespace tns = "urn:profile";
            import schema namespace ns0 = "urn:shapes" at "profile.xsd";
            declare default element namespace "urn:d";
            declare variable $who as xs:string external;

            (::pragma function kind="read" nativeName="CUSTOMER" ::)
            declare function tns:getProfile() as element(ns0:PROFILE)* {
              for $c in tns:CUSTOMER() return <PROFILE>{ $c/CID }</PROFILE>
            };

            declare function tns:CUSTOMER() as element(CUSTOMER)* external;
        "#;
        let m = parse_module_strict(src).unwrap();
        assert_eq!(m.version.as_deref(), Some("1.0"));
        assert_eq!(
            m.namespaces,
            vec![("tns".to_string(), "urn:profile".to_string())]
        );
        assert_eq!(m.schema_imports.len(), 1);
        assert_eq!(m.schema_imports[0].location.as_deref(), Some("profile.xsd"));
        assert_eq!(m.default_element_ns.as_deref(), Some("urn:d"));
        assert_eq!(m.variables.len(), 1);
        assert_eq!(m.functions.len(), 2);
        let f = &m.functions[0];
        assert_eq!(f.name.to_string(), "tns:getProfile");
        assert_eq!(f.pragmas.len(), 1);
        assert_eq!(f.pragmas[0].get("kind"), Some("read"));
        assert!(f.body.is_some());
        assert!(!f.external);
        assert!(m.functions[1].external);
        assert!(m.body.is_none());
    }

    #[test]
    fn module_with_main_body() {
        let m = parse_module_strict("declare namespace a = \"u\"; 1 + 1").unwrap();
        assert!(m.body.is_some());
    }

    #[test]
    fn error_recovery_collects_multiple_errors() {
        // §4.1: skip to ';' after a broken declaration and keep going
        let src = r#"
            declare namespace good = "urn:g";
            declare namespce broken = "urn:b";
            declare function f:one() { 1 };
            declare function f:two() { ]]] };
            declare function f:three($x as xs:integer) as xs:integer { $x };
        "#;
        let (m, diags) = parse_module(src);
        assert!(diags.len() >= 2, "expected ≥2 diagnostics, got {diags:?}");
        assert_eq!(m.namespaces.len(), 1);
        // f:one and f:three fully parsed; f:two's *signature* retained
        assert_eq!(m.functions.len(), 3);
        let two = &m.functions[1];
        assert_eq!(two.name.to_string(), "f:two");
        assert!(
            two.body.is_none() && !two.external,
            "broken body, kept signature"
        );
        assert!(m.functions[2].body.is_some());
    }

    #[test]
    fn fail_fast_stops_at_first_error() {
        let src = r#"
            declare namespce broken = "urn:b";
            declare function f:ok() { 1 };
        "#;
        let err = parse_module_strict(src).unwrap_err();
        assert!(!err.message.is_empty());
    }

    #[test]
    fn running_example_figure3_parses() {
        // A faithful transcription of Figure 3's getProfile
        let src = r#"
            xquery version "1.0" encoding "UTF8";
            declare namespace tns = "urn:profileDS";
            import schema namespace ns0 = "urn:profileShape";
            declare namespace ns2 = "urn:ccDS";
            declare namespace ns3 = "urn:custDS";
            declare namespace ns4 = "urn:ratingWS";
            declare namespace ns5 = "urn:ratingTypes";

            (::pragma function kind="read" ::)
            declare function tns:getProfile() as element(ns0:PROFILE)* {
              for $CUSTOMER in ns3:CUSTOMER()
              return
                <tns:PROFILE>
                  <CID>{fn:data($CUSTOMER/CID)}</CID>
                  <LAST_NAME>{fn:data($CUSTOMER/LAST_NAME)}</LAST_NAME>
                  <ORDERS>{ns3:getORDER($CUSTOMER)}</ORDERS>
                  <CREDIT_CARDS>{ns2:CREDIT_CARD()[CID eq $CUSTOMER/CID]}</CREDIT_CARDS>
                  <RATING>{
                    fn:data(ns4:getRating(
                      <ns5:getRating>
                        <ns5:lName>{fn:data($CUSTOMER/LAST_NAME)}</ns5:lName>
                        <ns5:ssn>{fn:data($CUSTOMER/SSN)}</ns5:ssn>
                      </ns5:getRating>)/ns5:getRatingResult)
                  }</RATING>
                </tns:PROFILE>
            };

            (::pragma function kind="read" ::)
            declare function tns:getProfileByID($id as xs:string) as element(ns0:PROFILE)* {
              tns:getProfile()[CID eq $id]
            };
        "#;
        let m = parse_module_strict(src).unwrap();
        assert_eq!(m.functions.len(), 2);
        let get_profile = &m.functions[0];
        let ExprKind::Flwor { ret, .. } = &get_profile.body.as_ref().unwrap().kind else {
            panic!()
        };
        let ExprKind::DirectElement { content, .. } = &ret.kind else {
            panic!()
        };
        assert_eq!(content.len(), 5); // CID, LAST_NAME, ORDERS, CREDIT_CARDS, RATING
    }

    #[test]
    fn subsequence_pattern_table2i_parses() {
        let e = expr(
            r#"let $cs :=
                 for $c in CUSTOMER()
                 let $oc := count(for $o in ORDER() where $c/CID eq $o/CID return $o)
                 order by $oc descending
                 return <CUSTOMER>{ fn:data($c/CID), $oc }</CUSTOMER>
               return subsequence($cs, 10, 20)"#,
        );
        let ExprKind::Flwor { clauses, ret } = &e.kind else {
            panic!()
        };
        assert_eq!(clauses.len(), 1);
        assert!(matches!(&ret.kind, ExprKind::Call { name, .. } if name.local == "subsequence"));
    }

    #[test]
    fn keywords_usable_as_path_steps() {
        // XQuery has no reserved words: `order` etc. can be element names
        let e = expr("$x/order/group");
        let ExprKind::Path { steps, .. } = &e.kind else {
            panic!()
        };
        assert_eq!(steps.len(), 2);
    }
}
