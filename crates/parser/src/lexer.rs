//! The XQuery scanner.
//!
//! XQuery cannot be tokenized independently of parsing context — direct
//! element constructors embed XML syntax mid-expression. The [`Scanner`]
//! therefore exposes two levels: ordinary token scanning (with pragma and
//! nested-comment handling) and raw character access that the parser uses
//! while inside direct constructors. `peek` is implemented by scan-and-
//! rewind, so the parser can freely re-interpret a position.

use crate::ast::Span;

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// An NCName or lexical QName (`p:l`).
    Name(String),
    /// `$name`.
    Var(String),
    /// A string literal (quotes removed, escapes decoded).
    Str(String),
    /// An integer literal.
    Int(i64),
    /// A decimal literal (kept lexical for exactness).
    Dec(String),
    /// A double literal.
    Dbl(f64),
    /// A `(::pragma … ::)` annotation body.
    Pragma(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `.`
    Dot,
    /// `..`
    DotDot,
    /// `/`
    Slash,
    /// `//`
    SlashSlash,
    /// `@`
    At,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `?`
    QMark,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `:=`
    Assign,
    /// End of input.
    Eof,
}

impl Tok {
    /// Human-readable description for diagnostics.
    pub fn describe(&self) -> String {
        match self {
            Tok::Name(n) => format!("'{n}'"),
            Tok::Var(v) => format!("'${v}'"),
            Tok::Str(_) => "string literal".into(),
            Tok::Int(_) | Tok::Dec(_) | Tok::Dbl(_) => "numeric literal".into(),
            Tok::Pragma(_) => "pragma".into(),
            Tok::Eof => "end of input".into(),
            other => format!(
                "'{}'",
                match other {
                    Tok::LParen => "(",
                    Tok::RParen => ")",
                    Tok::LBracket => "[",
                    Tok::RBracket => "]",
                    Tok::LBrace => "{",
                    Tok::RBrace => "}",
                    Tok::Comma => ",",
                    Tok::Semi => ";",
                    Tok::Dot => ".",
                    Tok::DotDot => "..",
                    Tok::Slash => "/",
                    Tok::SlashSlash => "//",
                    Tok::At => "@",
                    Tok::Star => "*",
                    Tok::Plus => "+",
                    Tok::Minus => "-",
                    Tok::QMark => "?",
                    Tok::Eq => "=",
                    Tok::Ne => "!=",
                    Tok::Lt => "<",
                    Tok::Le => "<=",
                    Tok::Gt => ">",
                    Tok::Ge => ">=",
                    Tok::Assign => ":=",
                    _ => unreachable!(),
                }
            ),
        }
    }
}

/// Is `c` a valid NCName start character (ASCII subset)?
pub fn is_name_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_name_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.')
}

/// A scanning error (unterminated literal/comment, bad character).
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Byte position of the error.
    pub pos: usize,
    /// Description.
    pub message: String,
}

/// The two-level scanner.
pub struct Scanner<'a> {
    src: &'a [u8],
    text: &'a str,
    pos: usize,
}

impl<'a> Scanner<'a> {
    /// Create a scanner over `src`.
    pub fn new(src: &'a str) -> Scanner<'a> {
        Scanner {
            src: src.as_bytes(),
            text: src,
            pos: 0,
        }
    }

    /// Current byte position.
    pub fn raw_pos(&self) -> usize {
        self.pos
    }

    /// Rewind/seek to a position previously obtained from [`raw_pos`].
    ///
    /// [`raw_pos`]: Scanner::raw_pos
    pub fn seek(&mut self, pos: usize) {
        self.pos = pos;
    }

    /// Peek the current raw character.
    pub fn peek_char(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    /// Peek `n` characters ahead.
    pub fn peek_char_at(&self, n: usize) -> Option<u8> {
        self.src.get(self.pos + n).copied()
    }

    /// Consume one raw character.
    pub fn bump_char(&mut self) -> Option<u8> {
        let c = self.peek_char();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    /// Does the raw input start with `s` at the current position?
    pub fn at_raw(&self, s: &str) -> bool {
        self.src[self.pos..].starts_with(s.as_bytes())
    }

    /// Skip raw whitespace.
    pub fn skip_ws_raw(&mut self) {
        while matches!(self.peek_char(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    /// Read a raw NCName/QName at the current position.
    pub fn read_raw_name(&mut self) -> Option<String> {
        let start = self.pos;
        if !self.peek_char().is_some_and(is_name_start) {
            return None;
        }
        self.pos += 1;
        while self.peek_char().is_some_and(is_name_char) {
            self.pos += 1;
        }
        // one optional ':' NCName for a QName
        if self.peek_char() == Some(b':') && self.peek_char_at(1).is_some_and(is_name_start) {
            self.pos += 2;
            while self.peek_char().is_some_and(is_name_char) {
                self.pos += 1;
            }
        }
        Some(self.text[start..self.pos].to_string())
    }

    /// Skip whitespace, comments and (non-pragma) trivia. Returns a pragma
    /// body if one is encountered.
    fn skip_trivia(&mut self) -> Result<Option<(String, Span)>, LexError> {
        loop {
            self.skip_ws_raw();
            if self.at_raw("(::pragma") {
                let start = self.pos;
                self.pos += "(::pragma".len();
                let body_start = self.pos;
                while self.pos < self.src.len() && !self.at_raw("::)") {
                    self.pos += 1;
                }
                if !self.at_raw("::)") {
                    return Err(LexError {
                        pos: start,
                        message: "unterminated pragma".into(),
                    });
                }
                let body = self.text[body_start..self.pos].to_string();
                self.pos += 3;
                return Ok(Some((body, Span::new(start, self.pos))));
            }
            if self.at_raw("(:") {
                let start = self.pos;
                self.pos += 2;
                let mut depth = 1;
                while depth > 0 {
                    if self.pos >= self.src.len() {
                        return Err(LexError {
                            pos: start,
                            message: "unterminated comment".into(),
                        });
                    }
                    if self.at_raw("(:") {
                        depth += 1;
                        self.pos += 2;
                    } else if self.at_raw(":)") {
                        depth -= 1;
                        self.pos += 2;
                    } else {
                        self.pos += 1;
                    }
                }
                continue;
            }
            return Ok(None);
        }
    }

    /// Scan the next token.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<(Tok, Span), LexError> {
        if let Some((body, span)) = self.skip_trivia()? {
            return Ok((Tok::Pragma(body), span));
        }
        let start = self.pos;
        let Some(c) = self.peek_char() else {
            return Ok((Tok::Eof, Span::new(start, start)));
        };
        let tok = match c {
            b'(' => {
                self.pos += 1;
                Tok::LParen
            }
            b')' => {
                self.pos += 1;
                Tok::RParen
            }
            b'[' => {
                self.pos += 1;
                Tok::LBracket
            }
            b']' => {
                self.pos += 1;
                Tok::RBracket
            }
            b'{' => {
                self.pos += 1;
                Tok::LBrace
            }
            b'}' => {
                self.pos += 1;
                Tok::RBrace
            }
            b',' => {
                self.pos += 1;
                Tok::Comma
            }
            b';' => {
                self.pos += 1;
                Tok::Semi
            }
            b'@' => {
                self.pos += 1;
                Tok::At
            }
            b'*' => {
                self.pos += 1;
                Tok::Star
            }
            b'+' => {
                self.pos += 1;
                Tok::Plus
            }
            b'-' => {
                self.pos += 1;
                Tok::Minus
            }
            b'?' => {
                self.pos += 1;
                Tok::QMark
            }
            b'=' => {
                self.pos += 1;
                Tok::Eq
            }
            b'!' => {
                if self.peek_char_at(1) == Some(b'=') {
                    self.pos += 2;
                    Tok::Ne
                } else {
                    return Err(LexError {
                        pos: start,
                        message: "unexpected '!'".into(),
                    });
                }
            }
            b'<' => {
                if self.peek_char_at(1) == Some(b'=') {
                    self.pos += 2;
                    Tok::Le
                } else {
                    self.pos += 1;
                    Tok::Lt
                }
            }
            b'>' => {
                if self.peek_char_at(1) == Some(b'=') {
                    self.pos += 2;
                    Tok::Ge
                } else {
                    self.pos += 1;
                    Tok::Gt
                }
            }
            b'/' => {
                if self.peek_char_at(1) == Some(b'/') {
                    self.pos += 2;
                    Tok::SlashSlash
                } else {
                    self.pos += 1;
                    Tok::Slash
                }
            }
            b':' => {
                if self.peek_char_at(1) == Some(b'=') {
                    self.pos += 2;
                    Tok::Assign
                } else {
                    return Err(LexError {
                        pos: start,
                        message: "unexpected ':'".into(),
                    });
                }
            }
            b'.' => {
                if self.peek_char_at(1) == Some(b'.') {
                    self.pos += 2;
                    Tok::DotDot
                } else if self.peek_char_at(1).is_some_and(|d| d.is_ascii_digit()) {
                    return self.scan_number(start);
                } else {
                    self.pos += 1;
                    Tok::Dot
                }
            }
            b'$' => {
                self.pos += 1;
                match self.read_raw_name() {
                    Some(n) => Tok::Var(n),
                    None => {
                        return Err(LexError {
                            pos: start,
                            message: "expected variable name after '$'".into(),
                        })
                    }
                }
            }
            b'"' | b'\'' => return self.scan_string(start, c),
            b'0'..=b'9' => return self.scan_number(start),
            c if is_name_start(c) => {
                let n = self.read_raw_name().expect("name start checked");
                Tok::Name(n)
            }
            other => {
                return Err(LexError {
                    pos: start,
                    message: format!("unexpected character '{}'", other as char),
                })
            }
        };
        Ok((tok, Span::new(start, self.pos)))
    }

    fn scan_string(&mut self, start: usize, quote: u8) -> Result<(Tok, Span), LexError> {
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.peek_char() {
                Some(c) if c == quote => {
                    if self.peek_char_at(1) == Some(quote) {
                        out.push(quote as char);
                        self.pos += 2;
                    } else {
                        self.pos += 1;
                        return Ok((Tok::Str(decode_refs(&out)), Span::new(start, self.pos)));
                    }
                }
                Some(_) => {
                    let c0 = self.pos;
                    while self.peek_char().is_some_and(|c| c != quote) {
                        self.pos += 1;
                    }
                    out.push_str(&self.text[c0..self.pos]);
                }
                None => {
                    return Err(LexError {
                        pos: start,
                        message: "unterminated string literal".into(),
                    })
                }
            }
        }
    }

    fn scan_number(&mut self, start: usize) -> Result<(Tok, Span), LexError> {
        while self.peek_char().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_dec = false;
        if self.peek_char() == Some(b'.') && self.peek_char_at(1).is_none_or(|c| c.is_ascii_digit())
        {
            is_dec = true;
            self.pos += 1;
            while self.peek_char().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let mut is_dbl = false;
        if matches!(self.peek_char(), Some(b'e' | b'E')) {
            let mut look = 1;
            if matches!(self.peek_char_at(1), Some(b'+' | b'-')) {
                look = 2;
            }
            if self.peek_char_at(look).is_some_and(|c| c.is_ascii_digit()) {
                is_dbl = true;
                self.pos += look;
                while self.peek_char().is_some_and(|c| c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
        }
        let lexeme = &self.text[start..self.pos];
        let tok = if is_dbl {
            Tok::Dbl(lexeme.parse().map_err(|_| LexError {
                pos: start,
                message: format!("invalid double literal '{lexeme}'"),
            })?)
        } else if is_dec {
            Tok::Dec(lexeme.to_string())
        } else {
            Tok::Int(lexeme.parse().map_err(|_| LexError {
                pos: start,
                message: format!("integer literal '{lexeme}' out of range"),
            })?)
        };
        Ok((tok, Span::new(start, self.pos)))
    }
}

/// Decode the predefined XML entity/character references inside string
/// literals and constructor text.
pub fn decode_refs(s: &str) -> String {
    if !s.contains('&') {
        return s.to_string();
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(i) = rest.find('&') {
        out.push_str(&rest[..i]);
        rest = &rest[i..];
        if let Some(end) = rest.find(';') {
            match &rest[1..end] {
                "lt" => out.push('<'),
                "gt" => out.push('>'),
                "amp" => out.push('&'),
                "quot" => out.push('"'),
                "apos" => out.push('\''),
                other => {
                    out.push('&');
                    out.push_str(other);
                    out.push(';');
                }
            }
            rest = &rest[end + 1..];
        } else {
            out.push_str(rest);
            return out;
        }
    }
    out.push_str(rest);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        let mut s = Scanner::new(src);
        let mut out = Vec::new();
        loop {
            let (t, _) = s.next().unwrap();
            if t == Tok::Eof {
                return out;
            }
            out.push(t);
        }
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            toks(r#"for $c in CUSTOMER() where $c/CID eq "C1" return $c"#),
            vec![
                Tok::Name("for".into()),
                Tok::Var("c".into()),
                Tok::Name("in".into()),
                Tok::Name("CUSTOMER".into()),
                Tok::LParen,
                Tok::RParen,
                Tok::Name("where".into()),
                Tok::Var("c".into()),
                Tok::Slash,
                Tok::Name("CID".into()),
                Tok::Name("eq".into()),
                Tok::Str("C1".into()),
                Tok::Name("return".into()),
                Tok::Var("c".into()),
            ]
        );
    }

    #[test]
    fn qnames_and_assign() {
        assert_eq!(
            toks("let $x := tns:getProfile()"),
            vec![
                Tok::Name("let".into()),
                Tok::Var("x".into()),
                Tok::Assign,
                Tok::Name("tns:getProfile".into()),
                Tok::LParen,
                Tok::RParen,
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            toks("1 2.5 .5 3e2 10 20"),
            vec![
                Tok::Int(1),
                Tok::Dec("2.5".into()),
                Tok::Dec(".5".into()),
                Tok::Dbl(300.0),
                Tok::Int(10),
                Tok::Int(20),
            ]
        );
    }

    #[test]
    fn comments_nest_and_pragmas_surface() {
        assert_eq!(
            toks("a (: outer (: inner :) still :) b"),
            vec![Tok::Name("a".into()), Tok::Name("b".into())]
        );
        let ts = toks(r#"(::pragma function kind="read" ::) declare"#);
        match &ts[0] {
            Tok::Pragma(body) => assert!(body.contains("kind=\"read\"")),
            other => panic!("expected pragma, got {other:?}"),
        }
    }

    #[test]
    fn strings_escape_and_refs() {
        assert_eq!(toks(r#""a""b""#), vec![Tok::Str("a\"b".into())]);
        assert_eq!(toks("'it''s'"), vec![Tok::Str("it's".into())]);
        assert_eq!(toks(r#""a&lt;b""#), vec![Tok::Str("a<b".into())]);
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            toks("< <= > >= = !="),
            vec![Tok::Lt, Tok::Le, Tok::Gt, Tok::Ge, Tok::Eq, Tok::Ne]
        );
    }

    #[test]
    fn slashes_and_dots() {
        assert_eq!(
            toks("/ // . .."),
            vec![Tok::Slash, Tok::SlashSlash, Tok::Dot, Tok::DotDot]
        );
    }

    #[test]
    fn errors() {
        let mut s = Scanner::new("\"abc");
        assert!(s.next().is_err());
        let mut s = Scanner::new("(: never closed");
        assert!(s.next().is_err());
        let mut s = Scanner::new("#");
        assert!(s.next().is_err());
    }

    #[test]
    fn seek_allows_reinterpretation() {
        let mut s = Scanner::new("<CUSTOMER>");
        let p = s.raw_pos();
        let (t, _) = s.next().unwrap();
        assert_eq!(t, Tok::Lt);
        s.seek(p);
        assert_eq!(s.peek_char(), Some(b'<'));
    }
}
