//! Parser edge cases: tricky lexical boundaries, recovery behavior,
//! and constructor corner cases.

use aldsp_parser::ast::{Clause, ExprKind};
use aldsp_parser::{parse_expr, parse_module, parse_module_strict};

#[test]
fn less_than_vs_constructor_disambiguation() {
    // `$a < $b` is a comparison; `<b/>` is a constructor — the decisive
    // character is what immediately follows '<'
    let cmp = parse_expr("$a < $b").expect("comparison parses");
    assert!(matches!(cmp.kind, ExprKind::Comparison { .. }));
    let ctor = parse_expr("<b/>").expect("constructor parses");
    assert!(matches!(ctor.kind, ExprKind::DirectElement { .. }));
    let ok = parse_expr("($a) < ($b)").expect("parenthesized comparison");
    assert!(matches!(ok.kind, ExprKind::Comparison { .. }));
}

#[test]
fn nested_flwors_and_keyword_names() {
    let e = parse_expr("for $for in (1,2) return for $let in (3) return $for + $let")
        .expect("keywords are valid variable names");
    let ExprKind::Flwor { ret, .. } = &e.kind else {
        panic!()
    };
    assert!(matches!(&ret.kind, ExprKind::Flwor { .. }));
}

#[test]
fn multi_variable_for_desugars_to_clauses() {
    let e = parse_expr("for $a in (1), $b in (2), $c in (3) return $a").expect("parses");
    let ExprKind::Flwor { clauses, .. } = &e.kind else {
        panic!()
    };
    assert_eq!(clauses.len(), 3);
    assert!(clauses.iter().all(|c| matches!(c, Clause::For { .. })));
}

#[test]
fn positional_variable() {
    let e = parse_expr("for $x at $i in (10,20) return $i").expect("parses");
    let ExprKind::Flwor { clauses, .. } = &e.kind else {
        panic!()
    };
    let Clause::For { pos_var, .. } = &clauses[0] else {
        panic!()
    };
    assert_eq!(pos_var.as_deref(), Some("i"));
}

#[test]
fn constructor_with_comment_inside() {
    let e = parse_expr("<a><!-- note --><b/></a>").expect("parses");
    let ExprKind::DirectElement { content, .. } = &e.kind else {
        panic!()
    };
    assert_eq!(content.len(), 1, "comment skipped");
}

#[test]
fn deeply_nested_parens_and_sequences() {
    let e = parse_expr("(((1, (2, (3))), 4))").expect("parses");
    assert!(matches!(e.kind, ExprKind::Sequence(_)));
}

#[test]
fn recovery_survives_garbage_between_declarations() {
    let src = r#"
        declare namespace a = "u1";
        THIS IS NOT XQUERY AT ALL ;;;
        declare function f:ok() { 42 };
    "#;
    let (m, diags) = parse_module(src);
    assert!(!diags.is_empty());
    assert_eq!(m.functions.len(), 1);
    assert_eq!(m.namespaces.len(), 1);
}

#[test]
fn strict_mode_positions_are_meaningful() {
    let err = parse_module_strict("declare namespace = \"u\";").expect_err("bad prolog");
    assert!(err.span.start > 0);
    assert!(err.message.contains("expected a name"), "{}", err.message);
}

#[test]
fn empty_module_is_valid() {
    let m = parse_module_strict("").expect("empty module");
    assert!(m.functions.is_empty() && m.body.is_none());
}

#[test]
fn trailing_semicolons_and_whitespace() {
    let m = parse_module_strict("declare namespace a = \"u\";\n\n   (: comment :)\n   1 + 1")
        .expect("parses");
    assert!(m.body.is_some());
}

#[test]
fn attribute_value_with_both_quote_styles() {
    let e = parse_expr(r#"<e a='single' b="double"/>"#).expect("parses");
    let ExprKind::DirectElement { attributes, .. } = &e.kind else {
        panic!()
    };
    assert_eq!(attributes.len(), 2);
}

#[test]
fn very_long_flwor_pipeline() {
    let mut src = String::from("for $x0 in (1) ");
    for i in 1..40 {
        src.push_str(&format!("let $x{i} := $x{} + 1 ", i - 1));
    }
    src.push_str("return $x39");
    let e = parse_expr(&src).expect("parses");
    let ExprKind::Flwor { clauses, .. } = &e.kind else {
        panic!()
    };
    assert_eq!(clauses.len(), 40);
}
