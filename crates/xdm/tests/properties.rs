//! Property tests for the data-model crate: randomized trees roundtrip
//! through serialization, token streams, and validation; the type
//! algebra obeys lattice laws.

use aldsp_xdm::item::Item;
use aldsp_xdm::node::{Node, NodeRef};
use aldsp_xdm::tokens::{node_to_tokens, tokens_to_items};
use aldsp_xdm::types::Occurrence;
use aldsp_xdm::value::{AtomicType, AtomicValue, Decimal};
use aldsp_xdm::{xml, QName};
use proptest::prelude::*;

/// A strategy for small element trees with typed leaves.
fn tree_strategy() -> impl Strategy<Value = NodeRef> {
    let leaf = (0..4usize, -1000i64..1000i64).prop_map(|(n, v)| {
        let name = QName::local(["A", "B", "C", "D"][n]);
        match v % 3 {
            0 => Node::simple_element(name, AtomicValue::Integer(v)),
            1 => Node::simple_element(name, AtomicValue::str(&format!("s{v}"))),
            _ => Node::simple_element(name, AtomicValue::Decimal(Decimal::from_int(v))),
        }
    });
    leaf.prop_recursive(3, 24, 4, |inner| {
        (0..4usize, prop::collection::vec(inner, 0..4)).prop_map(|(n, children)| {
            Node::element(QName::local(["R", "S", "T", "U"][n]), vec![], children)
        })
    })
}

proptest! {
    /// serialize → parse preserves structure and string values.
    #[test]
    fn xml_serialize_parse_roundtrip(tree in tree_strategy()) {
        let text = xml::serialize(&tree);
        let doc = xml::parse(&text).expect("serializer output must parse");
        let root = &doc.children()[0];
        // names and string values are preserved (type annotations become
        // untyped through the text form, by design — validation restores
        // them)
        prop_assert_eq!(root.name(), tree.name());
        prop_assert_eq!(root.string_value(), tree.string_value());
        prop_assert_eq!(
            count_elements(root),
            count_elements(&tree),
            "element counts differ:\n{}",
            text
        );
    }

    /// node → tokens → node is the identity (including type annotations).
    #[test]
    fn token_stream_roundtrip(tree in tree_strategy()) {
        let mut tokens = Vec::new();
        node_to_tokens(&tree, &mut tokens);
        let items = tokens_to_items(&tokens).expect("own tokens parse");
        prop_assert_eq!(items.len(), 1);
        let Item::Node(back) = &items[0] else { panic!("expected a node") };
        prop_assert!(back.deep_equal(&tree));
    }

    /// Occurrence algebra: subtyping is reflexive and transitive; union
    /// is an upper bound.
    #[test]
    fn occurrence_lattice_laws(a in 0..4usize, b in 0..4usize, c in 0..4usize) {
        use Occurrence::*;
        let occs = [One, Optional, Star, Plus];
        let (x, y, z) = (occs[a], occs[b], occs[c]);
        prop_assert!(x.is_subtype_of(x));
        if x.is_subtype_of(y) && y.is_subtype_of(z) {
            prop_assert!(x.is_subtype_of(z));
        }
        let u = x.union(y);
        prop_assert!(x.is_subtype_of(u));
        prop_assert!(y.is_subtype_of(u));
        prop_assert_eq!(x.union(y), y.union(x));
    }

    /// Atomic casting: any value casts to string and back to a value
    /// equal under compare().
    #[test]
    fn cast_to_string_roundtrips(v in -1_000_000i64..1_000_000i64, pick in 0..4usize) {
        let value = match pick {
            0 => AtomicValue::Integer(v),
            1 => AtomicValue::Decimal(Decimal(v as i128 * 1000)),
            2 => AtomicValue::Boolean(v % 2 == 0),
            _ => AtomicValue::str(&format!("x{v}")),
        };
        let t = value.type_of();
        let s = value.cast_to(AtomicType::String).expect("everything casts to string");
        let back = s.cast_to(t).expect("canonical form casts back");
        prop_assert_eq!(
            value.compare(&back),
            Some(std::cmp::Ordering::Equal),
            "{:?} vs {:?}",
            value,
            back
        );
    }

    /// Value comparison is antisymmetric and consistent with ordering.
    #[test]
    fn comparison_consistency(a in -1000i64..1000, b in -1000i64..1000) {
        let (x, y) = (AtomicValue::Integer(a), AtomicValue::Integer(b));
        let xy = x.compare(&y).expect("integers compare");
        let yx = y.compare(&x).expect("integers compare");
        prop_assert_eq!(xy, yx.reverse());
        prop_assert_eq!(xy == std::cmp::Ordering::Equal, a == b);
    }
}

fn count_elements(n: &Node) -> usize {
    1 + n
        .all_child_elements()
        .map(|c| count_elements(c))
        .sum::<usize>()
}
