//! XML serialization and parsing.
//!
//! ALDSP's non-queryable sources include XML files (§2.2, §5.3): their
//! content is parsed, validated against a registered schema, and fed into
//! the runtime as typed tokens. This module supplies the (small,
//! namespace-aware) parser the XML file adaptor uses and the serializer
//! used to deliver query results. Text parsed here is `xs:untypedAtomic`
//! until schema validation assigns types (see [`crate::schema`]).

use crate::node::{Node, NodeKind, NodeRef};
use crate::qname::{Namespaces, QName};
use crate::value::AtomicValue;
use crate::{Result, XdmError};
use std::fmt::Write as _;

/// Serialize a node to XML text.
pub fn serialize(node: &Node) -> String {
    let mut out = String::new();
    write_node(node, &mut out);
    out
}

/// Serialize a sequence of items, space-separating adjacent atomics per the
/// XQuery serialization rules.
pub fn serialize_sequence(items: &[crate::item::Item]) -> String {
    let mut out = String::new();
    let mut prev_atomic = false;
    for item in items {
        match item {
            crate::item::Item::Atomic(v) => {
                if prev_atomic {
                    out.push(' ');
                }
                escape_text(&v.string_value(), &mut out);
                prev_atomic = true;
            }
            crate::item::Item::Node(n) => {
                write_node(n, &mut out);
                prev_atomic = false;
            }
        }
    }
    out
}

fn write_node(node: &Node, out: &mut String) {
    match node.kind() {
        NodeKind::Document { children } => {
            for c in children {
                write_node(c, out);
            }
        }
        NodeKind::Element {
            name,
            attributes,
            children,
        } => {
            out.push('<');
            write_name(name, out);
            for a in attributes {
                if let NodeKind::Attribute { name, value } = a.kind() {
                    out.push(' ');
                    write_name(name, out);
                    out.push_str("=\"");
                    escape_attr(&value.string_value(), out);
                    out.push('"');
                }
            }
            if children.is_empty() {
                out.push_str("/>");
            } else {
                out.push('>');
                for c in children {
                    write_node(c, out);
                }
                out.push_str("</");
                write_name(name, out);
                out.push('>');
            }
        }
        NodeKind::Attribute { name, value } => {
            write_name(name, out);
            out.push_str("=\"");
            escape_attr(&value.string_value(), out);
            out.push('"');
        }
        NodeKind::Text { value } => escape_text(&value.string_value(), out),
    }
}

fn write_name(name: &QName, out: &mut String) {
    if let Some(p) = name.prefix() {
        let _ = write!(out, "{p}:");
    }
    out.push_str(name.local_name());
}

fn escape_text(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            _ => out.push(c),
        }
    }
}

fn escape_attr(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
}

/// Parse an XML document into a node tree. Namespace-aware; comments,
/// processing instructions and the XML declaration are skipped; DTDs are
/// rejected. All text becomes `xs:untypedAtomic` pending validation.
pub fn parse(input: &str) -> Result<NodeRef> {
    let mut p = Parser {
        input: input.as_bytes(),
        pos: 0,
    };
    p.skip_misc()?;
    let ns = Namespaces::default();
    let root = p.parse_element(&ns)?;
    p.skip_misc()?;
    if p.pos != p.input.len() {
        return Err(p.err("trailing content after document element"));
    }
    Ok(Node::document(vec![root]))
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> XdmError {
        XdmError::XmlParse {
            pos: self.pos,
            message: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn skip_misc(&mut self) -> Result<()> {
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                self.skip_until("?>")?;
            } else if self.starts_with("<!--") {
                self.skip_until("-->")?;
            } else if self.starts_with("<!DOCTYPE") {
                return Err(self.err("DOCTYPE is not supported"));
            } else {
                return Ok(());
            }
        }
    }

    fn skip_until(&mut self, end: &str) -> Result<()> {
        while self.pos < self.input.len() {
            if self.starts_with(end) {
                self.pos += end.len();
                return Ok(());
            }
            self.pos += 1;
        }
        Err(self.err("unterminated construct"))
    }

    fn read_name(&mut self) -> Result<String> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(std::str::from_utf8(&self.input[start..self.pos])
            .map_err(|_| self.err("invalid UTF-8 in name"))?
            .to_string())
    }

    fn parse_element(&mut self, parent_ns: &Namespaces) -> Result<NodeRef> {
        if self.peek() != Some(b'<') {
            return Err(self.err("expected '<'"));
        }
        self.pos += 1;
        let raw_name = self.read_name()?;
        let mut ns = parent_ns.clone();
        let mut raw_attrs: Vec<(String, String)> = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') | Some(b'/') => break,
                Some(_) => {
                    let aname = self.read_name()?;
                    self.skip_ws();
                    if self.peek() != Some(b'=') {
                        return Err(self.err("expected '=' in attribute"));
                    }
                    self.pos += 1;
                    self.skip_ws();
                    let quote = self
                        .peek()
                        .ok_or_else(|| self.err("unterminated attribute"))?;
                    if quote != b'"' && quote != b'\'' {
                        return Err(self.err("attribute value must be quoted"));
                    }
                    self.pos += 1;
                    let vstart = self.pos;
                    while self.peek().is_some_and(|c| c != quote) {
                        self.pos += 1;
                    }
                    if self.peek() != Some(quote) {
                        return Err(self.err("unterminated attribute value"));
                    }
                    let value = decode_entities(
                        std::str::from_utf8(&self.input[vstart..self.pos])
                            .map_err(|_| self.err("invalid UTF-8"))?,
                    );
                    self.pos += 1;
                    if aname == "xmlns" {
                        ns.set_default_element_ns(&value);
                    } else if let Some(p) = aname.strip_prefix("xmlns:") {
                        ns.bind(p, &value);
                    } else {
                        raw_attrs.push((aname, value));
                    }
                }
                None => return Err(self.err("unterminated start tag")),
            }
        }
        let name = ns
            .expand(&raw_name, true)
            .ok_or_else(|| self.err(&format!("unbound namespace prefix in <{raw_name}>")))?;
        let attrs: Vec<NodeRef> = raw_attrs
            .into_iter()
            .map(|(an, av)| {
                let qn = ns
                    .expand(&an, false)
                    .ok_or_else(|| self.err(&format!("unbound prefix in attribute {an}")))?;
                Ok(Node::attribute(qn, AtomicValue::untyped(&av)))
            })
            .collect::<Result<_>>()?;
        if self.peek() == Some(b'/') {
            self.pos += 1;
            if self.peek() != Some(b'>') {
                return Err(self.err("expected '>' after '/'"));
            }
            self.pos += 1;
            return Ok(Node::element(name, attrs, vec![]));
        }
        self.pos += 1; // '>'
        let mut children = Vec::new();
        loop {
            if self.starts_with("</") {
                self.pos += 2;
                let close = self.read_name()?;
                if close != raw_name {
                    return Err(self.err(&format!(
                        "mismatched close tag: expected </{raw_name}>, found </{close}>"
                    )));
                }
                self.skip_ws();
                if self.peek() != Some(b'>') {
                    return Err(self.err("expected '>' in close tag"));
                }
                self.pos += 1;
                // drop whitespace-only text between element children
                if children.len() > 1 {
                    prune_ws(&mut children);
                }
                return Ok(Node::element(name, attrs, children));
            } else if self.starts_with("<!--") {
                self.skip_until("-->")?;
            } else if self.starts_with("<?") {
                self.skip_until("?>")?;
            } else if self.peek() == Some(b'<') {
                children.push(self.parse_element(&ns)?);
            } else if self.peek().is_none() {
                return Err(self.err(&format!("unterminated element <{raw_name}>")));
            } else {
                let start = self.pos;
                while self.peek().is_some_and(|c| c != b'<') {
                    self.pos += 1;
                }
                let text = decode_entities(
                    std::str::from_utf8(&self.input[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in text"))?,
                );
                if !text.is_empty() {
                    children.push(Node::text(AtomicValue::untyped(&text)));
                }
            }
        }
    }
}

/// Remove whitespace-only text nodes that sit between element children
/// (document formatting noise).
fn prune_ws(children: &mut Vec<NodeRef>) {
    let has_element = children
        .iter()
        .any(|c| matches!(c.kind(), NodeKind::Element { .. }));
    if has_element {
        children.retain(|c| match c.kind() {
            NodeKind::Text { value } => !value.string_value().trim().is_empty(),
            _ => true,
        });
    }
}

fn decode_entities(s: &str) -> String {
    if !s.contains('&') {
        return s.to_string();
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(idx) = rest.find('&') {
        out.push_str(&rest[..idx]);
        rest = &rest[idx..];
        let semi = rest.find(';');
        match semi {
            Some(end) => {
                let ent = &rest[1..end];
                match ent {
                    "lt" => out.push('<'),
                    "gt" => out.push('>'),
                    "amp" => out.push('&'),
                    "quot" => out.push('"'),
                    "apos" => out.push('\''),
                    _ if ent.starts_with("#x") || ent.starts_with("#X") => {
                        if let Ok(cp) = u32::from_str_radix(&ent[2..], 16) {
                            if let Some(c) = char::from_u32(cp) {
                                out.push(c);
                            }
                        }
                    }
                    _ if ent.starts_with('#') => {
                        if let Ok(cp) = ent[1..].parse::<u32>() {
                            if let Some(c) = char::from_u32(cp) {
                                out.push(c);
                            }
                        }
                    }
                    _ => {
                        out.push('&');
                        out.push_str(ent);
                        out.push(';');
                    }
                }
                rest = &rest[end + 1..];
            }
            None => {
                out.push_str(rest);
                break;
            }
        }
    }
    out.push_str(rest);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::AtomicValue as V;

    #[test]
    fn serialize_simple_tree() {
        let n = Node::element(
            QName::local("CUSTOMER"),
            vec![Node::attribute(QName::local("status"), V::str("a\"b"))],
            vec![Node::simple_element(QName::local("CID"), V::str("C<1>"))],
        );
        assert_eq!(
            serialize(&n),
            r#"<CUSTOMER status="a&quot;b"><CID>C&lt;1&gt;</CID></CUSTOMER>"#
        );
    }

    #[test]
    fn serialize_empty_element_self_closes() {
        let n = Node::element(QName::local("E"), vec![], vec![]);
        assert_eq!(serialize(&n), "<E/>");
    }

    #[test]
    fn parse_roundtrip() {
        let src = r#"<CUSTOMER status="gold"><CID>C1</CID><LAST_NAME>Jones &amp; co</LAST_NAME></CUSTOMER>"#;
        let doc = parse(src).unwrap();
        let root = &doc.children()[0];
        assert_eq!(root.name().unwrap().local_name(), "CUSTOMER");
        assert_eq!(
            root.attribute_named(&QName::local("status"))
                .unwrap()
                .string_value(),
            "gold"
        );
        assert_eq!(
            root.child_elements(&QName::local("LAST_NAME"))
                .next()
                .unwrap()
                .string_value(),
            "Jones & co"
        );
        // reserialize and reparse: stable
        let again = parse(&serialize(root)).unwrap();
        assert!(again.children()[0].deep_equal(root));
    }

    #[test]
    fn parse_namespaces() {
        let src =
            r#"<t:PROFILE xmlns:t="urn:profile" xmlns="urn:default"><CID>1</CID></t:PROFILE>"#;
        let doc = parse(src).unwrap();
        let root = &doc.children()[0];
        assert_eq!(root.name().unwrap().uri(), Some("urn:profile"));
        let cid = root.all_child_elements().next().unwrap();
        assert_eq!(cid.name().unwrap().uri(), Some("urn:default"));
    }

    #[test]
    fn parse_skips_decl_comments_and_ws() {
        let src = "<?xml version=\"1.0\"?>\n<!-- hi -->\n<R>\n  <A>1</A>\n  <A>2</A>\n</R>";
        let doc = parse(src).unwrap();
        let root = &doc.children()[0];
        assert_eq!(root.all_child_elements().count(), 2);
        // whitespace-only text pruned
        assert_eq!(root.children().len(), 2);
    }

    #[test]
    fn parse_preserves_mixed_text() {
        let doc = parse("<A>one</A>").unwrap();
        assert_eq!(doc.children()[0].string_value(), "one");
    }

    #[test]
    fn parse_errors() {
        assert!(parse("<A><B></A>").is_err());
        assert!(parse("<A attr=x/>").is_err());
        assert!(parse("<A>").is_err());
        assert!(parse("<!DOCTYPE foo><A/>").is_err());
        assert!(parse("<A/><B/>").is_err());
        assert!(parse("<zz:A/>").is_err()); // unbound prefix
    }

    #[test]
    fn entity_decoding() {
        assert_eq!(decode_entities("a&#65;&#x42;&amp;"), "aAB&");
        assert_eq!(decode_entities("&unknown;"), "&unknown;");
        assert_eq!(decode_entities("plain"), "plain");
    }
}
