//! XML nodes with type annotations.
//!
//! ALDSP's runtime keeps data *typed end to end*: adaptors feed typed
//! tokens in, and type annotations on element content "survive
//! construction" under structural typing (§3.1). Nodes here therefore
//! carry typed atomic values in their text leaves rather than only
//! strings. Trees are immutable and `Arc`-shared: node identity (the
//! XQuery `is` relation) is `Arc` pointer identity.

use crate::qname::QName;
use crate::value::AtomicValue;
use std::fmt;
use std::sync::Arc;

/// Shared reference to an immutable node.
pub type NodeRef = Arc<Node>;

/// One XML node.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    kind: NodeKind,
}

/// The node kinds ALDSP's data-centric subset needs (no PIs/comments —
/// those never arise from relational, service or validated file sources).
#[derive(Debug, Clone, PartialEq)]
pub enum NodeKind {
    /// A document node wrapping root elements.
    Document {
        /// Child nodes (normally a single root element).
        children: Vec<NodeRef>,
    },
    /// An element with attributes and ordered children.
    Element {
        /// The element name.
        name: QName,
        /// Attribute nodes (each `NodeKind::Attribute`).
        attributes: Vec<NodeRef>,
        /// Child element/text nodes in document order.
        children: Vec<NodeRef>,
    },
    /// An attribute with a typed value.
    Attribute {
        /// The attribute name.
        name: QName,
        /// The typed attribute value.
        value: AtomicValue,
    },
    /// A text leaf carrying a typed atomic value (the type annotation the
    /// paper's typed token stream preserves).
    Text {
        /// The typed content; `AtomicValue::Untyped` for unvalidated text.
        value: AtomicValue,
    },
}

impl Node {
    /// Build a document node.
    pub fn document(children: Vec<NodeRef>) -> NodeRef {
        Arc::new(Node {
            kind: NodeKind::Document { children },
        })
    }

    /// Build an element node.
    pub fn element(name: QName, attributes: Vec<NodeRef>, children: Vec<NodeRef>) -> NodeRef {
        debug_assert!(attributes
            .iter()
            .all(|a| matches!(a.kind, NodeKind::Attribute { .. })));
        Arc::new(Node {
            kind: NodeKind::Element {
                name,
                attributes,
                children,
            },
        })
    }

    /// Build an element with a single typed text child — the common shape
    /// for relational column elements.
    pub fn simple_element(name: QName, value: AtomicValue) -> NodeRef {
        Node::element(name, vec![], vec![Node::text(value)])
    }

    /// Build an attribute node.
    pub fn attribute(name: QName, value: AtomicValue) -> NodeRef {
        Arc::new(Node {
            kind: NodeKind::Attribute { name, value },
        })
    }

    /// Build a typed text node.
    pub fn text(value: AtomicValue) -> NodeRef {
        Arc::new(Node {
            kind: NodeKind::Text { value },
        })
    }

    /// The node kind.
    pub fn kind(&self) -> &NodeKind {
        &self.kind
    }

    /// The node name, if the kind has one.
    pub fn name(&self) -> Option<&QName> {
        match &self.kind {
            NodeKind::Element { name, .. } | NodeKind::Attribute { name, .. } => Some(name),
            _ => None,
        }
    }

    /// Child nodes (empty for leaves).
    pub fn children(&self) -> &[NodeRef] {
        match &self.kind {
            NodeKind::Document { children } | NodeKind::Element { children, .. } => children,
            _ => &[],
        }
    }

    /// Attribute nodes of an element.
    pub fn attributes(&self) -> &[NodeRef] {
        match &self.kind {
            NodeKind::Element { attributes, .. } => attributes,
            _ => &[],
        }
    }

    /// Child elements whose name matches `name` (the `child::E` axis step).
    pub fn child_elements<'a>(&'a self, name: &'a QName) -> impl Iterator<Item = &'a NodeRef> {
        self.children()
            .iter()
            .filter(move |c| matches!(c.kind(), NodeKind::Element { name: n, .. } if n == name))
    }

    /// All child elements (the `child::*` axis step).
    pub fn all_child_elements(&self) -> impl Iterator<Item = &NodeRef> {
        self.children()
            .iter()
            .filter(|c| matches!(c.kind(), NodeKind::Element { .. }))
    }

    /// The attribute named `name`, if present.
    pub fn attribute_named(&self, name: &QName) -> Option<&NodeRef> {
        self.attributes().iter().find(|a| a.name() == Some(name))
    }

    /// The XQuery string value: concatenated text descendants.
    pub fn string_value(&self) -> String {
        match &self.kind {
            NodeKind::Text { value } => value.string_value(),
            NodeKind::Attribute { value, .. } => value.string_value(),
            _ => {
                let mut out = String::new();
                collect_text(self, &mut out);
                out
            }
        }
    }

    /// The typed value used by atomization (`fn:data`).
    ///
    /// * attributes and text nodes yield their annotated value;
    /// * an element with exactly one text child yields that child's typed
    ///   value (annotations survive construction — §3.1);
    /// * any other element yields its string value as `xs:untypedAtomic`;
    /// * an *empty* element yields `None` (empty sequence), matching the
    ///   paper's NULLs-as-missing-content model.
    pub fn typed_value(&self) -> Option<AtomicValue> {
        match &self.kind {
            NodeKind::Attribute { value, .. } | NodeKind::Text { value } => Some(value.clone()),
            NodeKind::Element { children, .. } => match children.as_slice() {
                [] => None,
                [only] => match only.kind() {
                    NodeKind::Text { value } => Some(value.clone()),
                    _ => Some(AtomicValue::untyped(&self.string_value())),
                },
                _ => Some(AtomicValue::untyped(&self.string_value())),
            },
            NodeKind::Document { .. } => Some(AtomicValue::untyped(&self.string_value())),
        }
    }

    /// Structural deep equality (`fn:deep-equal` semantics over this
    /// node-kind subset): names, typed values and ordered children match.
    pub fn deep_equal(&self, other: &Node) -> bool {
        match (&self.kind, &other.kind) {
            (NodeKind::Text { value: a }, NodeKind::Text { value: b }) => {
                a.compare(b) == Some(std::cmp::Ordering::Equal)
            }
            (
                NodeKind::Attribute {
                    name: na,
                    value: va,
                },
                NodeKind::Attribute {
                    name: nb,
                    value: vb,
                },
            ) => na == nb && va.compare(vb) == Some(std::cmp::Ordering::Equal),
            (
                NodeKind::Element {
                    name: na,
                    attributes: aa,
                    children: ca,
                },
                NodeKind::Element {
                    name: nb,
                    attributes: ab,
                    children: cb,
                },
            ) => {
                na == nb
                    && aa.len() == ab.len()
                    && ca.len() == cb.len()
                    // attributes are unordered
                    && aa.iter().all(|x| ab.iter().any(|y| x.deep_equal(y)))
                    && ca.iter().zip(cb).all(|(x, y)| x.deep_equal(y))
            }
            (NodeKind::Document { children: ca }, NodeKind::Document { children: cb }) => {
                ca.len() == cb.len() && ca.iter().zip(cb).all(|(x, y)| x.deep_equal(y))
            }
            _ => false,
        }
    }
}

fn collect_text(node: &Node, out: &mut String) {
    match node.kind() {
        NodeKind::Text { value } => out.push_str(&value.string_value()),
        _ => {
            for c in node.children() {
                collect_text(c, out);
            }
        }
    }
}

impl fmt::Display for Node {
    /// Displays the node as XML (delegates to the serializer in [`crate::xml`]).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::xml::serialize(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::AtomicValue as V;

    fn customer() -> NodeRef {
        Node::element(
            QName::local("CUSTOMER"),
            vec![Node::attribute(QName::local("status"), V::str("gold"))],
            vec![
                Node::simple_element(QName::local("CID"), V::str("CUST001")),
                Node::simple_element(QName::local("LAST_NAME"), V::str("Jones")),
                Node::simple_element(QName::local("SINCE"), V::Integer(1_000_000)),
            ],
        )
    }

    #[test]
    fn navigation() {
        let c = customer();
        let cid = QName::local("CID");
        let hits: Vec<_> = c.child_elements(&cid).collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].string_value(), "CUST001");
        assert_eq!(c.all_child_elements().count(), 3);
        assert!(c.attribute_named(&QName::local("status")).is_some());
        assert!(c.attribute_named(&QName::local("missing")).is_none());
    }

    #[test]
    fn typed_value_survives_construction() {
        // The SINCE leaf keeps its integer annotation even though it was
        // wrapped in a constructed element — the point of §3.1.
        let c = customer();
        let since = c
            .child_elements(&QName::local("SINCE"))
            .next()
            .unwrap()
            .typed_value()
            .unwrap();
        assert_eq!(since, V::Integer(1_000_000));
    }

    #[test]
    fn empty_element_atomizes_to_empty_sequence() {
        // NULL columns are modeled as missing/empty content (§4.3).
        let e = Node::element(QName::local("MIDDLE_NAME"), vec![], vec![]);
        assert_eq!(e.typed_value(), None);
    }

    #[test]
    fn complex_content_atomizes_as_untyped_string() {
        let c = customer();
        let v = c.typed_value().unwrap();
        assert_eq!(v.type_of(), crate::AtomicType::Untyped);
        assert_eq!(v.string_value(), "CUST001Jones1000000");
    }

    #[test]
    fn string_value_concatenates_descendants() {
        let c = customer();
        assert_eq!(c.string_value(), "CUST001Jones1000000");
    }

    #[test]
    fn deep_equal_ignores_attribute_order() {
        let a = Node::element(
            QName::local("E"),
            vec![
                Node::attribute(QName::local("x"), V::Integer(1)),
                Node::attribute(QName::local("y"), V::Integer(2)),
            ],
            vec![],
        );
        let b = Node::element(
            QName::local("E"),
            vec![
                Node::attribute(QName::local("y"), V::Integer(2)),
                Node::attribute(QName::local("x"), V::Integer(1)),
            ],
            vec![],
        );
        assert!(a.deep_equal(&b));
    }

    #[test]
    fn deep_equal_respects_child_order_and_values() {
        let a = Node::simple_element(QName::local("E"), V::Integer(1));
        let b = Node::simple_element(QName::local("E"), V::Integer(2));
        assert!(!a.deep_equal(&b));
        // typed 1 equals untyped "1"? compare() promotes untyped to double
        let c = Node::simple_element(QName::local("E"), V::untyped("1"));
        assert!(a.deep_equal(&c));
    }
}
