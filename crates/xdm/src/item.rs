//! Items and sequences.
//!
//! The XQuery data model is built from *sequences of items*, where an item
//! is an atomic value or a node. This module supplies the sequence-level
//! operations the runtime evaluator needs: atomization (`fn:data`),
//! effective boolean value, general vs. value comparison semantics, and
//! singleton extraction.

use crate::node::NodeRef;
use crate::value::{ArithOp, AtomicValue};
use crate::{Result, XdmError};
use std::cmp::Ordering;
use std::sync::Arc;

/// One XQuery item: an atomic value or a node.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// An atomic value.
    Atomic(AtomicValue),
    /// A node (element, attribute, text or document).
    Node(NodeRef),
}

impl Item {
    /// Convenience constructor for an integer item.
    pub fn int(i: i64) -> Item {
        Item::Atomic(AtomicValue::Integer(i))
    }

    /// Convenience constructor for a string item.
    pub fn str(s: &str) -> Item {
        Item::Atomic(AtomicValue::str(s))
    }

    /// The string value of the item.
    pub fn string_value(&self) -> String {
        match self {
            Item::Atomic(v) => v.string_value(),
            Item::Node(n) => n.string_value(),
        }
    }

    /// Atomize this item into zero or more atomic values (`fn:data`).
    pub fn atomize(&self, out: &mut Vec<AtomicValue>) {
        match self {
            Item::Atomic(v) => out.push(v.clone()),
            Item::Node(n) => {
                if let Some(v) = n.typed_value() {
                    out.push(v);
                }
            }
        }
    }

    /// Is this item a node?
    pub fn as_node(&self) -> Option<&NodeRef> {
        match self {
            Item::Node(n) => Some(n),
            Item::Atomic(_) => None,
        }
    }

    /// Is this item atomic?
    pub fn as_atomic(&self) -> Option<&AtomicValue> {
        match self {
            Item::Atomic(v) => Some(v),
            Item::Node(_) => None,
        }
    }
}

impl From<AtomicValue> for Item {
    fn from(v: AtomicValue) -> Item {
        Item::Atomic(v)
    }
}

impl From<NodeRef> for Item {
    fn from(n: NodeRef) -> Item {
        Item::Node(n)
    }
}

/// An XQuery sequence — a flat, ordered collection of items. Sequences
/// never nest; concatenation flattens. The inner `Vec` is wrapped so we
/// can hang the XQuery-specific operations off it.
pub type Sequence = Vec<Item>;

/// Atomize a whole sequence (`fn:data($seq)`).
pub fn atomize(seq: &[Item]) -> Vec<AtomicValue> {
    let mut out = Vec::with_capacity(seq.len());
    for item in seq {
        item.atomize(&mut out);
    }
    out
}

/// The effective boolean value of a sequence (XQuery 2.4.3):
/// empty → false; first item a node → true; singleton boolean/number/string
/// → truthiness; anything else is a type error.
pub fn effective_boolean_value(seq: &[Item]) -> Result<bool> {
    match seq {
        [] => Ok(false),
        [Item::Node(_), ..] => Ok(true),
        [Item::Atomic(v)] => Ok(match v {
            AtomicValue::Boolean(b) => *b,
            AtomicValue::Integer(i) => *i != 0,
            AtomicValue::Decimal(d) => d.0 != 0,
            AtomicValue::Double(d) => *d != 0.0 && !d.is_nan(),
            AtomicValue::String(s) | AtomicValue::Untyped(s) => !s.is_empty(),
            _ => {
                return Err(XdmError::BooleanValue(v.string_value()));
            }
        }),
        _ => Err(XdmError::BooleanValue(format!(
            "sequence of {} items",
            seq.len()
        ))),
    }
}

/// Extract the single item of a singleton sequence; empty yields `None`,
/// more than one item is an error.
pub fn singleton(seq: &[Item]) -> Result<Option<&Item>> {
    match seq {
        [] => Ok(None),
        [one] => Ok(Some(one)),
        _ => Err(XdmError::NotSingleton(seq.len())),
    }
}

/// The value-comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompOp {
    /// `eq` / `=`
    Eq,
    /// `ne` / `!=`
    Ne,
    /// `lt` / `<`
    Lt,
    /// `le` / `<=`
    Le,
    /// `gt` / `>`
    Gt,
    /// `ge` / `>=`
    Ge,
}

impl CompOp {
    /// Apply the operator to an ordering.
    pub fn test(self, ord: Ordering) -> bool {
        match self {
            CompOp::Eq => ord == Ordering::Equal,
            CompOp::Ne => ord != Ordering::Equal,
            CompOp::Lt => ord == Ordering::Less,
            CompOp::Le => ord != Ordering::Greater,
            CompOp::Gt => ord == Ordering::Greater,
            CompOp::Ge => ord != Ordering::Less,
        }
    }

    /// The SQL rendering of this operator (used by SQL generation, §4.3).
    pub fn sql(self) -> &'static str {
        match self {
            CompOp::Eq => "=",
            CompOp::Ne => "<>",
            CompOp::Lt => "<",
            CompOp::Le => "<=",
            CompOp::Gt => ">",
            CompOp::Ge => ">=",
        }
    }

    /// The XQuery value-comparison keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            CompOp::Eq => "eq",
            CompOp::Ne => "ne",
            CompOp::Lt => "lt",
            CompOp::Le => "le",
            CompOp::Gt => "gt",
            CompOp::Ge => "ge",
        }
    }
}

/// XQuery *value comparison*: both operands must atomize to singletons
/// (empty yields empty = `None`); incomparable types are an error.
pub fn value_compare(a: &[Item], op: CompOp, b: &[Item]) -> Result<Option<bool>> {
    let av = atomize(a);
    let bv = atomize(b);
    if av.is_empty() || bv.is_empty() {
        return Ok(None);
    }
    if av.len() > 1 {
        return Err(XdmError::NotSingleton(av.len()));
    }
    if bv.len() > 1 {
        return Err(XdmError::NotSingleton(bv.len()));
    }
    let ord = av[0]
        .compare(&bv[0])
        .ok_or_else(|| XdmError::Comparison(av[0].type_of(), bv[0].type_of()))?;
    Ok(Some(op.test(ord)))
}

/// XQuery *general comparison* (`=`, `<`, …): existentially quantified over
/// the atomized operands. Untyped values are cast toward the other side.
pub fn general_compare(a: &[Item], op: CompOp, b: &[Item]) -> Result<bool> {
    let av = atomize(a);
    let bv = atomize(b);
    for x in &av {
        for y in &bv {
            let (x2, y2) = promote_general(x, y)?;
            if let Some(ord) = x2.compare(&y2) {
                if op.test(ord) {
                    return Ok(true);
                }
            }
        }
    }
    Ok(false)
}

fn promote_general(x: &AtomicValue, y: &AtomicValue) -> Result<(AtomicValue, AtomicValue)> {
    use crate::value::AtomicType as T;
    let (tx, ty) = (x.type_of(), y.type_of());
    Ok(match (tx, ty) {
        (T::Untyped, T::Untyped) => (x.clone(), y.clone()),
        (T::Untyped, t) => (x.cast_to(t)?, y.clone()),
        (t, T::Untyped) => (x.clone(), y.cast_to(t)?),
        _ => (x.clone(), y.clone()),
    })
}

/// Arithmetic over sequences: empty operand propagates to empty; operands
/// atomize to singletons, untyped casts to double.
pub fn arithmetic(a: &[Item], op: ArithOp, b: &[Item]) -> Result<Option<AtomicValue>> {
    let av = atomize(a);
    let bv = atomize(b);
    if av.is_empty() || bv.is_empty() {
        return Ok(None);
    }
    if av.len() > 1 {
        return Err(XdmError::NotSingleton(av.len()));
    }
    if bv.len() > 1 {
        return Err(XdmError::NotSingleton(bv.len()));
    }
    Ok(Some(av[0].arithmetic(op, &bv[0])?))
}

/// Build a one-item sequence holding a string — common in tests.
pub fn seq_str(s: &str) -> Sequence {
    vec![Item::Atomic(AtomicValue::String(Arc::from(s)))]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Node;
    use crate::qname::QName;
    use crate::value::AtomicValue as V;

    #[test]
    fn ebv_rules() {
        assert!(!effective_boolean_value(&[]).unwrap());
        assert!(effective_boolean_value(&[Item::int(1)]).unwrap());
        assert!(!effective_boolean_value(&[Item::str("")]).unwrap());
        assert!(effective_boolean_value(&[Item::Node(Node::text(V::str("x")))]).unwrap());
        // multi-item non-node-first is an error
        assert!(effective_boolean_value(&[Item::int(1), Item::int(2)]).is_err());
        // node-first multi-item is fine
        assert!(
            effective_boolean_value(&[Item::Node(Node::text(V::str("x"))), Item::int(2)]).unwrap()
        );
        // date has no EBV
        assert!(effective_boolean_value(&[Item::Atomic(V::Date(crate::value::Date(0)))]).is_err());
    }

    #[test]
    fn value_compare_empty_propagates() {
        assert_eq!(
            value_compare(&[], CompOp::Eq, &[Item::int(1)]).unwrap(),
            None
        );
        assert_eq!(
            value_compare(&[Item::int(1)], CompOp::Eq, &[Item::int(1)]).unwrap(),
            Some(true)
        );
        assert!(value_compare(&[Item::int(1), Item::int(2)], CompOp::Eq, &[Item::int(1)]).is_err());
    }

    #[test]
    fn general_compare_is_existential() {
        let a = vec![Item::int(1), Item::int(5)];
        let b = vec![Item::int(5), Item::int(9)];
        assert!(general_compare(&a, CompOp::Eq, &b).unwrap());
        assert!(!general_compare(&a, CompOp::Eq, &[Item::int(7)]).unwrap());
        // the classic XQuery quirk: both = and != can hold simultaneously
        assert!(general_compare(&a, CompOp::Ne, &b).unwrap());
        // empty operand: always false
        assert!(!general_compare(&a, CompOp::Eq, &[]).unwrap());
    }

    #[test]
    fn general_compare_casts_untyped() {
        let a = vec![Item::Atomic(V::untyped("5"))];
        assert!(general_compare(&a, CompOp::Eq, &[Item::int(5)]).unwrap());
        let s = vec![Item::Atomic(V::untyped("abc"))];
        assert!(general_compare(&s, CompOp::Eq, &[Item::str("abc")]).unwrap());
    }

    #[test]
    fn atomize_nodes() {
        let n = Node::simple_element(QName::local("CID"), V::Integer(7));
        let out = atomize(&[Item::Node(n)]);
        assert_eq!(out, vec![V::Integer(7)]);
        // empty element atomizes to nothing
        let e = Node::element(QName::local("X"), vec![], vec![]);
        assert!(atomize(&[Item::Node(e)]).is_empty());
    }

    #[test]
    fn arithmetic_empty_propagates() {
        assert_eq!(
            arithmetic(&[], ArithOp::Add, &[Item::int(1)]).unwrap(),
            None
        );
        assert_eq!(
            arithmetic(&[Item::int(2)], ArithOp::Mul, &[Item::int(3)]).unwrap(),
            Some(V::Integer(6))
        );
    }

    #[test]
    fn comp_op_sql_and_keywords() {
        assert_eq!(CompOp::Ne.sql(), "<>");
        assert_eq!(CompOp::Ge.keyword(), "ge");
        assert!(CompOp::Le.test(Ordering::Equal));
        assert!(!CompOp::Lt.test(Ordering::Equal));
    }
}
