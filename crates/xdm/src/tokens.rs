//! The typed XML token stream and tuple representations (§5.1, Figure 4).
//!
//! ALDSP's runtime operators are *token iterators* over a typed token
//! stream — a SAX-like event stream that materializes events and carries
//! the full (typed) XQuery data model. Tuples (FLWOR variable bindings)
//! are not part of the XQuery data model, so the runtime adds tuple
//! delimiters and, per Figure 4, **three tuple representations**:
//!
//! * **Stream**: `BeginTuple f0… FieldSeparator f1… EndTuple` — low memory,
//!   but skipping a field means scanning its tokens.
//! * **SingleToken**: the whole tuple stream wrapped into one token —
//!   cheap to skip/copy, but field access must unwrap and scan.
//! * **Array**: one token per field — highest memory, O(1) access to every
//!   field; usable when each field fits in a single token (the relational
//!   case, where fields are typed column values).
//!
//! The optimizer picks the representation per use site; `benches/
//! tuple_repr.rs` reproduces the Figure 4 trade-offs.

use crate::item::Item;
use crate::node::{Node, NodeKind, NodeRef};
use crate::qname::QName;
use crate::value::AtomicValue;
use crate::{Result, XdmError};
use std::sync::Arc;

/// One token of the typed XML token stream.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Start of an element with the given name.
    StartElement(QName),
    /// An attribute event (must follow `StartElement`).
    Attribute(QName, AtomicValue),
    /// A typed atomic/text event.
    Atomic(AtomicValue),
    /// End of the current element.
    EndElement,
    /// Start of a tuple (stream representation).
    BeginTuple,
    /// Separator between tuple fields (stream representation).
    FieldSeparator,
    /// End of a tuple (stream representation).
    EndTuple,
    /// A materialized sub-stream carried as a single token: the
    /// *single-token* tuple representation, and the per-field wrapper the
    /// *array* representation uses for non-atomic fields.
    Wrapped(Arc<Vec<Token>>),
    /// The *array* tuple representation: exactly one token per field.
    TupleArray(Arc<Vec<Token>>),
}

/// A materialized token stream.
pub type TokenStream = Vec<Token>;

/// The three tuple representations of Figure 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TupleRepr {
    /// `(BeginTuple … EndTuple)` delimiters around inline field streams.
    Stream,
    /// The whole tuple as one `Wrapped` token.
    SingleToken,
    /// One token per field (`TupleArray`).
    Array,
}

/// Expand a node into its token-stream form.
pub fn node_to_tokens(node: &Node, out: &mut TokenStream) {
    match node.kind() {
        NodeKind::Document { children } => {
            for c in children {
                node_to_tokens(c, out);
            }
        }
        NodeKind::Element {
            name,
            attributes,
            children,
        } => {
            out.push(Token::StartElement(name.clone()));
            for a in attributes {
                if let NodeKind::Attribute { name, value } = a.kind() {
                    out.push(Token::Attribute(name.clone(), value.clone()));
                }
            }
            for c in children {
                node_to_tokens(c, out);
            }
            out.push(Token::EndElement);
        }
        NodeKind::Attribute { name, value } => {
            out.push(Token::Attribute(name.clone(), value.clone()));
        }
        NodeKind::Text { value } => out.push(Token::Atomic(value.clone())),
    }
}

/// Expand an item (atomic or node) into tokens.
pub fn item_to_tokens(item: &Item, out: &mut TokenStream) {
    match item {
        Item::Atomic(v) => out.push(Token::Atomic(v.clone())),
        Item::Node(n) => node_to_tokens(n, out),
    }
}

/// Expand a sequence into tokens.
pub fn sequence_to_tokens(seq: &[Item]) -> TokenStream {
    let mut out = Vec::new();
    for item in seq {
        item_to_tokens(item, &mut out);
    }
    out
}

/// Rebuild a sequence of items from a token stream. Inverse of
/// [`sequence_to_tokens`]; `Wrapped` tokens are transparently unwrapped,
/// tuple delimiters are rejected (tuples are not items).
pub fn tokens_to_items(tokens: &[Token]) -> Result<Vec<Item>> {
    let mut items = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            Token::Atomic(v) => {
                items.push(Item::Atomic(v.clone()));
                i += 1;
            }
            Token::StartElement(_) => {
                let (node, next) = parse_element(tokens, i)?;
                items.push(Item::Node(node));
                i = next;
            }
            Token::Attribute(name, value) => {
                items.push(Item::Node(Node::attribute(name.clone(), value.clone())));
                i += 1;
            }
            Token::Wrapped(inner) => {
                items.extend(tokens_to_items(inner)?);
                i += 1;
            }
            t => {
                return Err(XdmError::Other(format!(
                    "unexpected token in item stream: {t:?}"
                )))
            }
        }
    }
    Ok(items)
}

fn parse_element(tokens: &[Token], start: usize) -> Result<(NodeRef, usize)> {
    let Token::StartElement(name) = &tokens[start] else {
        return Err(XdmError::Other("expected StartElement".into()));
    };
    let mut attrs = Vec::new();
    let mut children = Vec::new();
    let mut i = start + 1;
    while i < tokens.len() {
        match &tokens[i] {
            Token::Attribute(n, v) => {
                attrs.push(Node::attribute(n.clone(), v.clone()));
                i += 1;
            }
            Token::Atomic(v) => {
                children.push(Node::text(v.clone()));
                i += 1;
            }
            Token::StartElement(_) => {
                let (child, next) = parse_element(tokens, i)?;
                children.push(child);
                i = next;
            }
            Token::Wrapped(inner) => {
                for item in tokens_to_items(inner)? {
                    match item {
                        Item::Node(n) => children.push(n),
                        Item::Atomic(v) => children.push(Node::text(v)),
                    }
                }
                i += 1;
            }
            Token::EndElement => {
                return Ok((Node::element(name.clone(), attrs, children), i + 1));
            }
            t => {
                return Err(XdmError::Other(format!(
                    "unexpected token inside element: {t:?}"
                )))
            }
        }
    }
    Err(XdmError::Other(format!(
        "unterminated element <{name}> in token stream"
    )))
}

/// Encode a tuple whose fields are the given token streams, using `repr`.
pub fn encode_tuple(fields: &[TokenStream], repr: TupleRepr) -> TokenStream {
    match repr {
        TupleRepr::Stream => {
            let mut out =
                Vec::with_capacity(2 + fields.iter().map(Vec::len).sum::<usize>() + fields.len());
            out.push(Token::BeginTuple);
            for (i, f) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(Token::FieldSeparator);
                }
                out.extend(f.iter().cloned());
            }
            out.push(Token::EndTuple);
            out
        }
        TupleRepr::SingleToken => {
            vec![Token::Wrapped(Arc::new(encode_tuple(
                fields,
                TupleRepr::Stream,
            )))]
        }
        TupleRepr::Array => {
            let per_field: Vec<Token> = fields
                .iter()
                .map(|f| match f.as_slice() {
                    [single @ (Token::Atomic(_) | Token::Wrapped(_))] => single.clone(),
                    _ => Token::Wrapped(Arc::new(f.clone())),
                })
                .collect();
            vec![Token::TupleArray(Arc::new(per_field))]
        }
    }
}

/// Decode a tuple (in any representation) back into its field streams.
pub fn decode_tuple(tokens: &[Token]) -> Result<Vec<TokenStream>> {
    match tokens {
        [Token::Wrapped(inner)] => decode_tuple(inner),
        [Token::TupleArray(per_field)] => Ok(per_field
            .iter()
            .map(|t| match t {
                Token::Wrapped(inner) => inner.as_ref().clone(),
                other => vec![other.clone()],
            })
            .collect()),
        [Token::BeginTuple, .., Token::EndTuple] => {
            let body = &tokens[1..tokens.len() - 1];
            let mut fields = vec![Vec::new()];
            let mut depth = 0usize;
            for t in body {
                match t {
                    Token::BeginTuple => {
                        depth += 1;
                        fields.last_mut().unwrap().push(t.clone());
                    }
                    Token::EndTuple => {
                        depth = depth
                            .checked_sub(1)
                            .ok_or_else(|| XdmError::Other("unbalanced tuple delimiters".into()))?;
                        fields.last_mut().unwrap().push(t.clone());
                    }
                    Token::FieldSeparator if depth == 0 => fields.push(Vec::new()),
                    _ => fields.last_mut().unwrap().push(t.clone()),
                }
            }
            Ok(fields)
        }
        _ => Err(XdmError::Other("not a tuple token stream".into())),
    }
}

/// Extract field `idx` of an encoded tuple without decoding the rest —
/// the `extract-field` runtime operator (§5.2). The cost profile differs
/// by representation exactly as Figure 4 describes: array is O(1),
/// stream/single-token must scan over preceding fields.
pub fn extract_field(tokens: &[Token], idx: usize) -> Result<TokenStream> {
    match tokens {
        [Token::TupleArray(per_field)] => per_field
            .get(idx)
            .map(|t| match t {
                Token::Wrapped(inner) => inner.as_ref().clone(),
                other => vec![other.clone()],
            })
            .ok_or_else(|| XdmError::Other(format!("tuple has no field {idx}"))),
        [Token::Wrapped(inner)] => extract_field(inner, idx),
        [Token::BeginTuple, ..] => {
            let fields = decode_tuple(tokens)?;
            fields
                .into_iter()
                .nth(idx)
                .ok_or_else(|| XdmError::Other(format!("tuple has no field {idx}")))
        }
        _ => Err(XdmError::Other("not a tuple token stream".into())),
    }
}

/// Concatenate two tuples into one wider tuple (`concat-tuples`, §5.2).
pub fn concat_tuples(a: &[Token], b: &[Token], repr: TupleRepr) -> Result<TokenStream> {
    let mut fields = decode_tuple(a)?;
    fields.extend(decode_tuple(b)?);
    Ok(encode_tuple(&fields, repr))
}

/// Project a contiguous range of fields into a narrower tuple
/// (`extract-subtuple`, §5.2 — the converse of `concat-tuples`).
pub fn extract_subtuple(
    tokens: &[Token],
    range: std::ops::Range<usize>,
    repr: TupleRepr,
) -> Result<TokenStream> {
    let fields = decode_tuple(tokens)?;
    if range.end > fields.len() {
        return Err(XdmError::Other(format!(
            "subtuple range {range:?} out of bounds for {} fields",
            fields.len()
        )));
    }
    Ok(encode_tuple(&fields[range], repr))
}

/// Approximate heap footprint of a token stream in bytes — used by the
/// Figure 4 benchmark to report the memory side of the trade-off.
pub fn approx_size(tokens: &[Token]) -> usize {
    tokens.iter().map(token_size).sum::<usize>() + std::mem::size_of_val(tokens)
}

fn token_size(t: &Token) -> usize {
    let base = std::mem::size_of::<Token>();
    match t {
        Token::Wrapped(inner) | Token::TupleArray(inner) => base + approx_size(inner),
        Token::Atomic(AtomicValue::String(s)) | Token::Atomic(AtomicValue::Untyped(s)) => {
            base + s.len()
        }
        Token::Attribute(_, AtomicValue::String(s)) => base + s.len(),
        _ => base,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::AtomicValue as V;

    fn figure4_fields() -> Vec<TokenStream> {
        // Figure 4's example tuple: (100, "al")
        vec![
            vec![Token::Atomic(V::Integer(100))],
            vec![Token::Atomic(V::str("al"))],
        ]
    }

    #[test]
    fn stream_representation_matches_figure4() {
        let t = encode_tuple(&figure4_fields(), TupleRepr::Stream);
        assert_eq!(
            t,
            vec![
                Token::BeginTuple,
                Token::Atomic(V::Integer(100)),
                Token::FieldSeparator,
                Token::Atomic(V::str("al")),
                Token::EndTuple,
            ]
        );
    }

    #[test]
    fn single_token_wraps_stream_form() {
        let t = encode_tuple(&figure4_fields(), TupleRepr::SingleToken);
        assert_eq!(t.len(), 1);
        match &t[0] {
            Token::Wrapped(inner) => assert_eq!(inner[0], Token::BeginTuple),
            other => panic!("expected Wrapped, got {other:?}"),
        }
    }

    #[test]
    fn array_representation_is_one_token_per_field() {
        let t = encode_tuple(&figure4_fields(), TupleRepr::Array);
        match &t[0] {
            Token::TupleArray(fs) => {
                assert_eq!(fs.len(), 2);
                assert_eq!(fs[0], Token::Atomic(V::Integer(100)));
            }
            other => panic!("expected TupleArray, got {other:?}"),
        }
    }

    #[test]
    fn all_representations_decode_identically() {
        let fields = figure4_fields();
        for repr in [TupleRepr::Stream, TupleRepr::SingleToken, TupleRepr::Array] {
            let enc = encode_tuple(&fields, repr);
            assert_eq!(decode_tuple(&enc).unwrap(), fields, "{repr:?}");
            assert_eq!(extract_field(&enc, 1).unwrap(), fields[1], "{repr:?}");
        }
    }

    #[test]
    fn nested_tuples_in_stream_form_decode() {
        let inner = encode_tuple(&figure4_fields(), TupleRepr::Stream);
        let fields = vec![inner.clone(), vec![Token::Atomic(V::Integer(7))]];
        let outer = encode_tuple(&fields, TupleRepr::Stream);
        let dec = decode_tuple(&outer).unwrap();
        assert_eq!(dec.len(), 2);
        assert_eq!(dec[0], inner);
    }

    #[test]
    fn concat_and_subtuple_roundtrip() {
        let a = encode_tuple(&figure4_fields(), TupleRepr::Array);
        let b = encode_tuple(&[vec![Token::Atomic(V::Boolean(true))]], TupleRepr::Array);
        let wide = concat_tuples(&a, &b, TupleRepr::Array).unwrap();
        assert_eq!(decode_tuple(&wide).unwrap().len(), 3);
        let narrow = extract_subtuple(&wide, 1..3, TupleRepr::Stream).unwrap();
        let fs = decode_tuple(&narrow).unwrap();
        assert_eq!(fs.len(), 2);
        assert_eq!(fs[1], vec![Token::Atomic(V::Boolean(true))]);
        assert!(extract_subtuple(&wide, 2..5, TupleRepr::Stream).is_err());
    }

    #[test]
    fn node_tokens_roundtrip() {
        let n = Node::element(
            QName::local("CUSTOMER"),
            vec![Node::attribute(QName::local("status"), V::str("gold"))],
            vec![
                Node::simple_element(QName::local("CID"), V::str("C1")),
                Node::simple_element(QName::local("N"), V::Integer(3)),
            ],
        );
        let mut toks = Vec::new();
        node_to_tokens(&n, &mut toks);
        let items = tokens_to_items(&toks).unwrap();
        assert_eq!(items.len(), 1);
        assert!(items[0].as_node().unwrap().deep_equal(&n));
    }

    #[test]
    fn malformed_streams_are_rejected() {
        assert!(tokens_to_items(&[Token::EndElement]).is_err());
        assert!(tokens_to_items(&[Token::StartElement(QName::local("x"))]).is_err());
        assert!(decode_tuple(&[Token::Atomic(V::Integer(1))]).is_err());
        assert!(extract_field(&[Token::Atomic(V::Integer(1))], 0).is_err());
    }

    #[test]
    fn memory_ordering_matches_paper() {
        // array ≥ single-token ≥ stream is the qualitative memory ordering
        // Figure 4 describes for wide, flat tuples.
        let fields: Vec<TokenStream> = (0..20)
            .map(|i| vec![Token::Atomic(V::Integer(i))])
            .collect();
        let s = approx_size(&encode_tuple(&fields, TupleRepr::Stream));
        let st = approx_size(&encode_tuple(&fields, TupleRepr::SingleToken));
        let ar = approx_size(&encode_tuple(&fields, TupleRepr::Array));
        assert!(st >= s, "single-token {st} < stream {s}");
        assert!(ar > 0 && st > 0 && s > 0);
    }
}
