//! Qualified names and namespaces.
//!
//! ALDSP data services make heavy use of namespaces (each data service and
//! each imported schema lives in its own target namespace — see the prolog
//! of Figure 3 in the paper). `QName` is the interned, cheaply clonable
//! name type used across the whole stack: nodes, schema components, data
//! service functions and compiler expressions.

use std::fmt;
use std::sync::Arc;

/// A qualified XML name: optional namespace URI plus local part.
///
/// Both parts are `Arc<str>` so cloning a `QName` is two refcount bumps —
/// names flow through every token and every compiled expression, so this is
/// a hot type (see the perf-book guidance on oft-instantiated types).
///
/// Equality and hashing are on `(uri, local)`; the original lexical prefix
/// is kept only for serialization fidelity and ignored for comparisons.
#[derive(Clone)]
pub struct QName {
    uri: Option<Arc<str>>,
    local: Arc<str>,
    prefix: Option<Arc<str>>,
}

impl QName {
    /// Create a name with no namespace.
    pub fn local(local: &str) -> Self {
        QName {
            uri: None,
            local: Arc::from(local),
            prefix: None,
        }
    }

    /// Create a name in a namespace, without a lexical prefix.
    pub fn new(uri: &str, local: &str) -> Self {
        QName {
            uri: Some(Arc::from(uri)),
            local: Arc::from(local),
            prefix: None,
        }
    }

    /// Create a name in a namespace with a preferred lexical prefix.
    pub fn with_prefix(prefix: &str, uri: &str, local: &str) -> Self {
        QName {
            uri: Some(Arc::from(uri)),
            local: Arc::from(local),
            prefix: Some(Arc::from(prefix)),
        }
    }

    /// The namespace URI, if any.
    pub fn uri(&self) -> Option<&str> {
        self.uri.as_deref()
    }

    /// The local part of the name.
    pub fn local_name(&self) -> &str {
        &self.local
    }

    /// The lexical prefix the name was written with, if any.
    pub fn prefix(&self) -> Option<&str> {
        self.prefix.as_deref()
    }

    /// Lexical form used in diagnostics: `prefix:local` or `{uri}local`.
    pub fn lexical(&self) -> String {
        match (&self.prefix, &self.uri) {
            (Some(p), _) => format!("{p}:{}", self.local),
            (None, Some(u)) => format!("{{{u}}}{}", self.local),
            (None, None) => self.local.to_string(),
        }
    }

    /// True if `self` matches `other` on (uri, local).
    pub fn matches(&self, other: &QName) -> bool {
        self == other
    }
}

impl PartialEq for QName {
    fn eq(&self, other: &Self) -> bool {
        self.local == other.local
            && match (&self.uri, &other.uri) {
                (None, None) => true,
                (Some(a), Some(b)) => a == b,
                _ => false,
            }
    }
}

impl Eq for QName {}

impl std::hash::Hash for QName {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.uri.as_deref().hash(state);
        self.local.hash(state);
    }
}

impl PartialOrd for QName {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for QName {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.uri.as_deref(), &*self.local).cmp(&(other.uri.as_deref(), &*other.local))
    }
}

impl fmt::Debug for QName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "QName({})", self.lexical())
    }
}

impl fmt::Display for QName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.lexical())
    }
}

impl From<&str> for QName {
    fn from(s: &str) -> Self {
        QName::local(s)
    }
}

/// Well-known namespace URIs used throughout ALDSP.
pub mod ns {
    /// The XML Schema namespace (`xs:` types).
    pub const XS: &str = "http://www.w3.org/2001/XMLSchema";
    /// Standard XQuery function namespace (`fn:`).
    pub const FN: &str = "http://www.w3.org/2005/xpath-functions";
    /// BEA's extension function namespace (`fn-bea:`), home of
    /// `fn-bea:async`, `fn-bea:timeout` and `fn-bea:fail-over` (§5.4–5.6).
    pub const FN_BEA: &str = "http://www.bea.com/xquery/xquery-functions";
}

/// A static namespace environment: prefix → URI bindings plus the default
/// element namespace, as established by `declare namespace` prologs and
/// direct constructor attributes.
#[derive(Debug, Clone, Default)]
pub struct Namespaces {
    bindings: Vec<(Arc<str>, Arc<str>)>,
    default_element_ns: Option<Arc<str>>,
}

impl Namespaces {
    /// Environment with the built-in `xs`, `fn` and `fn-bea` prefixes bound.
    pub fn with_defaults() -> Self {
        let mut n = Namespaces::default();
        n.bind("xs", ns::XS);
        n.bind("fn", ns::FN);
        n.bind("fn-bea", ns::FN_BEA);
        n
    }

    /// Bind `prefix` to `uri`, shadowing any previous binding.
    pub fn bind(&mut self, prefix: &str, uri: &str) {
        self.bindings.push((Arc::from(prefix), Arc::from(uri)));
    }

    /// Set the default element namespace.
    pub fn set_default_element_ns(&mut self, uri: &str) {
        self.default_element_ns = Some(Arc::from(uri));
    }

    /// Resolve a prefix to its URI, innermost binding wins.
    pub fn resolve(&self, prefix: &str) -> Option<&str> {
        self.bindings
            .iter()
            .rev()
            .find(|(p, _)| &**p == prefix)
            .map(|(_, u)| &**u)
    }

    /// Resolve a lexical `prefix:local` or `local` name to a [`QName`].
    ///
    /// Unprefixed names take the default element namespace when
    /// `use_default` is true (element names) and no namespace otherwise
    /// (attribute names, per XML namespace rules).
    pub fn expand(&self, lexical: &str, use_default: bool) -> Option<QName> {
        match lexical.split_once(':') {
            Some((p, l)) => self.resolve(p).map(|u| QName::with_prefix(p, u, l)),
            None => Some(match (&self.default_element_ns, use_default) {
                (Some(u), true) => QName::new(u, lexical),
                _ => QName::local(lexical),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equality_ignores_prefix() {
        let a = QName::with_prefix("tns", "urn:x", "PROFILE");
        let b = QName::new("urn:x", "PROFILE");
        assert_eq!(a, b);
        let c = QName::new("urn:y", "PROFILE");
        assert_ne!(a, c);
        assert_ne!(QName::local("PROFILE"), b);
    }

    #[test]
    fn hash_consistent_with_eq() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(QName::with_prefix("a", "urn:x", "N"));
        assert!(s.contains(&QName::new("urn:x", "N")));
    }

    #[test]
    fn namespace_resolution_innermost_wins() {
        let mut ns = Namespaces::with_defaults();
        ns.bind("t", "urn:one");
        ns.bind("t", "urn:two");
        assert_eq!(ns.resolve("t"), Some("urn:two"));
        assert_eq!(ns.resolve("xs"), Some(ns::XS));
        assert_eq!(ns.resolve("nope"), None);
    }

    #[test]
    fn expand_uses_default_element_namespace_only_for_elements() {
        let mut ns = Namespaces::default();
        ns.set_default_element_ns("urn:d");
        let e = ns.expand("CUSTOMER", true).unwrap();
        assert_eq!(e.uri(), Some("urn:d"));
        let a = ns.expand("id", false).unwrap();
        assert_eq!(a.uri(), None);
    }

    #[test]
    fn expand_unknown_prefix_fails() {
        let ns = Namespaces::default();
        assert!(ns.expand("zz:X", true).is_none());
    }

    #[test]
    fn lexical_forms() {
        assert_eq!(QName::local("A").lexical(), "A");
        assert_eq!(QName::new("u", "A").lexical(), "{u}A");
        assert_eq!(QName::with_prefix("p", "u", "A").lexical(), "p:A");
    }

    #[test]
    fn ordering_is_by_uri_then_local() {
        let a = QName::local("A");
        let b = QName::new("u", "A");
        assert!(a < b);
    }
}
