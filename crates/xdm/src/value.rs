//! Typed atomic values.
//!
//! ALDSP "relies heavily on the typed side of XQuery" (§3.1): every value
//! entering the system from a relational source or validated service result
//! carries a type annotation, and those annotations survive construction
//! under structural typing. This module provides the atomic-value layer:
//! the [`AtomicType`] lattice (with the subtype relation the optimistic
//! type-checker uses), the [`AtomicValue`] representation, XML-Schema-style
//! casting, value comparison with numeric promotion, and arithmetic.

use crate::{Result, XdmError};
use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// The atomic types ALDSP's data-centric use cases require.
///
/// This is the subset that SQL columns, WSDL messages and CSV/XML file
/// schemas map onto (§5.3's "well-defined set of SQL to XML data type
/// mappings"). `Untyped` is the type of unvalidated text; `AnyAtomic` is
/// the top of the atomic lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AtomicType {
    /// `xs:untypedAtomic` — text with no validation.
    Untyped,
    /// `xs:string`.
    String,
    /// `xs:boolean`.
    Boolean,
    /// `xs:integer` (the integer family; SQL INT/BIGINT map here).
    Integer,
    /// `xs:decimal` — exact fixed-point numeric (SQL DECIMAL/NUMERIC).
    Decimal,
    /// `xs:double` (SQL FLOAT/DOUBLE).
    Double,
    /// `xs:date` (SQL DATE).
    Date,
    /// `xs:dateTime` (SQL TIMESTAMP).
    DateTime,
    /// `xs:anyAtomicType` — the top atomic type.
    AnyAtomic,
}

impl AtomicType {
    /// XML-Schema-style derivation: is `self` a subtype of `sup`?
    ///
    /// `Integer <: Decimal <: AnyAtomic`; every concrete type is a subtype
    /// of itself and of `AnyAtomic`.
    pub fn is_subtype_of(self, sup: AtomicType) -> bool {
        if self == sup || sup == AtomicType::AnyAtomic {
            return true;
        }
        matches!((self, sup), (AtomicType::Integer, AtomicType::Decimal))
    }

    /// Do the two types have a non-empty intersection? This is the relation
    /// the paper's *optimistic* static typing rule uses (§4.1): a call
    /// `f($x)` is accepted iff the argument type intersects the parameter
    /// type (a `typematch` is inserted unless it is a proper subtype).
    pub fn intersects(self, other: AtomicType) -> bool {
        self.is_subtype_of(other)
            || other.is_subtype_of(self)
            // untyped data can be cast to anything at runtime
            || self == AtomicType::Untyped
            || other == AtomicType::Untyped
    }

    /// Is this one of the numeric types?
    pub fn is_numeric(self) -> bool {
        matches!(
            self,
            AtomicType::Integer | AtomicType::Decimal | AtomicType::Double
        )
    }

    /// The `xs:` lexical name of this type.
    pub fn xs_name(self) -> &'static str {
        match self {
            AtomicType::Untyped => "xs:untypedAtomic",
            AtomicType::String => "xs:string",
            AtomicType::Boolean => "xs:boolean",
            AtomicType::Integer => "xs:integer",
            AtomicType::Decimal => "xs:decimal",
            AtomicType::Double => "xs:double",
            AtomicType::Date => "xs:date",
            AtomicType::DateTime => "xs:dateTime",
            AtomicType::AnyAtomic => "xs:anyAtomicType",
        }
    }

    /// Parse an `xs:`-prefixed (or bare) type name.
    pub fn from_xs_name(name: &str) -> Option<AtomicType> {
        let bare = name.strip_prefix("xs:").unwrap_or(name);
        Some(match bare {
            "untypedAtomic" => AtomicType::Untyped,
            "string" => AtomicType::String,
            "boolean" => AtomicType::Boolean,
            "integer" | "int" | "long" | "short" | "byte" => AtomicType::Integer,
            "decimal" => AtomicType::Decimal,
            "double" | "float" => AtomicType::Double,
            "date" => AtomicType::Date,
            "dateTime" => AtomicType::DateTime,
            "anyAtomicType" => AtomicType::AnyAtomic,
            _ => return None,
        })
    }
}

impl fmt::Display for AtomicType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.xs_name())
    }
}

/// Exact fixed-point decimal with 6 fractional digits, stored as a scaled
/// `i128`. This keeps SQL DECIMAL arithmetic exact (unlike binary floats)
/// without pulling in an arbitrary-precision dependency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Decimal(pub i128);

/// Scale factor for [`Decimal`]: values are `units / 10^6`.
pub const DECIMAL_SCALE: i128 = 1_000_000;

impl Decimal {
    /// Build from an integer.
    pub fn from_int(i: i64) -> Self {
        Decimal(i as i128 * DECIMAL_SCALE)
    }

    /// Parse a decimal literal like `-12.75`.
    pub fn parse(s: &str) -> Option<Decimal> {
        let s = s.trim();
        let (neg, s) = match s.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, s.strip_prefix('+').unwrap_or(s)),
        };
        if s.is_empty() {
            return None;
        }
        let (int_part, frac_part) = match s.split_once('.') {
            Some((i, f)) => (i, f),
            None => (s, ""),
        };
        if int_part.is_empty() && frac_part.is_empty() {
            return None;
        }
        if !int_part.bytes().all(|b| b.is_ascii_digit())
            || !frac_part.bytes().all(|b| b.is_ascii_digit())
        {
            return None;
        }
        let int_val: i128 = if int_part.is_empty() {
            0
        } else {
            int_part.parse().ok()?
        };
        let mut frac_val: i128 = 0;
        let mut scale = DECIMAL_SCALE / 10;
        for b in frac_part.bytes().take(6) {
            frac_val += (b - b'0') as i128 * scale;
            scale /= 10;
        }
        let v = int_val.checked_mul(DECIMAL_SCALE)?.checked_add(frac_val)?;
        Some(Decimal(if neg { -v } else { v }))
    }

    /// Approximate conversion to `f64`.
    pub fn to_f64(self) -> f64 {
        self.0 as f64 / DECIMAL_SCALE as f64
    }

    /// Truncate toward zero to an integer.
    pub fn trunc(self) -> i64 {
        (self.0 / DECIMAL_SCALE) as i64
    }

    /// Exact sum.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, o: Decimal) -> Decimal {
        Decimal(self.0 + o.0)
    }
    /// Exact difference.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, o: Decimal) -> Decimal {
        Decimal(self.0 - o.0)
    }
    /// Product, truncated to 6 fractional digits.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, o: Decimal) -> Decimal {
        Decimal(self.0 * o.0 / DECIMAL_SCALE)
    }
    /// Quotient, truncated to 6 fractional digits.
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, o: Decimal) -> Option<Decimal> {
        if o.0 == 0 {
            None
        } else {
            Some(Decimal(self.0 * DECIMAL_SCALE / o.0))
        }
    }
}

impl fmt::Display for Decimal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let neg = self.0 < 0;
        let abs = self.0.unsigned_abs();
        let int = abs / DECIMAL_SCALE as u128;
        let frac = abs % DECIMAL_SCALE as u128;
        if neg {
            f.write_str("-")?;
        }
        if frac == 0 {
            write!(f, "{int}")
        } else {
            let s = format!("{frac:06}");
            write!(f, "{int}.{}", s.trim_end_matches('0'))
        }
    }
}

/// Days since 1970-01-01 (proleptic Gregorian), with parse/format helpers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Date(pub i32);

const DAYS_IN_MONTH: [i64; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

fn is_leap(y: i64) -> bool {
    (y % 4 == 0 && y % 100 != 0) || y % 400 == 0
}

fn days_from_civil(y: i64, m: i64, d: i64) -> i64 {
    // Howard Hinnant's algorithm: days since 1970-01-01.
    let y = y - i64::from(m <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let doy = (153 * (m + if m > 2 { -3 } else { 9 }) + 2) / 5 + d - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146097 + doe - 719468
}

fn civil_from_days(z: i64) -> (i64, i64, i64) {
    let z = z + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097;
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = mp + if mp < 10 { 3 } else { -9 };
    (y + i64::from(m <= 2), m, d)
}

impl Date {
    /// Build from a `(year, month, day)` triple; validates the calendar.
    pub fn from_ymd(y: i64, m: i64, d: i64) -> Option<Date> {
        if !(1..=12).contains(&m) {
            return None;
        }
        let max = DAYS_IN_MONTH[(m - 1) as usize] + i64::from(m == 2 && is_leap(y));
        if !(1..=max).contains(&d) {
            return None;
        }
        Some(Date(days_from_civil(y, m, d) as i32))
    }

    /// Parse `YYYY-MM-DD`.
    pub fn parse(s: &str) -> Option<Date> {
        let s = s.trim();
        let mut it = s.splitn(3, '-');
        let y: i64 = it.next()?.parse().ok()?;
        let m: i64 = it.next()?.parse().ok()?;
        let d: i64 = it.next()?.parse().ok()?;
        Date::from_ymd(y, m, d)
    }

    /// `(year, month, day)` of this date.
    pub fn ymd(self) -> (i64, i64, i64) {
        civil_from_days(self.0 as i64)
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.ymd();
        write!(f, "{y:04}-{m:02}-{d:02}")
    }
}

/// Seconds since 1970-01-01T00:00:00 (UTC, no timezone handling — ALDSP's
/// data-centric cases normalize to a single zone at the adaptor boundary).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DateTime(pub i64);

impl DateTime {
    /// Parse `YYYY-MM-DDTHH:MM:SS` (a trailing `Z` is accepted and ignored).
    pub fn parse(s: &str) -> Option<DateTime> {
        let s = s.trim().trim_end_matches('Z');
        let (d, t) = s.split_once('T')?;
        let date = Date::parse(d)?;
        let mut it = t.splitn(3, ':');
        let h: i64 = it.next()?.parse().ok()?;
        let mi: i64 = it.next()?.parse().ok()?;
        let sec: i64 = it.next().unwrap_or("0").parse().ok()?;
        if !(0..24).contains(&h) || !(0..60).contains(&mi) || !(0..60).contains(&sec) {
            return None;
        }
        Some(DateTime(date.0 as i64 * 86400 + h * 3600 + mi * 60 + sec))
    }

    /// The date component.
    pub fn date(self) -> Date {
        Date(self.0.div_euclid(86400) as i32)
    }
}

impl fmt::Display for DateTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let days = self.0.div_euclid(86400);
        let secs = self.0.rem_euclid(86400);
        let (y, m, d) = civil_from_days(days);
        write!(
            f,
            "{y:04}-{m:02}-{d:02}T{:02}:{:02}:{:02}",
            secs / 3600,
            (secs % 3600) / 60,
            secs % 60
        )
    }
}

/// A typed atomic value — the leaves of the XQuery data model.
#[derive(Debug, Clone, PartialEq)]
pub enum AtomicValue {
    /// `xs:untypedAtomic` text.
    Untyped(Arc<str>),
    /// `xs:string`.
    String(Arc<str>),
    /// `xs:boolean`.
    Boolean(bool),
    /// `xs:integer`.
    Integer(i64),
    /// `xs:decimal`.
    Decimal(Decimal),
    /// `xs:double`.
    Double(f64),
    /// `xs:date`.
    Date(Date),
    /// `xs:dateTime`.
    DateTime(DateTime),
}

impl AtomicValue {
    /// Convenience constructor for strings.
    pub fn str(s: &str) -> AtomicValue {
        AtomicValue::String(Arc::from(s))
    }

    /// Convenience constructor for untyped text.
    pub fn untyped(s: &str) -> AtomicValue {
        AtomicValue::Untyped(Arc::from(s))
    }

    /// The dynamic type of this value.
    pub fn type_of(&self) -> AtomicType {
        match self {
            AtomicValue::Untyped(_) => AtomicType::Untyped,
            AtomicValue::String(_) => AtomicType::String,
            AtomicValue::Boolean(_) => AtomicType::Boolean,
            AtomicValue::Integer(_) => AtomicType::Integer,
            AtomicValue::Decimal(_) => AtomicType::Decimal,
            AtomicValue::Double(_) => AtomicType::Double,
            AtomicValue::Date(_) => AtomicType::Date,
            AtomicValue::DateTime(_) => AtomicType::DateTime,
        }
    }

    /// The string value (XQuery `fn:string` on an atomic).
    pub fn string_value(&self) -> String {
        match self {
            AtomicValue::Untyped(s) | AtomicValue::String(s) => s.to_string(),
            AtomicValue::Boolean(b) => b.to_string(),
            AtomicValue::Integer(i) => i.to_string(),
            AtomicValue::Decimal(d) => d.to_string(),
            AtomicValue::Double(d) => {
                if d.fract() == 0.0 && d.is_finite() && d.abs() < 1e15 {
                    format!("{}", *d as i64)
                } else {
                    format!("{d}")
                }
            }
            AtomicValue::Date(d) => d.to_string(),
            AtomicValue::DateTime(dt) => dt.to_string(),
        }
    }

    /// XML-Schema-style cast to `target`.
    ///
    /// Untyped and string values are parsed; numerics widen (`integer →
    /// decimal → double`) and narrow with truncation; everything casts to
    /// string via its canonical lexical form.
    pub fn cast_to(&self, target: AtomicType) -> Result<AtomicValue> {
        use AtomicType as T;
        use AtomicValue as V;
        if self.type_of() == target {
            return Ok(self.clone());
        }
        let err = || XdmError::Cast {
            value: self.string_value(),
            target,
        };
        Ok(match target {
            T::AnyAtomic => self.clone(),
            T::Untyped => V::Untyped(Arc::from(self.string_value().as_str())),
            T::String => V::String(Arc::from(self.string_value().as_str())),
            T::Boolean => match self {
                V::Untyped(s) | V::String(s) => match s.trim() {
                    "true" | "1" => V::Boolean(true),
                    "false" | "0" => V::Boolean(false),
                    _ => return Err(err()),
                },
                V::Integer(i) => V::Boolean(*i != 0),
                V::Double(d) => V::Boolean(*d != 0.0 && !d.is_nan()),
                V::Decimal(d) => V::Boolean(d.0 != 0),
                _ => return Err(err()),
            },
            T::Integer => match self {
                V::Untyped(s) | V::String(s) => V::Integer(s.trim().parse().map_err(|_| err())?),
                V::Decimal(d) => V::Integer(d.trunc()),
                V::Double(d) if d.is_finite() => V::Integer(d.trunc() as i64),
                V::Boolean(b) => V::Integer(i64::from(*b)),
                _ => return Err(err()),
            },
            T::Decimal => match self {
                V::Untyped(s) | V::String(s) => V::Decimal(Decimal::parse(s).ok_or_else(err)?),
                V::Integer(i) => V::Decimal(Decimal::from_int(*i)),
                V::Double(d) if d.is_finite() => {
                    V::Decimal(Decimal((d * DECIMAL_SCALE as f64) as i128))
                }
                V::Boolean(b) => V::Decimal(Decimal::from_int(i64::from(*b))),
                _ => return Err(err()),
            },
            T::Double => match self {
                V::Untyped(s) | V::String(s) => V::Double(s.trim().parse().map_err(|_| err())?),
                V::Integer(i) => V::Double(*i as f64),
                V::Decimal(d) => V::Double(d.to_f64()),
                V::Boolean(b) => V::Double(f64::from(*b)),
                _ => return Err(err()),
            },
            T::Date => match self {
                V::Untyped(s) | V::String(s) => V::Date(Date::parse(s).ok_or_else(err)?),
                V::DateTime(dt) => V::Date(dt.date()),
                _ => return Err(err()),
            },
            T::DateTime => match self {
                V::Untyped(s) | V::String(s) => V::DateTime(DateTime::parse(s).ok_or_else(err)?),
                V::Date(d) => V::DateTime(DateTime(d.0 as i64 * 86400)),
                _ => return Err(err()),
            },
        })
    }

    /// XQuery *value comparison* (`eq`, `lt`, …) with numeric promotion and
    /// untyped-to-string fallback. Returns `None` for incomparable pairs
    /// (the caller maps that to a type error) and for NaN comparisons.
    pub fn compare(&self, other: &AtomicValue) -> Option<Ordering> {
        use AtomicValue as V;
        match (self, other) {
            (V::Untyped(a), V::Untyped(b)) => Some(a.as_ref().cmp(b.as_ref())),
            (V::String(a), V::String(b)) => Some(a.as_ref().cmp(b.as_ref())),
            (V::Untyped(a), V::String(b)) | (V::String(a), V::Untyped(b)) => {
                Some(a.as_ref().cmp(b.as_ref()))
            }
            (V::Boolean(a), V::Boolean(b)) => Some(a.cmp(b)),
            (V::Date(a), V::Date(b)) => Some(a.cmp(b)),
            (V::DateTime(a), V::DateTime(b)) => Some(a.cmp(b)),
            _ => {
                // numeric promotion; untyped promotes to double
                let a = self.as_numeric()?;
                let b = other.as_numeric()?;
                match (a, b) {
                    (Num::Int(x), Num::Int(y)) => Some(x.cmp(&y)),
                    (Num::Dec(x), Num::Dec(y)) => Some(x.cmp(&y)),
                    (Num::Int(x), Num::Dec(y)) => Some(Decimal::from_int(x).cmp(&y)),
                    (Num::Dec(x), Num::Int(y)) => Some(x.cmp(&Decimal::from_int(y))),
                    (x, y) => x.to_f64().partial_cmp(&y.to_f64()),
                }
            }
        }
    }

    fn as_numeric(&self) -> Option<Num> {
        match self {
            AtomicValue::Integer(i) => Some(Num::Int(*i)),
            AtomicValue::Decimal(d) => Some(Num::Dec(*d)),
            AtomicValue::Double(d) => Some(Num::Dbl(*d)),
            AtomicValue::Untyped(s) => s.trim().parse().ok().map(Num::Dbl),
            _ => None,
        }
    }

    /// Numeric arithmetic with XQuery promotion rules. `op` is one of
    /// `+ - * div mod`; integer `div` yields a decimal, per the spec.
    pub fn arithmetic(&self, op: ArithOp, other: &AtomicValue) -> Result<AtomicValue> {
        let err = || XdmError::Arithmetic(self.type_of(), other.type_of());
        let a = self.as_numeric().ok_or_else(err)?;
        let b = other.as_numeric().ok_or_else(err)?;
        use ArithOp as O;
        Ok(match (a, b) {
            (Num::Int(x), Num::Int(y)) => match op {
                O::Add => AtomicValue::Integer(x.wrapping_add(y)),
                O::Sub => AtomicValue::Integer(x.wrapping_sub(y)),
                O::Mul => AtomicValue::Integer(x.wrapping_mul(y)),
                O::Div => AtomicValue::Decimal(
                    Decimal::from_int(x)
                        .div(Decimal::from_int(y))
                        .ok_or_else(err)?,
                ),
                O::Mod => {
                    if y == 0 {
                        return Err(err());
                    }
                    AtomicValue::Integer(x % y)
                }
            },
            (Num::Dbl(_), _) | (_, Num::Dbl(_)) => {
                let (x, y) = (a.to_f64(), b.to_f64());
                AtomicValue::Double(match op {
                    O::Add => x + y,
                    O::Sub => x - y,
                    O::Mul => x * y,
                    O::Div => x / y,
                    O::Mod => x % y,
                })
            }
            _ => {
                let x = a.to_decimal();
                let y = b.to_decimal();
                AtomicValue::Decimal(match op {
                    O::Add => x.add(y),
                    O::Sub => x.sub(y),
                    O::Mul => x.mul(y),
                    O::Div => x.div(y).ok_or_else(err)?,
                    O::Mod => {
                        if y.0 == 0 {
                            return Err(err());
                        }
                        Decimal(x.0 % y.0)
                    }
                })
            }
        })
    }
}

/// The arithmetic operators of XQuery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `div`
    Div,
    /// `mod`
    Mod,
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "div",
            ArithOp::Mod => "mod",
        })
    }
}

#[derive(Clone, Copy)]
enum Num {
    Int(i64),
    Dec(Decimal),
    Dbl(f64),
}

impl Num {
    fn to_f64(self) -> f64 {
        match self {
            Num::Int(i) => i as f64,
            Num::Dec(d) => d.to_f64(),
            Num::Dbl(d) => d,
        }
    }
    fn to_decimal(self) -> Decimal {
        match self {
            Num::Int(i) => Decimal::from_int(i),
            Num::Dec(d) => d,
            Num::Dbl(d) => Decimal((d * DECIMAL_SCALE as f64) as i128),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subtype_lattice() {
        assert!(AtomicType::Integer.is_subtype_of(AtomicType::Decimal));
        assert!(AtomicType::Integer.is_subtype_of(AtomicType::AnyAtomic));
        assert!(!AtomicType::Decimal.is_subtype_of(AtomicType::Integer));
        assert!(!AtomicType::String.is_subtype_of(AtomicType::Boolean));
        assert!(AtomicType::String.is_subtype_of(AtomicType::String));
    }

    #[test]
    fn intersection_is_symmetric_and_optimistic() {
        assert!(AtomicType::Integer.intersects(AtomicType::Decimal));
        assert!(AtomicType::Decimal.intersects(AtomicType::Integer));
        assert!(AtomicType::Untyped.intersects(AtomicType::DateTime));
        assert!(!AtomicType::String.intersects(AtomicType::Integer));
    }

    #[test]
    fn decimal_parse_and_display_roundtrip() {
        for s in ["0", "1", "-1", "12.5", "-0.25", "1234.000001"] {
            let d = Decimal::parse(s).unwrap();
            assert_eq!(d.to_string(), s.trim_start_matches('+'));
        }
        assert!(Decimal::parse("abc").is_none());
        assert!(Decimal::parse("").is_none());
        assert!(Decimal::parse(".").is_none());
        assert_eq!(Decimal::parse(".5").unwrap().to_string(), "0.5");
    }

    #[test]
    fn decimal_arith_exact() {
        let a = Decimal::parse("0.1").unwrap();
        let b = Decimal::parse("0.2").unwrap();
        assert_eq!(a.add(b).to_string(), "0.3");
        assert_eq!(
            Decimal::parse("1")
                .unwrap()
                .div(Decimal::parse("3").unwrap())
                .unwrap(),
            Decimal(333333)
        );
        assert!(a.div(Decimal(0)).is_none());
    }

    #[test]
    fn date_roundtrip_and_validation() {
        let d = Date::parse("2006-09-12").unwrap(); // VLDB'06 in Seoul
        assert_eq!(d.to_string(), "2006-09-12");
        assert_eq!(d.ymd(), (2006, 9, 12));
        assert_eq!(Date::parse("1970-01-01").unwrap().0, 0);
        assert_eq!(Date::parse("1969-12-31").unwrap().0, -1);
        assert!(Date::parse("2006-02-29").is_none());
        assert!(Date::parse("2004-02-29").is_some()); // leap year
        assert!(Date::parse("2006-13-01").is_none());
    }

    #[test]
    fn datetime_roundtrip_and_epoch_semantics() {
        // The paper's int2date example: SINCE holds seconds since
        // 1970-01-01 and converts to xs:dateTime.
        let dt = DateTime(0);
        assert_eq!(dt.to_string(), "1970-01-01T00:00:00");
        let p = DateTime::parse("2005-06-15T12:30:05Z").unwrap();
        assert_eq!(p.to_string(), "2005-06-15T12:30:05");
        assert_eq!(DateTime::parse(&p.to_string()), Some(p));
        assert!(DateTime::parse("2005-06-15T25:00:00").is_none());
    }

    #[test]
    fn casting_rules() {
        let s = AtomicValue::str("42");
        assert_eq!(
            s.cast_to(AtomicType::Integer).unwrap(),
            AtomicValue::Integer(42)
        );
        assert_eq!(
            AtomicValue::Integer(7).cast_to(AtomicType::Double).unwrap(),
            AtomicValue::Double(7.0)
        );
        assert_eq!(
            AtomicValue::Integer(7).cast_to(AtomicType::String).unwrap(),
            AtomicValue::str("7")
        );
        assert!(AtomicValue::str("x").cast_to(AtomicType::Integer).is_err());
        // dateTime -> date truncation
        let dt = AtomicValue::DateTime(DateTime::parse("2001-02-03T04:05:06").unwrap());
        assert_eq!(
            dt.cast_to(AtomicType::Date).unwrap().string_value(),
            "2001-02-03"
        );
    }

    #[test]
    fn value_comparison_with_promotion() {
        use std::cmp::Ordering::*;
        assert_eq!(
            AtomicValue::Integer(2).compare(&AtomicValue::Double(2.5)),
            Some(Less)
        );
        assert_eq!(
            AtomicValue::Integer(3).compare(&AtomicValue::Decimal(Decimal::from_int(3))),
            Some(Equal)
        );
        assert_eq!(
            AtomicValue::str("a").compare(&AtomicValue::str("b")),
            Some(Less)
        );
        assert_eq!(
            AtomicValue::untyped("5").compare(&AtomicValue::Integer(4)),
            Some(Greater)
        );
        assert_eq!(
            AtomicValue::str("a").compare(&AtomicValue::Integer(1)),
            None
        );
        assert_eq!(
            AtomicValue::Double(f64::NAN).compare(&AtomicValue::Double(1.0)),
            None
        );
    }

    #[test]
    fn arithmetic_promotion() {
        let r = AtomicValue::Integer(1)
            .arithmetic(ArithOp::Add, &AtomicValue::Integer(2))
            .unwrap();
        assert_eq!(r, AtomicValue::Integer(3));
        // integer div yields decimal per XQuery
        let r = AtomicValue::Integer(1)
            .arithmetic(ArithOp::Div, &AtomicValue::Integer(2))
            .unwrap();
        assert_eq!(r.string_value(), "0.5");
        let r = AtomicValue::Integer(1)
            .arithmetic(ArithOp::Add, &AtomicValue::Double(0.5))
            .unwrap();
        assert_eq!(r, AtomicValue::Double(1.5));
        assert!(AtomicValue::str("x")
            .arithmetic(ArithOp::Add, &AtomicValue::Integer(1))
            .is_err());
        assert!(AtomicValue::Integer(1)
            .arithmetic(ArithOp::Mod, &AtomicValue::Integer(0))
            .is_err());
    }

    #[test]
    fn string_value_canonical_forms() {
        assert_eq!(AtomicValue::Boolean(true).string_value(), "true");
        assert_eq!(AtomicValue::Double(3.0).string_value(), "3");
        assert_eq!(AtomicValue::Double(3.5).string_value(), "3.5");
        assert_eq!(
            AtomicValue::Decimal(Decimal::parse("2.50").unwrap()).string_value(),
            "2.5"
        );
    }
}
