//! # aldsp-xdm — XQuery Data Model substrate
//!
//! This crate implements the data-model layer that the ALDSP paper (VLDB
//! 2006, §5.1) builds its runtime on:
//!
//! * qualified names and namespace handling ([`qname`]),
//! * typed atomic values with XML-Schema-style casting, comparison and
//!   arithmetic ([`value`]),
//! * XML nodes carrying *type annotations* — the paper's "typed side of
//!   XQuery" ([`node`]),
//! * items and sequences with atomization / effective boolean value
//!   ([`item`]),
//! * the **typed XML token stream** including the three tuple
//!   representations of Figure 4 (stream, single-token, array) ([`tokens`]),
//! * a small XML serializer/parser used by the file adaptors ([`xml`]),
//! * the XML Schema subset used to describe data-service *shapes*
//!   ([`schema`]),
//! * the **structural type system** (sequence types, subtyping,
//!   intersection) that powers ALDSP's optimistic static typing (§3.1,
//!   §4.1) ([`types`]).

pub mod item;
pub mod node;
pub mod qname;
pub mod schema;
pub mod tokens;
pub mod types;
pub mod value;
pub mod xml;

pub use item::{Item, Sequence};
pub use node::{Node, NodeKind, NodeRef};
pub use qname::QName;
pub use tokens::{Token, TokenStream, TupleRepr};
pub use types::{ItemType, Occurrence, SequenceType};
pub use value::{AtomicType, AtomicValue};

/// Errors raised by data-model operations (casting, comparison, navigation).
#[derive(Debug, Clone, PartialEq)]
pub enum XdmError {
    /// A cast between atomic types failed (`err:FORG0001` analogue).
    Cast { value: String, target: AtomicType },
    /// Two values cannot be compared (`err:XPTY0004` analogue).
    Comparison(AtomicType, AtomicType),
    /// Arithmetic on non-numeric operands.
    Arithmetic(AtomicType, AtomicType),
    /// A sequence of more than one item where a single item was required.
    NotSingleton(usize),
    /// Effective boolean value undefined for the operand.
    BooleanValue(String),
    /// A runtime `typematch` check failed (§4.1).
    TypeMatch { expected: String, actual: String },
    /// Malformed XML given to the parser.
    XmlParse { pos: usize, message: String },
    /// Anything else.
    Other(String),
}

impl std::fmt::Display for XdmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            XdmError::Cast { value, target } => {
                write!(f, "cannot cast '{value}' to {target}")
            }
            XdmError::Comparison(a, b) => write!(f, "cannot compare {a} with {b}"),
            XdmError::Arithmetic(a, b) => {
                write!(f, "arithmetic not defined on {a} and {b}")
            }
            XdmError::NotSingleton(n) => {
                write!(f, "expected a singleton sequence, found {n} items")
            }
            XdmError::BooleanValue(s) => {
                write!(f, "effective boolean value undefined for {s}")
            }
            XdmError::TypeMatch { expected, actual } => {
                write!(f, "typematch failed: expected {expected}, found {actual}")
            }
            XdmError::XmlParse { pos, message } => {
                write!(f, "XML parse error at byte {pos}: {message}")
            }
            XdmError::Other(s) => write!(f, "{s}"),
        }
    }
}

impl std::error::Error for XdmError {}

/// Convenience result alias for data-model operations.
pub type Result<T> = std::result::Result<T, XdmError>;
