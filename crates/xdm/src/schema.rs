//! XML Schema subset: shape declarations and validation.
//!
//! Each ALDSP data service has a *shape* described by XML Schema (§2.1),
//! and file/service adaptors validate incoming data against registered
//! schemas to produce *typed* token streams (§5.3). This module provides
//! a registry of global element declarations ([`Schema`]), a fluent
//! builder for the record-like shapes data services use, and
//! [`validate`], which turns an untyped parsed tree into a typed tree
//! according to a declared [`ElementType`].

use crate::node::{Node, NodeKind, NodeRef};
use crate::qname::QName;
use crate::types::{
    AttributeDecl, ChildDecl, ComplexContent, ContentType, ElementType, Occurrence,
};
use crate::value::{AtomicType, AtomicValue};
use crate::{Result, XdmError};
use std::collections::HashMap;

/// A compiled schema: a target namespace plus global element declarations.
#[derive(Debug, Clone, Default)]
pub struct Schema {
    /// The schema's target namespace, if any.
    pub target_namespace: Option<String>,
    elements: HashMap<QName, ElementType>,
}

impl Schema {
    /// An empty schema with the given target namespace.
    pub fn new(target_namespace: Option<&str>) -> Schema {
        Schema {
            target_namespace: target_namespace.map(str::to_string),
            elements: HashMap::new(),
        }
    }

    /// Register a global element declaration.
    pub fn declare(&mut self, elem: ElementType) {
        let name = elem
            .name
            .clone()
            .expect("global element declarations must be named");
        self.elements.insert(name, elem);
    }

    /// Look up a global element declaration (`schema-element(E)`).
    pub fn element(&self, name: &QName) -> Option<&ElementType> {
        self.elements.get(name)
    }

    /// Iterate over all global declarations.
    pub fn elements(&self) -> impl Iterator<Item = &ElementType> {
        self.elements.values()
    }

    /// Validate a document's root element against its global declaration.
    pub fn validate_root(&self, doc: &Node) -> Result<NodeRef> {
        let root = doc
            .children()
            .first()
            .ok_or_else(|| XdmError::Other("empty document".into()))?;
        let name = root
            .name()
            .ok_or_else(|| XdmError::Other("document root is not an element".into()))?;
        let decl = self
            .element(name)
            .ok_or_else(|| XdmError::Other(format!("no global element declaration for {name}")))?;
        validate(root, decl)
    }
}

/// Fluent builder for record-like element shapes — the natural XML-ification
/// of a relational row or a data-service business object.
#[derive(Debug, Clone)]
pub struct ShapeBuilder {
    name: QName,
    attributes: Vec<AttributeDecl>,
    children: Vec<ChildDecl>,
}

impl ShapeBuilder {
    /// Start a shape for element `name`.
    pub fn element(name: QName) -> ShapeBuilder {
        ShapeBuilder {
            name,
            attributes: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Add a required simple-typed child (a NOT NULL column).
    pub fn required(mut self, name: &str, t: AtomicType) -> Self {
        self.children
            .push(ChildDecl::required(self.child_name(name), t));
        self
    }

    /// Add a required child with an *unqualified* name (relational
    /// column elements are unqualified, per Figure 3's paths).
    pub fn required_local(mut self, name: &str, t: AtomicType) -> Self {
        self.children
            .push(ChildDecl::required(QName::local(name), t));
        self
    }

    /// Add an optional child with an unqualified name.
    pub fn optional_local(mut self, name: &str, t: AtomicType) -> Self {
        self.children
            .push(ChildDecl::optional(QName::local(name), t));
        self
    }

    /// Add an optional simple-typed child (a nullable column — NULLs are
    /// missing elements, §4.3).
    pub fn optional(mut self, name: &str, t: AtomicType) -> Self {
        self.children
            .push(ChildDecl::optional(self.child_name(name), t));
        self
    }

    /// Add a repeated complex child with the given shape.
    pub fn repeated(mut self, child: ElementType) -> Self {
        self.children.push(ChildDecl {
            elem: child,
            occ: Occurrence::Star,
        });
        self
    }

    /// Add a child with an explicit occurrence.
    pub fn child(mut self, child: ElementType, occ: Occurrence) -> Self {
        self.children.push(ChildDecl { elem: child, occ });
        self
    }

    /// Add an attribute declaration.
    pub fn attribute(mut self, name: &str, t: AtomicType, required: bool) -> Self {
        self.attributes.push(AttributeDecl {
            name: QName::local(name),
            typ: t,
            required,
        });
        self
    }

    fn child_name(&self, local: &str) -> QName {
        // children live in the same namespace as the parent shape
        match self.name.uri() {
            Some(u) => QName::new(u, local),
            None => QName::local(local),
        }
    }

    /// Finish, producing the structural element type.
    pub fn build(self) -> ElementType {
        ElementType {
            name: Some(self.name),
            content: ContentType::Complex(ComplexContent {
                attributes: self.attributes,
                children: self.children,
            }),
        }
    }
}

/// Validate `node` against `decl`, producing a **typed** copy of the tree:
/// untyped text leaves are cast to the declared atomic types, required
/// children/attributes are checked, undeclared children are rejected.
pub fn validate(node: &Node, decl: &ElementType) -> Result<NodeRef> {
    let NodeKind::Element {
        name,
        attributes,
        children,
    } = node.kind()
    else {
        return Err(XdmError::Other("can only validate elements".into()));
    };
    if let Some(expect) = &decl.name {
        if expect != name {
            return Err(XdmError::Other(format!(
                "expected element {expect}, found {name}"
            )));
        }
    }
    match &decl.content {
        ContentType::Any => Ok(Node::element(
            name.clone(),
            attributes.clone(),
            children.clone(),
        )),
        ContentType::Simple(t) => {
            let text = node.string_value();
            let typed = if text.is_empty() && children.is_empty() {
                vec![]
            } else {
                vec![Node::text(AtomicValue::untyped(&text).cast_to(*t)?)]
            };
            Ok(Node::element(name.clone(), attributes.clone(), typed))
        }
        ContentType::Complex(content) => {
            let typed_attrs = validate_attributes(name, attributes, content)?;
            let typed_children = validate_children(name, node, content)?;
            Ok(Node::element(name.clone(), typed_attrs, typed_children))
        }
    }
}

fn validate_attributes(
    elem: &QName,
    attrs: &[NodeRef],
    content: &ComplexContent,
) -> Result<Vec<NodeRef>> {
    let mut out = Vec::with_capacity(attrs.len());
    for decl in &content.attributes {
        match attrs.iter().find(|a| a.name() == Some(&decl.name)) {
            Some(a) => {
                let NodeKind::Attribute { value, .. } = a.kind() else {
                    unreachable!("attributes() yields attribute nodes");
                };
                out.push(Node::attribute(decl.name.clone(), value.cast_to(decl.typ)?));
            }
            None if decl.required => {
                return Err(XdmError::Other(format!(
                    "element {elem} is missing required attribute {}",
                    decl.name
                )))
            }
            None => {}
        }
    }
    for a in attrs {
        let name = a.name().expect("attribute has a name");
        if !content.attributes.iter().any(|d| &d.name == name) {
            return Err(XdmError::Other(format!(
                "element {elem} has undeclared attribute {name}"
            )));
        }
    }
    Ok(out)
}

fn validate_children(elem: &QName, node: &Node, content: &ComplexContent) -> Result<Vec<NodeRef>> {
    let kids: Vec<&NodeRef> = node.all_child_elements().collect();
    // reject stray non-whitespace text in complex content
    for c in node.children() {
        if let NodeKind::Text { value } = c.kind() {
            if !value.string_value().trim().is_empty() {
                return Err(XdmError::Other(format!(
                    "element {elem} has text content but a complex type"
                )));
            }
        }
    }
    let mut out = Vec::with_capacity(kids.len());
    let mut i = 0;
    for decl in &content.children {
        let mut count = 0;
        while i < kids.len() && kids[i].name() == decl.elem.name.as_ref() {
            if count > 0 && !decl.occ.allows_many() {
                return Err(XdmError::Other(format!(
                    "element {elem}: too many {} children",
                    kids[i].name().unwrap()
                )));
            }
            out.push(validate(kids[i], &decl.elem)?);
            i += 1;
            count += 1;
        }
        if count == 0 && !decl.occ.allows_empty() {
            let missing = decl
                .elem
                .name
                .as_ref()
                .expect("declared children are named");
            return Err(XdmError::Other(format!(
                "element {elem} is missing required child {missing}"
            )));
        }
    }
    if i != kids.len() {
        return Err(XdmError::Other(format!(
            "element {elem} has undeclared or misordered child {}",
            kids[i].name().expect("element child has a name")
        )));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::AtomicValue as V;
    use crate::xml;

    fn customer_shape() -> ElementType {
        ShapeBuilder::element(QName::local("CUSTOMER"))
            .attribute("status", AtomicType::String, false)
            .required("CID", AtomicType::String)
            .required("LAST_NAME", AtomicType::String)
            .optional("SINCE", AtomicType::Integer)
            .build()
    }

    #[test]
    fn validation_assigns_types() {
        let doc = xml::parse(
            r#"<CUSTOMER status="gold"><CID>C1</CID><LAST_NAME>Jones</LAST_NAME><SINCE>100</SINCE></CUSTOMER>"#,
        )
        .unwrap();
        let typed = validate(&doc.children()[0], &customer_shape()).unwrap();
        let since = typed
            .child_elements(&QName::local("SINCE"))
            .next()
            .unwrap()
            .typed_value()
            .unwrap();
        assert_eq!(since, V::Integer(100));
        let cid = typed
            .child_elements(&QName::local("CID"))
            .next()
            .unwrap()
            .typed_value()
            .unwrap();
        assert_eq!(cid, V::str("C1"));
    }

    #[test]
    fn optional_children_may_be_absent() {
        let doc = xml::parse("<CUSTOMER><CID>C1</CID><LAST_NAME>J</LAST_NAME></CUSTOMER>").unwrap();
        assert!(validate(&doc.children()[0], &customer_shape()).is_ok());
    }

    #[test]
    fn missing_required_child_rejected() {
        let doc = xml::parse("<CUSTOMER><CID>C1</CID></CUSTOMER>").unwrap();
        let err = validate(&doc.children()[0], &customer_shape()).unwrap_err();
        assert!(err.to_string().contains("LAST_NAME"), "{err}");
    }

    #[test]
    fn bad_lexical_value_rejected() {
        let doc = xml::parse(
            "<CUSTOMER><CID>C1</CID><LAST_NAME>J</LAST_NAME><SINCE>soon</SINCE></CUSTOMER>",
        )
        .unwrap();
        assert!(validate(&doc.children()[0], &customer_shape()).is_err());
    }

    #[test]
    fn undeclared_child_rejected() {
        let doc = xml::parse(
            "<CUSTOMER><CID>C1</CID><LAST_NAME>J</LAST_NAME><HOBBY>ski</HOBBY></CUSTOMER>",
        )
        .unwrap();
        assert!(validate(&doc.children()[0], &customer_shape()).is_err());
    }

    #[test]
    fn cardinality_enforced() {
        let doc =
            xml::parse("<CUSTOMER><CID>C1</CID><CID>C2</CID><LAST_NAME>J</LAST_NAME></CUSTOMER>")
                .unwrap();
        assert!(validate(&doc.children()[0], &customer_shape()).is_err());
    }

    #[test]
    fn nested_shapes_validate_recursively() {
        let orders = ShapeBuilder::element(QName::local("ORDER"))
            .required("OID", AtomicType::Integer)
            .build();
        let shape = ShapeBuilder::element(QName::local("PROFILE"))
            .required("CID", AtomicType::String)
            .repeated(orders)
            .build();
        let doc = xml::parse(
            "<PROFILE><CID>C1</CID><ORDER><OID>1</OID></ORDER><ORDER><OID>2</OID></ORDER></PROFILE>",
        )
        .unwrap();
        let typed = validate(&doc.children()[0], &shape).unwrap();
        assert_eq!(typed.child_elements(&QName::local("ORDER")).count(), 2);
        // zero orders also fine under *
        let doc2 = xml::parse("<PROFILE><CID>C1</CID></PROFILE>").unwrap();
        assert!(validate(&doc2.children()[0], &shape).is_ok());
    }

    #[test]
    fn schema_registry_and_root_validation() {
        let mut s = Schema::new(Some("urn:cust"));
        s.declare(customer_shape());
        assert!(s.element(&QName::local("CUSTOMER")).is_some());
        let doc = xml::parse("<CUSTOMER><CID>C1</CID><LAST_NAME>J</LAST_NAME></CUSTOMER>").unwrap();
        assert!(s.validate_root(&doc).is_ok());
        let other = xml::parse("<ORDER/>").unwrap();
        assert!(s.validate_root(&other).is_err());
    }

    #[test]
    fn typed_tree_matches_structural_type() {
        // validation output conforms to the declared structural type —
        // the bridge between schema and the typematch machinery
        let doc = xml::parse(
            "<CUSTOMER><CID>C1</CID><LAST_NAME>J</LAST_NAME><SINCE>5</SINCE></CUSTOMER>",
        )
        .unwrap();
        let shape = customer_shape();
        let typed = validate(&doc.children()[0], &shape).unwrap();
        assert!(shape.matches_node(&typed));
    }
}
