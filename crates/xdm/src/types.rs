//! The structural type system (§3.1, §4.1).
//!
//! ALDSP departs from the XQuery specification's name-based, must-validate
//! typing: when a query constructs `<E>{expr}</E>`, the *static* type of
//! the result is an element named `E` whose content type is the structural
//! type of `expr` — type annotations are not reverted to `ANYTYPE`. This
//! makes view unfolding type-preserving: wrapping an expression in a
//! constructor and then navigating back into it yields the original type.
//!
//! The checker is also *optimistic*: a call `f($x)` is statically valid
//! iff the type of `$x` has a **non-empty intersection** with `f`'s
//! parameter type; a runtime `typematch` is inserted unless `$x` is a
//! proper subtype. This module supplies the subtype / intersection /
//! union algebra plus the runtime `typematch` check itself.

use crate::item::Item;
use crate::node::NodeKind;
use crate::qname::QName;
use crate::value::AtomicType;
use std::fmt;

/// Occurrence indicators of XQuery sequence types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Occurrence {
    /// Exactly one item.
    One,
    /// Zero or one (`?`).
    Optional,
    /// Zero or more (`*`).
    Star,
    /// One or more (`+`).
    Plus,
}

impl Occurrence {
    /// Occurrence subsumption: can a sequence with cardinality `self`
    /// always be used where `sup` is required?
    pub fn is_subtype_of(self, sup: Occurrence) -> bool {
        use Occurrence::*;
        matches!(
            (self, sup),
            (One, _)
                | (Optional, Optional)
                | (Optional, Star)
                | (Plus, Plus)
                | (Plus, Star)
                | (Star, Star)
        )
    }

    /// Does the cardinality range admit zero items?
    pub fn allows_empty(self) -> bool {
        matches!(self, Occurrence::Optional | Occurrence::Star)
    }

    /// Does the cardinality range admit more than one item?
    pub fn allows_many(self) -> bool {
        matches!(self, Occurrence::Star | Occurrence::Plus)
    }

    /// Cardinality ranges of two occurrences overlap (used by the
    /// optimistic intersection rule).
    pub fn intersects(self, other: Occurrence) -> bool {
        // Every pair of our occurrences admits cardinality 1, so item-level
        // intersection decides; kept as a method for symmetry/clarity.
        let _ = other;
        true
    }

    /// The occurrence of the concatenation of two sequences.
    pub fn sequence_with(self, other: Occurrence) -> Occurrence {
        use Occurrence::*;
        match (self, other) {
            (One, _) | (_, One) | (Plus, _) | (_, Plus) => Plus,
            _ => Star,
        }
    }

    /// The occurrence of a `for`-iteration body: the body runs zero or
    /// more times, so multiply by `*` (or by the binding's occurrence).
    pub fn iterated_by(self, binding: Occurrence) -> Occurrence {
        use Occurrence::*;
        match (binding, self) {
            (One, s) => s,
            (Plus, One) | (Plus, Plus) => Plus,
            (Optional, One) | (Optional, Optional) => Optional,
            _ => Star,
        }
    }

    /// Least upper bound.
    pub fn union(self, other: Occurrence) -> Occurrence {
        use Occurrence::*;
        if self == other {
            return self;
        }
        match (
            self.allows_empty() || other.allows_empty(),
            self.allows_many() || other.allows_many(),
        ) {
            (true, true) => Star,
            (true, false) => Optional,
            (false, true) => Plus,
            (false, false) => One,
        }
    }

    /// The XQuery occurrence-indicator suffix.
    pub fn suffix(self) -> &'static str {
        match self {
            Occurrence::One => "",
            Occurrence::Optional => "?",
            Occurrence::Star => "*",
            Occurrence::Plus => "+",
        }
    }
}

/// A sequence type: `empty-sequence()` or an item type with an occurrence.
#[derive(Debug, Clone, PartialEq)]
pub enum SequenceType {
    /// `empty-sequence()`.
    Empty,
    /// `ItemType` with an occurrence indicator.
    Seq(ItemType, Occurrence),
}

impl SequenceType {
    /// `item()*` — the universal sequence type.
    pub fn any() -> SequenceType {
        SequenceType::Seq(ItemType::AnyItem, Occurrence::Star)
    }

    /// A singleton of the given item type.
    pub fn one(item: ItemType) -> SequenceType {
        SequenceType::Seq(item, Occurrence::One)
    }

    /// A singleton atomic type.
    pub fn atomic(t: AtomicType) -> SequenceType {
        SequenceType::one(ItemType::Atomic(t))
    }

    /// Replace the occurrence, keeping the item type.
    pub fn with_occurrence(&self, occ: Occurrence) -> SequenceType {
        match self {
            SequenceType::Empty => SequenceType::Empty,
            SequenceType::Seq(i, _) => SequenceType::Seq(i.clone(), occ),
        }
    }

    /// The item type, if non-empty.
    pub fn item_type(&self) -> Option<&ItemType> {
        match self {
            SequenceType::Empty => None,
            SequenceType::Seq(i, _) => Some(i),
        }
    }

    /// The occurrence (Empty reports as `Optional` for convenience).
    pub fn occurrence(&self) -> Occurrence {
        match self {
            SequenceType::Empty => Occurrence::Optional,
            SequenceType::Seq(_, o) => *o,
        }
    }

    /// Structural subtyping: occurrence subsumption plus item subtyping.
    pub fn is_subtype_of(&self, sup: &SequenceType) -> bool {
        match (self, sup) {
            (SequenceType::Empty, SequenceType::Empty) => true,
            (SequenceType::Empty, SequenceType::Seq(_, o)) => o.allows_empty(),
            (SequenceType::Seq(..), SequenceType::Empty) => false,
            (SequenceType::Seq(i1, o1), SequenceType::Seq(i2, o2)) => {
                o1.is_subtype_of(*o2) && i1.is_subtype_of(i2)
            }
        }
    }

    /// Non-empty intersection — the *optimistic* acceptance rule of §4.1.
    /// Conservative in the optimistic direction: returns `true` unless the
    /// two types are provably disjoint.
    pub fn intersects(&self, other: &SequenceType) -> bool {
        match (self, other) {
            (SequenceType::Empty, o) | (o, SequenceType::Empty) => {
                matches!(o, SequenceType::Empty) || o.occurrence().allows_empty()
            }
            (SequenceType::Seq(i1, o1), SequenceType::Seq(i2, o2)) => {
                // the empty sequence inhabits both types?
                (o1.allows_empty() && o2.allows_empty()) || i1.intersects(i2)
            }
        }
    }

    /// Least upper bound, used for `if/else` branches and sequence unions.
    pub fn union(&self, other: &SequenceType) -> SequenceType {
        match (self, other) {
            (SequenceType::Empty, SequenceType::Empty) => SequenceType::Empty,
            (SequenceType::Empty, SequenceType::Seq(i, o))
            | (SequenceType::Seq(i, o), SequenceType::Empty) => {
                SequenceType::Seq(i.clone(), o.union(Occurrence::Optional))
            }
            (SequenceType::Seq(i1, o1), SequenceType::Seq(i2, o2)) => {
                SequenceType::Seq(i1.union(i2), o1.union(*o2))
            }
        }
    }

    /// The type of the concatenation `self, other`.
    pub fn sequence_with(&self, other: &SequenceType) -> SequenceType {
        match (self, other) {
            (SequenceType::Empty, t) | (t, SequenceType::Empty) => t.clone(),
            (SequenceType::Seq(i1, o1), SequenceType::Seq(i2, o2)) => {
                SequenceType::Seq(i1.union(i2), o1.sequence_with(*o2))
            }
        }
    }

    /// The static type of atomizing this sequence (`fn:data`).
    pub fn atomized(&self) -> SequenceType {
        match self {
            SequenceType::Empty => SequenceType::Empty,
            SequenceType::Seq(i, o) => match i.atomized() {
                Some((t, extra_opt)) => {
                    let occ = if extra_opt {
                        o.union(Occurrence::Optional)
                    } else {
                        *o
                    };
                    SequenceType::Seq(ItemType::Atomic(t), occ)
                }
                None => SequenceType::Seq(ItemType::Atomic(AtomicType::AnyAtomic), *o),
            },
        }
    }

    /// Runtime `typematch`: does a dynamic sequence conform?
    pub fn matches(&self, seq: &[Item]) -> bool {
        match self {
            SequenceType::Empty => seq.is_empty(),
            SequenceType::Seq(item, occ) => match seq.len() {
                0 => occ.allows_empty(),
                1 => item.matches(&seq[0]),
                _ => occ.allows_many() && seq.iter().all(|it| item.matches(it)),
            },
        }
    }
}

impl fmt::Display for SequenceType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SequenceType::Empty => f.write_str("empty-sequence()"),
            SequenceType::Seq(i, o) => write!(f, "{i}{}", o.suffix()),
        }
    }
}

/// An XQuery item type.
#[derive(Debug, Clone, PartialEq)]
pub enum ItemType {
    /// `item()`.
    AnyItem,
    /// `node()`.
    AnyNode,
    /// `document-node()`.
    Document,
    /// `text()`.
    Text,
    /// An atomic type.
    Atomic(AtomicType),
    /// `element(N, content)` with structural content.
    Element(ElementType),
    /// `attribute(N)` with an atomic value type.
    Attribute {
        /// Attribute name; `None` is the wildcard `attribute(*)`.
        name: Option<QName>,
        /// Value type.
        typ: AtomicType,
    },
    /// The *error type* assigned to expressions that failed analysis in
    /// the design-time error-recovery mode (§4.1). It is a subtype of
    /// everything, so downstream checking proceeds without cascades.
    Error,
}

impl ItemType {
    /// A named element with unconstrained (`ANYTYPE`) content — the static
    /// type the XQuery spec would give a freshly constructed element.
    pub fn element_any(name: QName) -> ItemType {
        ItemType::Element(ElementType {
            name: Some(name),
            content: ContentType::Any,
        })
    }

    /// A named element with typed simple content.
    pub fn element_simple(name: QName, t: AtomicType) -> ItemType {
        ItemType::Element(ElementType {
            name: Some(name),
            content: ContentType::Simple(t),
        })
    }

    /// Structural item subtyping.
    pub fn is_subtype_of(&self, sup: &ItemType) -> bool {
        use ItemType::*;
        match (self, sup) {
            (Error, _) | (_, AnyItem) => true,
            (AnyItem, _) => false,
            (Atomic(a), Atomic(b)) => a.is_subtype_of(*b),
            (Atomic(_), _) | (_, Atomic(_)) => false,
            (_, AnyNode) => true,
            (AnyNode, _) => false,
            (Document, Document) | (Text, Text) => true,
            (Element(a), Element(b)) => a.is_subtype_of(b),
            (Attribute { name: n1, typ: t1 }, Attribute { name: n2, typ: t2 }) => {
                name_subsumes(n2, n1) && t1.is_subtype_of(*t2)
            }
            _ => false,
        }
    }

    /// Provably-non-disjoint test for optimistic typing: `true` unless the
    /// two item types cannot share an inhabitant.
    pub fn intersects(&self, other: &ItemType) -> bool {
        use ItemType::*;
        match (self, other) {
            (Error, _) | (_, Error) | (AnyItem, _) | (_, AnyItem) => true,
            (Atomic(a), Atomic(b)) => a.intersects(*b),
            (Atomic(_), _) | (_, Atomic(_)) => false,
            (AnyNode, _) | (_, AnyNode) => true,
            (Element(a), Element(b)) => a.intersects(b),
            (Attribute { name: n1, .. }, Attribute { name: n2, .. }) => names_intersect(n1, n2),
            (Document, Document) | (Text, Text) => true,
            _ => false,
        }
    }

    /// Least upper bound (pragmatic: exact match, name-preserving element
    /// widening, atomic lattice join, otherwise `item()`).
    pub fn union(&self, other: &ItemType) -> ItemType {
        use ItemType::*;
        if self == other {
            return self.clone();
        }
        match (self, other) {
            (Error, t) | (t, Error) => t.clone(),
            (Atomic(a), Atomic(b)) => Atomic(atomic_join(*a, *b)),
            (Element(a), Element(b)) if a.name.is_some() && a.name == b.name => {
                Element(ElementType {
                    name: a.name.clone(),
                    content: a.content.union(&b.content),
                })
            }
            (Element(_), Element(_)) => Element(ElementType {
                name: None,
                content: ContentType::Any,
            }),
            (a, b) if a.is_node_type() && b.is_node_type() => AnyNode,
            _ => AnyItem,
        }
    }

    fn is_node_type(&self) -> bool {
        matches!(
            self,
            ItemType::AnyNode
                | ItemType::Document
                | ItemType::Text
                | ItemType::Element(_)
                | ItemType::Attribute { .. }
        )
    }

    /// The atomized type of one item of this type: `(atomic-type,
    /// may-be-empty)`. `None` means unknown (`anyAtomicType`).
    fn atomized(&self) -> Option<(AtomicType, bool)> {
        match self {
            ItemType::Atomic(t) => Some((*t, false)),
            ItemType::Attribute { typ, .. } => Some((*typ, false)),
            ItemType::Text => Some((AtomicType::Untyped, false)),
            ItemType::Element(e) => match &e.content {
                ContentType::Simple(t) => Some((*t, true)),
                ContentType::Any => None,
                ContentType::Complex(_) => Some((AtomicType::Untyped, true)),
            },
            _ => None,
        }
    }

    /// Runtime conformance of a single item.
    pub fn matches(&self, item: &Item) -> bool {
        use ItemType::*;
        match (self, item) {
            (AnyItem, _) | (Error, _) => true,
            (Atomic(t), Item::Atomic(v)) => v.type_of().is_subtype_of(*t),
            (AnyNode, Item::Node(_)) => true,
            (Document, Item::Node(n)) => matches!(n.kind(), NodeKind::Document { .. }),
            (Text, Item::Node(n)) => matches!(n.kind(), NodeKind::Text { .. }),
            (Element(et), Item::Node(n)) => et.matches_node(n),
            (Attribute { name, typ }, Item::Node(n)) => match n.kind() {
                NodeKind::Attribute { name: an, value } => {
                    name_subsumes(name, &Some(an.clone())) && value.type_of().is_subtype_of(*typ)
                }
                _ => false,
            },
            _ => false,
        }
    }
}

fn atomic_join(a: AtomicType, b: AtomicType) -> AtomicType {
    if a == b {
        a
    } else if a.is_subtype_of(b) {
        b
    } else if b.is_subtype_of(a) {
        a
    } else {
        AtomicType::AnyAtomic
    }
}

/// Does the (possibly wildcard) `sup` name admit `sub`?
fn name_subsumes(sup: &Option<QName>, sub: &Option<QName>) -> bool {
    match (sup, sub) {
        (None, _) => true,
        (Some(_), None) => false,
        (Some(a), Some(b)) => a == b,
    }
}

fn names_intersect(a: &Option<QName>, b: &Option<QName>) -> bool {
    match (a, b) {
        (Some(x), Some(y)) => x == y,
        _ => true,
    }
}

impl fmt::Display for ItemType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ItemType::AnyItem => f.write_str("item()"),
            ItemType::AnyNode => f.write_str("node()"),
            ItemType::Document => f.write_str("document-node()"),
            ItemType::Text => f.write_str("text()"),
            ItemType::Atomic(t) => write!(f, "{t}"),
            ItemType::Element(e) => write!(f, "{e}"),
            ItemType::Attribute { name, .. } => match name {
                Some(n) => write!(f, "attribute({n})"),
                None => f.write_str("attribute(*)"),
            },
            ItemType::Error => f.write_str("error()"),
        }
    }
}

/// An element type: optional fixed name plus structural content.
#[derive(Debug, Clone, PartialEq)]
pub struct ElementType {
    /// The element name; `None` is the wildcard `element(*)`.
    pub name: Option<QName>,
    /// The structural content type.
    pub content: ContentType,
}

impl ElementType {
    /// Wildcard element with unconstrained content.
    pub fn any() -> ElementType {
        ElementType {
            name: None,
            content: ContentType::Any,
        }
    }

    fn is_subtype_of(&self, sup: &ElementType) -> bool {
        name_subsumes(&sup.name, &self.name) && self.content.is_subtype_of(&sup.content)
    }

    fn intersects(&self, other: &ElementType) -> bool {
        names_intersect(&self.name, &other.name)
    }

    /// Runtime conformance of an element node against this type.
    pub fn matches_node(&self, n: &crate::node::Node) -> bool {
        let NodeKind::Element { name, .. } = n.kind() else {
            return false;
        };
        if let Some(expect) = &self.name {
            if expect != name {
                return false;
            }
        }
        match &self.content {
            ContentType::Any => true,
            ContentType::Simple(t) => match n.typed_value() {
                Some(v) => v.type_of().is_subtype_of(*t) || v.type_of() == AtomicType::Untyped,
                None => true, // empty content conforms to optional simple content
            },
            ContentType::Complex(c) => c.matches_children(n),
        }
    }
}

impl fmt::Display for ElementType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.name, &self.content) {
            (Some(n), ContentType::Any) => write!(f, "element({n})"),
            (Some(n), ContentType::Simple(t)) => write!(f, "element({n}, {t})"),
            (Some(n), ContentType::Complex(_)) => write!(f, "element({n}, complex)"),
            (None, _) => f.write_str("element(*)"),
        }
    }
}

/// The content model of an element type.
#[derive(Debug, Clone, PartialEq)]
pub enum ContentType {
    /// `ANYTYPE` — unconstrained content (what the XQuery spec would give
    /// every constructed element; ALDSP avoids this via structural typing).
    Any,
    /// Typed simple content (a single typed text leaf).
    Simple(AtomicType),
    /// A sequence of named child elements plus attributes.
    Complex(ComplexContent),
}

impl ContentType {
    fn is_subtype_of(&self, sup: &ContentType) -> bool {
        match (self, sup) {
            (_, ContentType::Any) => true,
            (ContentType::Any, _) => false,
            (ContentType::Simple(a), ContentType::Simple(b)) => a.is_subtype_of(*b),
            (ContentType::Complex(a), ContentType::Complex(b)) => a.is_subtype_of(b),
            _ => false,
        }
    }

    fn union(&self, other: &ContentType) -> ContentType {
        if self == other {
            self.clone()
        } else {
            match (self, other) {
                (ContentType::Simple(a), ContentType::Simple(b)) => {
                    ContentType::Simple(atomic_join(*a, *b))
                }
                _ => ContentType::Any,
            }
        }
    }
}

/// Structural complex content: an ordered sequence of child element
/// declarations plus attribute declarations. This is the pragmatic
/// "sequence of named fields" model that relational row shapes and
/// data-service shapes need — not full regular tree grammars.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ComplexContent {
    /// Attribute declarations.
    pub attributes: Vec<AttributeDecl>,
    /// Child element declarations, in content-model order.
    pub children: Vec<ChildDecl>,
}

impl ComplexContent {
    fn is_subtype_of(&self, sup: &ComplexContent) -> bool {
        // positional, name-by-name comparison — sufficient for the
        // record-like shapes data services use
        self.children.len() == sup.children.len()
            && self.children.iter().zip(&sup.children).all(|(a, b)| {
                a.occ.is_subtype_of(b.occ)
                    && name_subsumes(&b.elem.name, &a.elem.name)
                    && a.elem.content.is_subtype_of(&b.elem.content)
            })
    }

    /// Runtime check that an element's children conform (greedy matching
    /// of the sequence model).
    pub fn matches_children(&self, n: &crate::node::Node) -> bool {
        let kids: Vec<_> = n.all_child_elements().collect();
        let mut i = 0;
        for decl in &self.children {
            let mut count = 0;
            while i < kids.len()
                && kids[i].name() == decl.elem.name.as_ref()
                && (decl.occ.allows_many() || count == 0)
            {
                if !decl.elem.matches_node(kids[i]) {
                    return false;
                }
                i += 1;
                count += 1;
            }
            if count == 0 && !decl.occ.allows_empty() {
                return false;
            }
        }
        i == kids.len()
    }

    /// Look up the declaration of child `name`.
    pub fn child(&self, name: &QName) -> Option<&ChildDecl> {
        self.children
            .iter()
            .find(|c| c.elem.name.as_ref() == Some(name))
    }
}

/// One attribute declaration inside complex content.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributeDecl {
    /// Attribute name.
    pub name: QName,
    /// Value type.
    pub typ: AtomicType,
    /// Whether the attribute must be present.
    pub required: bool,
}

/// One child-element declaration inside complex content.
#[derive(Debug, Clone, PartialEq)]
pub struct ChildDecl {
    /// The child's element type.
    pub elem: ElementType,
    /// How many times it may occur.
    pub occ: Occurrence,
}

impl ChildDecl {
    /// A required simple-typed child — the shape of a NOT NULL column.
    pub fn required(name: QName, t: AtomicType) -> ChildDecl {
        ChildDecl {
            elem: ElementType {
                name: Some(name),
                content: ContentType::Simple(t),
            },
            occ: Occurrence::One,
        }
    }

    /// An optional simple-typed child — the shape of a nullable column
    /// (NULLs are modeled as missing elements, §4.3).
    pub fn optional(name: QName, t: AtomicType) -> ChildDecl {
        ChildDecl {
            elem: ElementType {
                name: Some(name),
                content: ContentType::Simple(t),
            },
            occ: Occurrence::Optional,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Node;
    use crate::value::AtomicValue as V;

    fn row_type() -> ItemType {
        ItemType::Element(ElementType {
            name: Some(QName::local("CUSTOMER")),
            content: ContentType::Complex(ComplexContent {
                attributes: vec![],
                children: vec![
                    ChildDecl::required(QName::local("CID"), AtomicType::String),
                    ChildDecl::optional(QName::local("LAST_NAME"), AtomicType::String),
                ],
            }),
        })
    }

    #[test]
    fn occurrence_subsumption() {
        use Occurrence::*;
        assert!(One.is_subtype_of(Star));
        assert!(One.is_subtype_of(Optional));
        assert!(Plus.is_subtype_of(Star));
        assert!(!Star.is_subtype_of(Plus));
        assert!(!Optional.is_subtype_of(One));
    }

    #[test]
    fn occurrence_algebra() {
        use Occurrence::*;
        assert_eq!(One.sequence_with(One), Plus);
        assert_eq!(Optional.sequence_with(Star), Star);
        assert_eq!(One.iterated_by(Star), Star);
        assert_eq!(One.iterated_by(One), One);
        assert_eq!(Plus.iterated_by(Plus), Plus);
        assert_eq!(One.union(Optional), Optional);
        assert_eq!(Plus.union(Optional), Star);
    }

    #[test]
    fn sequence_subtyping() {
        let a = SequenceType::atomic(AtomicType::Integer);
        let b = SequenceType::Seq(ItemType::Atomic(AtomicType::Decimal), Occurrence::Star);
        assert!(a.is_subtype_of(&b));
        assert!(!b.is_subtype_of(&a));
        assert!(SequenceType::Empty.is_subtype_of(&b));
        assert!(!SequenceType::Empty.is_subtype_of(&SequenceType::atomic(AtomicType::Integer)));
    }

    #[test]
    fn optimistic_intersection() {
        // the paper's rule: f($x) valid iff types intersect
        let string1 = SequenceType::atomic(AtomicType::String);
        let int1 = SequenceType::atomic(AtomicType::Integer);
        assert!(!string1.intersects(&int1)); // provably disjoint → reject
        let dec = SequenceType::atomic(AtomicType::Decimal);
        assert!(int1.intersects(&dec)); // needs typematch only if not subtype
                                        // both optional → empty inhabits both
        let s_opt = string1.with_occurrence(Occurrence::Optional);
        let i_opt = int1.with_occurrence(Occurrence::Optional);
        assert!(s_opt.intersects(&i_opt));
    }

    #[test]
    fn structural_element_typing_survives_construction() {
        // element(CUSTOMER, complex) is a subtype of element(CUSTOMER)
        // (ANYTYPE content) but not vice versa.
        let structural = row_type();
        let anytype = ItemType::element_any(QName::local("CUSTOMER"));
        assert!(structural.is_subtype_of(&anytype));
        assert!(!anytype.is_subtype_of(&structural));
        // and the wildcard admits both
        let wild = ItemType::Element(ElementType::any());
        assert!(structural.is_subtype_of(&wild));
    }

    #[test]
    fn runtime_typematch() {
        let t = SequenceType::Seq(row_type(), Occurrence::Star);
        let good = Node::element(
            QName::local("CUSTOMER"),
            vec![],
            vec![Node::simple_element(QName::local("CID"), V::str("C1"))],
        );
        assert!(t.matches(&[Item::Node(good)]));
        let bad_name = Node::element(QName::local("ORDER"), vec![], vec![]);
        assert!(!t.matches(&[Item::Node(bad_name)]));
        // missing required CID
        let missing = Node::element(QName::local("CUSTOMER"), vec![], vec![]);
        assert!(!t.matches(&[Item::Node(missing)]));
        // empty sequence ok under *
        assert!(t.matches(&[]));
        // cardinality violation under One
        let one = SequenceType::one(ItemType::Atomic(AtomicType::Integer));
        assert!(!one.matches(&[]));
        assert!(!one.matches(&[Item::int(1), Item::int(2)]));
        assert!(one.matches(&[Item::int(1)]));
    }

    #[test]
    fn union_keeps_named_elements() {
        let a = ItemType::element_simple(QName::local("E"), AtomicType::Integer);
        let b = ItemType::element_simple(QName::local("E"), AtomicType::Decimal);
        match a.union(&b) {
            ItemType::Element(e) => {
                assert_eq!(e.name, Some(QName::local("E")));
                assert_eq!(e.content, ContentType::Simple(AtomicType::Decimal));
            }
            other => panic!("unexpected union: {other:?}"),
        }
        let c = ItemType::element_simple(QName::local("F"), AtomicType::Integer);
        match a.union(&c) {
            ItemType::Element(e) => assert_eq!(e.name, None),
            other => panic!("unexpected union: {other:?}"),
        }
    }

    #[test]
    fn atomization_types() {
        // element(E, xs:integer) atomizes to integer? (may be empty)
        let t = SequenceType::one(ItemType::element_simple(
            QName::local("E"),
            AtomicType::Integer,
        ));
        match t.atomized() {
            SequenceType::Seq(ItemType::Atomic(AtomicType::Integer), occ) => {
                assert!(occ.allows_empty());
            }
            other => panic!("unexpected: {other:?}"),
        }
        // atomic stays put
        let a = SequenceType::atomic(AtomicType::String).atomized();
        assert_eq!(a, SequenceType::atomic(AtomicType::String));
    }

    #[test]
    fn error_type_is_bottom() {
        assert!(ItemType::Error.is_subtype_of(&ItemType::Atomic(AtomicType::Date)));
        assert!(ItemType::Error.intersects(&ItemType::Text));
    }

    #[test]
    fn display_forms() {
        assert_eq!(SequenceType::any().to_string(), "item()*");
        assert_eq!(
            SequenceType::atomic(AtomicType::Integer).to_string(),
            "xs:integer"
        );
        assert_eq!(
            SequenceType::Seq(
                ItemType::element_any(QName::local("PROFILE")),
                Occurrence::Star
            )
            .to_string(),
            "element(PROFILE)*"
        );
        assert_eq!(SequenceType::Empty.to_string(), "empty-sequence()");
    }
}
