//! The adaptor registry: runtime resolution of source bindings.
//!
//! Pragma metadata names a connection/service/registration (§3.2); this
//! registry binds those names to live adaptors and dispatches physical
//! function calls ([`AdaptorRegistry::call_physical`]) and generated SQL
//! ([`AdaptorRegistry::execute_sql`]). This is the seam between the
//! compiled plan and the outside world.

use crate::files::{CsvFileSource, XmlFileSource};
use crate::native::NativeFunction;
use crate::webservice::SimulatedWebService;
use crate::{AdaptorError, Result};
use aldsp_metadata::{Registry, SourceBinding};
use aldsp_relational::{
    Dialect, RelationalServer, ResultSet, ScalarExpr, Select, SourceError, SqlValue, TableRef,
};
use aldsp_workload::{GatePermit, QueryBudget, SourceGates};
use aldsp_xdm::item::{Item, Sequence};
use aldsp_xdm::types::{ContentType, ElementType};
use aldsp_xdm::{Node, QName};
use std::collections::HashMap;
use std::sync::Arc;

/// Live adaptors keyed by the names pragma metadata carries.
#[derive(Default)]
pub struct AdaptorRegistry {
    connections: HashMap<String, Arc<RelationalServer>>,
    services: HashMap<String, Arc<SimulatedWebService>>,
    natives: HashMap<String, NativeFunction>,
    xml_files: HashMap<String, Arc<XmlFileSource>>,
    csv_files: HashMap<String, Arc<CsvFileSource>>,
    /// Per-source concurrency caps (counting semaphores keyed by
    /// connection/service name). Disabled until a cap is configured.
    gates: SourceGates,
}

impl AdaptorRegistry {
    /// An empty registry.
    pub fn new() -> AdaptorRegistry {
        AdaptorRegistry::default()
    }

    /// Bind a relational connection name to a server.
    pub fn register_connection(&mut self, server: Arc<RelationalServer>) {
        self.connections.insert(server.name().to_string(), server);
    }

    /// Bind a web service.
    pub fn register_service(&mut self, service: Arc<SimulatedWebService>) {
        self.services.insert(service.name().to_string(), service);
    }

    /// Bind a native function.
    pub fn register_native(&mut self, f: NativeFunction) {
        self.natives.insert(f.id().to_string(), f);
    }

    /// Bind an XML file source (keyed by its registered path/name).
    pub fn register_xml_file(&mut self, f: Arc<XmlFileSource>) {
        self.xml_files.insert(f.name().to_string(), f);
    }

    /// Bind a CSV file source.
    pub fn register_csv_file(&mut self, f: Arc<CsvFileSource>) {
        self.csv_files.insert(f.name().to_string(), f);
    }

    /// Cap in-flight requests per source (0 disables gating). PP-k
    /// prefetch threads and parallel scans acquire the same permits as
    /// foreground roundtrips, so the cap holds across a whole query.
    pub fn set_source_cap(&self, cap: usize) {
        self.gates.set_cap(cap);
    }

    /// The configured per-source in-flight cap (0 = unlimited).
    pub fn source_cap(&self) -> usize {
        self.gates.cap()
    }

    /// Acquire this source's gate permit, waiting no longer than the
    /// budget's deadline allows. `None` when gating is disabled.
    fn acquire_gate(
        &self,
        source: &str,
        budget: Option<&QueryBudget>,
    ) -> Result<Option<GatePermit>> {
        match self.gates.gate(source) {
            None => Ok(None),
            Some(gate) => gate
                .acquire(budget)
                .map(Some)
                .map_err(|e| AdaptorError::Invocation(format!("{source}: {e}"))),
        }
    }

    /// The server bound to a connection name.
    pub fn connection(&self, name: &str) -> Result<&Arc<RelationalServer>> {
        self.connections
            .get(name)
            .ok_or_else(|| AdaptorError::Unresolved(name.to_string()))
    }

    /// A bound web service.
    pub fn service(&self, name: &str) -> Result<&Arc<SimulatedWebService>> {
        self.services
            .get(name)
            .ok_or_else(|| AdaptorError::Unresolved(name.to_string()))
    }

    /// A bound native function by registration id.
    pub fn native(&self, id: &str) -> Result<&NativeFunction> {
        self.natives
            .get(id)
            .ok_or_else(|| AdaptorError::Unresolved(id.to_string()))
    }

    /// The SQL dialect of a connection (for compiler options).
    pub fn dialect_of(&self, name: &str) -> Option<Dialect> {
        self.connections.get(name).map(|s| s.dialect())
    }

    /// All registered connection names and dialects.
    pub fn connection_dialects(&self) -> HashMap<String, Dialect> {
        self.connections
            .iter()
            .map(|(n, s)| (n.clone(), s.dialect()))
            .collect()
    }

    /// Execute generated SQL on a named connection (one roundtrip on the
    /// simulated server).
    pub fn execute_sql(
        &self,
        connection: &str,
        select: &Select,
        params: &[SqlValue],
    ) -> Result<ResultSet> {
        self.execute_sql_governed(connection, select, params, None)
    }

    /// [`Self::execute_sql`] under workload governance: acquires the
    /// source's gate permit (bounded by the budget's deadline) and charges
    /// simulated latency against the budget so cancellation interrupts the
    /// roundtrip.
    pub fn execute_sql_governed(
        &self,
        connection: &str,
        select: &Select,
        params: &[SqlValue],
        budget: Option<&QueryBudget>,
    ) -> Result<ResultSet> {
        let server = self.connection(connection)?;
        let _permit = self.acquire_gate(connection, budget)?;
        server
            .execute_select_governed(select, params, budget)
            .map_err(|e| classify_relational_error(connection, e))
    }

    /// Dispatch a physical function call through the appropriate adaptor
    /// (the un-pushed access path: full-table reads, navigation calls
    /// executed in the middleware, service calls, natives, files).
    pub fn call_physical(
        &self,
        metadata: &Registry,
        name: &QName,
        args: &[Sequence],
    ) -> Result<Sequence> {
        self.call_physical_governed(metadata, name, args, None)
    }

    /// [`Self::call_physical`] under workload governance (per-source
    /// permits, deadline-interruptible simulated latency).
    pub fn call_physical_governed(
        &self,
        metadata: &Registry,
        name: &QName,
        args: &[Sequence],
        budget: Option<&QueryBudget>,
    ) -> Result<Sequence> {
        let f = metadata
            .function(name)
            .ok_or_else(|| AdaptorError::Unresolved(name.to_string()))?;
        match &f.source {
            SourceBinding::RelationalTable {
                connection,
                table,
                shape,
                ..
            } => {
                let select = full_table_select(table, shape);
                let rs = self.execute_sql_governed(connection, &select, &[], budget)?;
                Ok(rows_to_elements(shape, &rs))
            }
            SourceBinding::RelationalNavigation {
                connection,
                to_table,
                key_pairs,
                shape,
                ..
            } => {
                let Some(Item::Node(row)) = args.first().and_then(|a| a.first()) else {
                    return Ok(vec![]); // navigating from nothing
                };
                let mut select = full_table_select(to_table, shape);
                let mut params = Vec::with_capacity(key_pairs.len());
                let mut pred: Option<ScalarExpr> = None;
                for (from_col, to_col) in key_pairs {
                    let value = row
                        .child_elements(&QName::local(from_col))
                        .next()
                        .and_then(|n| n.typed_value());
                    let Some(v) = value else {
                        return Ok(vec![]); // NULL key joins to nothing
                    };
                    let sql_v = SqlValue::from_xml(Some(&v), guess_sql_type(&v))
                        .map_err(AdaptorError::Invocation)?;
                    params.push(sql_v);
                    let term =
                        ScalarExpr::col("t1", to_col).eq(ScalarExpr::Param(params.len() - 1));
                    pred = Some(match pred {
                        Some(p) => p.and(term),
                        None => term,
                    });
                }
                select.where_ = pred;
                let rs = self.execute_sql_governed(connection, &select, &params, budget)?;
                Ok(rows_to_elements(shape, &rs))
            }
            SourceBinding::WebService {
                service, operation, ..
            } => {
                let Some(Item::Node(request)) = args.first().and_then(|a| a.first()) else {
                    return Err(AdaptorError::Invocation(format!(
                        "{name}: web service call requires a request element"
                    )));
                };
                let _permit = self.acquire_gate(service, budget)?;
                let resp = self.service(service)?.call(operation, request)?;
                Ok(vec![Item::Node(resp)])
            }
            SourceBinding::Native { id } => self
                .natives
                .get(id)
                .ok_or_else(|| AdaptorError::Unresolved(id.clone()))?
                .call(args),
            SourceBinding::XmlFile { path, .. } => self
                .xml_files
                .get(path)
                .ok_or_else(|| AdaptorError::Unresolved(path.clone()))?
                .read(),
            SourceBinding::CsvFile { path, .. } => self
                .csv_files
                .get(path)
                .ok_or_else(|| AdaptorError::Unresolved(path.clone()))?
                .read(),
        }
    }
}

fn classify_relational_error(connection: &str, e: SourceError) -> AdaptorError {
    // Branch on the error *kind*, not its rendered message. A cancelled
    // roundtrip surfaces as Invocation here; the runtime replaces it with
    // the precise DeadlineExceeded error after re-checking the budget.
    if e.is_unavailable() {
        AdaptorError::Unavailable(format!("{connection}: {e}"))
    } else {
        AdaptorError::Invocation(format!("{connection}: {e}"))
    }
}

/// `SELECT every-column FROM table t1` for a full read-function scan.
pub fn full_table_select(table: &str, shape: &ElementType) -> Select {
    let mut select = Select::new(TableRef::table(table, "t1"));
    if let ContentType::Complex(c) = &shape.content {
        for (i, ch) in c.children.iter().enumerate() {
            if let Some(n) = &ch.elem.name {
                select = select.column(
                    ScalarExpr::col("t1", n.local_name()),
                    &format!("c{}", i + 1),
                );
            }
        }
    }
    select
}

/// Construct the typed row elements of a result set according to the
/// table shape — the adaptor's "translate the result into XML token
/// stream form" step (§5.3). NULL columns become missing elements.
pub fn rows_to_elements(shape: &ElementType, rs: &ResultSet) -> Sequence {
    let ContentType::Complex(content) = &shape.content else {
        return vec![];
    };
    let row_name = shape.name.clone().unwrap_or_else(|| QName::local("row"));
    rs.rows
        .iter()
        .map(|row| {
            let mut children = Vec::with_capacity(row.len());
            for (v, decl) in row.iter().zip(&content.children) {
                if let Some(x) = v.to_xml() {
                    let cname = decl.elem.name.clone().expect("columns are named");
                    children.push(Node::simple_element(cname, x));
                }
            }
            Item::Node(Node::element(row_name.clone(), vec![], children))
        })
        .collect()
}

fn guess_sql_type(v: &aldsp_xdm::value::AtomicValue) -> aldsp_relational::SqlType {
    aldsp_relational::SqlType::from_xml_type(v.type_of())
        .unwrap_or(aldsp_relational::SqlType::Varchar)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aldsp_metadata::introspect_relational;
    use aldsp_relational::{Catalog, Database, SqlType, TableSchema};

    fn setup() -> (AdaptorRegistry, Registry) {
        let mut cat = Catalog::new();
        cat.add(
            TableSchema::builder("CUSTOMER")
                .col("CID", SqlType::Varchar)
                .col("LAST_NAME", SqlType::Varchar)
                .col_null("SINCE", SqlType::Integer)
                .pk(&["CID"])
                .build()
                .unwrap(),
        )
        .unwrap();
        cat.add(
            TableSchema::builder("ORDER")
                .col("OID", SqlType::Integer)
                .col("CID", SqlType::Varchar)
                .pk(&["OID"])
                .fk(&["CID"], "CUSTOMER", &["CID"])
                .build()
                .unwrap(),
        )
        .unwrap();
        let mut db = Database::new();
        for t in cat.tables() {
            db.create_table(t.clone()).unwrap();
        }
        db.insert(
            "CUSTOMER",
            vec![SqlValue::str("C1"), SqlValue::str("Jones"), SqlValue::Null],
        )
        .unwrap();
        db.insert(
            "CUSTOMER",
            vec![
                SqlValue::str("C2"),
                SqlValue::str("Smith"),
                SqlValue::Int(7),
            ],
        )
        .unwrap();
        db.insert("ORDER", vec![SqlValue::Int(1), SqlValue::str("C1")])
            .unwrap();
        db.insert("ORDER", vec![SqlValue::Int(2), SqlValue::str("C1")])
            .unwrap();
        let server = Arc::new(RelationalServer::new("db1", Dialect::Oracle, db));
        let mut adaptors = AdaptorRegistry::new();
        adaptors.register_connection(server);
        let mut meta = Registry::new();
        meta.register_service(&introspect_relational(&cat, "db1", "urn:custDS").unwrap())
            .unwrap();
        (adaptors, meta)
    }

    #[test]
    fn table_read_function_yields_typed_rows() {
        let (adaptors, meta) = setup();
        let rows = adaptors
            .call_physical(&meta, &QName::new("urn:custDS", "CUSTOMER"), &[])
            .unwrap();
        assert_eq!(rows.len(), 2);
        let c1 = rows[0].as_node().unwrap();
        assert_eq!(c1.name().unwrap().local_name(), "CUSTOMER");
        // NULL SINCE → missing element
        assert!(c1.child_elements(&QName::local("SINCE")).next().is_none());
        let c2 = rows[1].as_node().unwrap();
        assert_eq!(
            c2.child_elements(&QName::local("SINCE"))
                .next()
                .unwrap()
                .typed_value(),
            Some(aldsp_xdm::value::AtomicValue::Integer(7))
        );
    }

    #[test]
    fn navigation_call_joins_by_key() {
        let (adaptors, meta) = setup();
        let customers = adaptors
            .call_physical(&meta, &QName::new("urn:custDS", "CUSTOMER"), &[])
            .unwrap();
        let orders = adaptors
            .call_physical(
                &meta,
                &QName::new("urn:custDS", "getORDER"),
                &[vec![customers[0].clone()]],
            )
            .unwrap();
        assert_eq!(orders.len(), 2);
        let none = adaptors
            .call_physical(
                &meta,
                &QName::new("urn:custDS", "getORDER"),
                &[vec![customers[1].clone()]],
            )
            .unwrap();
        assert!(none.is_empty());
        // empty argument navigates to nothing
        let empty = adaptors
            .call_physical(&meta, &QName::new("urn:custDS", "getORDER"), &[vec![]])
            .unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn sql_execution_and_unavailability() {
        let (adaptors, meta) = setup();
        let f = meta
            .function(&QName::new("urn:custDS", "CUSTOMER"))
            .unwrap();
        let SourceBinding::RelationalTable { shape, .. } = &f.source else {
            panic!()
        };
        let select = full_table_select("CUSTOMER", shape);
        let rs = adaptors.execute_sql("db1", &select, &[]).unwrap();
        assert_eq!(rs.rows.len(), 2);
        adaptors.connection("db1").unwrap().set_available(false);
        assert!(matches!(
            adaptors.execute_sql("db1", &select, &[]).unwrap_err(),
            AdaptorError::Unavailable(_)
        ));
        assert!(matches!(
            adaptors.execute_sql("nope", &select, &[]).unwrap_err(),
            AdaptorError::Unresolved(_)
        ));
    }

    #[test]
    fn unresolved_physical_function() {
        let (adaptors, meta) = setup();
        assert!(adaptors
            .call_physical(&meta, &QName::new("urn:x", "NOPE"), &[])
            .is_err());
    }
}
