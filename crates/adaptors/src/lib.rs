//! # aldsp-adaptors — the data source adaptor framework (§2.2, §5.3)
//!
//! "Adaptors have a design-time component that introspects data source
//! metadata … They also have a runtime component that controls and
//! manages source access at runtime." The design-time side lives in
//! `aldsp-metadata`; this crate is the runtime side: one adaptor per
//! source category, all following the five-step invocation lifecycle of
//! §5.3 (connect → translate parameters → invoke → translate results →
//! release), and an [`AdaptorRegistry`] that resolves the connection /
//! service / registration names carried in pragma metadata.

pub mod files;
pub mod native;
pub mod registry;
pub mod webservice;

pub use files::{CsvFileSource, XmlFileSource};
pub use native::NativeFunction;
pub use registry::AdaptorRegistry;
pub use webservice::SimulatedWebService;

/// Errors surfaced by source access. `Unavailable` distinguishes the
/// failures `fn-bea:fail-over` reacts to (§5.6).
#[derive(Debug, Clone, PartialEq)]
pub enum AdaptorError {
    /// The source is down, unreachable, or injected-failed.
    Unavailable(String),
    /// The invocation itself failed (bad SQL, validation error, …).
    Invocation(String),
    /// No adaptor is registered for the requested name.
    Unresolved(String),
}

impl std::fmt::Display for AdaptorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdaptorError::Unavailable(s) => write!(f, "data source unavailable: {s}"),
            AdaptorError::Invocation(s) => write!(f, "source invocation failed: {s}"),
            AdaptorError::Unresolved(s) => write!(f, "no adaptor registered for '{s}'"),
        }
    }
}

impl std::error::Error for AdaptorError {}

/// Result alias for adaptor operations.
pub type Result<T> = std::result::Result<T, AdaptorError>;
