//! The web service adaptor (§5.3), simulated.
//!
//! **Substitution note (see DESIGN.md):** the paper's functional sources
//! are real WSDL endpoints; what ALDSP's runtime depends on is their
//! *behavior* — a typed request/response exchange with network latency
//! and occasional failure. [`SimulatedWebService`] reproduces exactly
//! that: operations are Rust handler functions over XML nodes, requests
//! and responses are validated against the introspected shapes to
//! produce typed token data ("data coming from Web services is validated
//! according to the schema described in their WSDL"), and latency /
//! failure are injectable for the async, caching and failover
//! experiments (§5.4–5.6).

use crate::{AdaptorError, Result};
use aldsp_xdm::node::NodeRef;
use aldsp_xdm::schema::validate;
use aldsp_xdm::types::ElementType;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One operation handler: typed request element in, response element out.
pub type OperationHandler = Arc<dyn Fn(&NodeRef) -> Result<NodeRef> + Send + Sync>;

struct Operation {
    input_shape: ElementType,
    output_shape: ElementType,
    handler: OperationHandler,
}

/// A simulated document-style web service.
pub struct SimulatedWebService {
    name: String,
    operations: HashMap<String, Operation>,
    latency: RwLock<Duration>,
    available: AtomicBool,
    calls: AtomicU64,
}

impl SimulatedWebService {
    /// Create a service with no operations.
    pub fn new(name: &str) -> SimulatedWebService {
        SimulatedWebService {
            name: name.to_string(),
            operations: HashMap::new(),
            latency: RwLock::new(Duration::ZERO),
            available: AtomicBool::new(true),
            calls: AtomicU64::new(0),
        }
    }

    /// The service name (matched against `SourceBinding::WebService`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Register an operation with its request/response shapes.
    pub fn operation(
        mut self,
        name: &str,
        input_shape: ElementType,
        output_shape: ElementType,
        handler: OperationHandler,
    ) -> Self {
        self.operations.insert(
            name.to_string(),
            Operation {
                input_shape,
                output_shape,
                handler,
            },
        );
        self
    }

    /// Simulate network + processing latency per call.
    pub fn set_latency(&self, d: Duration) {
        *self.latency.write() = d;
    }

    /// Mark the service (un)available — drives failover tests (§5.6).
    pub fn set_available(&self, up: bool) {
        self.available.store(up, Ordering::SeqCst);
    }

    /// Number of calls served.
    pub fn call_count(&self) -> u64 {
        self.calls.load(Ordering::SeqCst)
    }

    /// Invoke an operation. Follows the §5.3 lifecycle: the connection is
    /// implicit (step 1/5), the request is validated into the service's
    /// data model (step 2), invoked (step 3), and the response validated
    /// back into typed XML (step 4).
    pub fn call(&self, operation: &str, request: &NodeRef) -> Result<NodeRef> {
        if !self.available.load(Ordering::SeqCst) {
            return Err(AdaptorError::Unavailable(self.name.clone()));
        }
        let op = self
            .operations
            .get(operation)
            .ok_or_else(|| AdaptorError::Unresolved(format!("{}.{operation}", self.name)))?;
        let typed_request = validate(request, &op.input_shape)
            .map_err(|e| AdaptorError::Invocation(format!("bad request: {e}")))?;
        let latency = *self.latency.read();
        if latency > Duration::ZERO {
            std::thread::sleep(latency);
        }
        self.calls.fetch_add(1, Ordering::SeqCst);
        let response = (op.handler)(&typed_request)?;
        validate(&response, &op.output_shape)
            .map_err(|e| AdaptorError::Invocation(format!("bad response: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aldsp_xdm::node::Node;
    use aldsp_xdm::schema::ShapeBuilder;
    use aldsp_xdm::value::{AtomicType, AtomicValue};
    use aldsp_xdm::QName;

    fn rating_service() -> SimulatedWebService {
        let ns = "urn:ratingTypes";
        let input = ShapeBuilder::element(QName::new(ns, "getRating"))
            .required("lName", AtomicType::String)
            .required("ssn", AtomicType::String)
            .build();
        let output = ShapeBuilder::element(QName::new(ns, "getRatingResponse"))
            .required("getRatingResult", AtomicType::Integer)
            .build();
        SimulatedWebService::new("ratingWS").operation(
            "getRating",
            input,
            output,
            Arc::new(move |req| {
                let ssn = req
                    .child_elements(&QName::new("urn:ratingTypes", "ssn"))
                    .next()
                    .map(|n| n.string_value())
                    .unwrap_or_default();
                // deterministic fake rating derived from the SSN
                let rating = 600 + (ssn.bytes().map(u64::from).sum::<u64>() % 250) as i64;
                Ok(Node::element(
                    QName::new("urn:ratingTypes", "getRatingResponse"),
                    vec![],
                    vec![Node::simple_element(
                        QName::new("urn:ratingTypes", "getRatingResult"),
                        AtomicValue::Integer(rating),
                    )],
                ))
            }),
        )
    }

    fn request(lname: &str, ssn: &str) -> NodeRef {
        Node::element(
            QName::new("urn:ratingTypes", "getRating"),
            vec![],
            vec![
                Node::simple_element(
                    QName::new("urn:ratingTypes", "lName"),
                    AtomicValue::str(lname),
                ),
                Node::simple_element(QName::new("urn:ratingTypes", "ssn"), AtomicValue::str(ssn)),
            ],
        )
    }

    #[test]
    fn call_validates_and_types_response() {
        let ws = rating_service();
        let resp = ws
            .call("getRating", &request("Jones", "123-45-6789"))
            .unwrap();
        let rating = resp
            .child_elements(&QName::new("urn:ratingTypes", "getRatingResult"))
            .next()
            .unwrap()
            .typed_value()
            .unwrap();
        assert!(matches!(rating, AtomicValue::Integer(r) if (600..850).contains(&r)));
        assert_eq!(ws.call_count(), 1);
    }

    #[test]
    fn bad_request_rejected_before_invocation() {
        let ws = rating_service();
        let bad = Node::element(QName::new("urn:ratingTypes", "getRating"), vec![], vec![]);
        let err = ws.call("getRating", &bad).unwrap_err();
        assert!(matches!(err, AdaptorError::Invocation(_)));
        assert_eq!(ws.call_count(), 0, "handler must not run on bad input");
    }

    #[test]
    fn unavailable_and_unknown_operation() {
        let ws = rating_service();
        assert!(matches!(
            ws.call("nope", &request("a", "b")).unwrap_err(),
            AdaptorError::Unresolved(_)
        ));
        ws.set_available(false);
        assert!(matches!(
            ws.call("getRating", &request("a", "b")).unwrap_err(),
            AdaptorError::Unavailable(_)
        ));
    }

    #[test]
    fn latency_is_simulated() {
        let ws = rating_service();
        ws.set_latency(Duration::from_millis(5));
        let t0 = std::time::Instant::now();
        ws.call("getRating", &request("a", "b")).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(5));
    }
}
