//! XML and delimited (CSV) file adaptors (§2.2, §5.3).
//!
//! Files are *non-queryable* sources: ALDSP can read their full content
//! but cannot delegate query processing to them. "For files, XML schemas
//! are required at file registration time, and are used to validate the
//! data for typed processing" — both adaptors validate against the
//! registered shape and produce typed elements. Content can come from a
//! path on disk or be supplied inline (for tests and examples).

use crate::{AdaptorError, Result};
use aldsp_xdm::item::{Item, Sequence};
use aldsp_xdm::schema::validate;
use aldsp_xdm::types::{ContentType, ElementType};
use aldsp_xdm::value::AtomicValue;
use aldsp_xdm::{xml, Node, QName};
use parking_lot::RwLock;

/// Where a file adaptor reads its bytes.
#[derive(Debug, Clone)]
pub enum FileContent {
    /// A filesystem path, read at invocation time.
    Path(std::path::PathBuf),
    /// Inline content (registered data, tests).
    Inline(String),
}

impl FileContent {
    fn read(&self) -> Result<String> {
        match self {
            FileContent::Path(p) => std::fs::read_to_string(p).map_err(|e| {
                AdaptorError::Unavailable(format!("cannot read {}: {e}", p.display()))
            }),
            FileContent::Inline(s) => Ok(s.clone()),
        }
    }
}

/// An XML file registered with a schema: reading yields the validated,
/// typed *children* of the document root when the root is a plain
/// container, or the root element itself when it matches the shape.
pub struct XmlFileSource {
    name: String,
    content: RwLock<FileContent>,
    shape: ElementType,
}

impl XmlFileSource {
    /// Register an XML file under `name` with its row/record shape.
    pub fn new(name: &str, content: FileContent, shape: ElementType) -> XmlFileSource {
        XmlFileSource {
            name: name.to_string(),
            content: RwLock::new(content),
            shape,
        }
    }

    /// The registration name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Replace the content (simulating file updates).
    pub fn set_content(&self, c: FileContent) {
        *self.content.write() = c;
    }

    /// Read and validate, producing typed elements.
    pub fn read(&self) -> Result<Sequence> {
        let text = self.content.read().read()?;
        let doc = xml::parse(&text)
            .map_err(|e| AdaptorError::Invocation(format!("{}: {e}", self.name)))?;
        let root = doc
            .children()
            .first()
            .ok_or_else(|| AdaptorError::Invocation(format!("{}: empty document", self.name)))?
            .clone();
        // root matches the shape directly?
        if root.name() == self.shape.name.as_ref() {
            let typed = validate(&root, &self.shape)
                .map_err(|e| AdaptorError::Invocation(format!("{}: {e}", self.name)))?;
            return Ok(vec![Item::Node(typed)]);
        }
        // otherwise treat the root as a container of records
        let mut out = Vec::new();
        for child in root.all_child_elements() {
            let typed = validate(child, &self.shape)
                .map_err(|e| AdaptorError::Invocation(format!("{}: {e}", self.name)))?;
            out.push(Item::Node(typed));
        }
        Ok(out)
    }
}

/// A delimited (CSV) file with a declared record shape: each line maps
/// positionally onto the shape's simple-typed children; empty fields of
/// optional children become missing elements (the NULL convention).
pub struct CsvFileSource {
    name: String,
    content: RwLock<FileContent>,
    shape: ElementType,
    delimiter: char,
}

impl CsvFileSource {
    /// Register a CSV file under `name` with its record shape.
    pub fn new(name: &str, content: FileContent, shape: ElementType) -> CsvFileSource {
        CsvFileSource {
            name: name.to_string(),
            content: RwLock::new(content),
            shape,
            delimiter: ',',
        }
    }

    /// Use a different delimiter.
    pub fn with_delimiter(mut self, d: char) -> Self {
        self.delimiter = d;
        self
    }

    /// The registration name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Replace the content.
    pub fn set_content(&self, c: FileContent) {
        *self.content.write() = c;
    }

    /// Read and type each record.
    pub fn read(&self) -> Result<Sequence> {
        let text = self.content.read().read()?;
        let ContentType::Complex(content) = &self.shape.content else {
            return Err(AdaptorError::Invocation(format!(
                "{}: CSV shape must have complex content",
                self.name
            )));
        };
        let record_name = self
            .shape
            .name
            .clone()
            .unwrap_or_else(|| QName::local("record"));
        let mut out = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let fields: Vec<&str> = split_delimited(line, self.delimiter);
            if fields.len() != content.children.len() {
                return Err(AdaptorError::Invocation(format!(
                    "{} line {}: expected {} fields, found {}",
                    self.name,
                    lineno + 1,
                    content.children.len(),
                    fields.len()
                )));
            }
            let mut children = Vec::with_capacity(fields.len());
            for (field, decl) in fields.iter().zip(&content.children) {
                let cname = decl.elem.name.clone().expect("declared children are named");
                let ContentType::Simple(t) = decl.elem.content else {
                    return Err(AdaptorError::Invocation(format!(
                        "{}: CSV columns must be simple-typed",
                        self.name
                    )));
                };
                if field.is_empty() {
                    if !decl.occ.allows_empty() {
                        return Err(AdaptorError::Invocation(format!(
                            "{} line {}: required field {cname} is empty",
                            self.name,
                            lineno + 1
                        )));
                    }
                    continue; // NULL → missing element
                }
                let typed = AtomicValue::untyped(field).cast_to(t).map_err(|e| {
                    AdaptorError::Invocation(format!("{} line {}: {e}", self.name, lineno + 1))
                })?;
                children.push(Node::simple_element(cname, typed));
            }
            out.push(Item::Node(Node::element(
                record_name.clone(),
                vec![],
                children,
            )));
        }
        Ok(out)
    }
}

/// Split one CSV line, honoring double-quoted fields with `""` escapes.
fn split_delimited(line: &str, delim: char) -> Vec<&str> {
    // fast path: no quotes
    if !line.contains('"') {
        return line.split(delim).map(str::trim).collect();
    }
    let mut fields = Vec::new();
    let bytes = line.as_bytes();
    let mut start = 0;
    let mut in_quotes = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => in_quotes = !in_quotes,
            b if b == delim as u8 && !in_quotes => {
                fields.push(line[start..i].trim().trim_matches('"'));
                start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    fields.push(line[start..].trim().trim_matches('"'));
    fields
}

#[cfg(test)]
mod tests {
    use super::*;
    use aldsp_xdm::schema::ShapeBuilder;
    use aldsp_xdm::value::AtomicType;

    fn complaint_shape() -> ElementType {
        ShapeBuilder::element(QName::local("COMPLAINT"))
            .required_local("ID", AtomicType::Integer)
            .required_local("CID", AtomicType::String)
            .optional_local("SEVERITY", AtomicType::Integer)
            .build()
    }

    #[test]
    fn xml_file_container_of_records() {
        let src = XmlFileSource::new(
            "complaints.xml",
            FileContent::Inline(
                "<COMPLAINTS>
                   <COMPLAINT><ID>1</ID><CID>C1</CID><SEVERITY>3</SEVERITY></COMPLAINT>
                   <COMPLAINT><ID>2</ID><CID>C2</CID></COMPLAINT>
                 </COMPLAINTS>"
                    .into(),
            ),
            complaint_shape(),
        );
        let items = src.read().unwrap();
        assert_eq!(items.len(), 2);
        let first = items[0].as_node().unwrap();
        assert_eq!(
            first
                .child_elements(&QName::local("ID"))
                .next()
                .unwrap()
                .typed_value(),
            Some(AtomicValue::Integer(1))
        );
    }

    #[test]
    fn xml_file_validation_errors_surface() {
        let src = XmlFileSource::new(
            "bad.xml",
            FileContent::Inline(
                "<COMPLAINTS><COMPLAINT><ID>x</ID><CID>C1</CID></COMPLAINT></COMPLAINTS>".into(),
            ),
            complaint_shape(),
        );
        assert!(matches!(
            src.read().unwrap_err(),
            AdaptorError::Invocation(_)
        ));
        let missing = XmlFileSource::new(
            "missing.xml",
            FileContent::Path("/nonexistent/file.xml".into()),
            complaint_shape(),
        );
        assert!(matches!(
            missing.read().unwrap_err(),
            AdaptorError::Unavailable(_)
        ));
    }

    #[test]
    fn csv_records_typed_with_null_convention() {
        let src = CsvFileSource::new(
            "complaints.csv",
            FileContent::Inline("1,C1,3\n2,C2,\n".into()),
            complaint_shape(),
        );
        let items = src.read().unwrap();
        assert_eq!(items.len(), 2);
        let second = items[1].as_node().unwrap();
        assert!(second
            .child_elements(&QName::local("SEVERITY"))
            .next()
            .is_none());
        assert_eq!(
            second
                .child_elements(&QName::local("ID"))
                .next()
                .unwrap()
                .typed_value(),
            Some(AtomicValue::Integer(2))
        );
    }

    #[test]
    fn csv_quoting_and_errors() {
        let shape = ShapeBuilder::element(QName::local("R"))
            .required_local("A", AtomicType::String)
            .required_local("B", AtomicType::String)
            .build();
        let src = CsvFileSource::new(
            "q.csv",
            FileContent::Inline("\"hello, world\",b\n".into()),
            shape.clone(),
        );
        let items = src.read().unwrap();
        assert_eq!(items[0].as_node().unwrap().string_value(), "hello, worldb");
        // wrong arity
        let bad = CsvFileSource::new(
            "bad.csv",
            FileContent::Inline("only-one\n".into()),
            shape.clone(),
        );
        assert!(bad.read().is_err());
        // required field empty
        let empty = CsvFileSource::new("e.csv", FileContent::Inline(",b\n".into()), shape);
        assert!(empty.read().is_err());
    }

    #[test]
    fn custom_delimiter() {
        let shape = ShapeBuilder::element(QName::local("R"))
            .required_local("A", AtomicType::Integer)
            .required_local("B", AtomicType::Integer)
            .build();
        let src = CsvFileSource::new("p.psv", FileContent::Inline("1|2".into()), shape)
            .with_delimiter('|');
        assert_eq!(src.read().unwrap().len(), 1);
    }
}
