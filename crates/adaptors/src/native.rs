//! The custom-function adaptor (§5.3).
//!
//! ALDSP lets developers register external Java functions for use in
//! queries (the `int2date` example of §4.4). Here the externals are Rust
//! closures over XQuery sequences — the same role: opaque computations
//! the optimizer can only see through registered inverse declarations.

use crate::{AdaptorError, Result};
use aldsp_xdm::item::Sequence;
use std::sync::Arc;

/// The boxed callable a [`NativeFunction`] wraps.
type NativeFn = Arc<dyn Fn(&[Sequence]) -> Result<Sequence> + Send + Sync>;

/// A registered custom function.
#[derive(Clone)]
pub struct NativeFunction {
    id: String,
    f: NativeFn,
}

impl NativeFunction {
    /// Register a closure under `id` (matched by
    /// `SourceBinding::Native`).
    pub fn new(
        id: &str,
        f: impl Fn(&[Sequence]) -> Result<Sequence> + Send + Sync + 'static,
    ) -> NativeFunction {
        NativeFunction {
            id: id.to_string(),
            f: Arc::new(f),
        }
    }

    /// The registration id.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Invoke the function.
    pub fn call(&self, args: &[Sequence]) -> Result<Sequence> {
        (self.f)(args)
    }
}

impl std::fmt::Debug for NativeFunction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "NativeFunction({})", self.id)
    }
}

/// The §4.4 example pair: `int2date` (seconds since the epoch →
/// `xs:dateTime`) and its inverse `date2int`, ready to register.
pub fn int2date_pair() -> (NativeFunction, NativeFunction) {
    use aldsp_xdm::item::{atomize, Item};
    use aldsp_xdm::value::{AtomicType, AtomicValue, DateTime};
    let int2date = NativeFunction::new("int2date", |args| {
        let vals = atomize(&args[0]);
        match vals.first() {
            None => Ok(vec![]),
            Some(v) => {
                let secs = v
                    .cast_to(AtomicType::Integer)
                    .map_err(|e| AdaptorError::Invocation(e.to_string()))?;
                let AtomicValue::Integer(s) = secs else {
                    unreachable!("cast to integer")
                };
                Ok(vec![Item::Atomic(AtomicValue::DateTime(DateTime(s)))])
            }
        }
    });
    let date2int = NativeFunction::new("date2int", |args| {
        let vals = atomize(&args[0]);
        match vals.first() {
            None => Ok(vec![]),
            Some(v) => {
                let dt = v
                    .cast_to(AtomicType::DateTime)
                    .map_err(|e| AdaptorError::Invocation(e.to_string()))?;
                let AtomicValue::DateTime(d) = dt else {
                    unreachable!("cast to dateTime")
                };
                Ok(vec![Item::Atomic(AtomicValue::Integer(d.0))])
            }
        }
    });
    (int2date, date2int)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aldsp_xdm::item::Item;
    use aldsp_xdm::value::{AtomicValue, DateTime};

    #[test]
    fn int2date_roundtrip() {
        let (i2d, d2i) = int2date_pair();
        let secs = vec![Item::int(1_118_836_205)];
        let date = i2d.call(std::slice::from_ref(&secs)).unwrap();
        assert_eq!(
            date,
            vec![Item::Atomic(AtomicValue::DateTime(DateTime(1_118_836_205)))]
        );
        let back = d2i.call(&[date]).unwrap();
        assert_eq!(back, secs);
        // empty propagates
        assert!(i2d.call(&[vec![]]).unwrap().is_empty());
        // non-numeric input errors
        assert!(i2d.call(&[vec![Item::str("soon")]]).is_err());
    }
}
