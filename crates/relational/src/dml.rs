//! DML: UPDATE / INSERT / DELETE statements.
//!
//! ALDSP's update decomposition (§6) turns SDO change logs into
//! per-source SQL updates whose `WHERE` clauses carry the optimistic-
//! concurrency conditions ("the sameness required is expressed as part
//! of the where clause for the update statements"). This module supplies
//! those statements plus their executor and dialect rendering.

use crate::dialect::Dialect;
use crate::exec::ResultSet;
use crate::sql::{ScalarExpr, Select, TableRef};
use crate::store::{Database, Row};
use crate::types::SqlValue;
use std::fmt::Write;

/// An `UPDATE table SET col = expr, … WHERE …` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Update {
    /// Target table.
    pub table: String,
    /// Correlation alias used in expressions (`t1`).
    pub alias: String,
    /// `SET` assignments.
    pub set: Vec<(String, ScalarExpr)>,
    /// `WHERE` predicate (key condition + optimistic-concurrency terms).
    pub where_: Option<ScalarExpr>,
}

/// An `INSERT INTO table VALUES (…)` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Insert {
    /// Target table.
    pub table: String,
    /// One value expression per column, in schema order.
    pub values: Vec<ScalarExpr>,
}

/// A `DELETE FROM table WHERE …` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Delete {
    /// Target table.
    pub table: String,
    /// Correlation alias used in the predicate.
    pub alias: String,
    /// `WHERE` predicate.
    pub where_: Option<ScalarExpr>,
}

/// Any DML statement (the unit of ALDSP change propagation).
#[derive(Debug, Clone, PartialEq)]
pub enum Dml {
    /// UPDATE.
    Update(Update),
    /// INSERT.
    Insert(Insert),
    /// DELETE.
    Delete(Delete),
}

impl Dml {
    /// The target table name.
    pub fn table(&self) -> &str {
        match self {
            Dml::Update(u) => &u.table,
            Dml::Insert(i) => &i.table,
            Dml::Delete(d) => &d.table,
        }
    }
}

impl Database {
    /// Execute a DML statement; returns the number of affected rows.
    /// An optimistic-concurrency conflict shows up as 0 affected rows on
    /// an UPDATE/DELETE the caller expected to hit.
    pub fn execute_dml(&mut self, stmt: &Dml, params: &[SqlValue]) -> Result<usize, String> {
        match stmt {
            Dml::Insert(ins) => {
                let row = self.eval_insert_row(ins, params)?;
                self.insert(&ins.table, row)?;
                Ok(1)
            }
            Dml::Update(upd) => {
                let hits =
                    self.matching_rows(&upd.table, &upd.alias, upd.where_.as_ref(), params)?;
                let schema = self
                    .table(&upd.table)
                    .expect("matching_rows validated")
                    .schema()
                    .clone();
                let mut set_idx = Vec::with_capacity(upd.set.len());
                for (c, e) in &upd.set {
                    let i = schema
                        .column_index(c)
                        .ok_or_else(|| format!("no column '{c}' in '{}'", upd.table))?;
                    set_idx.push((i, e));
                }
                for &ri in &hits {
                    let old = self.table(&upd.table).expect("validated").rows()[ri].clone();
                    let mut new = old.clone();
                    for (i, e) in &set_idx {
                        new[*i] = eval_standalone(self, e, &upd.alias, &schema, &old, params)?;
                    }
                    self.table_mut(&upd.table)
                        .expect("validated")
                        .replace_row(ri, new)?;
                }
                Ok(hits.len())
            }
            Dml::Delete(del) => {
                let mut hits =
                    self.matching_rows(&del.table, &del.alias, del.where_.as_ref(), params)?;
                hits.sort_unstable();
                self.table_mut(&del.table)
                    .expect("matching_rows validated")
                    .delete_rows(&hits);
                Ok(hits.len())
            }
        }
    }

    fn eval_insert_row(&self, ins: &Insert, params: &[SqlValue]) -> Result<Row, String> {
        let mut row = Vec::with_capacity(ins.values.len());
        for e in &ins.values {
            row.push(match e {
                ScalarExpr::Literal(v) => v.clone(),
                ScalarExpr::Param(i) => params
                    .get(*i)
                    .cloned()
                    .ok_or_else(|| format!("missing parameter ?{i}"))?,
                other => {
                    return Err(format!(
                        "INSERT values must be literals or parameters, found {other:?}"
                    ))
                }
            });
        }
        Ok(row)
    }

    /// Indices of the rows the predicate selects, via a probe SELECT over
    /// a synthesized row-number column.
    fn matching_rows(
        &self,
        table: &str,
        alias: &str,
        where_: Option<&ScalarExpr>,
        params: &[SqlValue],
    ) -> Result<Vec<usize>, String> {
        let t = self
            .table(table)
            .ok_or_else(|| format!("no table '{table}'"))?;
        let schema = t.schema().clone();
        let rows = t.rows().to_vec();
        let mut out = Vec::new();
        for (i, row) in rows.iter().enumerate() {
            let keep = match where_ {
                None => true,
                Some(w) => {
                    let v = eval_standalone(self, w, alias, &schema, row, params)?;
                    matches!(v, SqlValue::Bool(true))
                }
            };
            if keep {
                out.push(i);
            }
        }
        Ok(out)
    }
}

/// Evaluate a scalar expression against a single row of one table by
/// synthesizing a one-row SELECT (reuses the full executor semantics,
/// including 3VL, without duplicating the evaluator).
fn eval_standalone(
    db: &Database,
    e: &ScalarExpr,
    alias: &str,
    schema: &crate::catalog::TableSchema,
    row: &Row,
    params: &[SqlValue],
) -> Result<SqlValue, String> {
    // bind the row's columns as parameters appended after the caller's
    let mut q = Select::new(TableRef::table(&schema.name, alias)).column(e.clone(), "v");
    // narrow to exactly this row by PK (or full-row match when no PK)
    let mut pred: Option<ScalarExpr> = None;
    let key_cols: Vec<usize> = if schema.primary_key.is_empty() {
        (0..schema.columns.len()).collect()
    } else {
        schema.pk_indices()
    };
    let mut all_params = params.to_vec();
    for &i in &key_cols {
        let term = if row[i].is_null() {
            ScalarExpr::IsNull(Box::new(ScalarExpr::col(alias, &schema.columns[i].name)))
        } else {
            all_params.push(row[i].clone());
            ScalarExpr::col(alias, &schema.columns[i].name)
                .eq(ScalarExpr::Param(all_params.len() - 1))
        };
        pred = Some(match pred {
            Some(p) => p.and(term),
            None => term,
        });
    }
    q.where_ = pred;
    let rs: ResultSet = db
        .execute_select(&q, &all_params)
        .map_err(|e| e.to_string())?;
    rs.rows
        .first()
        .map(|r| r[0].clone())
        .ok_or_else(|| "row vanished during DML evaluation".to_string())
}

/// Render a DML statement as SQL text in the given dialect.
pub fn render_dml(stmt: &Dml, d: Dialect) -> String {
    let _ = d; // the DML subset is identical across our dialects
    match stmt {
        Dml::Update(u) => {
            let mut s = format!("UPDATE \"{}\" {} SET ", u.table, u.alias);
            for (i, (c, e)) in u.set.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                let _ = write!(s, "\"{c}\" = {}", render_set_expr(e, d));
            }
            if let Some(w) = &u.where_ {
                let _ = write!(s, "\nWHERE {}", render_set_expr(w, d));
            }
            s
        }
        Dml::Insert(i) => {
            let vals: Vec<String> = i.values.iter().map(|e| render_set_expr(e, d)).collect();
            format!("INSERT INTO \"{}\" VALUES ({})", i.table, vals.join(", "))
        }
        Dml::Delete(del) => {
            let mut s = format!("DELETE FROM \"{}\" {}", del.table, del.alias);
            if let Some(w) = &del.where_ {
                let _ = write!(s, "\nWHERE {}", render_set_expr(w, d));
            }
            s
        }
    }
}

fn render_set_expr(e: &ScalarExpr, d: Dialect) -> String {
    // reuse the SELECT expression renderer via a tiny shim select
    let q = Select::new(TableRef::table("_", "_")).column(e.clone(), "v");
    let text = crate::dialect::render_select(&q, d);
    let start = "SELECT ".len();
    let end = text.find(" AS v").expect("renderer emits alias");
    text[start..end].to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::TableSchema;
    use crate::types::SqlType;

    fn db() -> Database {
        let mut d = Database::new();
        d.create_table(
            TableSchema::builder("CUSTOMER")
                .col("CID", SqlType::Varchar)
                .col("LAST_NAME", SqlType::Varchar)
                .pk(&["CID"])
                .build()
                .unwrap(),
        )
        .unwrap();
        d.insert(
            "CUSTOMER",
            vec![SqlValue::str("0815"), SqlValue::str("Jones")],
        )
        .unwrap();
        d.insert(
            "CUSTOMER",
            vec![SqlValue::str("0816"), SqlValue::str("Adams")],
        )
        .unwrap();
        d
    }

    #[test]
    fn figure5_update_with_optimistic_check() {
        // UPDATE … SET LAST_NAME = 'Smith'
        // WHERE CID = '0815' AND LAST_NAME = 'Jones'   (value-read check)
        let mut d = db();
        let upd = Dml::Update(Update {
            table: "CUSTOMER".into(),
            alias: "t1".into(),
            set: vec![("LAST_NAME".into(), ScalarExpr::lit(SqlValue::str("Smith")))],
            where_: Some(
                ScalarExpr::col("t1", "CID")
                    .eq(ScalarExpr::lit(SqlValue::str("0815")))
                    .and(
                        ScalarExpr::col("t1", "LAST_NAME")
                            .eq(ScalarExpr::lit(SqlValue::str("Jones"))),
                    ),
            ),
        });
        assert_eq!(d.execute_dml(&upd, &[]).unwrap(), 1);
        // second application: the read value no longer matches → 0 rows,
        // which is how optimistic conflicts surface
        assert_eq!(d.execute_dml(&upd, &[]).unwrap(), 0);
        let t = d.table("CUSTOMER").unwrap();
        assert_eq!(t.rows()[0][1], SqlValue::str("Smith"));
    }

    #[test]
    fn insert_and_delete() {
        let mut d = db();
        let ins = Dml::Insert(Insert {
            table: "CUSTOMER".into(),
            values: vec![ScalarExpr::Param(0), ScalarExpr::lit(SqlValue::str("New"))],
        });
        assert_eq!(d.execute_dml(&ins, &[SqlValue::str("0900")]).unwrap(), 1);
        assert_eq!(d.table("CUSTOMER").unwrap().len(), 3);
        let del = Dml::Delete(Delete {
            table: "CUSTOMER".into(),
            alias: "t1".into(),
            where_: Some(ScalarExpr::col("t1", "CID").eq(ScalarExpr::Param(0))),
        });
        assert_eq!(d.execute_dml(&del, &[SqlValue::str("0900")]).unwrap(), 1);
        assert_eq!(d.table("CUSTOMER").unwrap().len(), 2);
        // PK index still valid after delete
        assert!(d
            .table("CUSTOMER")
            .unwrap()
            .lookup_pk(&[SqlValue::str("0816")])
            .is_some());
    }

    #[test]
    fn update_expression_references_old_values() {
        let mut d = Database::new();
        d.create_table(
            TableSchema::builder("ACCT")
                .col("ID", SqlType::Integer)
                .col("BAL", SqlType::Integer)
                .pk(&["ID"])
                .build()
                .unwrap(),
        )
        .unwrap();
        d.insert("ACCT", vec![SqlValue::Int(1), SqlValue::Int(100)])
            .unwrap();
        let upd = Dml::Update(Update {
            table: "ACCT".into(),
            alias: "t1".into(),
            set: vec![(
                "BAL".into(),
                ScalarExpr::Arith {
                    op: aldsp_xdm::value::ArithOp::Add,
                    lhs: Box::new(ScalarExpr::col("t1", "BAL")),
                    rhs: Box::new(ScalarExpr::lit(SqlValue::Int(50))),
                },
            )],
            where_: None,
        });
        d.execute_dml(&upd, &[]).unwrap();
        assert_eq!(d.table("ACCT").unwrap().rows()[0][1], SqlValue::Int(150));
    }

    #[test]
    fn dml_rendering() {
        let upd = Dml::Update(Update {
            table: "CUSTOMER".into(),
            alias: "t1".into(),
            set: vec![("LAST_NAME".into(), ScalarExpr::lit(SqlValue::str("Smith")))],
            where_: Some(ScalarExpr::col("t1", "CID").eq(ScalarExpr::Param(0))),
        });
        let sql = render_dml(&upd, Dialect::Oracle);
        assert_eq!(
            sql,
            "UPDATE \"CUSTOMER\" t1 SET \"LAST_NAME\" = 'Smith'\nWHERE t1.\"CID\" = ?"
        );
        let del = Dml::Delete(Delete {
            table: "T".into(),
            alias: "t1".into(),
            where_: None,
        });
        assert_eq!(render_dml(&del, Dialect::Oracle), "DELETE FROM \"T\" t1");
        let ins = Dml::Insert(Insert {
            table: "T".into(),
            values: vec![ScalarExpr::lit(SqlValue::Int(1)), ScalarExpr::Param(0)],
        });
        assert_eq!(
            render_dml(&ins, Dialect::Oracle),
            "INSERT INTO \"T\" VALUES (1, ?)"
        );
    }

    #[test]
    fn bad_dml_errors() {
        let mut d = db();
        let upd = Dml::Update(Update {
            table: "CUSTOMER".into(),
            alias: "t1".into(),
            set: vec![("NOPE".into(), ScalarExpr::lit(SqlValue::Int(1)))],
            where_: None,
        });
        assert!(d.execute_dml(&upd, &[]).is_err());
        let ins = Dml::Insert(Insert {
            table: "CUSTOMER".into(),
            values: vec![
                ScalarExpr::col("t1", "CID"),
                ScalarExpr::lit(SqlValue::Int(1)),
            ],
        });
        assert!(d.execute_dml(&ins, &[]).is_err());
    }
}
