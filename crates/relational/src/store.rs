//! Row storage: tables and databases.
//!
//! Tables enforce their schema on insert (arity, types, NOT NULL, primary
//! key uniqueness); the [`Database`] additionally checks foreign keys.
//! A primary-key hash index backs both constraint checking and the
//! runtime's index-nested-loop joins.

use crate::catalog::{Catalog, TableSchema};
use crate::types::SqlValue;
use std::collections::HashMap;

/// One stored row.
pub type Row = Vec<SqlValue>;

/// Hashable rendering of a key tuple (PKs never contain NULLs, and the
/// literal rendering is injective per type).
fn key_string(vals: &[SqlValue]) -> String {
    let mut s = String::new();
    for v in vals {
        s.push_str(&v.sql_literal());
        s.push('\u{1}');
    }
    s
}

/// A table: schema plus rows plus a primary-key index.
#[derive(Debug, Clone)]
pub struct Table {
    schema: TableSchema,
    rows: Vec<Row>,
    pk_index: HashMap<String, usize>,
}

impl Table {
    /// An empty table with the given schema.
    pub fn new(schema: TableSchema) -> Table {
        Table {
            schema,
            rows: Vec::new(),
            pk_index: HashMap::new(),
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// The stored rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn check_row(&self, row: &Row) -> Result<(), String> {
        if row.len() != self.schema.columns.len() {
            return Err(format!(
                "table '{}': expected {} values, got {}",
                self.schema.name,
                self.schema.columns.len(),
                row.len()
            ));
        }
        for (v, c) in row.iter().zip(&self.schema.columns) {
            if v.is_null() && !c.nullable {
                return Err(format!(
                    "table '{}': column '{}' is NOT NULL",
                    self.schema.name, c.name
                ));
            }
            if !v.conforms_to(c.ty) {
                return Err(format!(
                    "table '{}': value {v} does not conform to {} {}",
                    self.schema.name, c.name, c.ty
                ));
            }
        }
        Ok(())
    }

    fn pk_key(&self, row: &Row) -> Option<String> {
        let idx = self.schema.pk_indices();
        if idx.is_empty() {
            return None;
        }
        let vals: Vec<SqlValue> = idx.iter().map(|&i| row[i].clone()).collect();
        Some(key_string(&vals))
    }

    /// Insert a row, enforcing schema and PK uniqueness.
    pub fn insert(&mut self, row: Row) -> Result<(), String> {
        self.check_row(&row)?;
        if let Some(key) = self.pk_key(&row) {
            if self.pk_index.contains_key(&key) {
                return Err(format!(
                    "table '{}': duplicate primary key {key:?}",
                    self.schema.name
                ));
            }
            self.pk_index.insert(key, self.rows.len());
        }
        self.rows.push(row);
        Ok(())
    }

    /// Look up a row index by primary-key values.
    pub fn lookup_pk(&self, key_vals: &[SqlValue]) -> Option<usize> {
        self.pk_index.get(&key_string(key_vals)).copied()
    }

    /// In-place update of row `i` (used by the DML executor). The caller
    /// must re-validate; PK changes rebuild the index entry.
    pub(crate) fn replace_row(&mut self, i: usize, new: Row) -> Result<(), String> {
        self.check_row(&new)?;
        let old_key = self.pk_key(&self.rows[i]);
        let new_key = self.pk_key(&new);
        if old_key != new_key {
            if let Some(nk) = &new_key {
                if self.pk_index.contains_key(nk) {
                    return Err(format!(
                        "table '{}': duplicate primary key after update",
                        self.schema.name
                    ));
                }
            }
            if let Some(ok) = old_key {
                self.pk_index.remove(&ok);
            }
            if let Some(nk) = new_key {
                self.pk_index.insert(nk, i);
            }
        }
        self.rows[i] = new;
        Ok(())
    }

    /// Delete rows by indices (sorted ascending); rebuilds the PK index.
    pub(crate) fn delete_rows(&mut self, indices: &[usize]) {
        let mut keep = Vec::with_capacity(self.rows.len() - indices.len());
        let mut del = indices.iter().peekable();
        for (i, row) in self.rows.drain(..).enumerate() {
            if del.peek() == Some(&&i) {
                del.next();
            } else {
                keep.push(row);
            }
        }
        self.rows = keep;
        self.pk_index.clear();
        for i in 0..self.rows.len() {
            if let Some(k) = {
                let idx = self.schema.pk_indices();
                if idx.is_empty() {
                    None
                } else {
                    let vals: Vec<SqlValue> =
                        idx.iter().map(|&j| self.rows[i][j].clone()).collect();
                    Some(key_string(&vals))
                }
            } {
                self.pk_index.insert(k, i);
            }
        }
    }
}

/// An in-memory database: a catalog plus table storage.
#[derive(Debug, Clone, Default)]
pub struct Database {
    tables: HashMap<String, Table>,
    order: Vec<String>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Create a table from a schema.
    pub fn create_table(&mut self, schema: TableSchema) -> Result<(), String> {
        if self.tables.contains_key(&schema.name) {
            return Err(format!("table '{}' already exists", schema.name));
        }
        self.order.push(schema.name.clone());
        self.tables.insert(schema.name.clone(), Table::new(schema));
        Ok(())
    }

    /// Access a table.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// Mutable access to a table.
    pub fn table_mut(&mut self, name: &str) -> Option<&mut Table> {
        self.tables.get_mut(name)
    }

    /// The catalog view of this database (schemas only).
    pub fn catalog(&self) -> Catalog {
        let mut c = Catalog::new();
        for name in &self.order {
            c.add(self.tables[name].schema().clone())
                .expect("names unique");
        }
        c
    }

    /// Insert a row with foreign-key checking.
    pub fn insert(&mut self, table: &str, row: Row) -> Result<(), String> {
        // FK existence checks against current contents
        let schema = self
            .tables
            .get(table)
            .ok_or_else(|| format!("no table '{table}'"))?
            .schema()
            .clone();
        for fk in &schema.foreign_keys {
            let vals: Vec<SqlValue> = fk
                .columns
                .iter()
                .map(|c| row[schema.column_index(c).expect("validated")].clone())
                .collect();
            if vals.iter().any(SqlValue::is_null) {
                continue; // NULL FK values are exempt per SQL
            }
            let target = self.tables.get(&fk.ref_table).ok_or_else(|| {
                format!("foreign key references missing table '{}'", fk.ref_table)
            })?;
            // only indexable when referencing the PK, which is the
            // introspection-relevant case
            if fk.ref_columns == target.schema().primary_key {
                if target.lookup_pk(&vals).is_none() {
                    return Err(format!(
                        "foreign key violation: {table} → {}({:?})",
                        fk.ref_table, fk.ref_columns
                    ));
                }
            } else {
                let idx: Vec<usize> = fk
                    .ref_columns
                    .iter()
                    .map(|c| target.schema().column_index(c).expect("validated"))
                    .collect();
                if !target
                    .rows()
                    .iter()
                    .any(|r| idx.iter().zip(&vals).all(|(&i, v)| r[i].group_eq(v)))
                {
                    return Err(format!(
                        "foreign key violation: {table} → {}({:?})",
                        fk.ref_table, fk.ref_columns
                    ));
                }
            }
        }
        self.tables
            .get_mut(table)
            .expect("checked above")
            .insert(row)
    }

    /// Total rows across all tables (diagnostics).
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(Table::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::TableSchema;
    use crate::types::SqlType;

    fn db() -> Database {
        let mut d = Database::new();
        d.create_table(
            TableSchema::builder("CUSTOMER")
                .col("CID", SqlType::Varchar)
                .col("LAST_NAME", SqlType::Varchar)
                .col_null("SINCE", SqlType::Integer)
                .pk(&["CID"])
                .build()
                .unwrap(),
        )
        .unwrap();
        d.create_table(
            TableSchema::builder("ORDER")
                .col("OID", SqlType::Integer)
                .col("CID", SqlType::Varchar)
                .pk(&["OID"])
                .fk(&["CID"], "CUSTOMER", &["CID"])
                .build()
                .unwrap(),
        )
        .unwrap();
        d
    }

    #[test]
    fn insert_and_pk_lookup() {
        let mut d = db();
        d.insert(
            "CUSTOMER",
            vec![
                SqlValue::str("C1"),
                SqlValue::str("Jones"),
                SqlValue::Int(5),
            ],
        )
        .unwrap();
        d.insert(
            "CUSTOMER",
            vec![SqlValue::str("C2"), SqlValue::str("Smith"), SqlValue::Null],
        )
        .unwrap();
        let t = d.table("CUSTOMER").unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.lookup_pk(&[SqlValue::str("C2")]), Some(1));
        assert_eq!(t.lookup_pk(&[SqlValue::str("C9")]), None);
    }

    #[test]
    fn constraint_violations() {
        let mut d = db();
        d.insert(
            "CUSTOMER",
            vec![SqlValue::str("C1"), SqlValue::str("J"), SqlValue::Null],
        )
        .unwrap();
        // duplicate PK
        assert!(d
            .insert(
                "CUSTOMER",
                vec![SqlValue::str("C1"), SqlValue::str("K"), SqlValue::Null]
            )
            .is_err());
        // NOT NULL
        assert!(d
            .insert(
                "CUSTOMER",
                vec![SqlValue::str("C2"), SqlValue::Null, SqlValue::Null]
            )
            .is_err());
        // type mismatch
        assert!(d
            .insert(
                "CUSTOMER",
                vec![SqlValue::Int(3), SqlValue::str("K"), SqlValue::Null]
            )
            .is_err());
        // arity
        assert!(d.insert("CUSTOMER", vec![SqlValue::str("C3")]).is_err());
    }

    #[test]
    fn foreign_keys_enforced() {
        let mut d = db();
        d.insert(
            "CUSTOMER",
            vec![SqlValue::str("C1"), SqlValue::str("J"), SqlValue::Null],
        )
        .unwrap();
        d.insert("ORDER", vec![SqlValue::Int(1), SqlValue::str("C1")])
            .unwrap();
        assert!(d
            .insert("ORDER", vec![SqlValue::Int(2), SqlValue::str("C9")])
            .is_err());
    }

    #[test]
    fn replace_and_delete_maintain_pk_index() {
        let mut d = db();
        for i in 0..5 {
            d.insert(
                "CUSTOMER",
                vec![
                    SqlValue::str(&format!("C{i}")),
                    SqlValue::str("X"),
                    SqlValue::Null,
                ],
            )
            .unwrap();
        }
        let t = d.table_mut("CUSTOMER").unwrap();
        t.replace_row(
            1,
            vec![SqlValue::str("C1b"), SqlValue::str("Y"), SqlValue::Null],
        )
        .unwrap();
        assert_eq!(t.lookup_pk(&[SqlValue::str("C1b")]), Some(1));
        assert_eq!(t.lookup_pk(&[SqlValue::str("C1")]), None);
        // PK collision on update
        assert!(t
            .replace_row(
                2,
                vec![SqlValue::str("C1b"), SqlValue::str("Z"), SqlValue::Null]
            )
            .is_err());
        t.delete_rows(&[0, 2]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.lookup_pk(&[SqlValue::str("C1b")]), Some(0));
        assert_eq!(t.lookup_pk(&[SqlValue::str("C4")]), Some(2));
    }
}
