//! Typed errors for the relational source boundary.
//!
//! The public surface of [`crate::server::RelationalServer`] and
//! [`crate::store::Database::execute_select`] used to return
//! `Result<_, String>`, which forced the adaptor layer (and the
//! fail-over path, §5.6) to classify failures by substring matching.
//! [`SourceError`] carries the kind explicitly; the `Display` output is
//! byte-identical to the old strings so logs, goldens, and user-facing
//! messages are unchanged.

use std::fmt;

/// What went wrong while talking to a (simulated) relational source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SourceError {
    /// The source is down (availability flag cleared) — the trigger for
    /// `fn-bea:fail-over` (§5.6).
    Unavailable { source: String },
    /// The statement itself failed (unknown table, type error, constraint
    /// violation, dry-run failure during prepare).
    Sql(String),
    /// A two-phase-commit protocol error (unknown transaction id,
    /// injected prepare failure).
    Tx(String),
    /// The query driving this roundtrip was cancelled (deadline) while
    /// waiting out the simulated source latency.
    Cancelled { source: String },
}

impl SourceError {
    /// An `Unavailable` error with the canonical message for `source`.
    pub fn unavailable(source: &str) -> SourceError {
        SourceError::Unavailable {
            source: source.to_string(),
        }
    }

    pub fn is_unavailable(&self) -> bool {
        matches!(self, SourceError::Unavailable { .. })
    }

    pub fn is_cancelled(&self) -> bool {
        matches!(self, SourceError::Cancelled { .. })
    }
}

impl fmt::Display for SourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceError::Unavailable { source } => {
                write!(f, "data source '{source}' is unavailable")
            }
            SourceError::Sql(m) | SourceError::Tx(m) => write!(f, "{m}"),
            SourceError::Cancelled { source } => {
                write!(f, "query cancelled during roundtrip to '{source}'")
            }
        }
    }
}

impl std::error::Error for SourceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_legacy_strings() {
        assert_eq!(
            SourceError::unavailable("db1").to_string(),
            "data source 'db1' is unavailable"
        );
        assert_eq!(
            SourceError::Sql("unknown table 'NOPE'".into()).to_string(),
            "unknown table 'NOPE'"
        );
        assert_eq!(
            SourceError::Tx("unknown transaction 7 on 'db2'".into()).to_string(),
            "unknown transaction 7 on 'db2'"
        );
    }

    #[test]
    fn kind_predicates() {
        assert!(SourceError::unavailable("x").is_unavailable());
        assert!(!SourceError::Sql("boom".into()).is_unavailable());
        assert!(SourceError::Cancelled { source: "x".into() }.is_cancelled());
    }
}
