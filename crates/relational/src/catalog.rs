//! Catalog: table schemas, keys and constraints.
//!
//! ALDSP introspects relational catalogs to build physical data services
//! (§2.1, §3.2): one read function per table plus navigation functions
//! derived from foreign keys. This module is the catalog those
//! introspections read.

use crate::types::SqlType;
use std::collections::HashMap;

/// One column definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    /// Column name.
    pub name: String,
    /// SQL type.
    pub ty: SqlType,
    /// Whether NULLs are allowed.
    pub nullable: bool,
}

impl Column {
    /// A NOT NULL column.
    pub fn required(name: &str, ty: SqlType) -> Column {
        Column {
            name: name.to_string(),
            ty,
            nullable: false,
        }
    }

    /// A nullable column.
    pub fn nullable(name: &str, ty: SqlType) -> Column {
        Column {
            name: name.to_string(),
            ty,
            nullable: true,
        }
    }
}

/// A foreign-key constraint: `columns` reference `ref_columns` of
/// `ref_table`. Introspection turns these into navigation functions
/// encapsulating the join path (§2.1).
#[derive(Debug, Clone, PartialEq)]
pub struct ForeignKey {
    /// Referencing columns (in this table).
    pub columns: Vec<String>,
    /// Referenced table.
    pub ref_table: String,
    /// Referenced columns (normally the referenced table's primary key).
    pub ref_columns: Vec<String>,
}

/// One table's schema.
#[derive(Debug, Clone, PartialEq)]
pub struct TableSchema {
    /// Table name.
    pub name: String,
    /// Columns in declaration order.
    pub columns: Vec<Column>,
    /// Primary-key column names (empty when the table has no PK).
    pub primary_key: Vec<String>,
    /// Foreign keys.
    pub foreign_keys: Vec<ForeignKey>,
}

impl TableSchema {
    /// Start building a schema.
    pub fn builder(name: &str) -> TableSchemaBuilder {
        TableSchemaBuilder {
            schema: TableSchema {
                name: name.to_string(),
                columns: Vec::new(),
                primary_key: Vec::new(),
                foreign_keys: Vec::new(),
            },
        }
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Column definition by name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// Indices of the primary-key columns.
    pub fn pk_indices(&self) -> Vec<usize> {
        self.primary_key
            .iter()
            .filter_map(|n| self.column_index(n))
            .collect()
    }
}

/// Fluent builder for [`TableSchema`].
pub struct TableSchemaBuilder {
    schema: TableSchema,
}

impl TableSchemaBuilder {
    /// Add a NOT NULL column.
    pub fn col(mut self, name: &str, ty: SqlType) -> Self {
        self.schema.columns.push(Column::required(name, ty));
        self
    }

    /// Add a nullable column.
    pub fn col_null(mut self, name: &str, ty: SqlType) -> Self {
        self.schema.columns.push(Column::nullable(name, ty));
        self
    }

    /// Set the primary key.
    pub fn pk(mut self, cols: &[&str]) -> Self {
        self.schema.primary_key = cols.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Add a foreign key.
    pub fn fk(mut self, cols: &[&str], ref_table: &str, ref_cols: &[&str]) -> Self {
        self.schema.foreign_keys.push(ForeignKey {
            columns: cols.iter().map(|s| s.to_string()).collect(),
            ref_table: ref_table.to_string(),
            ref_columns: ref_cols.iter().map(|s| s.to_string()).collect(),
        });
        self
    }

    /// Finish, validating key references.
    pub fn build(self) -> Result<TableSchema, String> {
        let s = self.schema;
        for k in &s.primary_key {
            if s.column_index(k).is_none() {
                return Err(format!(
                    "primary key column '{k}' not in table '{}'",
                    s.name
                ));
            }
            if s.column(k).expect("checked").nullable {
                return Err(format!("primary key column '{k}' must be NOT NULL"));
            }
        }
        for fk in &s.foreign_keys {
            if fk.columns.len() != fk.ref_columns.len() {
                return Err(format!(
                    "foreign key on '{}' has mismatched column counts",
                    s.name
                ));
            }
            for c in &fk.columns {
                if s.column_index(c).is_none() {
                    return Err(format!(
                        "foreign key column '{c}' not in table '{}'",
                        s.name
                    ));
                }
            }
        }
        Ok(s)
    }
}

/// A database catalog: the set of table schemas, introspectable by name.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: HashMap<String, TableSchema>,
    order: Vec<String>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Add a table schema; cross-table FK targets are validated lazily by
    /// [`Catalog::validate`].
    pub fn add(&mut self, schema: TableSchema) -> Result<(), String> {
        if self.tables.contains_key(&schema.name) {
            return Err(format!("duplicate table '{}'", schema.name));
        }
        self.order.push(schema.name.clone());
        self.tables.insert(schema.name.clone(), schema);
        Ok(())
    }

    /// Look up a table schema.
    pub fn table(&self, name: &str) -> Option<&TableSchema> {
        self.tables.get(name)
    }

    /// Iterate schemas in registration order.
    pub fn tables(&self) -> impl Iterator<Item = &TableSchema> {
        self.order.iter().map(|n| &self.tables[n])
    }

    /// Check that all foreign keys reference existing tables/columns.
    pub fn validate(&self) -> Result<(), String> {
        for t in self.tables.values() {
            for fk in &t.foreign_keys {
                let target = self.tables.get(&fk.ref_table).ok_or_else(|| {
                    format!(
                        "table '{}' references missing table '{}'",
                        t.name, fk.ref_table
                    )
                })?;
                for c in &fk.ref_columns {
                    if target.column_index(c).is_none() {
                        return Err(format!(
                            "foreign key from '{}' references missing column '{}.{c}'",
                            t.name, fk.ref_table
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn customer() -> TableSchema {
        TableSchema::builder("CUSTOMER")
            .col("CID", SqlType::Varchar)
            .col("LAST_NAME", SqlType::Varchar)
            .col_null("FIRST_NAME", SqlType::Varchar)
            .col_null("SINCE", SqlType::Integer)
            .pk(&["CID"])
            .build()
            .unwrap()
    }

    #[test]
    fn builder_and_lookup() {
        let c = customer();
        assert_eq!(c.column_index("LAST_NAME"), Some(1));
        assert_eq!(c.pk_indices(), vec![0]);
        assert!(c.column("FIRST_NAME").unwrap().nullable);
    }

    #[test]
    fn pk_must_exist_and_be_not_null() {
        assert!(TableSchema::builder("T")
            .col("A", SqlType::Integer)
            .pk(&["B"])
            .build()
            .is_err());
        assert!(TableSchema::builder("T")
            .col_null("A", SqlType::Integer)
            .pk(&["A"])
            .build()
            .is_err());
    }

    #[test]
    fn catalog_fk_validation() {
        let mut cat = Catalog::new();
        cat.add(customer()).unwrap();
        cat.add(
            TableSchema::builder("ORDER")
                .col("OID", SqlType::Integer)
                .col("CID", SqlType::Varchar)
                .pk(&["OID"])
                .fk(&["CID"], "CUSTOMER", &["CID"])
                .build()
                .unwrap(),
        )
        .unwrap();
        assert!(cat.validate().is_ok());
        assert_eq!(cat.tables().count(), 2);
        // dangling FK caught
        let mut bad = Catalog::new();
        bad.add(
            TableSchema::builder("X")
                .col("A", SqlType::Integer)
                .fk(&["A"], "MISSING", &["A"])
                .build()
                .unwrap(),
        )
        .unwrap();
        assert!(bad.validate().is_err());
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut cat = Catalog::new();
        cat.add(customer()).unwrap();
        assert!(cat.add(customer()).is_err());
    }
}
