//! The simulated relational server.
//!
//! The paper's experiments ran against real Oracle/DB2/SQL Server/Sybase
//! installations reached over JDBC; the behaviours ALDSP's query
//! processor actually depends on are (a) which SQL text the backend
//! accepts — modeled by [`Dialect`] — and (b) the *cost shape* of
//! talking to it: a per-roundtrip latency plus a per-row transfer cost.
//! [`RelationalServer`] wraps the in-memory [`Database`] with exactly
//! those: a configurable latency model, roundtrip/row counters, a SQL
//! statement log (used by the Table 1–2 goldens), availability/failure
//! injection (for `fn-bea:fail-over` / `fn-bea:timeout`, §5.6), and an
//! XA-style two-phase-commit interface (§6).

use crate::dialect::{render_select, Dialect};
use crate::dml::{render_dml, Dml};
use crate::error::SourceError;
use crate::exec::ResultSet;
use crate::sql::Select;
use crate::store::Database;
use crate::types::SqlValue;
use aldsp_workload::QueryBudget;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// The simulated cost of one interaction with the backend.
#[derive(Debug, Clone, Copy, Default)]
pub struct LatencyModel {
    /// Fixed cost per statement execution (network + parse + plan).
    pub per_roundtrip: Duration,
    /// Incremental cost per returned row (transfer).
    pub per_row: Duration,
    /// Number of backend "slots" before the source saturates. 0 means an
    /// ideal backend whose latency is independent of load; with `n > 0`,
    /// the per-roundtrip cost is multiplied by `ceil(in_flight / n)` — a
    /// coarse processor-sharing model that makes oversubscribing a source
    /// visibly expensive (what per-source concurrency caps protect against).
    pub saturation: usize,
}

impl LatencyModel {
    /// No simulated latency (unit tests).
    pub fn none() -> LatencyModel {
        LatencyModel::default()
    }

    /// A typical LAN database: fixed per-roundtrip cost.
    pub fn lan(roundtrip_micros: u64) -> LatencyModel {
        LatencyModel {
            per_roundtrip: Duration::from_micros(roundtrip_micros),
            per_row: Duration::ZERO,
            saturation: 0,
        }
    }

    /// A LAN database that degrades past `slots` concurrent requests.
    pub fn saturating(roundtrip_micros: u64, slots: usize) -> LatencyModel {
        LatencyModel {
            per_roundtrip: Duration::from_micros(roundtrip_micros),
            per_row: Duration::ZERO,
            saturation: slots,
        }
    }
}

/// Data statistics introspected from one table — the input to the
/// mediator's cost-based join planner. Captured by scanning the current
/// store contents, so they reflect the data at introspection time, not
/// a live count.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TableStatistics {
    /// Rows currently in the table.
    pub row_count: u64,
    /// `(column name, distinct value count)` in declaration order.
    pub column_distinct: Vec<(String, u64)>,
}

/// Execution statistics — the observable side of the PP-k trade-off
/// (§4.2: "k trades roundtrips against middleware memory").
///
/// Counters are **monotonic** for the lifetime of the server: they only
/// ever increase, so concurrent readers can difference two snapshots to
/// get an interval's activity without coordinating with writers.
#[derive(Debug, Clone, Default)]
pub struct ServerStats {
    /// Number of statement executions.
    pub roundtrips: u64,
    /// Total rows returned.
    pub rows_returned: u64,
    /// Total simulated latency charged across all statements, in
    /// nanoseconds. With overlapped (prefetched/parallel) access this
    /// exceeds the wall-clock time the client actually waited.
    pub latency_ns: u64,
    /// Highest number of statements simultaneously in their latency
    /// window — >1 proves the middleware overlapped source accesses.
    pub peak_inflight: u64,
    /// Rendered SQL texts, in execution order.
    pub statements: Vec<String>,
}

/// One buffered DML statement with its positional parameters.
type PendingDml = (Dml, Vec<SqlValue>);

/// When a scheduled [`Fault`] fires, measured against the server's
/// cumulative counters at the start of a SELECT roundtrip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTrigger {
    /// Fire on the first roundtrip once `roundtrips >= n` (so
    /// `Roundtrips(0)` fires on the very first statement).
    Roundtrips(u64),
    /// Fire on the first roundtrip once `rows_returned >= n` — the
    /// "error after N rows" schedule of the differential harness.
    RowsReturned(u64),
}

/// What a scheduled [`Fault`] does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Fail this one statement with a [`SourceError::Sql`] (a transient
    /// backend error); later statements succeed.
    ErrorOnce,
    /// Sleep an extra latency spike before executing (interruptible by
    /// the query's deadline, like regular simulated latency).
    LatencySpike(Duration),
    /// Drop the connection: the server becomes unavailable (as if
    /// [`RelationalServer::set_available`]`(false)` were called) until
    /// explicitly restored.
    Disconnect,
}

/// One scheduled fault. Schedules are installed with
/// [`RelationalServer::set_faults`] and consumed as they fire — each
/// fault fires at most once. They drive the differential harness's
/// fault mode: under any schedule, a query must end in either a
/// byte-identical result or a typed error, never a silently truncated
/// or reordered stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// When the fault fires.
    pub trigger: FaultTrigger,
    /// What happens.
    pub kind: FaultKind,
}

/// A simulated relational backend.
pub struct RelationalServer {
    name: String,
    dialect: Dialect,
    db: RwLock<Database>,
    latency: RwLock<LatencyModel>,
    stats: Mutex<ServerStats>,
    available: AtomicBool,
    inflight: AtomicU64,
    fail_on_prepare: AtomicBool,
    faults: Mutex<Vec<Fault>>,
    supports_xa: bool,
    next_tx: AtomicU64,
    pending: Mutex<HashMap<u64, Vec<PendingDml>>>,
}

impl RelationalServer {
    /// Wrap a database as a server speaking `dialect`.
    pub fn new(name: &str, dialect: Dialect, db: Database) -> RelationalServer {
        RelationalServer {
            name: name.to_string(),
            dialect,
            db: RwLock::new(db),
            latency: RwLock::new(LatencyModel::none()),
            stats: Mutex::new(ServerStats::default()),
            available: AtomicBool::new(true),
            inflight: AtomicU64::new(0),
            fail_on_prepare: AtomicBool::new(false),
            faults: Mutex::new(Vec::new()),
            supports_xa: true,
            next_tx: AtomicU64::new(1),
            pending: Mutex::new(HashMap::new()),
        }
    }

    /// The connection name (ALDSP's pragma `connection` attribute, §3.2).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The vendor dialect.
    pub fn dialect(&self) -> Dialect {
        self.dialect
    }

    /// Whether this source can participate in two-phase commit (§6).
    pub fn supports_xa(&self) -> bool {
        self.supports_xa
    }

    /// Install a latency model.
    pub fn set_latency(&self, l: LatencyModel) {
        *self.latency.write() = l;
    }

    /// Mark the server (un)available — drives failover experiments.
    pub fn set_available(&self, up: bool) {
        self.available.store(up, Ordering::SeqCst);
    }

    /// Make the next `prepare` fail — drives 2PC abort tests.
    pub fn fail_next_prepare(&self) {
        self.fail_on_prepare.store(true, Ordering::SeqCst);
    }

    /// Install a fault schedule (replacing any pending one). Faults are
    /// consumed as they fire; [`RelationalServer::clear_faults`]
    /// discards whatever is left and restores availability.
    pub fn set_faults(&self, schedule: Vec<Fault>) {
        *self.faults.lock() = schedule;
    }

    /// Discard pending faults and restore availability (undoing a fired
    /// [`FaultKind::Disconnect`]).
    pub fn clear_faults(&self) {
        self.faults.lock().clear();
        self.set_available(true);
    }

    /// Check the fault schedule at the start of a SELECT roundtrip,
    /// firing (and consuming) every due fault. Latency spikes sleep
    /// here; errors and disconnects abort the statement.
    fn apply_faults(&self, budget: Option<&QueryBudget>) -> Result<(), SourceError> {
        let due: Vec<FaultKind> = {
            let mut schedule = self.faults.lock();
            if schedule.is_empty() {
                return Ok(());
            }
            let (roundtrips, rows) = {
                let s = self.stats.lock();
                (s.roundtrips, s.rows_returned)
            };
            let mut due = Vec::new();
            schedule.retain(|f| {
                let fires = match f.trigger {
                    FaultTrigger::Roundtrips(n) => roundtrips >= n,
                    FaultTrigger::RowsReturned(n) => rows >= n,
                };
                if fires {
                    due.push(f.kind);
                }
                !fires
            });
            due
        };
        for kind in due {
            match kind {
                FaultKind::ErrorOnce => {
                    return Err(SourceError::Sql(format!(
                        "injected transient error on '{}'",
                        self.name
                    )));
                }
                FaultKind::Disconnect => {
                    self.set_available(false);
                    return Err(SourceError::unavailable(&self.name));
                }
                FaultKind::LatencySpike(d) => {
                    if !Self::simulated_sleep(budget, d) {
                        return Err(SourceError::Cancelled {
                            source: self.name.clone(),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Snapshot the statistics.
    pub fn stats(&self) -> ServerStats {
        self.stats.lock().clone()
    }

    /// The installed latency model.
    pub fn latency(&self) -> LatencyModel {
        *self.latency.read()
    }

    /// Introspect data statistics for `table`: current row count plus a
    /// per-column distinct-value count (computed over rendered SQL
    /// literals, so `NULL` counts as one value). `None` when the table
    /// does not exist. This is the source-side half of the cost model
    /// the mediator's join planner runs on.
    pub fn table_stats(&self, table: &str) -> Option<TableStatistics> {
        self.db.read().table(table).map(|t| {
            let cols = &t.schema().columns;
            let mut distinct: Vec<std::collections::HashSet<String>> =
                vec![std::collections::HashSet::new(); cols.len()];
            for row in t.rows() {
                for (set, v) in distinct.iter_mut().zip(row.iter()) {
                    set.insert(v.sql_literal());
                }
            }
            TableStatistics {
                row_count: t.len() as u64,
                column_distinct: cols
                    .iter()
                    .zip(&distinct)
                    .map(|(c, set)| (c.name.clone(), set.len() as u64))
                    .collect(),
            }
        })
    }

    /// Direct read access to the underlying database (tests, loaders).
    pub fn with_db<R>(&self, f: impl FnOnce(&Database) -> R) -> R {
        f(&self.db.read())
    }

    /// Direct write access to the underlying database (loaders).
    pub fn with_db_mut<R>(&self, f: impl FnOnce(&mut Database) -> R) -> R {
        f(&mut self.db.write())
    }

    /// Sleep `dur` of simulated latency; interruptible by the query's
    /// deadline/cancellation when a budget is supplied. Returns `false`
    /// when the sleep was cut short.
    fn simulated_sleep(budget: Option<&QueryBudget>, dur: Duration) -> bool {
        match budget {
            Some(b) => b.bounded_sleep(dur),
            None => {
                std::thread::sleep(dur);
                true
            }
        }
    }

    fn charge(
        &self,
        rows: usize,
        sql: String,
        budget: Option<&QueryBudget>,
    ) -> Result<(), SourceError> {
        if !self.available.load(Ordering::SeqCst) {
            return Err(SourceError::unavailable(&self.name));
        }
        let l = *self.latency.read();
        let in_window = self.inflight.fetch_add(1, Ordering::SeqCst) + 1;
        // Past the saturation point the backend degrades: each roundtrip
        // costs proportionally more the more requests share the source.
        let factor = if l.saturation > 0 {
            (in_window as u32).div_ceil(l.saturation as u32).max(1)
        } else {
            1
        };
        let mut charged = Duration::ZERO;
        let mut interrupted = false;
        if l.per_roundtrip > Duration::ZERO {
            let d = l.per_roundtrip * factor;
            interrupted = !Self::simulated_sleep(budget, d);
            charged += d;
        }
        if !interrupted && l.per_row > Duration::ZERO && rows > 0 {
            let d = l.per_row * rows as u32;
            interrupted = !Self::simulated_sleep(budget, d);
            charged += d;
        }
        self.inflight.fetch_sub(1, Ordering::SeqCst);
        // The statement did reach the source, so it is logged and counted
        // even when the waiting query gave up mid-roundtrip.
        let mut s = self.stats.lock();
        s.roundtrips += 1;
        s.rows_returned += rows as u64;
        s.latency_ns += charged.as_nanos() as u64;
        s.peak_inflight = s.peak_inflight.max(in_window);
        s.statements.push(sql);
        drop(s);
        if interrupted {
            return Err(SourceError::Cancelled {
                source: self.name.clone(),
            });
        }
        Ok(())
    }

    /// Execute a SELECT (one roundtrip).
    pub fn execute_select(
        &self,
        q: &Select,
        params: &[SqlValue],
    ) -> Result<ResultSet, SourceError> {
        self.execute_select_governed(q, params, None)
    }

    /// Execute a SELECT, charging simulated latency against `budget` so a
    /// deadline can interrupt the roundtrip mid-sleep.
    pub fn execute_select_governed(
        &self,
        q: &Select,
        params: &[SqlValue],
        budget: Option<&QueryBudget>,
    ) -> Result<ResultSet, SourceError> {
        if !self.available.load(Ordering::SeqCst) {
            return Err(SourceError::unavailable(&self.name));
        }
        self.apply_faults(budget)?;
        let rs = self.db.read().execute_select(q, params)?;
        self.charge(rs.rows.len(), render_select(q, self.dialect), budget)?;
        Ok(rs)
    }

    /// Execute a single autocommitted DML statement (one roundtrip).
    pub fn execute_dml(&self, stmt: &Dml, params: &[SqlValue]) -> Result<usize, SourceError> {
        if !self.available.load(Ordering::SeqCst) {
            return Err(SourceError::unavailable(&self.name));
        }
        let n = self
            .db
            .write()
            .execute_dml(stmt, params)
            .map_err(SourceError::Sql)?;
        self.charge(n, render_dml(stmt, self.dialect), None)?;
        Ok(n)
    }

    // ---- XA-style two-phase commit (§6) ---------------------------------

    /// Phase 1: validate the statements (dry-run against a snapshot) and
    /// buffer them. Returns a transaction id for `commit`/`rollback`.
    pub fn prepare(&self, stmts: Vec<(Dml, Vec<SqlValue>)>) -> Result<u64, SourceError> {
        if !self.available.load(Ordering::SeqCst) {
            return Err(SourceError::unavailable(&self.name));
        }
        if self.fail_on_prepare.swap(false, Ordering::SeqCst) {
            return Err(SourceError::Tx(format!(
                "injected prepare failure on '{}'",
                self.name
            )));
        }
        // dry run on a snapshot so prepare guarantees commit will succeed
        let mut snapshot = self.db.read().clone();
        for (stmt, params) in &stmts {
            snapshot
                .execute_dml(stmt, params)
                .map_err(SourceError::Sql)?;
        }
        let tx = self.next_tx.fetch_add(1, Ordering::SeqCst);
        self.pending.lock().insert(tx, stmts);
        Ok(tx)
    }

    /// Phase 2: apply a prepared transaction.
    pub fn commit(&self, tx: u64) -> Result<usize, SourceError> {
        let stmts = self.pending.lock().remove(&tx).ok_or_else(|| {
            SourceError::Tx(format!("unknown transaction {tx} on '{}'", self.name))
        })?;
        let mut total = 0;
        let mut db = self.db.write();
        for (stmt, params) in &stmts {
            total += db.execute_dml(stmt, params).map_err(SourceError::Sql)?;
            record_commit_statement(self, stmt);
        }
        Ok(total)
    }

    /// Abort a prepared transaction.
    pub fn rollback(&self, tx: u64) {
        self.pending.lock().remove(&tx);
    }
}

fn record_commit_statement(server: &RelationalServer, stmt: &Dml) {
    let mut s = server.stats.lock();
    s.roundtrips += 1;
    s.statements.push(render_dml(stmt, server.dialect));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::TableSchema;
    use crate::dml::{Delete, Update};
    use crate::sql::{ScalarExpr, TableRef};
    use crate::types::SqlType;

    fn server() -> RelationalServer {
        let mut db = Database::new();
        db.create_table(
            TableSchema::builder("CUSTOMER")
                .col("CID", SqlType::Varchar)
                .col("LAST_NAME", SqlType::Varchar)
                .pk(&["CID"])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.insert(
            "CUSTOMER",
            vec![SqlValue::str("C1"), SqlValue::str("Jones")],
        )
        .unwrap();
        RelationalServer::new("db1", Dialect::Oracle, db)
    }

    fn select_all() -> Select {
        Select::new(TableRef::table("CUSTOMER", "t1")).column(ScalarExpr::col("t1", "CID"), "c1")
    }

    #[test]
    fn select_records_stats_and_sql() {
        let s = server();
        let rs = s.execute_select(&select_all(), &[]).unwrap();
        assert_eq!(rs.rows.len(), 1);
        let st = s.stats();
        assert_eq!(st.roundtrips, 1);
        assert_eq!(st.rows_returned, 1);
        assert!(st.statements[0].starts_with("SELECT t1.\"CID\" AS c1"));
    }

    #[test]
    fn table_stats_count_rows_and_distinct_values() {
        let s = server();
        s.with_db_mut(|db| {
            db.insert(
                "CUSTOMER",
                vec![SqlValue::str("C2"), SqlValue::str("Jones")],
            )
            .unwrap();
        });
        let st = s.table_stats("CUSTOMER").unwrap();
        assert_eq!(st.row_count, 2);
        assert_eq!(
            st.column_distinct,
            vec![("CID".to_string(), 2), ("LAST_NAME".to_string(), 1)]
        );
        assert!(s.table_stats("NOPE").is_none());
    }

    #[test]
    fn unavailable_server_errors() {
        let s = server();
        s.set_available(false);
        assert!(s.execute_select(&select_all(), &[]).is_err());
        s.set_available(true);
        assert!(s.execute_select(&select_all(), &[]).is_ok());
    }

    #[test]
    fn latency_is_charged() {
        let s = server();
        s.set_latency(LatencyModel::lan(2000)); // 2ms per roundtrip
        let t0 = std::time::Instant::now();
        for _ in 0..5 {
            s.execute_select(&select_all(), &[]).unwrap();
        }
        assert!(t0.elapsed() >= Duration::from_millis(10));
        assert_eq!(s.stats().roundtrips, 5);
    }

    #[test]
    fn deadline_interrupts_simulated_latency() {
        let s = server();
        s.set_latency(LatencyModel::lan(50_000)); // 50ms per roundtrip
        let b = QueryBudget::new(Some(Duration::from_millis(10)), None);
        let t0 = std::time::Instant::now();
        let r = s.execute_select_governed(&select_all(), &[], Some(&b));
        assert!(matches!(r, Err(SourceError::Cancelled { .. })));
        assert!(
            t0.elapsed() < Duration::from_millis(40),
            "cancelled roundtrip must not pay the full simulated latency"
        );
        // The statement still reached the source.
        assert_eq!(s.stats().roundtrips, 1);
    }

    #[test]
    fn saturating_latency_degrades_under_load() {
        let s = server();
        s.set_latency(LatencyModel::saturating(5_000, 1)); // 5ms, 1 slot
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    s.execute_select(&select_all(), &[]).unwrap();
                });
            }
        });
        let st = s.stats();
        assert_eq!(st.roundtrips, 4);
        if st.peak_inflight > 1 {
            // Overlapped requests were charged a saturation multiplier.
            assert!(st.latency_ns > 4 * 5_000_000);
        }
    }

    #[test]
    fn fault_error_once_fails_one_statement_then_recovers() {
        let s = server();
        s.set_faults(vec![Fault {
            trigger: FaultTrigger::Roundtrips(1),
            kind: FaultKind::ErrorOnce,
        }]);
        assert!(s.execute_select(&select_all(), &[]).is_ok(), "before N");
        let r = s.execute_select(&select_all(), &[]);
        assert!(matches!(r, Err(SourceError::Sql(_))), "{r:?}");
        assert!(
            s.execute_select(&select_all(), &[]).is_ok(),
            "consumed after firing"
        );
    }

    #[test]
    fn fault_rows_trigger_counts_cumulative_rows() {
        let s = server();
        s.set_faults(vec![Fault {
            trigger: FaultTrigger::RowsReturned(2),
            kind: FaultKind::ErrorOnce,
        }]);
        // table has one row: trip 1 → 1 row, trip 2 → 2 rows, trip 3 fires
        assert!(s.execute_select(&select_all(), &[]).is_ok());
        assert!(s.execute_select(&select_all(), &[]).is_ok());
        assert!(s.execute_select(&select_all(), &[]).is_err());
    }

    #[test]
    fn fault_disconnect_persists_until_cleared() {
        let s = server();
        s.set_faults(vec![Fault {
            trigger: FaultTrigger::Roundtrips(0),
            kind: FaultKind::Disconnect,
        }]);
        let r = s.execute_select(&select_all(), &[]);
        assert!(matches!(r, Err(SourceError::Unavailable { .. })), "{r:?}");
        assert!(s.execute_select(&select_all(), &[]).is_err(), "still down");
        s.clear_faults();
        assert!(s.execute_select(&select_all(), &[]).is_ok());
    }

    #[test]
    fn fault_latency_spike_is_deadline_interruptible() {
        let s = server();
        s.set_faults(vec![Fault {
            trigger: FaultTrigger::Roundtrips(0),
            kind: FaultKind::LatencySpike(Duration::from_millis(50)),
        }]);
        let b = QueryBudget::new(Some(Duration::from_millis(5)), None);
        let t0 = std::time::Instant::now();
        let r = s.execute_select_governed(&select_all(), &[], Some(&b));
        assert!(matches!(r, Err(SourceError::Cancelled { .. })), "{r:?}");
        assert!(t0.elapsed() < Duration::from_millis(40));
    }

    #[test]
    fn two_phase_commit_applies_atomically() {
        let s = server();
        let upd = Dml::Update(Update {
            table: "CUSTOMER".into(),
            alias: "t1".into(),
            set: vec![("LAST_NAME".into(), ScalarExpr::lit(SqlValue::str("Smith")))],
            where_: Some(ScalarExpr::col("t1", "CID").eq(ScalarExpr::Param(0))),
        });
        let tx = s.prepare(vec![(upd, vec![SqlValue::str("C1")])]).unwrap();
        // not yet applied
        assert_eq!(
            s.with_db(|d| d.table("CUSTOMER").unwrap().rows()[0][1].clone()),
            SqlValue::str("Jones")
        );
        s.commit(tx).unwrap();
        assert_eq!(
            s.with_db(|d| d.table("CUSTOMER").unwrap().rows()[0][1].clone()),
            SqlValue::str("Smith")
        );
        assert!(s.commit(tx).is_err(), "double commit rejected");
    }

    #[test]
    fn prepare_dry_runs_and_can_fail() {
        let s = server();
        // invalid statement caught at prepare time
        let bad = Dml::Delete(Delete {
            table: "NOPE".into(),
            alias: "t1".into(),
            where_: None,
        });
        assert!(s.prepare(vec![(bad, vec![])]).is_err());
        // injected failure
        s.fail_next_prepare();
        let ok = Dml::Delete(Delete {
            table: "CUSTOMER".into(),
            alias: "t1".into(),
            where_: None,
        });
        assert!(s.prepare(vec![(ok.clone(), vec![])]).is_err());
        // next prepare succeeds and rollback discards
        let tx = s.prepare(vec![(ok, vec![])]).unwrap();
        s.rollback(tx);
        assert!(s.commit(tx).is_err());
        assert_eq!(s.with_db(|d| d.table("CUSTOMER").unwrap().len()), 1);
    }
}
